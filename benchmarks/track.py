"""Benchmark regression tracker over the committed performance trajectory.

The benchmark suites leave machine-relative artifacts behind —
``BENCH_residual.json`` / ``BENCH_distributed.json`` /
``BENCH_ensemble.json`` speedups, and the observatory's ``report.json``
with its deterministic traffic and balance metrics.  This tool folds them into one append-only trajectory file
(``BENCH_history.jsonl``, one JSON object per line) and checks fresh
results against it:

* ``python benchmarks/track.py --ingest [--label v7]`` appends the
  current metric snapshot to the history;
* ``python benchmarks/track.py --check [--threshold 0.15]`` compares the
  current files against the most recent history entry carrying each
  metric and exits nonzero when any metric regressed past its limit.

Only *machine-relative* or *deterministic* quantities are tracked —
speedup ratios, per-cycle message/byte counts, load-imbalance factors —
never raw milliseconds, so the check is meaningful across hosts.  Each
metric class has its own regression limit: deterministic traffic counts
get a tight 1% limit (any growth is a code change, not noise), timing
ratios get the configurable ``--threshold`` (default 15%), and the
scheduling-sensitive overlap efficiency only fails on collapse.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Regression rules, matched by substring against the metric leaf name
#: (the part after the last ``/``).  ``threshold=None`` means "use the
#: --threshold argument".  First match wins.
METRIC_RULES = [
    ("overlap_efficiency", True, 0.75),
    ("load_imbalance", False, 0.05),
    ("msgs_per_cycle", False, 0.01),
    ("bytes_per_cycle", False, 0.01),
    ("neighbor_pairs", False, 0.01),
    # Wall-clock ratio of the mp ghost transports (pipe/shm).  On hosts
    # where all ranks time-share one core the ratio sits at ~1.0 by
    # construction (the pickle savings are CPU, not wall), so like
    # overlap_efficiency it only fails on collapse, not on scheduler
    # noise.  Must precede the generic "speedup" rule (first match
    # wins).
    ("transport_speedup", True, 0.5),
    # Batched-over-sequential per-scenario throughput ratio of the
    # ensemble sweep (BENCH_ensemble.json) — machine-relative like the
    # other speedups, default threshold.
    ("ensemble_throughput", True, None),
    ("speedup", True, None),
]


def _rule_for(key: str, default_threshold: float):
    """(higher_is_better, threshold) for a metric key."""
    leaf = key.rsplit("/", 1)[-1]
    for pattern, higher_better, threshold in METRIC_RULES:
        if pattern in leaf:
            return higher_better, (default_threshold if threshold is None
                                   else threshold)
    return True, default_threshold


# ---------------------------------------------------------------------------
# Metric extraction
# ---------------------------------------------------------------------------

def metrics_from_residual(doc: dict) -> dict:
    """Flat metrics from a BENCH_residual.json document."""
    out = {}
    for case in doc.get("cases", []):
        mesh = case["mesh"]
        for name, value in case.get("speedup", {}).items():
            out[f"residual/{mesh}/speedup.{name}"] = float(value)
    return out


def metrics_from_distributed(doc: dict) -> dict:
    """Flat metrics from a BENCH_distributed.json document."""
    out = {}
    for case in doc.get("cases", []):
        tag = f"{case['mesh']}x{case['n_ranks']}"
        if case.get("kind") == "mp-transport":
            # Real-OS-process transport cases: the deterministic byte
            # split per transport plus the (collapse-gated) wall ratio.
            out[f"distributed/{tag}-mp/transport_speedup"] = \
                float(case["transport_speedup"])
            for transport, traffic in case.get("traffic", {}).items():
                for name in ("msgs_per_cycle", "pipe_bytes_per_cycle",
                             "shm_bytes_per_cycle"):
                    if name in traffic:
                        out[f"distributed/{tag}-mp/{transport}.{name}"] = \
                            float(traffic[name])
            continue
        if "speedup" in case:
            out[f"distributed/{tag}/speedup"] = float(case["speedup"])
        for mode, traffic in case.get("traffic", {}).items():
            for name in ("msgs_per_cycle", "bytes_per_cycle"):
                if name in traffic:
                    out[f"distributed/{tag}/{mode}.{name}"] = \
                        float(traffic[name])
    return out


def metrics_from_ensemble(doc: dict) -> dict:
    """Flat metrics from a BENCH_ensemble.json document."""
    out = {}
    for case in doc.get("cases", []):
        mesh = case["mesh"]
        for batch, row in case.get("ensemble", {}).items():
            if "ensemble_throughput" in row:
                out[f"ensemble/{mesh}/b{batch}.ensemble_throughput"] = \
                    float(row["ensemble_throughput"])
    return out


def metrics_from_report(doc: dict) -> dict:
    """Flat metrics from an observatory report.json document."""
    tag = f"{doc['case']}-{doc['backend']}x{doc['n_ranks']}"
    out = {}
    cm = doc.get("comm_matrix", {})
    n_cycles = max(int(cm.get("n_cycles", doc.get("n_cycles", 1))), 1)
    msgs = cm.get("msgs")
    if msgs is not None:
        total_msgs = sum(sum(row) for row in msgs)
        total_bytes = sum(sum(row) for row in cm.get("bytes", []))
        pairs = sum(1 for row in msgs for v in row if v)
        out[f"report/{tag}/msgs_per_cycle"] = total_msgs / n_cycles
        out[f"report/{tag}/bytes_per_cycle"] = total_bytes / n_cycles
        out[f"report/{tag}/neighbor_pairs"] = float(pairs)
    lb = doc.get("load_balance", {})
    if "imbalance" in lb:
        out[f"report/{tag}/load_imbalance"] = float(lb["imbalance"])
    overlap = doc.get("overlap", {})
    if overlap.get("efficiency"):
        out[f"report/{tag}/overlap_efficiency"] = \
            float(overlap["efficiency"])
    return out


def _load_json(path: Path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def collect_metrics(residual: Path | None, distributed: Path | None,
                    reports: list[Path],
                    ensemble: Path | None = None) -> dict:
    """Current metric snapshot from whichever sources exist on disk."""
    out: dict = {}
    if residual is not None and residual.exists():
        out.update(metrics_from_residual(_load_json(residual)))
    if distributed is not None and distributed.exists():
        out.update(metrics_from_distributed(_load_json(distributed)))
    if ensemble is not None and ensemble.exists():
        out.update(metrics_from_ensemble(_load_json(ensemble)))
    for path in reports:
        out.update(metrics_from_report(_load_json(path)))
    return out


# ---------------------------------------------------------------------------
# History
# ---------------------------------------------------------------------------

def read_history(path: Path) -> list[dict]:
    if not path.exists():
        return []
    entries = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def baseline_metrics(entries: list[dict]) -> dict:
    """Most recent recorded value of every metric across the history."""
    baseline: dict = {}
    for entry in entries:   # later entries overwrite earlier ones
        baseline.update(entry.get("metrics", {}))
    return baseline


def append_history(path: Path, label: str, metrics: dict) -> None:
    entry = {"label": label, "metrics": metrics}
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# Check
# ---------------------------------------------------------------------------

def check_regressions(baseline: dict, current: dict,
                      default_threshold: float,
                      out=None) -> int:
    """Compare ``current`` against ``baseline``; return the failure count.

    A metric regresses when it moved in its bad direction by more than
    its limit, relative to the baseline value.  Metrics present on only
    one side are reported but never fail the check (new benchmarks
    appear, old ones retire).
    """
    if out is None:
        out = sys.stdout
    failures = 0
    keys = sorted(set(baseline) | set(current))
    width = max((len(k) for k in keys), default=6)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'change':>8}  {'limit':>6}  status", file=out)
    for key in keys:
        if key not in baseline:
            print(f"{key:<{width}}  {'-':>12}  {current[key]:>12.4g}  "
                  f"{'-':>8}  {'-':>6}  NEW", file=out)
            continue
        if key not in current:
            print(f"{key:<{width}}  {baseline[key]:>12.4g}  {'-':>12}  "
                  f"{'-':>8}  {'-':>6}  GONE", file=out)
            continue
        base, cur = baseline[key], current[key]
        higher_better, limit = _rule_for(key, default_threshold)
        if base == 0.0:
            change = 0.0 if cur == 0.0 else float("inf")
        else:
            change = (base - cur) / abs(base) if higher_better \
                else (cur - base) / abs(base)
        status = "ok"
        if change > limit:
            status = "FAIL"
            failures += 1
        sign = "-" if higher_better else "+"
        print(f"{key:<{width}}  {base:>12.4g}  {cur:>12.4g}  "
              f"{sign}{change * 100:>6.1f}%  {limit * 100:>5.0f}%  "
              f"{status}", file=out)
    return failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/track.py",
        description="Benchmark trajectory tracker: ingest results into "
                    "BENCH_history.jsonl and check for regressions.")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--ingest", action="store_true",
                      help="append the current metric snapshot to the "
                           "history file")
    mode.add_argument("--check", action="store_true",
                      help="compare the current files against the history "
                           "baseline; exit 1 on any regression")
    parser.add_argument("--history", type=Path,
                        default=REPO_ROOT / "BENCH_history.jsonl",
                        help="trajectory file (default: repo root)")
    parser.add_argument("--residual", type=Path,
                        default=REPO_ROOT / "BENCH_residual.json",
                        help="BENCH_residual.json to read (skipped if "
                             "missing)")
    parser.add_argument("--distributed", type=Path,
                        default=REPO_ROOT / "BENCH_distributed.json",
                        help="BENCH_distributed.json to read (skipped if "
                             "missing)")
    parser.add_argument("--ensemble", type=Path,
                        default=REPO_ROOT / "BENCH_ensemble.json",
                        help="BENCH_ensemble.json to read (skipped if "
                             "missing)")
    parser.add_argument("--report", type=Path, action="append", default=[],
                        metavar="REPORT_JSON",
                        help="observatory report.json to include "
                             "(repeatable)")
    parser.add_argument("--label", default="run",
                        help="label stored with an ingested entry")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression limit for timing-ratio "
                             "metrics (default 0.15)")
    args = parser.parse_args(argv)

    for path in args.report:
        if not path.exists():
            print(f"track: report not found: {path}", file=sys.stderr)
            return 2
    current = collect_metrics(args.residual, args.distributed, args.report,
                              ensemble=args.ensemble)
    if not current:
        print("track: no benchmark files found to read", file=sys.stderr)
        return 2

    if args.ingest:
        append_history(args.history, args.label, current)
        print(f"track: appended {len(current)} metrics to {args.history} "
              f"(label: {args.label})")
        return 0

    entries = read_history(args.history)
    if not entries:
        print(f"track: no history at {args.history}; run --ingest first",
              file=sys.stderr)
        return 2
    baseline = baseline_metrics(entries)
    failures = check_regressions(baseline, current, args.threshold)
    if failures:
        print(f"track: {failures} metric(s) regressed past their limits")
        return 1
    print("track: no regressions against the recorded trajectory")
    return 0


if __name__ == "__main__":
    sys.exit(main())
