"""Partitioning cost benchmark (Section 2.4 / 4.1).

The paper observes that "the particular partitioning strategy currently
employed was found to require CPU times comparable to the amount of time
required for the entire flow solution procedure" — i.e. RSB costs about as
much as solving the flow.  We time our RSB against 100 solver cycles on
the same mesh and report the ratio, plus partition-quality comparisons.
"""

import time

import numpy as np
import pytest

from repro.mesh import build_edge_structure, bump_channel
from repro.partition import (greedy_bfs_partition, partition_metrics,
                             recursive_coordinate_bisection,
                             recursive_spectral_bisection)
from repro.solver import EulerSolver, SolverConfig
from repro.state import freestream_state


@pytest.fixture(scope="module")
def mesh():
    return bump_channel(36, 6, 12)


@pytest.fixture(scope="module")
def struct(mesh):
    return build_edge_structure(mesh)


def test_rsb_timing(benchmark, mesh, struct):
    asg = benchmark(recursive_spectral_bisection, struct.edges,
                    mesh.n_vertices, 16)
    m = partition_metrics(struct.edges, asg, 16)
    assert m.imbalance < 1.1


def test_rcb_timing(benchmark, mesh):
    asg = benchmark(recursive_coordinate_bisection, mesh.vertices, 16)
    assert asg.max() == 15


def test_bfs_timing(benchmark, mesh, struct):
    asg = benchmark(greedy_bfs_partition, struct.edges, mesh.n_vertices, 16)
    assert asg.max() == 15


def test_partitioning_vs_solution_cost(benchmark, mesh, struct):
    """Reproduce the paper's observation that RSB cost is of the same
    order as the flow solution (here: within 100x either way — our
    vectorised solver and dense-ish Lanczos have different constants than
    1992 Fortran, so only the order-of-magnitude comparison is meaningful)."""
    t0 = time.perf_counter()
    benchmark.pedantic(recursive_spectral_bisection,
                       args=(struct.edges, mesh.n_vertices, 16),
                       rounds=1, iterations=1)
    t_partition = time.perf_counter() - t0

    winf = freestream_state(0.768, 1.116)
    solver = EulerSolver(struct, winf, SolverConfig())
    w = solver.freestream_solution()
    t0 = time.perf_counter()
    for _ in range(10):
        w = solver.step(w)
    t_solution = (time.perf_counter() - t0) * 10     # -> 100 cycles

    ratio = t_partition / t_solution
    print(f"\nRSB vs 100-cycle solution: partition {t_partition:.2f}s, "
          f"solution {t_solution:.2f}s, ratio {ratio:.3f} "
          f"(paper: ~1)")
    assert 0.001 < ratio < 100.0


def test_quality_ranking(benchmark, struct, mesh):
    """Cut-size ranking RSB <= RCB <= BFS on the channel mesh at 16 parts."""
    cuts = {}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cuts["rsb"] = partition_metrics(
        struct.edges, recursive_spectral_bisection(
            struct.edges, mesh.n_vertices, 16), 16).n_cut_edges
    cuts["rcb"] = partition_metrics(
        struct.edges, recursive_coordinate_bisection(
            mesh.vertices, 16), 16).n_cut_edges
    cuts["bfs"] = partition_metrics(
        struct.edges, greedy_bfs_partition(
            struct.edges, mesh.n_vertices, 16), 16).n_cut_edges
    print(f"\nCut edges at 16 parts: {cuts}")
    assert cuts["rsb"] <= 1.1 * min(cuts.values())
