"""Section 5 cross-machine comparison benchmark.

Derives and checks the paper's headline claims: the C90 outperforming the
512-node Delta by ~2x, the Delta-512 ~ 5 C90 CPUs equivalence, and the
peak-fraction figures (21% / 5%).
"""

import pytest

from repro.harness import compare_machines


def test_shared_vs_distributed(benchmark, case):
    cmp = benchmark.pedantic(compare_machines, args=(case,),
                             rounds=1, iterations=1)
    print("\n" + cmp.report())

    # C90/16 faster than Delta/512.  The paper says "roughly a factor of
    # two" in the text but its own W-cycle numbers give 843/268 = 3.1x;
    # our model lands somewhat higher (~4-5x) because our modelled C90
    # wall clock is ~20% faster than the paper's and the modelled Delta
    # W-cycle is ~20% slower.  Assert the direction and the decade.
    assert 1.2 < cmp.c90_over_delta < 6.5
    # Delta-512 worth a handful of C90 CPUs (paper: ~5; our band 2-12).
    assert 2.0 < cmp.delta_equiv_c90_cpus < 12.0
    # Far-below-peak utilisation on both machines.
    assert 0.10 < cmp.c90_peak_fraction < 0.35
    assert 0.02 < cmp.delta_peak_fraction < 0.10
    # C90 rates insensitive to strategy.
    assert cmp.c90_rate_spread < 1.5
