"""Microbenchmarks of the solver kernels and preprocessing passes.

These time the actual Python/NumPy implementation on this machine (not
the 1992 models): edge-loop throughput, colouring, schedule building,
walking search.  Useful for tracking regressions in the hot paths.
"""

import numpy as np
import pytest

from repro.coloring import color_edges
from repro.mesh import bump_channel, tet_face_adjacency
from repro.multigrid import build_transfer
from repro.scatter import EdgeScatter
from repro.solver import EulerSolver, SolverConfig
from repro.solver.dissipation import dissipation_operator
from repro.solver.flux import convective_operator
from repro.state import flux_vectors, freestream_state


@pytest.fixture(scope="module")
def solver(kernel_struct, winf):
    return EulerSolver(kernel_struct, winf, SolverConfig())


@pytest.fixture(scope="module")
def state(solver):
    # A slightly perturbed state so kernels see non-trivial data.
    w = solver.freestream_solution()
    return solver.step(w)


def test_flux_vectors(benchmark, state):
    result = benchmark(flux_vectors, state)
    assert result.shape == (state.shape[0], 5, 3)


def test_convective_operator(benchmark, solver, state):
    result = benchmark(convective_operator, state, solver.edges, solver.eta,
                       solver.scatter)
    assert np.all(np.isfinite(result))


def test_dissipation_operator(benchmark, solver, state):
    result = benchmark(dissipation_operator, state, solver.edges, solver.eta,
                       solver.scatter, 0.5, 1 / 32)
    assert np.all(np.isfinite(result))


def test_full_rk_step(benchmark, solver, state):
    result = benchmark(solver.step, state)
    assert np.all(np.isfinite(result))


def test_edge_scatter_build(benchmark, kernel_struct):
    result = benchmark(EdgeScatter, kernel_struct.edges,
                       kernel_struct.n_vertices)
    assert result.degree.sum() == 2 * kernel_struct.n_edges


def test_edge_coloring(benchmark, kernel_struct):
    col = benchmark(color_edges, kernel_struct.edges,
                    kernel_struct.n_vertices)
    assert 10 <= col.n_colors <= 40


def test_tet_adjacency(benchmark):
    mesh = bump_channel(24, 4, 8)
    adj = benchmark(tet_face_adjacency, mesh.tets)
    assert adj.shape == (mesh.n_tets, 4)


def test_transfer_build(benchmark):
    fine = bump_channel(24, 4, 8)
    coarse = bump_channel(12, 2, 4)
    op = benchmark(build_transfer, fine.vertices, coarse)
    assert op.n_target == fine.n_vertices
