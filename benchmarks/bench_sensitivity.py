"""Robustness of the Table 2 shapes to the calibrated model constants,
plus the flow-condition sensitivity sweep those shapes are checked at.

The reproduction's Delta seconds rest on two fitted constants; this
benchmark perturbs each by 2x in both directions and checks that every
qualitative finding the paper reports survives the whole grid — i.e. the
conclusions come from the measured workload structure, not from the fit.

The condition sweep runs through ``solve_ensemble`` (one batched
pipeline for all Mach/alpha points); pass ``--sequential`` to run the
old one-solver-per-condition path instead and A/B the two.
"""

import numpy as np

from repro.harness.sensitivity import delta_sensitivity
from repro.harness.workloads import run_condition_sweep, sweep_conditions


def test_delta_model_sensitivity(benchmark, case):
    result = benchmark.pedantic(delta_sensitivity, args=(case,),
                                kwargs={"factors": (0.5, 1.0, 2.0)},
                                rounds=1, iterations=1)
    print("\nDelta-model sensitivity (constants x0.5 .. x2):")
    print(result.report())
    print(f"shape survival: {100 * result.fraction_holding():.0f}%")
    # Every shape must hold at the calibrated point...
    assert all(result.outcomes[(1.0, 1.0)].values())
    # ...and the vast majority must hold across the whole perturbation grid.
    assert result.fraction_holding() > 0.85


def test_condition_sweep(benchmark, case, sequential_sweep):
    """Mach/alpha sweep throughput (batched by default, --sequential A/B)."""
    flows = sweep_conditions()
    result = benchmark.pedantic(
        run_condition_sweep, args=(case, flows),
        kwargs={"n_cycles": 5, "sequential": sequential_sweep},
        rounds=1, iterations=1)
    path = "sequential" if sequential_sweep else "ensemble"
    print(f"\ncondition sweep ({path}): {result.n_scenarios} conditions, "
          f"{result.wall_s:.2f} s, {result.scenarios_per_s:.2f} scenarios/s")
    assert result.n_scenarios == len(flows)
    assert not result.diverged.any()
    assert np.all(np.isfinite(result.final_norms))
