"""Robustness of the Table 2 shapes to the calibrated model constants.

The reproduction's Delta seconds rest on two fitted constants; this
benchmark perturbs each by 2x in both directions and checks that every
qualitative finding the paper reports survives the whole grid — i.e. the
conclusions come from the measured workload structure, not from the fit.
"""

from repro.harness.sensitivity import delta_sensitivity


def test_delta_model_sensitivity(benchmark, case):
    result = benchmark.pedantic(delta_sensitivity, args=(case,),
                                kwargs={"factors": (0.5, 1.0, 2.0)},
                                rounds=1, iterations=1)
    print("\nDelta-model sensitivity (constants x0.5 .. x2):")
    print(result.report())
    print(f"shape survival: {100 * result.fraction_holding():.0f}%")
    # Every shape must hold at the calibrated point...
    assert all(result.outcomes[(1.0, 1.0)].values())
    # ...and the vast majority must hold across the whole perturbation grid.
    assert result.fraction_holding() > 0.85
