"""Ablation benchmarks for the design choices DESIGN.md calls out.

* node/edge reordering -> i860 cache model rate (Section 4.2's "factor of
  two");
* incremental vs independent communication schedules (Section 4.3);
* partitioner quality -> communication volume (Section 4.1 / ref 10);
* residual smoothing on/off (Section 2.2's convergence acceleration);
* W vs V vs single-grid efficiency per architecture (Sections 3.2 / 4.4).
"""

import numpy as np
import pytest

from repro.distsolver import (DistributedEulerSolver, random_shuffle_edges,
                              sort_edges_by_vertex)
from repro.mesh import build_edge_structure, bump_channel
from repro.parti import (IncrementalScheduleBuilder, SimMachine,
                         TranslationTable, build_gather_schedule)
from repro.partition import (greedy_bfs_partition, partition_metrics,
                             recursive_coordinate_bisection,
                             recursive_spectral_bisection)
from repro.perfmodel import node_rate_for_ordering
from repro.solver import EulerSolver, SolverConfig
from repro.state import freestream_state


@pytest.fixture(scope="module")
def struct():
    return build_edge_structure(bump_channel(36, 6, 12))


# ---------------------------------------------------------------------------
def test_reordering_speedup(benchmark, struct):
    """Section 4.2: reordering 'improved the single node computational
    rate by a factor of two' — the cache model on our measured reuse
    distances must show a comparable gain."""
    def run():
        ordered = node_rate_for_ordering(
            struct.edges, sort_edges_by_vertex(struct.edges))
        shuffled = node_rate_for_ordering(
            struct.edges, random_shuffle_edges(struct.n_edges))
        return ordered, shuffled

    ordered, shuffled = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = ordered.mflops / shuffled.mflops
    print(f"\nReordering ablation: ordered {ordered.mflops:.2f} MFlops "
          f"(hit {ordered.hit_rate:.2f}) vs shuffled "
          f"{shuffled.mflops:.2f} MFlops (hit {shuffled.hit_rate:.2f}) "
          f"-> speedup {speedup:.2f}x (paper: ~2x)")
    assert 1.4 < speedup < 3.5


# ---------------------------------------------------------------------------
def test_incremental_schedules(benchmark, struct):
    """Section 4.3: with the flow variables used by several consecutive
    loops, incremental schedules avoid re-fetching — measure the byte
    saving over one Runge-Kutta stage's loop sequence."""
    p = 8
    asg = recursive_spectral_bisection(struct.edges, struct.n_vertices, p)
    table = TranslationTable(asg, p)

    # Reference sets of the three edge loops of a stage (conv, diss pass
    # 1, diss pass 2) — all need the same edge-endpoint ghosts.
    edge_owner = table.owner_of(struct.edges[:, 0])
    loops = []
    for _ in range(3):
        loops.append([struct.edges[edge_owner == r].ravel()
                      for r in range(p)])

    def run():
        independent = sum(
            build_gather_schedule(req, table).total_ghosts()
            for req in loops)
        builder = IncrementalScheduleBuilder(table)
        incremental = sum(builder.add(req).schedule.total_ghosts()
                          for req in loops)
        return independent, incremental

    independent, incremental = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    saving = 1 - incremental / independent
    print(f"\nIncremental schedules: {independent} ghost fetches "
          f"independent vs {incremental} incremental "
          f"({100 * saving:.0f}% saved)")
    # Three identical reference sets: the second and third fetch nothing.
    assert incremental == independent // 3
    assert saving > 0.6


# ---------------------------------------------------------------------------
def test_partitioner_quality_to_comm(benchmark, struct):
    """Partition quality vs actual PARTI traffic (Section 4.1 premise)."""
    p = 8
    mesh = bump_channel(36, 6, 12)

    def traffic_for(asg):
        winf = freestream_state(0.768, 1.116)
        solver = DistributedEulerSolver(struct, winf, asg, SolverConfig())
        solver.step(solver.freestream_solution())
        return solver.machine.log.total_bytes

    def run():
        out = {}
        out["rsb"] = traffic_for(recursive_spectral_bisection(
            struct.edges, struct.n_vertices, p))
        out["rcb"] = traffic_for(recursive_coordinate_bisection(
            mesh.vertices, p))
        out["bfs"] = traffic_for(greedy_bfs_partition(
            struct.edges, struct.n_vertices, p))
        return out

    bytes_by = benchmark.pedantic(run, rounds=1, iterations=1)
    cuts = {
        "rsb": int(partition_metrics(
            struct.edges, recursive_spectral_bisection(
                struct.edges, struct.n_vertices, p)).n_cut_edges),
        "rcb": int(partition_metrics(
            struct.edges, recursive_coordinate_bisection(
                mesh.vertices, p)).n_cut_edges),
        "bfs": int(partition_metrics(
            struct.edges, greedy_bfs_partition(
                struct.edges, struct.n_vertices, p)).n_cut_edges),
    }
    print(f"\nPartitioner -> bytes/cycle: {bytes_by}; cut edges: {cuts}")
    # Finding worth recording: RSB minimises the *cut* (the paper's
    # metric), but actual PARTI traffic follows the *unique ghost-vertex*
    # count because the inspector deduplicates repeated references — the
    # very hash-table optimisation Section 4.3 celebrates.  On this
    # elongated channel RCB's slab-shaped parts reference the fewest
    # distinct off-rank vertices and win on bytes (measured: rcb < bfs <
    # rsb) even while losing on cut (rsb < bfs < rcb).
    assert cuts["rsb"] <= min(cuts.values())
    assert max(bytes_by.values()) < 1.5 * min(bytes_by.values())


# ---------------------------------------------------------------------------
def test_residual_smoothing_ablation(benchmark):
    """Residual averaging buys a higher stable CFL and faster convergence
    per cycle (Section 2.2)."""
    mesh = bump_channel(24, 2, 8)
    winf = freestream_state(0.768, 1.116)

    def run():
        n = 150
        s_on = EulerSolver(mesh, winf, SolverConfig())
        _, h_on = s_on.run(n_cycles=n)
        s_off = EulerSolver(mesh, winf, SolverConfig().without_smoothing())
        _, h_off = s_off.run(n_cycles=n)
        return h_on, h_off

    h_on, h_off = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSmoothing ablation after 150 cycles: "
          f"on {h_on[-1]:.3e} vs off {h_off[-1]:.3e}")
    assert np.isfinite(h_on[-1]) and np.isfinite(h_off[-1])
    # With smoothing the scheme runs at double the CFL; require it not to
    # be slower once past the impulsive transient.
    assert h_on[-1] < 5 * h_off[-1]


# ---------------------------------------------------------------------------
def test_cycle_efficiency_crossover(benchmark, case):
    """Sections 3.2/4.4: the W-cycle is the clear winner on the C90 but
    its advantage narrows on the Delta because coarse grids communicate
    poorly — 'the most efficient overall solution strategy may then become
    an architecture-dependent problem.'"""
    from repro.harness import table1, table2

    def run():
        # Cost per cycle (16 CPUs / 512 nodes), per strategy.
        return ({s: table1(s, case)[0][-1][1] for s in ("sg", "v", "w")},
                {s: table2(s, case)[0][-1][3] for s in ("sg", "v", "w")})

    c90, delta = benchmark.pedantic(run, rounds=1, iterations=1)
    # W-cycle cost premium over single grid is worse on the Delta.
    premium_c90 = c90["w"] / c90["sg"]
    premium_delta = delta["w"] / delta["sg"]
    print(f"\nW-cycle cost premium per 100 cycles: C90 {premium_c90:.2f}x, "
          f"Delta {premium_delta:.2f}x")
    assert premium_delta > premium_c90


# ---------------------------------------------------------------------------
def test_partition_refinement(benchmark, struct):
    """Extension (paper Section 6 future work): KL/FM-style boundary
    refinement polishes a cheap geometric partition toward RSB quality at
    a fraction of RSB's cost."""
    from repro.partition import refine_partition, refinement_gain
    mesh = bump_channel(36, 6, 12)
    p = 16

    def run():
        base = recursive_coordinate_bisection(mesh.vertices, p)
        refined = refine_partition(struct.edges, base, p)
        return (refinement_gain(struct.edges, base),
                refinement_gain(struct.edges, refined))

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    rsb_cut = refinement_gain(
        struct.edges,
        recursive_spectral_bisection(struct.edges, struct.n_vertices, p))
    print(f"\nRCB cut {before} -> refined {after} (RSB reference {rsb_cut})")
    assert after < before
    assert after < 1.35 * rsb_cut


# ---------------------------------------------------------------------------
def test_refined_mesh_as_new_finest_level(benchmark):
    """Extension (paper Section 2.3): 'new finer meshes can be introduced
    by adaptive refinement' — a red-refined mesh drops into the hierarchy
    as the finest level and multigrid still accelerates on it."""
    from repro.mesh import refine_mesh
    from repro.multigrid import MultigridHierarchy, run_multigrid
    winf = freestream_state(0.768, 1.116)
    coarse = bump_channel(18, 2, 6)
    fine = refine_mesh(coarse)

    def run():
        hierarchy = MultigridHierarchy([fine, coarse], winf)
        _, hist_mg = run_multigrid(hierarchy, n_cycles=40, gamma=2)
        _, hist_sg = hierarchy.fine.solver.run(n_cycles=40)
        return hist_mg, hist_sg

    hist_mg, hist_sg = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRefined-mesh multigrid after 40 cycles: MG {hist_mg[-1]:.2e} "
          f"vs SG {hist_sg[-1]:.2e}")
    assert hist_mg[-1] < hist_sg[-1]


# ---------------------------------------------------------------------------
def test_fmg_startup(benchmark):
    """Extension: full-multigrid (nested iteration) startup removes most
    of the impulsive-start transient that dominates the early cycles of
    the cold-started runs in Figure 2."""
    from repro.mesh import bump_channel as _bump
    from repro.multigrid import MultigridHierarchy, run_fmg, run_multigrid
    winf = freestream_state(0.768, 1.116)
    meshes = [_bump(48, 4, 16), _bump(24, 2, 8), _bump(12, 2, 4)]
    hierarchy = MultigridHierarchy(meshes, winf)

    def run():
        _, fmg_hist = run_fmg(hierarchy, n_cycles=40, gamma=2)
        _, cold_hist = run_multigrid(hierarchy, n_cycles=40, gamma=2)
        return fmg_hist, cold_hist

    fmg_hist, cold_hist = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFMG vs cold start: first fine-grid residual "
          f"{fmg_hist[0]:.2e} vs {cold_hist[0]:.2e}; after 40 cycles "
          f"{fmg_hist[-1]:.2e} vs {cold_hist[-1]:.2e}")
    assert fmg_hist[0] < cold_hist[0]
    assert fmg_hist[-1] < 3.0 * cold_hist[-1]


# ---------------------------------------------------------------------------
def test_coloring_balance_on_c90_model(benchmark, struct):
    """Colour-count vs vector-length trade-off on the C90 model: balanced
    groups raise the minimum vector length, which matters once many CPUs
    share each colour (Section 3.1's vector-length discussion)."""
    from repro.coloring import color_edges, color_edges_balanced
    from repro.perfmodel import CrayWorkload, model_cray_run

    def run():
        greedy = color_edges(struct.edges, struct.n_vertices)
        balanced = color_edges_balanced(struct.edges, struct.n_vertices)
        out = {}
        for name, col in (("greedy", greedy), ("balanced", balanced)):
            # Scale the colour groups to the paper's edge count so the
            # vector-length regime matches Table 1.
            scale = 5_500_000 / struct.n_edges
            workload = CrayWorkload(
                level_flops_per_cycle=[4.7e9],
                level_visits_per_cycle=[1],
                level_group_sizes=[col.group_sizes() * scale],
                sweeps_per_step=20,
            )
            out[name] = model_cray_run(workload, 16).mflops
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nColoring -> modelled C90 rate at 16 CPUs: {rates}")
    # At the paper's mesh size vectors are long either way; balanced
    # colouring must not be slower, and the gap stays small.
    assert rates["balanced"] >= 0.98 * rates["greedy"]
