"""Benchmark fixtures.

``REPRO_BENCH_CASE=fast`` switches the table/figure regenerations to the
small meshes (CI-speed); the default is the full laptop-scale case used
for the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import FAST_CASE, FULL_CASE, build_hierarchy
from repro.mesh import build_edge_structure, bump_channel
from repro.state import freestream_state


def pytest_addoption(parser):
    parser.addoption(
        "--sequential", action="store_true", default=False,
        help="run condition sweeps on the old one-solver-per-condition "
             "path instead of solve_ensemble (for A/B comparison)")


def pytest_report_header(config):
    return f"repro benchmarks: case={_case_name()}"


def _case_name() -> str:
    return os.environ.get("REPRO_BENCH_CASE", "full")


@pytest.fixture(scope="session")
def case():
    return FAST_CASE if _case_name() == "fast" else FULL_CASE


@pytest.fixture(scope="session")
def sequential_sweep(request):
    """True when ``--sequential`` selects the old per-condition path."""
    return request.config.getoption("--sequential")


@pytest.fixture(scope="session")
def winf():
    return freestream_state(0.768, 1.116)


@pytest.fixture(scope="session")
def kernel_struct():
    """A mid-size mesh for kernel microbenchmarks (~47k edges)."""
    return build_edge_structure(bump_channel(48, 8, 16))


@pytest.fixture(scope="session")
def hierarchy(case):
    return build_hierarchy(case)
