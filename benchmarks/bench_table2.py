"""Regenerates Tables 2a-2c: Intel Touchstone Delta performance model.

Each test runs the actual distributed solver (PARTI schedules on the
simulated machine) at the mapped rank counts, measures traffic and flops,
scales to the paper's 804k-node mesh, prints the model-vs-paper table and
asserts the paper's qualitative findings.
"""

import numpy as np
import pytest

from repro.harness import format_table2, table2


def _regen(strategy, case):
    return table2(strategy, case)


@pytest.mark.parametrize("strategy,title", [
    ("sg", "Table 2a: Delta, 100 single-grid cycles"),
    ("v", "Table 2b: Delta, 100 V-cycle multigrid cycles"),
    ("w", "Table 2c: Delta, 100 W-cycle multigrid cycles"),
])
def test_table2(benchmark, strategy, title, case):
    model, paper = benchmark.pedantic(_regen, args=(strategy, case),
                                      rounds=1, iterations=1)
    print("\n" + format_table2(model, paper, title))

    for m in model:
        # total = comm + comp by construction
        assert m[3] == pytest.approx(m[1] + m[2], abs=1.5)
    # Doubling the nodes cuts compute roughly in half...
    comp = [m[2] for m in model]
    assert comp[1] < 0.65 * comp[0]
    # ...but communication shrinks much less (the paper's scaling story).
    comm = [m[1] for m in model]
    assert comm[1] > 0.6 * comm[0]
    # Aggregate rate improves with node count but sub-linearly.
    rates = [m[4] for m in model]
    assert 1.2 < rates[1] / rates[0] < 2.0


def test_mg_rate_degradation(benchmark, case):
    """Paper Section 4.4: 'The multigrid V-cycle procedure exhibits a
    degradation in computational rates of about 10 to 15% over the single
    grid case, while the W-cycle rates are estimated to be 25 to 30%
    lower.'  We assert the ordering and a degradation band of 5-45%."""
    rate_sg, rate_v, rate_w = benchmark.pedantic(
        lambda: (table2("sg", case)[0][0][4], table2("v", case)[0][0][4],
                 table2("w", case)[0][0][4]), rounds=1, iterations=1)
    assert rate_sg > rate_v > rate_w
    assert 0.05 < 1 - rate_v / rate_sg < 0.45
    assert 0.10 < 1 - rate_w / rate_sg < 0.60


def test_sg_rate_highest_but_slowest_to_converge(benchmark, case, hierarchy):
    """The paper's central trade-off: 'The single grid solution strategy
    yields the highest computational rates ... However, this method is
    also the slowest to converge.'"""
    from repro.multigrid import run_multigrid
    rate_sg, rate_w = benchmark.pedantic(
        lambda: (table2("sg", case)[0][1][4], table2("w", case)[0][1][4]),
        rounds=1, iterations=1)
    assert rate_sg > rate_w

    n = 30
    _, hist_w = run_multigrid(hierarchy, n_cycles=n, gamma=2)
    _, hist_sg = hierarchy.fine.solver.run(n_cycles=n)
    assert hist_w[-1] < hist_sg[-1]


def test_comm_fraction_grows_with_multigrid(benchmark, case):
    """Coarse grids raise the communication-to-computation ratio
    (Section 4.4) — the architecture-dependence of the cycle choice."""
    def run():
        out = {}
        for s in ("sg", "v", "w"):
            model, _ = table2(s, case)
            comm, comp = model[1][1], model[1][2]
            out[s] = comm / (comm + comp)
        return out

    frac = benchmark.pedantic(run, rounds=1, iterations=1)
    assert frac["sg"] < frac["v"] <= frac["w"] * 1.05
