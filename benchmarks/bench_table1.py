"""Regenerates Tables 1a-1c: Cray Y-MP C90 performance model.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to see
the model-vs-paper tables.  Each test regenerates one table from measured
workload quantities, prints it, and asserts the qualitative shapes the
paper reports (near-linear speedup, bounded multitasking overhead, rate
insensitivity to strategy).
"""

import numpy as np
import pytest

from repro.harness import format_table1, table1


def _regen(strategy, case):
    return table1(strategy, case)


@pytest.mark.parametrize("strategy,title", [
    ("sg", "Table 1a: C90, 100 single-grid cycles"),
    ("v", "Table 1b: C90, 100 V-cycle multigrid cycles"),
    ("w", "Table 1c: C90, 100 W-cycle multigrid cycles"),
])
def test_table1(benchmark, strategy, title, case):
    model, paper = benchmark.pedantic(_regen, args=(strategy, case),
                                      rounds=1, iterations=1)
    print("\n" + format_table1(model, paper, title))

    walls = np.array([m[1] for m in model], dtype=float)
    cpus = np.array([m[2] for m in model], dtype=float)
    rates = np.array([m[3] for m in model], dtype=float)

    # Near-linear speedup: >8x on 16 CPUs (paper: 12.3x).
    assert walls[0] / walls[-1] > 8.0
    # CPU time inflates with CPUs but stays bounded (paper: ~+20%).
    assert np.all(np.diff(cpus) > 0)
    assert cpus[-1] < 1.6 * cpus[0]
    # Single-CPU rate within 15% of the paper's measured 250ish MFlops.
    assert rates[0] == pytest.approx(paper[0][3], rel=0.15)
    # Aggregate rate grows close to linearly.
    assert rates[-1] > 9 * rates[0]


def test_strategy_rate_insensitivity(benchmark, case):
    """Paper Section 3.2: 'The single grid and the two multigrid
    strategies all achieve similar computational rates on 16 CPUs.'"""
    rates = benchmark.pedantic(
        lambda: [table1(s, case)[0][-1][3] for s in ("sg", "v", "w")],
        rounds=1, iterations=1)
    assert max(rates) / min(rates) < 1.5


def test_parallelism_above_99_percent(benchmark, case):
    """CPU/wall = 15.4 at 16 CPUs implies >99% parallel fraction
    (Amdahl).  Check the model's serial fraction stays small."""
    model, _ = benchmark.pedantic(lambda: table1("sg", case),
                                  rounds=1, iterations=1)
    wall_1, wall_16 = model[0][1], model[-1][1]
    speedup = wall_1 / wall_16
    # Amdahl: serial fraction s satisfies speedup = 1/(s + (1-s)/16).
    s = (16.0 / speedup - 1.0) / 15.0
    assert s < 0.03
