#!/usr/bin/env python
"""Residual-pipeline benchmark: seed operators vs the fused kernels.

Times one full residual evaluation ``R(w) = Q(w) - D(w)`` and one
five-stage step for every executor strategy of
:class:`repro.solver.SolverConfig` on representative meshes, validates
the fused results against the seed operators (<= 1e-12 relative), and
writes ``BENCH_residual.json``.

Methodology: the seed and fused paths are timed in interleaved rounds
(seed, fused, seed, fused, ...) and the reported figure is the median
round — this cancels the slow drift of shared machines, which
best-of-N does not.  The committed ``BENCH_residual.json`` at the repo
root is the recorded baseline; CI re-runs ``--quick --check-regression``
against it and fails when the measured fused-residual *speedup* (a
machine-relative ratio, unlike raw milliseconds) falls below 80% of the
recorded one.

When numba is importable (the ``compiled`` extra) the compiled executor
family joins the sweep; without it the benchmark silently covers the
NumPy executors only, so the committed baseline stays reproducible in a
minimal environment.

Usage::

    python benchmarks/bench_residual.py              # full (~20k vertices)
    python benchmarks/bench_residual.py --quick      # CI smoke (~1k vertices)
    python benchmarks/bench_residual.py --quick --check-regression BENCH_residual.json
    python benchmarks/bench_residual.py --check-compiled   # compiled >= 2x fused
    python benchmarks/bench_residual.py --calibrate  # measure auto crossovers
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.kernels.compiled import numba_available
from repro.mesh import box_mesh, bump_channel
from repro.solver import EulerSolver, SolverConfig
from repro.state import freestream_state

BASE_EXECUTORS = ("fused", "colored", "colored-threaded")
COMPILED_EXECUTORS = ("compiled", "compiled-parallel")


def active_executors() -> tuple:
    return BASE_EXECUTORS + (COMPILED_EXECUTORS if numba_available()
                             else ())


def _perturbed_state(solver: EulerSolver, seed: int = 1) -> np.ndarray:
    """Freestream plus a few percent of noise, so kernels see real data."""
    rng = np.random.default_rng(seed)
    w = solver.freestream_solution()
    return w * (1.0 + 0.05 * rng.standard_normal(w.shape))


def _time_ms(fn, inner: int) -> float:
    t0 = time.perf_counter()
    for _ in range(inner):
        fn()
    return (time.perf_counter() - t0) / inner * 1e3


def _interleaved_median(fns: dict[str, object], rounds: int,
                        inner: int) -> dict[str, float]:
    """Median per-round time (ms) of each callable, measured interleaved."""
    samples: dict[str, list[float]] = {name: [] for name in fns}
    for name, fn in fns.items():     # warmup
        fn()
    for _ in range(rounds):
        for name, fn in fns.items():
            samples[name].append(_time_ms(fn, inner))
    return {name: statistics.median(s) for name, s in samples.items()}


def bench_mesh(name: str, mesh, w_inf, rounds: int, inner: int,
               n_threads: int) -> dict:
    serial = EulerSolver(mesh, w_inf)
    w = _perturbed_state(serial)
    executors = active_executors()
    solvers = {"serial": serial}
    for kind in executors:
        solvers[kind] = EulerSolver(
            mesh, w_inf, SolverConfig(executor=kind, n_threads=n_threads))

    # Correctness first: every executor must match the seed operators.
    r_ref = serial.residual(w)
    scale = np.max(np.abs(r_ref))
    max_rel = 0.0
    for kind in executors:
        rel = float(np.max(np.abs(solvers[kind].residual(w) - r_ref)) / scale)
        max_rel = max(max_rel, rel)
        if rel > 1e-12:
            raise SystemExit(
                f"{name}: executor {kind!r} residual deviates {rel:.2e} "
                f"from the seed operators (tolerance 1e-12)")

    residual_ms = _interleaved_median(
        {kind: (lambda s=solvers[kind]: s.residual(w)) for kind in solvers},
        rounds, inner)
    step_ms = _interleaved_median(
        {kind: (lambda s=solvers[kind]: s.step(w)) for kind in solvers},
        rounds, max(1, inner // 2))

    speedup = {
        "fused_residual": residual_ms["serial"] / residual_ms["fused"],
        "fused_step": step_ms["serial"] / step_ms["fused"],
    }
    if "compiled-parallel" in residual_ms:
        speedup["compiled_residual"] = (residual_ms["serial"]
                                        / residual_ms["compiled"])
        speedup["compiled_parallel_residual"] = (
            residual_ms["serial"] / residual_ms["compiled-parallel"])
    return {
        "mesh": name,
        "n_vertices": serial.n_vertices,
        "n_edges": serial.n_edges,
        "max_rel_diff": max_rel,
        "residual_ms": residual_ms,
        "step_ms": step_ms,
        "speedup": speedup,
    }


def check_telemetry_overhead(tolerance_pct: float = 2.0) -> int:
    """Fail (non-zero) if disabled telemetry costs more than 2% per step.

    The instrumented call sites all go through the default
    :class:`~repro.telemetry.NullTracer`, so the disabled-path cost of
    tracing is (instrumented sites hit per step) x (cost of one null
    span).  Both factors are measured here — the site count by running
    one step under a live :class:`~repro.telemetry.Tracer`, the null
    cost by a microbenchmark — and the projected overhead is compared
    against the measured step time.  This projection is machine-relative
    (both sides scale with the host), unlike raw milliseconds.
    """
    from repro.telemetry import NULL_TRACER, Tracer, use_tracer

    w_inf = freestream_state(0.5, 1.0)
    mesh = box_mesh(10, 10, 10)
    solver = EulerSolver(mesh, w_inf, SolverConfig(executor="fused"))
    w = _perturbed_state(solver)
    solver.step(w)                                    # warmup
    step_ms = min(_time_ms(lambda: solver.step(w), 3) for _ in range(3))

    tracer = Tracer()
    with use_tracer(tracer):
        traced_solver = EulerSolver(mesh, w_inf,
                                    SolverConfig(executor="fused"))
    traced_solver.step(w)                             # warmup + intern names
    tracer.reset()
    traced_solver.step(w)
    sites = tracer.n_recorded

    null = NULL_TRACER
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with null.span("x"):
            pass
    null_ns = (time.perf_counter() - t0) / n * 1e9

    projected_pct = sites * null_ns / (step_ms * 1e6) * 100.0
    print(f"telemetry overhead check: {sites} spans/step x "
          f"{null_ns:.0f} ns/null-span = "
          f"{sites * null_ns / 1e3:.1f} us projected vs "
          f"{step_ms:.2f} ms step ({projected_pct:.3f}%, "
          f"budget {tolerance_pct:.1f}%)")
    if projected_pct > tolerance_pct:
        print("FAIL: disabled telemetry exceeds the overhead budget")
        return 1
    print("OK")
    return 0


def calibrate(n_threads: int, out_path: Path, quick: bool = False) -> int:
    """Measure the auto-heuristic crossovers and write the table.

    Times one residual per executor over a ladder of box meshes and
    records, per alternative, the edge count (per-colour width for the
    coloured executor) of the *smallest* mesh where it beat the fused
    CSR baseline.  Alternatives that never win stay ``null`` — the
    loader then falls back to the hand-coded defaults, so a calibration
    run on weak hardware can only make ``auto`` more conservative.
    """
    w_inf = freestream_state(0.5, 1.0)
    sizes = (5, 7, 9, 12) if quick else (5, 7, 9, 12, 16, 21, 27)
    candidates = ["colored-threaded"] + (
        list(COMPILED_EXECUTORS) if numba_available() else [])
    crossings: dict[str, float | None] = {c: None for c in candidates}
    rows = []
    for n in sizes:
        mesh = box_mesh(n, n, n)
        fused = EulerSolver(mesh, w_inf, SolverConfig(executor="fused"))
        w = _perturbed_state(fused)
        ne = fused.n_edges
        max_degree = int(np.bincount(fused.edges.ravel(),
                                     minlength=fused.n_vertices).max())
        solvers = {"fused": fused}
        for cand in candidates:
            solvers[cand] = EulerSolver(
                mesh, w_inf,
                SolverConfig(executor=cand, n_threads=n_threads))
        ms = _interleaved_median(
            {k: (lambda s=solvers[k]: s.residual(w)) for k in solvers},
            rounds=3, inner=max(1, 30_000 // max(ne, 1)))
        rows.append({"mesh": f"box{n}", "n_edges": ne,
                     "max_degree": max_degree, "residual_ms": ms})
        print(f"box{n}: ne={ne} " + "  ".join(
            f"{k}={v:.2f}ms" for k, v in ms.items()))
        for cand in candidates:
            if crossings[cand] is None and ms[cand] < ms["fused"]:
                crossings[cand] = (ne / max(max_degree, 1)
                                   if cand == "colored-threaded" else ne)
    table = {
        "generated_by": "benchmarks/bench_residual.py --calibrate",
        "machine": {"platform": platform.machine(),
                    "python": platform.python_version(),
                    "numpy": np.__version__,
                    "numba": numba_available(),
                    "n_threads": n_threads},
        "rows": rows,
        "crossovers": {
            "colored_threaded_min_per_color":
                crossings.get("colored-threaded"),
            "compiled_min_edges": crossings.get("compiled"),
            "compiled_parallel_min_edges": crossings.get("compiled-parallel"),
        },
    }
    out_path.write_text(json.dumps(table, indent=2) + "\n")
    print(f"wrote {out_path}")
    for cand, val in crossings.items():
        print(f"  {cand}: " + (f"crossover at {val:.0f}" if val is not None
                               else "never crossed (null -> fallback)"))
    return 0


def check_compiled(report: dict, min_speedup: float = 2.0) -> int:
    """Fail unless compiled-parallel beats fused by ``min_speedup`` x.

    The CI gate for the compiled backend: on every benchmarked mesh the
    compiled-parallel residual must run at least ``min_speedup`` times
    faster than the fused NumPy pipeline (and the rows must exist, i.e.
    numba was actually importable in the job).
    """
    rc = 0
    for case in report["cases"]:
        rms = case["residual_ms"]
        if "compiled-parallel" not in rms:
            print(f"FAIL: {case['mesh']}: no compiled-parallel row "
                  f"(numba not importable in this environment?)")
            return 1
        ratio = rms["fused"] / rms["compiled-parallel"]
        status = "OK" if ratio >= min_speedup else "FAIL"
        print(f"compiled check: {case['mesh']}: compiled-parallel "
              f"{ratio:.2f}x over fused (floor {min_speedup:.1f}x) "
              f"[{status}]")
        if ratio < min_speedup:
            rc = 1
    return rc


def check_regression(report: dict, baseline_path: Path,
                     tolerance: float = 0.8) -> int:
    """Fail (non-zero) if the fused speedup regressed >20% vs the baseline.

    Speedups are ratios of timings on the *same* machine, so they are
    comparable across machines in a way raw milliseconds are not.
    """
    baseline = json.loads(baseline_path.read_text())
    base = min(c["speedup"]["fused_residual"] for c in baseline["cases"])
    current = min(c["speedup"]["fused_residual"] for c in report["cases"])
    floor = tolerance * base
    print(f"regression check: fused residual speedup {current:.2f}x "
          f"(baseline {base:.2f}x, floor {floor:.2f}x)")
    if current < floor:
        print("FAIL: fused residual pipeline regressed >20% vs baseline")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small mesh, few rounds (CI smoke)")
    ap.add_argument("--rounds", type=int, default=None,
                    help="interleaved timing rounds (default 7, quick 3)")
    ap.add_argument("--n-threads", type=int, default=2,
                    help="worker count for colored-threaded")
    ap.add_argument("--out", type=Path, default=Path("BENCH_residual.json"),
                    help="output JSON path")
    ap.add_argument("--check-regression", type=Path, metavar="BASELINE",
                    help="compare fused speedup against a recorded baseline "
                         "JSON; exit 1 on >20%% regression")
    ap.add_argument("--check-telemetry-overhead", action="store_true",
                    help="verify the disabled (NullTracer) telemetry path "
                         "projects to <=2%% of one fused step; exit 1 "
                         "otherwise")
    ap.add_argument("--check-compiled", action="store_true",
                    help="require compiled-parallel residual >= "
                         "--compiled-floor x over fused on every mesh; "
                         "exit 1 otherwise (needs numba)")
    ap.add_argument("--compiled-floor", type=float, default=2.0,
                    help="speedup floor for --check-compiled (default 2.0)")
    ap.add_argument("--calibrate", action="store_true",
                    help="measure the executor crossovers over a box-mesh "
                         "ladder and write the auto-heuristic table")
    ap.add_argument("--calibrate-out", type=Path,
                    default=Path(__file__).resolve().parents[1]
                    / "src" / "repro" / "kernels" / "calibration.json",
                    help="calibration table destination (default: the "
                         "packaged src/repro/kernels/calibration.json)")
    args = ap.parse_args(argv)

    if args.calibrate:
        return calibrate(args.n_threads, args.calibrate_out,
                         quick=args.quick)

    if args.check_telemetry_overhead and not args.check_regression \
            and not args.check_compiled:
        # Standalone gate: skip the full benchmark sweep.
        return check_telemetry_overhead()

    rounds = args.rounds or (3 if args.quick else 7)
    w_inf = freestream_state(0.5, 1.0)
    if args.quick:
        cases = [("box10", box_mesh(10, 10, 10), 10)]
    else:
        cases = [
            # ~20k-vertex box: the acceptance case (>= 1.5x fused residual).
            ("box27", box_mesh(27, 27, 27), 3),
            ("bump48", bump_channel(48, 8, 16), 6),
        ]

    report = {
        "meta": {
            "quick": args.quick,
            "rounds": rounds,
            "n_threads": args.n_threads,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "numba": numba_available(),
            "executors": list(("serial",) + active_executors()),
        },
        "cases": [],
    }
    for name, mesh, inner in cases:
        case = bench_mesh(name, mesh, w_inf, rounds, inner, args.n_threads)
        report["cases"].append(case)
        rms = case["residual_ms"]
        print(f"{name}: nv={case['n_vertices']} ne={case['n_edges']} "
              f"max_rel={case['max_rel_diff']:.2e}")
        for kind in rms:
            print(f"  residual {kind:17s} {rms[kind]:8.2f} ms   "
                  f"step {case['step_ms'][kind]:8.2f} ms")
        print(f"  fused speedup: residual "
              f"{case['speedup']['fused_residual']:.2f}x, "
              f"step {case['speedup']['fused_step']:.2f}x")

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    rc = 0
    if args.check_regression is not None:
        rc |= check_regression(report, args.check_regression)
    if args.check_compiled:
        rc |= check_compiled(report, args.compiled_floor)
    if args.check_telemetry_overhead:
        rc |= check_telemetry_overhead()
    return rc


if __name__ == "__main__":
    sys.exit(main())
