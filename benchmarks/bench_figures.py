"""Regenerates Figures 1-4.

* Figure 1 — V/W cycle structure diagrams;
* Figure 2 — convergence histories (single grid vs V vs W);
* Figure 3 — the 3-D configuration mesh report;
* Figure 4 — Mach contours + shock diagnostics of the transonic solution.
"""

import os

import numpy as np
import pytest

from repro.harness.figures import (fig1_cycle_diagrams, fig2_convergence,
                                   fig3_mesh_report, fig4_mach_contours,
                                   format_cycle_diagram)

FAST = os.environ.get("REPRO_BENCH_CASE", "full") == "fast"


def test_fig1_cycle_structure(benchmark, case):
    n_levels = len(case.levels)
    diagrams = benchmark.pedantic(fig1_cycle_diagrams, args=(n_levels,),
                                  rounds=1, iterations=1)
    for name, events in diagrams.items():
        print(f"\nFigure 1 — {name}-cycle ({n_levels} levels):")
        print(format_cycle_diagram(events, n_levels))
    # A V-cycle steps once per level; a W-cycle doubles every coarse visit
    # except at the coarsest pair.
    v_steps = [l for k, l in diagrams["V"] if k == "E"]
    w_steps = [l for k, l in diagrams["W"] if k == "E"]
    assert v_steps == list(range(n_levels))
    assert len(w_steps) > len(v_steps) or n_levels <= 2


def test_fig2_convergence(benchmark, case):
    n = 30 if FAST else 100
    fig = benchmark.pedantic(fig2_convergence, args=(case,),
                             kwargs={"n_mg_cycles": n, "n_sg_cycles": 2 * n},
                             rounds=1, iterations=1)
    print("\nFigure 2 — convergence histories:")
    print(fig.summary())
    # The paper's ordering: W converges fastest per cycle, single grid
    # slowest.  Compare residual after the common cycle count.
    w_final = fig.cycles["W-cycle"][n]
    v_final = fig.cycles["V-cycle"][n]
    sg_final = fig.cycles["single grid"][n]
    assert w_final < sg_final
    assert w_final <= v_final * 1.5
    assert fig.orders_reduced("W-cycle") > 1.0


def test_fig3_mesh(benchmark):
    size = (6, 6) if FAST else (10, 10)
    rep = benchmark.pedantic(fig3_mesh_report, args=size,
                             rounds=1, iterations=1)
    print("\nFigure 3 — mesh about the 3-D configuration:")
    print(rep["report"])
    q = rep["quality"]
    assert q.n_tets > 0 and q.min_quality > 0
    # Genuinely unstructured: wide vertex-degree spread like the paper's
    # tet meshes.
    assert q.max_degree > 2 * q.min_degree


def test_fig4_mach_contours(benchmark, case):
    n = 40 if FAST else 120
    fig = benchmark.pedantic(fig4_mach_contours, args=(case,),
                             kwargs={"n_cycles": n}, rounds=1, iterations=1)
    print("\nFigure 4 — Mach contours:")
    print(fig.summary())
    # Transonic structure: acceleration well above freestream over the
    # bump, contours present at the sampled levels below the peak.
    assert fig.mach_max > 0.9
    assert fig.mach_min < 0.768
    populated = [lvl for lvl in fig.levels
                 if len(fig.isolines[lvl]) > 0 and lvl < fig.mach_max]
    assert len(populated) >= 2
