#!/usr/bin/env python
"""Distributed-step benchmark: blocking exchanges vs the overlap executor.

Times one five-stage distributed step on the simulated machine for a
ranks x mesh grid, in both ``dist_mode`` settings of
:class:`repro.solver.SolverConfig`:

* ``blocking`` — the original phase-by-phase path: every exchange
  completes before dependent compute starts, rank kernels accumulate
  through ``np.add.at``;
* ``overlap`` — ghost sends are posted first, interior edge
  contributions (both endpoints owned) are computed through precomputed
  CSR :class:`~repro.scatter.EdgeScatter` operators while messages are
  "in flight", boundary edges complete on arrival, and the per-stage
  exchanges are aggregated (``sigma-diss-partials``, ``qd-scatter``)
  into one packed message per neighbour pair.

Besides wall time the benchmark records the per-cycle message counts of
both modes from the machine's :class:`~repro.parti.simmpi.TrafficLog`
(aggregation is a structural win, visible on any machine) and validates
that both modes match the sequential solver to <= 1e-12 relative.

Methodology follows ``bench_residual.py``: interleaved rounds
(blocking, overlap, blocking, ...) with the median round reported, which
cancels slow machine drift.  The committed ``BENCH_distributed.json`` is
the recorded baseline; CI re-runs ``--quick --check-regression`` against
it and fails when the overlap *speedup* (a machine-relative ratio)
falls below 80% of the recorded one, or when the per-cycle message
count stops shrinking.

The grid also carries ``mp-transport`` cases: the true-multiprocessing
backend timed end-to-end under both ghost-payload transports
(``transport="pipe"`` — pickled arrays through pipes — vs
``transport="shm"`` — zero-copy shared-memory slabs with sub-PIPE_BUF
control descriptors).  These cases record the pipe-vs-slab byte split
from the observatory comm matrix and gate on two deterministic facts:
the two transports produce bit-identical states, and under shm the
pipes carry *exactly* ``msgs x CTRL_BYTES`` — zero pickled array bytes.
The wall-clock transport speedup is recorded but machine-bound: on a
single-core host all ranks time-share one CPU and the pickle savings
cannot show up as wall time, so its regression rule only fails on
collapse (see ``track.py``).

Usage::

    python benchmarks/bench_distributed.py           # full grid
    python benchmarks/bench_distributed.py --quick   # CI smoke
    python benchmarks/bench_distributed.py --quick --check-regression BENCH_distributed.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.distsolver import DistributedEulerSolver, run_distributed_mp
from repro.distsolver.shm_channel import CTRL_BYTES
from repro.mesh import box_mesh, build_edge_structure
from repro.observatory import comm_matrix_from_payloads
from repro.partition import recursive_spectral_bisection
from repro.solver import EulerSolver, SolverConfig
from repro.solver.config import TRANSPORTS
from repro.state import freestream_state
from repro.telemetry import Tracer

MODES = ("blocking", "overlap")


def _time_ms(fn, inner: int) -> float:
    t0 = time.perf_counter()
    for _ in range(inner):
        fn()
    return (time.perf_counter() - t0) / inner * 1e3


def _interleaved_median(fns: dict, rounds: int, inner: int) -> dict:
    samples: dict[str, list[float]] = {name: [] for name in fns}
    for fn in fns.values():          # warmup
        fn()
    for _ in range(rounds):
        for name, fn in fns.items():
            samples[name].append(_time_ms(fn, inner))
    return {name: statistics.median(s) for name, s in samples.items()}


def bench_case(name: str, mesh, n_ranks: int, w_inf, rounds: int,
               inner: int) -> dict:
    struct = build_edge_structure(mesh)
    asg = recursive_spectral_bisection(struct.edges, struct.n_vertices,
                                       n_ranks)
    solvers = {mode: DistributedEulerSolver(
        struct, w_inf, asg, SolverConfig(dist_mode=mode))
        for mode in MODES}
    seq = EulerSolver(struct, w_inf)

    # Correctness first: one step of each mode vs the sequential solver.
    w_seq = seq.step(seq.freestream_solution())
    scale = float(np.max(np.abs(w_seq)))
    max_rel = 0.0
    for mode, dist in solvers.items():
        w_dist = dist.collect(dist.step(dist.freestream_solution()))
        rel = float(np.max(np.abs(w_dist - w_seq)) / scale)
        max_rel = max(max_rel, rel)
        if rel > 1e-12:
            raise SystemExit(
                f"{name}/{n_ranks}r: dist_mode {mode!r} deviates {rel:.2e} "
                f"from the sequential solver (tolerance 1e-12)")

    # Per-cycle communication structure (machine-independent).
    traffic = {}
    for mode, dist in solvers.items():
        dist.machine.log.reset()
        dist.step(dist.freestream_solution())
        log = dist.machine.log
        traffic[mode] = {
            "msgs_per_cycle": int(log.total_msgs),
            "bytes_per_cycle": int(log.total_bytes),
            "exchange_phases": len(log.phases),
        }

    states = {mode: s.freestream_solution() for mode, s in solvers.items()}
    step_ms = _interleaved_median(
        {mode: (lambda s=solvers[mode], w=states[mode]: s.step(w))
         for mode in MODES},
        rounds, inner)

    return {
        "mesh": name,
        "n_ranks": n_ranks,
        "n_vertices": struct.n_vertices,
        "n_edges": struct.n_edges,
        "max_rel_diff": max_rel,
        "step_ms": step_ms,
        "traffic": traffic,
        "speedup": step_ms["blocking"] / step_ms["overlap"],
    }


def bench_mp_case(name: str, mesh, n_ranks: int, w_inf, rounds: int,
                  n_cycles: int = 2) -> dict:
    """Real-OS-process backend timed under both ghost-payload transports.

    Correctness is gated against the simulated machine (<= 1e-12
    relative) and the two transports against each other (bit-identical);
    the traced runs supply the observatory comm matrix from which the
    pipe-vs-slab byte split per cycle is recorded.
    """
    struct = build_edge_structure(mesh)
    asg = recursive_spectral_bisection(struct.edges, struct.n_vertices,
                                       n_ranks)
    sim = DistributedEulerSolver(struct, w_inf, asg, SolverConfig())
    dmesh = sim.dmesh
    w0 = np.tile(w_inf, (struct.n_vertices, 1))

    def run(transport, tracer=None):
        cfg = SolverConfig(transport=transport)
        return run_distributed_mp(dmesh, w0, w_inf, cfg,
                                  n_cycles=n_cycles, tracer=tracer)

    # Correctness: both transports vs the simulated machine, and the
    # shm slabs bit-identical to the pipe baseline.
    w_sim = sim.freestream_solution()
    for _ in range(n_cycles):
        w_sim = sim.step(w_sim)
    w_sim = sim.collect(w_sim)
    scale = float(np.max(np.abs(w_sim)))
    states, traffic = {}, {}
    max_rel = 0.0
    for transport in TRANSPORTS:
        tracer = Tracer()
        states[transport] = run(transport, tracer=tracer)
        cm = comm_matrix_from_payloads(tracer.remote_payloads, n_ranks,
                                       n_cycles)
        traffic[transport] = {
            "msgs_per_cycle": int(cm.total_msgs // n_cycles),
            "pipe_bytes_per_cycle": int(cm.total_bytes // n_cycles),
            "shm_bytes_per_cycle": int(cm.total_shm_bytes // n_cycles),
        }
        rel = float(np.max(np.abs(states[transport] - w_sim)) / scale)
        max_rel = max(max_rel, rel)
        if rel > 1e-12:
            raise SystemExit(
                f"{name}/{n_ranks}r: mp transport {transport!r} deviates "
                f"{rel:.2e} from the simulated machine (tolerance 1e-12)")
    bit_identical = bool(np.array_equal(states["pipe"], states["shm"]))

    run_ms = _interleaved_median(
        {t: (lambda t=t: run(t)) for t in TRANSPORTS}, rounds, 1)

    return {
        "kind": "mp-transport",
        "mesh": name,
        "n_ranks": n_ranks,
        "n_vertices": struct.n_vertices,
        "n_edges": struct.n_edges,
        "n_cycles": n_cycles,
        "max_rel_diff": max_rel,
        "bit_identical": bit_identical,
        "run_ms": run_ms,
        "traffic": traffic,
        "ctrl_bytes": CTRL_BYTES,
        "transport_speedup": run_ms["pipe"] / run_ms["shm"],
    }


def check_report(report: dict, baseline_path: Path | None,
                 tolerance: float = 0.8) -> int:
    """Structural + (optionally) baseline-relative gates.

    Always: overlap must send fewer messages per cycle than blocking in
    every sim case, and every mp-transport case must be bit-identical
    across transports with shm pipes carrying exactly ``msgs x
    CTRL_BYTES`` (zero pickled array bytes).  With a baseline: the
    overlap speedup of every sim case also present in the baseline must
    stay above 80% of the recorded one.
    """
    rc = 0
    for case in report["cases"]:
        t = case["traffic"]
        label = f"{case['mesh']}/{case['n_ranks']}r"
        if case.get("kind") == "mp-transport":
            if not case["bit_identical"]:
                print(f"FAIL: {label}: shm transport is not bit-identical "
                      f"to the pipe transport")
                rc = 1
            ctrl_only = case["traffic"]["shm"]["msgs_per_cycle"] \
                * case["ctrl_bytes"]
            actual = case["traffic"]["shm"]["pipe_bytes_per_cycle"]
            if actual != ctrl_only:
                print(f"FAIL: {label}: shm pipes carried {actual} B/cycle, "
                      f"expected {ctrl_only} (control descriptors only) — "
                      f"pickled array bytes leaked into the pipes")
                rc = 1
            continue
        if t["overlap"]["msgs_per_cycle"] >= t["blocking"]["msgs_per_cycle"]:
            print(f"FAIL: {label}: overlap sends "
                  f"{t['overlap']['msgs_per_cycle']} msgs/cycle, blocking "
                  f"{t['blocking']['msgs_per_cycle']} — aggregation lost")
            rc = 1
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        base = {(c["mesh"], c["n_ranks"]): c["speedup"]
                for c in baseline["cases"] if "speedup" in c}
        for case in report["cases"]:
            if "speedup" not in case:
                continue
            key = (case["mesh"], case["n_ranks"])
            if key not in base:
                continue
            floor = tolerance * base[key]
            print(f"regression check: {key[0]}/{key[1]}r overlap speedup "
                  f"{case['speedup']:.2f}x (baseline {base[key]:.2f}x, "
                  f"floor {floor:.2f}x)")
            if case["speedup"] < floor:
                print("FAIL: overlap executor regressed >20% vs baseline")
                rc = 1
    if rc == 0:
        print("OK")
    return rc


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small mesh, few rounds (CI smoke)")
    ap.add_argument("--rounds", type=int, default=None,
                    help="interleaved timing rounds (default 5, quick 3)")
    ap.add_argument("--out", type=Path,
                    default=Path("BENCH_distributed.json"),
                    help="output JSON path")
    ap.add_argument("--check-regression", type=Path, metavar="BASELINE",
                    nargs="?", const=None, default=False,
                    help="verify message aggregation and (when BASELINE is "
                         "given) the overlap speedup vs a recorded JSON; "
                         "exit 1 on regression")
    args = ap.parse_args(argv)

    rounds = args.rounds or (3 if args.quick else 5)
    w_inf = freestream_state(0.5, 1.0)
    if args.quick:
        grid = [("box8", box_mesh(8, 8, 8), 2, 2),
                ("box8", box_mesh(8, 8, 8), 4, 2)]
        mp_grid = [("box8", box_mesh(8, 8, 8), 4)]
    else:
        grid = [
            ("box16", box_mesh(16, 16, 16), 2, 1),
            ("box16", box_mesh(16, 16, 16), 4, 1),
            # ~20k-vertex box at 4 ranks: the acceptance case (>= 1.5x).
            ("box27", box_mesh(27, 27, 27), 4, 1),
        ]
        # The 4-8 rank span of the true-multiprocessing transports.
        mp_grid = [("box12", box_mesh(12, 12, 12), 8),
                   ("box27", box_mesh(27, 27, 27), 4)]

    report = {
        "meta": {
            "quick": args.quick,
            "rounds": rounds,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            # Transport wall-clock ratios only separate when ranks have
            # their own cores; record the budget the numbers ran under.
            "cpu_count": os.cpu_count(),
        },
        "cases": [],
    }
    for name, mesh, n_ranks, inner in grid:
        case = bench_case(name, mesh, n_ranks, w_inf, rounds, inner)
        report["cases"].append(case)
        t = case["traffic"]
        print(f"{name}/{n_ranks}r: nv={case['n_vertices']} "
              f"ne={case['n_edges']} max_rel={case['max_rel_diff']:.2e}")
        for mode in MODES:
            print(f"  {mode:9s} step {case['step_ms'][mode]:8.2f} ms   "
                  f"{t[mode]['msgs_per_cycle']:4d} msgs/cycle   "
                  f"{t[mode]['bytes_per_cycle']:9d} B/cycle")
        print(f"  overlap speedup: {case['speedup']:.2f}x")

    for name, mesh, n_ranks in mp_grid:
        case = bench_mp_case(name, mesh, n_ranks, w_inf, rounds)
        report["cases"].append(case)
        print(f"{name}/{n_ranks}r mp: nv={case['n_vertices']} "
              f"ne={case['n_edges']} max_rel={case['max_rel_diff']:.2e} "
              f"bit_identical={case['bit_identical']}")
        for t in TRANSPORTS:
            traf = case["traffic"][t]
            print(f"  {t:5s} run {case['run_ms'][t]:8.2f} ms   "
                  f"{traf['msgs_per_cycle']:4d} msgs/cycle   "
                  f"pipe {traf['pipe_bytes_per_cycle']:9d} B/cycle   "
                  f"slab {traf['shm_bytes_per_cycle']:9d} B/cycle")
        print(f"  transport speedup (pipe/shm): "
              f"{case['transport_speedup']:.2f}x")

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check_regression is not False:
        return check_report(report, args.check_regression or None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
