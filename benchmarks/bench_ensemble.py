#!/usr/bin/env python
"""Ensemble-throughput benchmark: batched sweeps vs per-condition solves.

Times an end-to-end Mach/alpha sweep two ways on the same mesh:

* **sequential** — the pre-ensemble client pattern: construct a fresh
  :class:`~repro.solver.EulerSolver` per flow condition (edge structure,
  RCM reorder, CSR schedules and all) and ``run(n_cycles)`` it;
* **ensemble** — one solver, one :meth:`~repro.solver.EulerSolver.
  solve_ensemble` call advancing every condition through the batched
  residual pipeline.

Both paths are timed in interleaved rounds (sequential, ensemble,
sequential, ...) with the median round reported, and every batched
scenario is verified against its sequential solve (<= 3e-15 relative —
they are bit-identical on the fused executor) before any timing is
trusted.  Results land in ``BENCH_ensemble.json``.

The batch is advanced in cache-sized blocks; the block width is probed
from a small candidate set before the timed rounds so the recorded
figure uses whatever width this host's cache hierarchy favours.

Usage::

    python benchmarks/bench_ensemble.py            # full (box27, 64 scenarios)
    python benchmarks/bench_ensemble.py --quick    # CI smoke (box10)
    python benchmarks/bench_ensemble.py --check    # gate: widest batch >= 2x
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.mesh import box_mesh
from repro.solver import EulerSolver, FlowState, SolverConfig

FUSED = SolverConfig(executor="fused")
N_CYCLES = 5                       # fixed cycle budget of the gated sweep
BLOCK_CANDIDATES = (2, 4, 8, 16)


def sweep_flows(n: int) -> list[FlowState]:
    """A transonic Mach ladder at the paper's incidence."""
    return [FlowState(float(m), alpha_deg=1.116)
            for m in np.linspace(0.30, 0.80, n)]


def run_sequential(mesh, flows, n_cycles: int):
    """The old client pattern: full construct-and-run per condition."""
    states = []
    t0 = time.perf_counter()
    for f in flows:
        solver = EulerSolver(mesh, f.freestream(), FUSED)
        w, _ = solver.run(n_cycles=n_cycles)
        states.append(w)
    return time.perf_counter() - t0, states


def run_ensemble(mesh, flows, n_cycles: int, block_size: int):
    """One solver + one batched solve_ensemble call (construction timed)."""
    t0 = time.perf_counter()
    solver = EulerSolver(mesh, flows[0].freestream(), FUSED)
    res = solver.solve_ensemble(flows, n_cycles=n_cycles,
                                block_size=block_size)
    return time.perf_counter() - t0, res


def probe_block_size(mesh, n_cycles: int) -> tuple[int, dict[str, float]]:
    """Pick the fastest block width from a small probe batch.

    The measured sweet spot depends on the L3 size (edge buffers scale
    linearly in the width), so CI runners with small caches land on a
    narrower block than the recording machine.  Block splitting is
    numerically exact, so this only moves throughput.
    """
    flows = sweep_flows(16)
    solver = EulerSolver(mesh, flows[0].freestream(), FUSED)
    timings: dict[str, float] = {}
    for bs in BLOCK_CANDIDATES:
        solver.solve_ensemble(flows[:bs], n_cycles=1, block_size=bs)  # warm
        t0 = time.perf_counter()
        solver.solve_ensemble(flows, n_cycles=n_cycles, block_size=bs)
        timings[str(bs)] = time.perf_counter() - t0
    best = int(min(timings, key=timings.get))
    return best, timings


def verify(mesh, flows, n_cycles: int, block_size: int,
           tol: float = 3e-15) -> float:
    """Max relative deviation of batched scenarios vs their sequential
    solves; SystemExit beyond ``tol``."""
    _, seq_states = run_sequential(mesh, flows, n_cycles)
    _, res = run_ensemble(mesh, flows, n_cycles, block_size)
    worst = 0.0
    for s, w_seq in enumerate(seq_states):
        scale = np.max(np.abs(w_seq))
        rel = float(np.max(np.abs(res.states[s] - w_seq)) / scale)
        worst = max(worst, rel)
        if rel > tol:
            raise SystemExit(
                f"scenario {s} (M={flows[s].mach:.3f}) deviates {rel:.2e} "
                f"from its sequential solve (tolerance {tol:.0e})")
    return worst


def bench_case(name: str, mesh, batches: tuple[int, ...], rounds: int,
               n_cycles: int, block_size: int) -> dict:
    flows_max = sweep_flows(max(batches))
    seq_samples: list[float] = []
    ens_samples: dict[int, list[float]] = {S: [] for S in batches}
    for _ in range(rounds):
        wall, _ = run_sequential(mesh, flows_max, n_cycles)
        seq_samples.append(wall)
        for S in batches:
            wall, _ = run_ensemble(mesh, flows_max[:S], n_cycles, block_size)
            ens_samples[S].append(wall)
    seq_wall = statistics.median(seq_samples)
    seq_per_scenario = seq_wall / len(flows_max)
    ensemble = {}
    for S in batches:
        wall = statistics.median(ens_samples[S])
        per_scenario = wall / S
        ensemble[str(S)] = {
            "wall_s": wall,
            "per_scenario_s": per_scenario,
            "scenarios_per_s": S / wall,
            "ensemble_throughput": seq_per_scenario / per_scenario,
        }
    n_probe = EulerSolver(mesh, flows_max[0].freestream(), FUSED)
    return {
        "mesh": name,
        "n_vertices": n_probe.n_vertices,
        "n_edges": n_probe.n_edges,
        "n_cycles": n_cycles,
        "block_size": block_size,
        "sequential": {
            "n_scenarios": len(flows_max),
            "wall_s": seq_wall,
            "per_scenario_s": seq_per_scenario,
            "scenarios_per_s": len(flows_max) / seq_wall,
        },
        "ensemble": ensemble,
    }


def check_throughput(report: dict, floor: float) -> int:
    """CI gate: the widest batch must beat sequential by ``floor`` x."""
    rc = 0
    for case in report["cases"]:
        widest = max(case["ensemble"], key=int)
        ratio = case["ensemble"][widest]["ensemble_throughput"]
        status = "OK" if ratio >= floor else "FAIL"
        print(f"ensemble check: {case['mesh']}: batched-{widest} "
              f"{ratio:.2f}x per-scenario throughput over sequential "
              f"(floor {floor:.1f}x) [{status}]")
        if ratio < floor:
            rc = 1
    return rc


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small mesh, few rounds (CI smoke)")
    ap.add_argument("--rounds", type=int, default=None,
                    help="interleaved timing rounds (default 3, quick 2)")
    ap.add_argument("--out", type=Path, default=Path("BENCH_ensemble.json"),
                    help="output JSON path")
    ap.add_argument("--check", action="store_true",
                    help="require the widest batch >= --floor x sequential "
                         "per-scenario throughput; exit 1 otherwise")
    ap.add_argument("--floor", type=float, default=2.0,
                    help="throughput floor for --check (default 2.0)")
    args = ap.parse_args(argv)

    rounds = args.rounds or (2 if args.quick else 3)
    if args.quick:
        name, mesh = "box10", box_mesh(10, 10, 10)
        batches: tuple[int, ...] = (1, 8, 16)
    else:
        name, mesh = "box27", box_mesh(27, 27, 27)
        batches = (1, 8, 64)

    block_size, probe = probe_block_size(mesh, n_cycles=1)
    print(f"block-size probe: " + "  ".join(
        f"{k}={v:.2f}s" for k, v in probe.items())
        + f" -> block_size={block_size}")

    max_rel = verify(mesh, sweep_flows(min(8, max(batches))), N_CYCLES,
                     block_size)
    print(f"verification: batched vs sequential max rel diff {max_rel:.2e} "
          f"(tolerance 3e-15)")

    case = bench_case(name, mesh, batches, rounds, N_CYCLES, block_size)
    case["max_rel_diff"] = max_rel
    seq = case["sequential"]
    print(f"{name}: sequential {seq['per_scenario_s']:.3f} s/scenario "
          f"({seq['n_scenarios']} conditions, {N_CYCLES} cycles)")
    for S, row in case["ensemble"].items():
        print(f"  batched-{S:>3}: {row['per_scenario_s']:.3f} s/scenario "
              f"({row['scenarios_per_s']:.2f} scenarios/s, "
              f"{row['ensemble_throughput']:.2f}x)")

    report = {
        "meta": {
            "quick": args.quick,
            "rounds": rounds,
            "n_cycles": N_CYCLES,
            "block_size": block_size,
            "block_probe_s": probe,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "cases": [case],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        return check_throughput(report, args.floor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
