"""Conversions between conserved and primitive representations of the flow.

The solver state is an ``(n, 5)`` float64 array of conserved variables
``w = [rho, rho*u, rho*v, rho*w, rho*E]`` stored per mesh vertex.  All
routines here are fully vectorised over vertices, following the NumPy
idioms of the project coding guides (no Python-level loops over mesh
entities, in-place variants where the call sites are hot).
"""

from __future__ import annotations

import numpy as np

from .constants import GAMMA, GAMMA_M1, NVAR

__all__ = [
    "conserved_from_primitive",
    "primitive_from_conserved",
    "pressure",
    "sound_speed",
    "mach_number",
    "velocity",
    "total_enthalpy",
    "freestream_state",
    "flux_vectors",
    "is_physical",
]


def conserved_from_primitive(rho, u, v, w, p):
    """Build conserved variables from primitive ``(rho, u, v, w, p)``.

    Accepts scalars or broadcastable arrays; returns an ``(n, 5)`` array
    (or ``(5,)`` for scalar input).
    """
    rho = np.asarray(rho, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    rho, u, v, w, p = np.broadcast_arrays(rho, u, v, w, p)
    q2 = u * u + v * v + w * w
    rho_e = p / GAMMA_M1 + 0.5 * rho * q2
    out = np.stack([rho, rho * u, rho * v, rho * w, rho_e], axis=-1)
    return out


def primitive_from_conserved(w):
    """Return ``(rho, u, v, w, p)`` tuple of arrays from conserved state."""
    w = np.asarray(w, dtype=np.float64)
    rho = w[..., 0]
    inv_rho = 1.0 / rho
    u = w[..., 1] * inv_rho
    v = w[..., 2] * inv_rho
    vel_w = w[..., 3] * inv_rho
    p = GAMMA_M1 * (w[..., 4] - 0.5 * rho * (u * u + v * v + vel_w * vel_w))
    return rho, u, v, vel_w, p


def pressure(w):
    """Static pressure from conserved variables (vectorised)."""
    w = np.asarray(w, dtype=np.float64)
    rho = w[..., 0]
    momentum_sq = w[..., 1] ** 2 + w[..., 2] ** 2 + w[..., 3] ** 2
    return GAMMA_M1 * (w[..., 4] - 0.5 * momentum_sq / rho)


def sound_speed(w):
    """Local speed of sound ``c = sqrt(gamma * p / rho)``."""
    w = np.asarray(w, dtype=np.float64)
    return np.sqrt(GAMMA * pressure(w) / w[..., 0])


def mach_number(w):
    """Local Mach number ``|u| / c``."""
    rho, u, v, vw, p = primitive_from_conserved(w)
    speed = np.sqrt(u * u + v * v + vw * vw)
    c = np.sqrt(GAMMA * p / rho)
    return speed / c


def velocity(w):
    """Velocity vector field ``(n, 3)`` from conserved state."""
    w = np.asarray(w, dtype=np.float64)
    return w[..., 1:4] / w[..., 0:1]


def total_enthalpy(w):
    """Total (stagnation) enthalpy per unit mass ``H = (rho*E + p) / rho``."""
    w = np.asarray(w, dtype=np.float64)
    return (w[..., 4] + pressure(w)) / w[..., 0]


def freestream_state(mach: float, alpha_deg: float = 0.0, beta_deg: float = 0.0):
    """Freestream conserved state for given Mach number and flow angles.

    Non-dimensionalisation: ``rho_inf = 1``, ``p_inf = 1/gamma`` so that the
    freestream speed of sound is exactly 1 and ``|u_inf| = mach``.  The angle
    of attack ``alpha`` tilts the flow in the x-z plane, the sideslip angle
    ``beta`` in the x-y plane, matching the aerodynamic convention used for
    the paper's test case (M = 0.768, alpha = 1.116 deg).
    """
    alpha = np.deg2rad(alpha_deg)
    beta = np.deg2rad(beta_deg)
    u = mach * np.cos(alpha) * np.cos(beta)
    v = mach * np.sin(beta)
    w = mach * np.sin(alpha) * np.cos(beta)
    return conserved_from_primitive(1.0, u, v, w, 1.0 / GAMMA)


def flux_vectors(w):
    """Euler flux tensor ``F`` of shape ``(n, 5, 3)`` for conserved state ``w``.

    ``F[:, k, d]`` is the flux of conserved variable ``k`` in coordinate
    direction ``d``.  Used by the convective operator; the per-edge flux is
    the projection ``F . eta`` onto the dual-face directed area.
    """
    w = np.asarray(w, dtype=np.float64)
    rho, u, v, vw, p = primitive_from_conserved(w)
    n = w.shape[0]
    flux = np.empty((n, NVAR, 3), dtype=np.float64)
    mx, my, mz = w[..., 1], w[..., 2], w[..., 3]
    energy_flux = w[..., 4] + p
    # Mass flux.
    flux[:, 0, 0] = mx
    flux[:, 0, 1] = my
    flux[:, 0, 2] = mz
    # Momentum fluxes (advection + pressure on the diagonal).
    flux[:, 1, 0] = mx * u + p
    flux[:, 1, 1] = mx * v
    flux[:, 1, 2] = mx * vw
    flux[:, 2, 0] = my * u
    flux[:, 2, 1] = my * v + p
    flux[:, 2, 2] = my * vw
    flux[:, 3, 0] = mz * u
    flux[:, 3, 1] = mz * v
    flux[:, 3, 2] = mz * vw + p
    # Energy flux.
    flux[:, 4, 0] = energy_flux * u
    flux[:, 4, 1] = energy_flux * v
    flux[:, 4, 2] = energy_flux * vw
    return flux


def is_physical(w) -> bool:
    """True when density and pressure are everywhere positive and finite."""
    w = np.asarray(w, dtype=np.float64)
    if not np.all(np.isfinite(w)):
        return False
    if np.any(w[..., 0] <= 0.0):
        return False
    return bool(np.all(pressure(w) > 0.0))
