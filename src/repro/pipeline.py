"""The sequential preprocessing pipeline of Section 2.4.

"Prior to the flow solution operation, an unstructured mesh must be
generated.  In the event that a multigrid solution strategy is to be
employed, additional coarse grids must also be generated. ... Each grid
must then be transformed into the appropriate edge based data structure
... a coloring algorithm is then employed ... the mesh must be partitioned
and each partition assigned to an individual processor. ... After the
input data has been partitioned, a data file is created for each processor
to read."

:func:`preprocess` runs that whole pipeline for a mesh sequence and
returns a :class:`PreprocessedCase`; :func:`write_processor_files` spills
one ``.npz`` per simulated processor, and :func:`read_processor_file`
loads it back — the file-per-processor I/O pattern of the Delta port.
Timings of every stage are recorded, which is what the paper's "cost of
pre-processing is roughly equivalent to one or two flow solution cycles"
comparisons need.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .coloring import color_edges
from .multigrid import MultigridHierarchy
from .partition import recursive_spectral_bisection
from .solver.bc import BoundaryData
from .distsolver.partitioned_mesh import DistributedMesh, partition_solver_data
from .telemetry import Tracer, get_tracer

__all__ = ["PreprocessedCase", "preprocess", "write_processor_files",
           "read_processor_file"]


@dataclass
class PreprocessedCase:
    """Everything the flow solver needs, for every level and processor."""

    hierarchy: MultigridHierarchy
    colorings: list                 # EdgeColoring per level
    assignments: list               # per-level vertex partitions
    dmeshes: list                   # DistributedMesh per level
    timings: dict = field(default_factory=dict)

    @property
    def n_levels(self) -> int:
        return self.hierarchy.n_levels

    @property
    def n_ranks(self) -> int:
        return self.dmeshes[0].n_ranks if self.dmeshes else 0

    def report(self) -> str:
        lines = ["preprocessing timings:"]
        for stage, seconds in self.timings.items():
            lines.append(f"  {stage:>28s}: {seconds:8.2f} s")
        return "\n".join(lines)


@contextmanager
def _stage(local: Tracer, ambient, name: str):
    """Time one pipeline stage on both the ambient and the local tracer.

    The local tracer always records (it is the source of the legacy
    ``timings`` mapping); the ambient one is whatever the caller installed
    globally — the null tracer by default.
    """
    with ambient.span(name), local.span(name):
        yield


def preprocess(meshes: list, w_inf: np.ndarray, n_ranks: int,
               config=None, seed: int = 1234) -> PreprocessedCase:
    """Run the full Section 2.4 pipeline on a mesh sequence.

    Stages (each recorded as a telemetry span): edge-structure transform,
    inter-grid transfer search, edge colouring, recursive spectral
    bisection, per-processor data construction (the PARTI inspector).
    The returned :attr:`PreprocessedCase.timings` mapping is derived from
    the spans and keeps its historical stage names.
    """
    ambient = get_tracer()
    local = Tracer(capacity=64)

    with ambient.span("pipeline.preprocess"):
        with _stage(local, ambient, "edge structures + transfers"):
            hierarchy = MultigridHierarchy(meshes, w_inf, config)

        with _stage(local, ambient, "edge colouring"):
            colorings = [color_edges(lv.solver.struct.edges,
                                     lv.solver.n_vertices)
                         for lv in hierarchy.levels]

        with _stage(local, ambient, "spectral partitioning"):
            assignments = [recursive_spectral_bisection(
                lv.solver.struct.edges, lv.solver.n_vertices,
                n_ranks, seed=seed) for lv in hierarchy.levels]

        with _stage(local, ambient, "processor data (inspector)"):
            dmeshes = []
            for lv, asg in zip(hierarchy.levels, assignments):
                bdata = BoundaryData(lv.solver.struct)
                dmeshes.append(partition_solver_data(lv.solver.struct,
                                                     bdata, asg))

    # Legacy timings mapping, in completion order of the stage spans.
    names = local.names()
    timings: dict[str, float] = {}
    for rec in local.records():
        name = names[rec["name"]]
        timings[name] = timings.get(name, 0.0) + float(rec["t1"] - rec["t0"])

    return PreprocessedCase(hierarchy=hierarchy, colorings=colorings,
                            assignments=assignments, dmeshes=dmeshes,
                            timings=timings)


def write_processor_files(case: PreprocessedCase, directory,
                          level: int = 0) -> list:
    """One ``.npz`` per processor for one level; returns the paths.

    Contains exactly what the SPMD solver needs locally: local edges and
    dual-face areas, owned dual volumes and degrees, boundary vertex
    data, and the ghost layout (global ids) so the schedules can be
    rebuilt on load.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dmesh: DistributedMesh = case.dmeshes[level]
    paths = []
    for rm in dmesh.ranks:
        path = directory / f"level{level}_rank{rm.rank:04d}.npz"
        np.savez_compressed(
            path,
            rank=rm.rank,
            n_owned=rm.n_owned,
            edges=rm.edges,
            eta=rm.eta,
            dual_volumes=rm.dual_volumes,
            degree=rm.degree,
            smoothing_freeze=rm.smoothing_freeze,
            wall_vertices=rm.wall_vertices,
            wall_normals=rm.wall_normals,
            far_vertices=rm.far_vertices,
            far_normals=rm.far_normals,
            far_unit=rm.far_unit,
            owned_globals=dmesh.table.owned_globals[rm.rank],
            ghost_globals=dmesh.schedule.ghost_globals[rm.rank],
        )
        paths.append(path)
    return paths


def read_processor_file(path) -> dict:
    """Load one processor's data file back into plain arrays."""
    with np.load(path, allow_pickle=False) as data:
        return {key: data[key] for key in data.files}
