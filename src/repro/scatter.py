"""Edge-to-vertex scatter/gather kernels.

The whole solver is organised around loops over mesh edges that accumulate
into vertex arrays (Section 2.1 of the paper: "the residuals are assembled
using loops over the list of edges").  In NumPy the naive translation is
``np.add.at``, which is correct but slow because it cannot vectorise the
accumulation.  Following the optimisation guides, we precompute a sparse
signed incidence matrix once per mesh and turn every edge-loop accumulation
into a CSR matrix-vector product, which is an order of magnitude faster and
numerically identical up to summation order.

Two implementations are provided and cross-checked in the test suite:

* :class:`EdgeScatter` — sparse-matrix based (default, fast);
* :func:`scatter_add_edges` — ``np.add.at`` reference (used for validation
  and for the simulated distributed executor where per-rank edge sets are
  small).

Every kernel accepts a preallocated ``out`` array so the hot solver loop
(:mod:`repro.kernels`) can run without per-stage allocations.  The CSR
products write through SciPy's accumulating ``csr_matvecs`` routine when it
is available and fall back to an allocate-and-copy path otherwise.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .telemetry import get_tracer

try:  # SciPy's C kernel computes ``out += A @ x`` without temporaries.
    from scipy.sparse import _sparsetools as _spt

    _CSR_MATVECS = _spt.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - old SciPy
    _CSR_MATVECS = None

__all__ = ["EdgeScatter", "scatter_add_edges", "scatter_add_unsigned",
           "scatter_neighbor_sum", "gather_edge_difference"]


def scatter_add_edges(edges: np.ndarray, edge_values: np.ndarray, n_vertices: int,
                      out: np.ndarray | None = None,
                      zero_out: bool = False) -> np.ndarray:
    """Reference edge accumulation: ``out[i] += v_e``, ``out[j] -= v_e``.

    .. warning::
       When ``out`` is supplied this kernel **accumulates into it** — it
       does *not* overwrite.  Callers that reuse a buffer across calls and
       expect overwrite semantics must pass ``zero_out=True`` (or clear the
       buffer themselves); forgetting to do so silently folds the previous
       contents into the result.

    Parameters
    ----------
    edges : (ne, 2) int array of vertex indices per edge.
    edge_values : (ne, ...) array of per-edge quantities.
    n_vertices : number of vertices in the target array.
    out : optional preallocated output of shape ``(n_vertices, ...)``;
        accumulated into (see warning above).
    zero_out : when True, ``out`` is zeroed before accumulating, giving
        overwrite semantics for reused buffers.  Ignored when ``out`` is
        None (a fresh zeroed array is returned either way).
    """
    if out is None:
        out = np.zeros((n_vertices,) + edge_values.shape[1:], dtype=edge_values.dtype)
    elif zero_out:
        out[...] = 0.0
    np.add.at(out, edges[:, 0], edge_values)
    np.subtract.at(out, edges[:, 1], edge_values)
    return out


def scatter_add_unsigned(edges: np.ndarray, edge_values: np.ndarray,
                         n_vertices: int, out: np.ndarray | None = None,
                         zero_out: bool = False) -> np.ndarray:
    """Reference unsigned accumulation: ``out[i] += v_e``, ``out[j] += v_e``.

    Same accumulation-into-``out`` semantics as :func:`scatter_add_edges`
    (pass ``zero_out=True`` for overwrite).  This is the ``np.add.at``
    reference the CSR ``unsigned`` operator is validated against; the
    per-rank kernels use it so their summation order stays bit-identical
    to the historical in-line loops.
    """
    if out is None:
        out = np.zeros((n_vertices,) + edge_values.shape[1:],
                       dtype=edge_values.dtype)
    elif zero_out:
        out[...] = 0.0
    np.add.at(out, edges[:, 0], edge_values)
    np.add.at(out, edges[:, 1], edge_values)
    return out


def scatter_neighbor_sum(edges: np.ndarray, vertex_values: np.ndarray,
                         n_vertices: int, out: np.ndarray | None = None,
                         zero_out: bool = False) -> np.ndarray:
    """Reference neighbour sum: ``out[i] += v[j]``, ``out[j] += v[i]``.

    The ``np.add.at`` reference for the CSR adjacency product, with the
    same accumulate-into-``out`` semantics as :func:`scatter_add_edges`.
    """
    if out is None:
        out = np.zeros((n_vertices,) + vertex_values.shape[1:],
                       dtype=vertex_values.dtype)
    elif zero_out:
        out[...] = 0.0
    np.add.at(out, edges[:, 0], vertex_values[edges[:, 1]])
    np.add.at(out, edges[:, 1], vertex_values[edges[:, 0]])
    return out


def gather_edge_difference(edges: np.ndarray, vertex_values: np.ndarray) -> np.ndarray:
    """Per-edge difference ``v[j] - v[i]`` (the undivided edge gradient)."""
    return vertex_values[edges[:, 1]] - vertex_values[edges[:, 0]]


class EdgeScatter:
    """Precomputed signed/unsigned incidence operators for one edge list.

    ``signed @ e`` computes ``sum_{edges e=(i,j)} (+e at i, -e at j)`` and
    ``unsigned @ e`` computes ``sum (+e at i, +e at j)`` — the two
    accumulation patterns used by the convective operator, the dissipation
    operator, the time-step estimate and the residual smoother.

    All three apply methods take an optional preallocated ``out`` array
    (overwritten, not accumulated, unless ``accumulate=True``) so repeated
    calls in the solver's stage loop incur no allocations.  The
    ``accumulate`` flag lets two operators over disjoint edge subsets
    (e.g. the distributed layer's interior/boundary split) compose into
    one output buffer: the interior operator overwrites, the boundary
    operator accumulates on top.
    """

    def __init__(self, edges: np.ndarray, n_vertices: int, tracer=None):
        edges = np.asarray(edges)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (ne, 2), got {edges.shape}")
        ne = edges.shape[0]
        self.edges = edges
        self.n_vertices = int(n_vertices)
        self.tracer = tracer if tracer is not None else get_tracer()
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([np.arange(ne), np.arange(ne)])
        signed_data = np.concatenate([np.ones(ne), -np.ones(ne)])
        unsigned_data = np.ones(2 * ne)
        shape = (self.n_vertices, ne)
        self._signed = sp.csr_matrix((signed_data, (rows, cols)), shape=shape)
        self._unsigned = sp.csr_matrix((unsigned_data, (rows, cols)), shape=shape)
        # Per-vertex edge degree (number of incident edges); used by the
        # dissipation switch denominator and the Jacobi residual smoother.
        self.degree = np.asarray(self._unsigned.sum(axis=1)).ravel()
        # Symmetric vertex adjacency (n x n) for neighbour sums.
        adj_rows = np.concatenate([edges[:, 0], edges[:, 1]])
        adj_cols = np.concatenate([edges[:, 1], edges[:, 0]])
        self._adjacency = sp.csr_matrix(
            (np.ones(2 * ne), (adj_rows, adj_cols)),
            shape=(self.n_vertices, self.n_vertices))

    def neighbor_sum(self, vertex_values: np.ndarray,
                     out: np.ndarray | None = None,
                     accumulate: bool = False) -> np.ndarray:
        """``out_i = sum_{j ~ i} v_j`` over the mesh edge graph."""
        with self.tracer.span("scatter.neighbor_sum"):
            return self._apply(self._adjacency, vertex_values, out,
                               accumulate)

    def signed(self, edge_values: np.ndarray,
               out: np.ndarray | None = None,
               accumulate: bool = False) -> np.ndarray:
        """Accumulate ``+value`` at edge tail, ``-value`` at edge head."""
        tracer = self.tracer
        with tracer.span("scatter.signed"):
            if tracer.enabled:
                tracer.count("kernel.edges_scattered", self.edges.shape[0])
            return self._apply(self._signed, edge_values, out, accumulate)

    def unsigned(self, edge_values: np.ndarray,
                 out: np.ndarray | None = None,
                 accumulate: bool = False) -> np.ndarray:
        """Accumulate ``+value`` at both edge endpoints."""
        tracer = self.tracer
        with tracer.span("scatter.unsigned"):
            if tracer.enabled:
                tracer.count("kernel.edges_scattered", self.edges.shape[0])
            return self._apply(self._unsigned, edge_values, out, accumulate)

    @staticmethod
    def _apply(mat: sp.csr_matrix, edge_values: np.ndarray,
               out: np.ndarray | None = None,
               accumulate: bool = False) -> np.ndarray:
        edge_values = np.asarray(edge_values)
        if out is None:
            if edge_values.ndim == 1:
                return mat @ edge_values
            # Explicit trailing width: reshape(n, -1) cannot infer -1 when
            # the array is empty (a rank with no boundary edges hits this).
            n_vecs = int(np.prod(edge_values.shape[1:], dtype=np.int64))
            flat = edge_values.reshape(edge_values.shape[0], n_vecs)
            res = mat @ flat
            return res.reshape((mat.shape[0],) + edge_values.shape[1:])
        expected = (mat.shape[0],) + edge_values.shape[1:]
        if out.shape != expected:
            raise ValueError(f"out must have shape {expected}, got {out.shape}")
        if (_CSR_MATVECS is not None and out.dtype == np.float64
                and edge_values.dtype == np.float64
                and out.flags.c_contiguous and edge_values.flags.c_contiguous):
            n_vecs = int(np.prod(edge_values.shape[1:], dtype=np.int64)) or 1
            if not accumulate:
                out[...] = 0.0
            _CSR_MATVECS(mat.shape[0], mat.shape[1], n_vecs,
                         mat.indptr, mat.indices, mat.data,
                         edge_values.reshape(-1), out.reshape(-1))
            return out
        if accumulate:
            out += EdgeScatter._apply(mat, edge_values)
        else:
            np.copyto(out, EdgeScatter._apply(mat, edge_values))
        return out
