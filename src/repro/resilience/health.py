"""Per-step solution health checks and the automatic recovery policy.

The guard watches the monitored density-residual norm — a scalar the
stepping loops already compute, so checking costs two float comparisons
per cycle — and classifies each sample as healthy, NaN/Inf, or runaway
growth (see :func:`repro.solver.monitor.residual_health`).  On a bad
sample the recovery policy is, in order:

1. **CFL backoff + dissipation bump** — every affected solver's time
   step is shrunk by ``recovery_cfl_factor`` and its artificial
   dissipation scaled by ``recovery_dissipation_factor`` (the standard
   rescue for a transonic startup transient);
2. **restore from the last checkpoint** — the loop rewinds to the most
   recent snapshot (the initial state if no periodic checkpoint was
   taken yet) and replays under the safer configuration;
3. after ``max_recoveries`` failed rescues, :class:`DivergenceError`.

Every detection and recovery action increments an always-on telemetry
counter (``resilience.guard.*`` / ``resilience.recovery.*``), so a fleet
supervisor can alert on recovery storms without tracing enabled.
"""

from __future__ import annotations

import numpy as np

from ..solver.monitor import residual_health
from ..telemetry import count_event
from .checkpoint import Checkpoint, CheckpointStore
from .errors import DivergenceError

__all__ = ["StepGuard"]


class StepGuard:
    """Health watchdog + checkpoint bookkeeping for one stepping loop.

    Parameters
    ----------
    solvers : the solver (or list of solvers, e.g. every multigrid
        level) whose configuration is backed off on recovery; each must
        expose ``config`` and ``apply_recovery()``.
    initial_w : state entering ``start_cycle`` — the recovery target of
        last resort, copied.
    start_cycle : cycle index ``initial_w`` enters.
    store : optional :class:`CheckpointStore` receiving the periodic
        snapshots (one is created in-memory otherwise, so recovery always
        has a restore target).
    """

    def __init__(self, solvers, initial_w: np.ndarray, start_cycle: int = 0,
                 store: CheckpointStore | None = None):
        self.solvers = list(solvers) if isinstance(solvers, (list, tuple)) \
            else [solvers]
        self.store = store if store is not None else CheckpointStore()
        self.store.save(Checkpoint.of(start_cycle, initial_w,
                                      self.solvers[0].config))
        self.best_norm = float("inf")
        self.recoveries = 0

    # ------------------------------------------------------------------
    @property
    def _config(self):
        return self.solvers[0].config

    def note_cycle_start(self, cycle: int, w: np.ndarray) -> None:
        """Periodic snapshot of the state entering ``cycle``."""
        interval = self._config.checkpoint_interval
        if interval > 0 and cycle % interval == 0:
            latest = self.store.latest
            if latest is None or latest.cycle < cycle:
                self.store.save(Checkpoint.of(cycle, w, self._config))

    def check(self, resnorm: float) -> str:
        """Classify one monitored residual: ``ok``/``nan``/``diverged``."""
        verdict = residual_health(resnorm, self.best_norm,
                                  self._config.guard_growth_ratio)
        if verdict == "ok":
            if resnorm < self.best_norm:
                self.best_norm = float(resnorm)
        else:
            count_event("resilience.guard." + verdict)
        return verdict

    def recover(self, cycle: int, verdict: str,
                value: float) -> tuple[np.ndarray, int]:
        """Back off the solvers and rewind to the last checkpoint.

        Returns ``(w, cycle)`` to resume from; raises
        :class:`DivergenceError` once ``max_recoveries`` is exhausted.
        """
        cfg = self._config
        if self.recoveries >= cfg.max_recoveries:
            count_event("resilience.recovery.exhausted")
            raise DivergenceError(verdict, cycle, value,
                                  reference=(self.best_norm
                                             if np.isfinite(self.best_norm)
                                             else None),
                                  recoveries=self.recoveries)
        self.recoveries += 1
        for solver in self.solvers:
            solver.apply_recovery()
        count_event("resilience.recovery.cfl_backoff")
        ckpt = self.store.latest
        count_event("resilience.recovery.restore")
        # The reference norm belongs to the abandoned trajectory.
        self.best_norm = float("inf")
        return ckpt.w.copy(), ckpt.cycle
