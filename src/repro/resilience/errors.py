"""Typed failures of the resilient stepping layer.

Every error carries enough structure (rank, op index, cycle, value) for a
supervisor to decide between retry, restore-from-checkpoint, and abort —
the failure taxonomy production CFD runtimes expose instead of a bare
``queue.Empty`` after minutes of silence.
"""

from __future__ import annotations

__all__ = ["ResilienceError", "RankFailedError", "ExchangeTimeoutError",
           "CollectionTimeoutError", "DivergenceError",
           "CheckpointMismatchError", "TransportProtocolError",
           "ResultContractError"]


class ResilienceError(RuntimeError):
    """Base class of all resilience-layer failures."""


class RankFailedError(ResilienceError):
    """A rank worker died (or reported a fatal error) mid-run.

    Attributes
    ----------
    rank : the failed rank.
    exitcode : the worker's process exit code (``None`` if it reported the
        failure itself through the result queue before exiting).
    last_op : index of the last exchange operation the rank completed
        (``-1`` if it died before finishing any), from the shared
        progress array — the distributed analogue of a crash backtrace.
    reason : short human-readable cause (exception name and message when
        the worker reported one).
    """

    def __init__(self, rank: int, exitcode: int | None = None,
                 last_op: int | None = None, reason: str = "",
                 worker_traceback: str = ""):
        self.rank = rank
        self.exitcode = exitcode
        self.last_op = last_op
        self.reason = reason
        self.worker_traceback = worker_traceback
        parts = [f"rank {rank} failed"]
        if exitcode is not None:
            parts.append(f"(exit code {exitcode})")
        if last_op is not None and last_op >= 0:
            parts.append(f"after completing exchange op {last_op}")
        elif last_op is not None:
            parts.append("before completing any exchange op")
        if reason:
            parts.append(f": {reason}")
        super().__init__(" ".join(parts))


class ExchangeTimeoutError(ResilienceError):
    """A single exchange operation timed out (send retries exhausted or no
    matching message arrived within the per-op receive timeout)."""

    def __init__(self, rank: int, op: int, direction: str, timeout_s: float,
                 peer: int | None = None):
        self.rank = rank
        self.op = op
        self.direction = direction
        self.timeout_s = timeout_s
        self.peer = peer
        peer_s = f" (peer rank {peer})" if peer is not None else ""
        super().__init__(
            f"rank {rank}: {direction} of exchange op {op}{peer_s} "
            f"timed out after {timeout_s:.3g} s")


class CollectionTimeoutError(ResilienceError):
    """The driver's whole-collection deadline passed with results pending.

    Unlike the old per-rank ``queue.Empty`` (whose worst case was
    ``n_ranks x timeout``), this is raised once the *total* wall-clock
    budget is spent, and names the ranks still outstanding with their
    last completed op.
    """

    def __init__(self, pending: dict, timeout_s: float):
        self.pending = dict(pending)
        self.timeout_s = timeout_s
        detail = ", ".join(f"rank {r} (last op {op})"
                           for r, op in sorted(self.pending.items()))
        super().__init__(
            f"collection deadline of {timeout_s:.3g} s passed with "
            f"{len(self.pending)} rank(s) outstanding: {detail}")


class TransportProtocolError(ResilienceError):
    """The shared-memory transport's control plane and slab state
    disagree — a sequence gap (lost or reordered control message), a
    slot mismatch, or a payload that overflows the inspector-sized slab.

    The slab contents can no longer be trusted once this happens, so the
    worker fails fast (and the driver reports it as a
    :class:`RankFailedError` naming the rank) instead of propagating
    stale ghost values.
    """

    def __init__(self, pair: tuple, detail: str):
        self.pair = tuple(pair)
        self.detail = detail
        super().__init__(
            f"shm channel {self.pair[0]}->{self.pair[1]}: {detail}")


class ResultContractError(ResilienceError):
    """A rank's result payload did not match the caller's declared field
    count — the multi-field analogue of a wrong-arity unpack, caught at
    the collection boundary with the offending rank named instead of a
    bare ``ValueError`` deep in the driver's unpacking loop."""

    def __init__(self, rank: int, expected: int, got: int):
        self.rank = rank
        self.expected = expected
        self.got = got
        super().__init__(
            f"rank {rank} returned a {got}-field result payload, caller "
            f"expected {expected} field(s)")


class DivergenceError(ResilienceError):
    """The per-step health check found a NaN/Inf or runaway residual and
    recovery was disabled or exhausted."""

    def __init__(self, kind: str, cycle: int, value: float,
                 reference: float | None = None, recoveries: int = 0):
        self.kind = kind                  # "nan" | "diverged"
        self.cycle = cycle
        self.value = value
        self.reference = reference
        self.recoveries = recoveries
        ref_s = (f" (best residual so far {reference:.3e})"
                 if reference is not None else "")
        super().__init__(
            f"solution health check failed at cycle {cycle}: {kind} "
            f"residual {value!r}{ref_s} after {recoveries} recovery "
            f"attempt(s)")


class CheckpointMismatchError(ResilienceError):
    """A checkpoint was produced under a different solver configuration,
    so bit-identical resume is impossible."""

    def __init__(self, expected_hash: str, found_hash: str):
        self.expected_hash = expected_hash
        self.found_hash = found_hash
        super().__init__(
            f"checkpoint config hash {found_hash} does not match the "
            f"current solver config hash {expected_hash}; resume would "
            "not be bit-identical")
