"""Fault tolerance for the distributed and sequential stepping loops.

The paper's Delta runs treated a dead rank or a blown-up residual as a
run-ending event; this package gives the reproduction the failure model
a production system needs:

* :mod:`~repro.resilience.faults` — deterministic, seed-driven fault
  injection (kill a rank, drop/delay a pipe message, corrupt a payload)
  pluggable into both message fabrics;
* :mod:`~repro.resilience.collect` — driver-side collection with a
  whole-run deadline and worker-exitcode polling, surfacing crashes as
  prompt :class:`RankFailedError`\\ s instead of minutes-later
  ``queue.Empty``;
* :mod:`~repro.resilience.checkpoint` — solver-state snapshots with
  bit-identical resume;
* :mod:`~repro.resilience.health` — NaN/divergence guards with automatic
  CFL-backoff + checkpoint-restore recovery.

See ``docs/resilience.md`` for the full tour.
"""

from .checkpoint import (Checkpoint, CheckpointStore, solver_config_hash,
                         verify_checkpoint)
from .collect import collect_results
from .errors import (CheckpointMismatchError, CollectionTimeoutError,
                     DivergenceError, ExchangeTimeoutError, RankFailedError,
                     ResilienceError, ResultContractError,
                     TransportProtocolError)
from .faults import FAULT_KINDS, KILLED_EXIT_CODE, FaultInjector, FaultSpec
from .health import StepGuard

__all__ = [
    "Checkpoint", "CheckpointStore", "solver_config_hash",
    "verify_checkpoint", "collect_results", "ResilienceError",
    "RankFailedError", "ExchangeTimeoutError", "CollectionTimeoutError",
    "DivergenceError", "CheckpointMismatchError", "TransportProtocolError",
    "ResultContractError", "FaultInjector",
    "FaultSpec", "FAULT_KINDS", "KILLED_EXIT_CODE", "StepGuard",
]
