"""Solver-state checkpoints with bit-identical resume.

A checkpoint is the *complete* state the stepping loops carry between
cycles: the conserved variables ``w`` (for the distributed drivers, the
assembled global array — ghosts are re-gathered at the top of every
step, so owned values are the whole state), the cycle index the state
enters, and a hash of the :class:`~repro.solver.SolverConfig` that
produced it.  Resuming replays the exact floating-point sequence of an
uninterrupted run: the loops are Markovian in ``(w, cycle, config)``, a
property pinned by ``tests/resilience/test_checkpoint.py``.

Checkpoints live in an in-memory ring (for the automatic
divergence-recovery path) and optionally on disk as ``.npz`` files
(``float64`` round-trips exactly through ``np.savez``).
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .errors import CheckpointMismatchError

__all__ = ["Checkpoint", "CheckpointStore", "solver_config_hash",
           "verify_checkpoint"]


def solver_config_hash(config) -> str:
    """Short stable hash of a (frozen dataclass) solver configuration.

    ``repr`` of a frozen dataclass lists every field deterministically,
    so two configs hash equal iff every numerical knob matches — the
    precondition for bit-identical resume.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class Checkpoint:
    """One snapshot: the state entering cycle ``cycle`` under ``config``."""

    cycle: int
    w: np.ndarray
    config_hash: str
    meta: dict = field(default_factory=dict)

    @classmethod
    def of(cls, cycle: int, w: np.ndarray, config,
           meta: dict | None = None) -> "Checkpoint":
        """Snapshot ``w`` (copied) as the state entering ``cycle``."""
        return cls(cycle=int(cycle), w=np.array(w, dtype=np.float64,
                                                copy=True),
                   config_hash=solver_config_hash(config),
                   meta=dict(meta or {}))


def verify_checkpoint(ckpt: Checkpoint, config) -> None:
    """Raise :class:`CheckpointMismatchError` unless ``ckpt`` was taken
    under a configuration hashing identically to ``config``."""
    expected = solver_config_hash(config)
    if ckpt.config_hash != expected:
        raise CheckpointMismatchError(expected, ckpt.config_hash)


class CheckpointStore:
    """Ring of recent checkpoints, optionally persisted to a directory.

    Parameters
    ----------
    directory : if given, every :meth:`save` also writes
        ``ckpt_<cycle>.npz`` there and :meth:`load_latest` /
        :meth:`load_cycle` read them back (exact ``float64``
        round-trip).
    keep : in-memory ring depth (oldest snapshots are evicted; on-disk
        files are kept for post-mortems).
    """

    def __init__(self, directory: str | Path | None = None, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._ring: deque = deque(maxlen=keep)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def latest(self) -> Checkpoint | None:
        """Most recent checkpoint, or ``None`` if the store is empty."""
        return self._ring[-1] if self._ring else None

    def save(self, ckpt: Checkpoint) -> Checkpoint:
        self._ring.append(ckpt)
        if self.directory is not None:
            path = self.directory / f"ckpt_{ckpt.cycle:08d}.npz"
            np.savez(path, w=ckpt.w, cycle=np.int64(ckpt.cycle),
                     config_hash=np.str_(ckpt.config_hash),
                     meta_json=np.str_(json.dumps(ckpt.meta, sort_keys=True)))
        return ckpt

    # ------------------------------------------------------------------
    def _disk_cycles(self) -> list[int]:
        if self.directory is None:
            return []
        return sorted(int(p.stem.split("_")[1])
                      for p in self.directory.glob("ckpt_*.npz"))

    def load_cycle(self, cycle: int) -> Checkpoint:
        """Read the on-disk checkpoint of ``cycle`` (exact round-trip)."""
        if self.directory is None:
            raise ValueError("store has no backing directory")
        path = self.directory / f"ckpt_{cycle:08d}.npz"
        with np.load(path) as data:
            return Checkpoint(cycle=int(data["cycle"]),
                              w=np.array(data["w"], dtype=np.float64),
                              config_hash=str(data["config_hash"]),
                              meta=json.loads(str(data["meta_json"])))

    def load_latest(self) -> Checkpoint | None:
        """Latest checkpoint: the in-memory ring first, else the newest
        on-disk file (e.g. after a process restart)."""
        if self._ring:
            return self._ring[-1]
        cycles = self._disk_cycles()
        return self.load_cycle(cycles[-1]) if cycles else None
