"""Driver-side result collection with liveness polling.

The multiprocessing drivers used to block in ``result_queue.get`` with a
fresh timeout per rank: a dead worker stalled the driver for up to
``n_ranks x timeout`` seconds and then surfaced as a bare
``queue.Empty``.  :func:`collect_results` replaces that with a single
wall-clock deadline for the whole collection and a short poll loop that
checks worker exit codes between queue reads — a crashed rank surfaces
as a :class:`~repro.resilience.errors.RankFailedError` naming the rank
(and its last completed exchange op) within one poll interval.
"""

from __future__ import annotations

import time
from queue import Empty

from ..telemetry import count_event
from .errors import (CollectionTimeoutError, RankFailedError,
                     ResultContractError)

__all__ = ["collect_results"]


def collect_results(result_queue, workers, n_ranks: int, timeout: float,
                    poll_interval: float = 0.05,
                    progress=None, expect_fields: int | None = None) -> dict:
    """Collect one result per rank, failing fast on dead workers.

    Parameters
    ----------
    result_queue : the multiprocessing queue the workers put results on.
        Accepted item shapes: ``("ok", rank, *data)``, a plain
        ``(rank, *data)`` tuple, or the error sentinel
        ``("err", rank, reason, traceback)``.
    workers : per-rank ``Process`` objects, polled for liveness.
    timeout : wall-clock budget for the *entire* collection, seconds.
    poll_interval : queue-wait slice between liveness checks.
    progress : optional shared array of per-rank last-completed-op
        indices (``-1`` = none), quoted in failure messages.
    expect_fields : when given, the caller's declared arity of each
        rank's ``data`` tuple; a mismatch raises
        :class:`~repro.resilience.errors.ResultContractError` naming the
        rank.  Callers that unpack the returned tuples should always
        declare this — it turns a silent mis-unpack (when a worker grows
        or shrinks its payload) into a typed contract failure at the
        collection boundary.

    Returns ``{rank: data_tuple}``.
    """
    deadline = time.monotonic() + timeout
    pending = set(range(n_ranks))
    results: dict = {}

    def _last_op(rank: int):
        return int(progress[rank]) if progress is not None else None

    while pending:
        try:
            item = result_queue.get(timeout=poll_interval)
        except Empty:
            item = None

        if item is not None:
            if item[0] == "err":
                _, rank, reason, tb = item
                count_event("resilience.rank_failure")
                raise RankFailedError(rank, exitcode=None,
                                      last_op=_last_op(rank), reason=reason,
                                      worker_traceback=tb)
            if item[0] == "ok":
                rank, data = item[1], tuple(item[2:])
            else:
                rank, data = item[0], tuple(item[1:])
            if expect_fields is not None and len(data) != expect_fields:
                count_event("resilience.result_contract")
                raise ResultContractError(rank, expect_fields, len(data))
            results[rank] = data
            pending.discard(rank)
            continue

        # Queue idle: make sure everyone we still wait on is alive.  An
        # exit code of 0 with a pending result just means the queue
        # feeder has not flushed yet — keep polling until the deadline.
        for rank in sorted(pending):
            proc = workers[rank]
            if not proc.is_alive() and proc.exitcode not in (0, None):
                count_event("resilience.rank_failure")
                raise RankFailedError(rank, exitcode=proc.exitcode,
                                      last_op=_last_op(rank))
        if time.monotonic() > deadline:
            count_event("resilience.collection_timeout")
            raise CollectionTimeoutError(
                {r: (_last_op(r) if progress is not None else -1)
                 for r in pending}, timeout)
    return results
