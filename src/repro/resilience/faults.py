"""Deterministic, seed-driven fault injection for the distributed paths.

A :class:`FaultInjector` holds a list of :class:`FaultSpec` triggers and
is consulted by the two message fabrics:

* :class:`repro.distsolver.mp_solver._PipeTransport` (real OS processes)
  calls :meth:`FaultInjector.maybe_kill` at the start of every exchange
  op and :meth:`FaultInjector.on_send` for every pipe send attempt;
* :class:`repro.parti.simmpi.SimMachine` (the simulated machine) calls
  :meth:`FaultInjector.on_sim_message` for every delivered message.

Faults fire at exact (rank, op) or (phase, occurrence) coordinates, so a
given spec list reproduces the same failure on every run; the only
randomness — *which element* of a corrupted payload is poisoned — is
drawn from ``numpy`` generators seeded by ``(seed, op, src, dst)``, so it
too is deterministic.

Supported fault kinds
---------------------
``kill_rank``   the worker process exits immediately with
                :data:`KILLED_EXIT_CODE` (a crashed rank).
``drop``        a send attempt is discarded (transient message loss; the
                transport's bounded retry re-attempts it).
``delay``       a send is delayed by ``delay_s`` seconds before delivery.
``corrupt``     the payload is copied and one element is overwritten with
                ``value`` (default NaN) — the corruption the
                NaN/divergence guard must catch.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..telemetry import count_event

__all__ = ["FaultSpec", "FaultInjector", "KILLED_EXIT_CODE", "FAULT_KINDS"]

#: Exit code of a worker killed by an injected ``kill_rank`` fault —
#: distinctive so tests and the driver can tell an injected death from a
#: genuine crash (which exits 1) or a signal (negative exitcode).
KILLED_EXIT_CODE = 73

FAULT_KINDS = ("kill_rank", "drop", "delay", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault trigger.

    ``rank``/``op`` address the multiprocessing transport (``op`` is the
    global exchange-operation index, identical on every rank);
    ``phase``/``occurrence`` address the simulated machine.  A spec only
    fires on coordinates it specifies — unset selectors match anything.
    """

    kind: str
    #: Source rank the fault applies to (sender for message faults).
    rank: int | None = None
    #: Exchange-op index (multiprocessing transport ops are numbered
    #: identically on every rank).
    op: int | None = None
    #: Destination rank for message faults (``None`` = any).
    dst: int | None = None
    #: SimMachine phase name (``None`` = any phase).
    phase: str | None = None
    #: SimMachine phase occurrence number (1-based; ``None`` = any).
    occurrence: int | None = None
    #: How many matching events the fault affects (drop/delay/corrupt).
    count: int = 1
    #: Sleep applied by ``delay`` faults, seconds.
    delay_s: float = 0.05
    #: Value written by ``corrupt`` faults.
    value: float = float("nan")

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")


@dataclass
class _Armed:
    """Mutable per-process firing state of one spec."""

    spec: FaultSpec
    fired: int = 0

    def matches_mp(self, rank: int, dst: int | None, op: int) -> bool:
        s = self.spec
        if self.fired >= s.count:
            return False
        if s.rank is not None and s.rank != rank:
            return False
        if s.dst is not None and dst is not None and s.dst != dst:
            return False
        if s.op is not None and s.op != op:
            return False
        return True

    def matches_sim(self, phase: str, occurrence: int,
                    src: int, dst: int) -> bool:
        s = self.spec
        if self.fired >= s.count:
            return False
        if s.phase is not None and s.phase != phase:
            return False
        if s.occurrence is not None and s.occurrence != occurrence:
            return False
        if s.rank is not None and s.rank != src:
            return False
        if s.dst is not None and s.dst != dst:
            return False
        return True


class FaultInjector:
    """Deterministic fault plan shared by both message fabrics.

    The injector is consulted on the hot path, so the no-match case is a
    handful of integer comparisons per armed spec.  Firing state lives in
    the process that evaluates the fault (each forked rank worker has its
    own copy), which is exactly the semantics wanted: "drop rank 0's send
    of op 3 twice" fires twice in rank 0's process, nowhere else.
    """

    def __init__(self, specs=(), seed: int = 0):
        self.seed = int(seed)
        self._armed = [_Armed(s if isinstance(s, FaultSpec)
                              else FaultSpec(**s)) for s in specs]

    @property
    def specs(self) -> tuple:
        return tuple(a.spec for a in self._armed)

    # -- multiprocessing transport hooks --------------------------------
    def maybe_kill(self, rank: int, op: int) -> None:
        """Kill this worker process if a ``kill_rank`` spec matches."""
        for a in self._armed:
            if a.spec.kind == "kill_rank" and a.matches_mp(rank, None, op):
                a.fired += 1
                count_event("resilience.fault.kill")
                # A crashed rank does not unwind Python frames or flush
                # queues; _exit models SIGKILL-grade death faithfully.
                os._exit(KILLED_EXIT_CODE)

    def on_send(self, rank: int, dst: int, op: int, attempt: int,
                payload):
        """Filter one pipe send attempt.

        Returns ``None`` if the attempt is dropped (the transport
        retries), otherwise the payload to deliver (possibly delayed or
        corrupted).
        """
        for a in self._armed:
            kind = a.spec.kind
            if kind == "kill_rank" or not a.matches_mp(rank, dst, op):
                continue
            if kind == "drop":
                a.fired += 1
                count_event("resilience.fault.drop")
                return None
            if kind == "delay":
                a.fired += 1
                count_event("resilience.fault.delay")
                time.sleep(a.spec.delay_s)
            elif kind == "corrupt":
                a.fired += 1
                count_event("resilience.fault.corrupt")
                payload = self._corrupt(payload, a.spec, op, rank, dst)
        return payload

    # -- simulated machine hook ------------------------------------------
    def on_sim_message(self, phase: str, occurrence: int, src: int,
                       dst: int, payload):
        """Filter one SimMachine message; ``None`` means dropped."""
        for a in self._armed:
            kind = a.spec.kind
            if kind == "kill_rank" or not a.matches_sim(phase, occurrence,
                                                        src, dst):
                continue
            if kind == "drop":
                a.fired += 1
                count_event("resilience.fault.drop")
                return None
            if kind == "delay":
                # The simulated machine has no wall clock to delay; the
                # event is still counted so traffic analyses see it.
                a.fired += 1
                count_event("resilience.fault.delay")
            elif kind == "corrupt":
                a.fired += 1
                count_event("resilience.fault.corrupt")
                payload = self._corrupt(payload, a.spec, occurrence, src, dst)
        return payload

    # -- helpers ---------------------------------------------------------
    def _corrupt(self, payload, spec: FaultSpec, op: int, src: int,
                 dst: int):
        arr = np.array(payload, dtype=float, copy=True)
        if arr.size:
            rng = np.random.default_rng((self.seed, op, src, dst))
            flat = arr.reshape(-1)
            flat[int(rng.integers(flat.size))] = spec.value
        return arr
