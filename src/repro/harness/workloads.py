"""Standard experiment workloads: the reproduction's stand-in for the
paper's aircraft case.

One place defines the meshes, flow condition and solver settings used by
every table/figure benchmark, in two sizes:

* ``fast`` — small meshes for CI-speed benchmark runs;
* ``full`` — the largest laptop-scale case (used for the recorded
  EXPERIMENTS.md numbers).

The flow condition is the paper's: M = 0.768, alpha = 1.116 degrees.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from time import perf_counter

import numpy as np

from ..coloring import color_edges
from ..mesh import bump_channel
from ..multigrid import MultigridHierarchy, cycle_structure
from ..perfmodel.flops import FlopCounter
from ..solver.config import SolverConfig
from ..state import freestream_state

__all__ = ["CaseSpec", "FAST_CASE", "FULL_CASE", "build_hierarchy",
           "measure_level_flops", "mg_visits", "sweep_conditions",
           "run_condition_sweep"]

MACH = 0.768
ALPHA_DEG = 1.116


@dataclass(frozen=True)
class CaseSpec:
    """Mesh-resolution ladder + solver settings of one workload size."""

    name: str
    #: (nx, ny, nz) per multigrid level, fine to coarse
    levels: tuple
    config: SolverConfig = field(default_factory=SolverConfig)

    def freestream(self) -> np.ndarray:
        return freestream_state(MACH, ALPHA_DEG)


FAST_CASE = CaseSpec(
    name="fast",
    levels=((24, 4, 8), (12, 2, 4), (6, 2, 2)),
)

FULL_CASE = CaseSpec(
    name="full",
    # ~16.4k fine vertices with a ~6.8x coarsening ratio per level — the
    # same ladder shape as the paper's 804k/106k/... sequence, and large
    # enough that partition surface scaling is in the paper's regime at
    # the 16/32-rank model runs.
    levels=((72, 8, 24), (36, 4, 12), (18, 2, 6), (9, 2, 3)),
)


@lru_cache(maxsize=4)
def _cached_hierarchy(name: str):
    case = {"fast": FAST_CASE, "full": FULL_CASE}[name]
    meshes = [bump_channel(*lvl) for lvl in case.levels]
    return MultigridHierarchy(meshes, case.freestream(), case.config)


def build_hierarchy(case: CaseSpec) -> MultigridHierarchy:
    """Multigrid hierarchy for a case (cached — meshes are deterministic)."""
    if case.name in ("fast", "full"):
        return _cached_hierarchy(case.name)
    meshes = [bump_channel(*lvl) for lvl in case.levels]
    return MultigridHierarchy(meshes, case.freestream(), case.config)


def measure_level_flops(hierarchy: MultigridHierarchy) -> list:
    """Measured flops of one five-stage step on each level.

    Runs one instrumented step per level from freestream — flop counts are
    state-independent (same loops every cycle), so one step suffices.
    """
    flops = []
    for lv in hierarchy.levels:
        counter = FlopCounter()
        solver = lv.solver
        saved = solver.flops
        solver.flops = counter
        try:
            solver.step(solver.freestream_solution())
        finally:
            solver.flops = saved
        flops.append(counter.total)
    return flops


def mg_visits(n_levels: int, gamma: int) -> list:
    """Time-step visits per level per cycle, from the actual recursion."""
    visits = [0] * n_levels
    for kind, level in cycle_structure(n_levels, gamma):
        if kind == "E":
            visits[level] += 1
    return visits


def sweep_conditions(n_mach: int = 8, alphas=(0.0, ALPHA_DEG)) -> list:
    """Standard flow-condition sweep: a Mach ladder around the paper's point.

    ``n_mach`` subsonic-to-transonic Mach numbers (0.50 .. 0.80, bracketing
    the paper's M = 0.768) crossed with ``alphas`` — the grid every sweep
    benchmark and the ensemble demo share.
    """
    from ..solver.ensemble import FlowState

    machs = np.linspace(0.50, 0.80, n_mach)
    return FlowState.grid(machs, alphas)


def run_condition_sweep(case: CaseSpec, flows=None, *, n_cycles: int = 10,
                        sequential: bool = False, block_size=None):
    """Solve a flow-condition sweep on the case's fine mesh.

    The default path pushes every condition through one batched
    :meth:`~repro.solver.EulerSolver.solve_ensemble` call — one fused
    edge sweep advances all of them at once.  ``sequential=True`` keeps
    the pre-ensemble behaviour for A/B comparison: a fresh
    :class:`~repro.solver.EulerSolver` is constructed per condition
    (edge structure, reordering, scatter schedules and all) and run on
    its own, exactly as sweep clients did before batching existed.

    Both paths return an :class:`~repro.solver.EnsembleResult`, so
    callers can diff states/histories and throughput directly.
    """
    from ..resilience import DivergenceError
    from ..solver.ensemble import EnsembleResult
    from ..solver.euler import EulerSolver

    if flows is None:
        flows = sweep_conditions()
    flows = list(flows)
    base = build_hierarchy(case).levels[0].solver
    if not sequential:
        return base.solve_ensemble(flows, n_cycles=n_cycles,
                                   block_size=block_size)

    # Old per-case path: the full construct-and-run pipeline, once per
    # flow condition, with no asset sharing between conditions.
    t0 = perf_counter()
    states = np.empty((len(flows), base.n_vertices, 5))
    histories = []
    cycles = np.empty(len(flows), dtype=np.int64)
    diverged = np.zeros(len(flows), dtype=bool)
    for i, f in enumerate(flows):
        cfg = case.config
        if f.cfl is not None and float(f.cfl) != float(cfg.cfl):
            cfg = dataclasses.replace(cfg, cfl=float(f.cfl))
        solver = EulerSolver(base.mesh, f.freestream(), cfg)
        # The batched path flags non-finite residual norms and keeps
        # going; mirror that here so the A/B diverged masks compare.
        # Under the default divergence guard run() raises instead of
        # returning a NaN history, so both shapes map to diverged=True.
        try:
            w, history = solver.run(n_cycles=n_cycles)
        except DivergenceError as exc:
            states[i] = np.nan
            histories.append([float("nan")])
            cycles[i] = int(exc.cycle)
            diverged[i] = True
            continue
        states[i] = w
        histories.append(history)
        cycles[i] = n_cycles
        diverged[i] = not np.isfinite(history[-1])
    wall = perf_counter() - t0
    n = len(flows)
    return EnsembleResult(states=states, histories=histories,
                          converged=np.zeros(n, dtype=bool),
                          diverged=diverged,
                          cycles=cycles, wall_s=wall)


def level_colorings(hierarchy: MultigridHierarchy) -> list:
    """Greedy edge colouring of each level (group sizes for the C90 model)."""
    out = []
    for lv in hierarchy.levels:
        struct = lv.solver.struct
        out.append(color_edges(struct.edges, struct.n_vertices))
    return out
