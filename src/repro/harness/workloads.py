"""Standard experiment workloads: the reproduction's stand-in for the
paper's aircraft case.

One place defines the meshes, flow condition and solver settings used by
every table/figure benchmark, in two sizes:

* ``fast`` — small meshes for CI-speed benchmark runs;
* ``full`` — the largest laptop-scale case (used for the recorded
  EXPERIMENTS.md numbers).

The flow condition is the paper's: M = 0.768, alpha = 1.116 degrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..coloring import color_edges
from ..mesh import bump_channel
from ..multigrid import MultigridHierarchy, cycle_structure
from ..perfmodel.flops import FlopCounter
from ..solver.config import SolverConfig
from ..state import freestream_state

__all__ = ["CaseSpec", "FAST_CASE", "FULL_CASE", "build_hierarchy",
           "measure_level_flops", "mg_visits"]

MACH = 0.768
ALPHA_DEG = 1.116


@dataclass(frozen=True)
class CaseSpec:
    """Mesh-resolution ladder + solver settings of one workload size."""

    name: str
    #: (nx, ny, nz) per multigrid level, fine to coarse
    levels: tuple
    config: SolverConfig = field(default_factory=SolverConfig)

    def freestream(self) -> np.ndarray:
        return freestream_state(MACH, ALPHA_DEG)


FAST_CASE = CaseSpec(
    name="fast",
    levels=((24, 4, 8), (12, 2, 4), (6, 2, 2)),
)

FULL_CASE = CaseSpec(
    name="full",
    # ~16.4k fine vertices with a ~6.8x coarsening ratio per level — the
    # same ladder shape as the paper's 804k/106k/... sequence, and large
    # enough that partition surface scaling is in the paper's regime at
    # the 16/32-rank model runs.
    levels=((72, 8, 24), (36, 4, 12), (18, 2, 6), (9, 2, 3)),
)


@lru_cache(maxsize=4)
def _cached_hierarchy(name: str):
    case = {"fast": FAST_CASE, "full": FULL_CASE}[name]
    meshes = [bump_channel(*lvl) for lvl in case.levels]
    return MultigridHierarchy(meshes, case.freestream(), case.config)


def build_hierarchy(case: CaseSpec) -> MultigridHierarchy:
    """Multigrid hierarchy for a case (cached — meshes are deterministic)."""
    if case.name in ("fast", "full"):
        return _cached_hierarchy(case.name)
    meshes = [bump_channel(*lvl) for lvl in case.levels]
    return MultigridHierarchy(meshes, case.freestream(), case.config)


def measure_level_flops(hierarchy: MultigridHierarchy) -> list:
    """Measured flops of one five-stage step on each level.

    Runs one instrumented step per level from freestream — flop counts are
    state-independent (same loops every cycle), so one step suffices.
    """
    flops = []
    for lv in hierarchy.levels:
        counter = FlopCounter()
        solver = lv.solver
        saved = solver.flops
        solver.flops = counter
        try:
            solver.step(solver.freestream_solution())
        finally:
            solver.flops = saved
        flops.append(counter.total)
    return flops


def mg_visits(n_levels: int, gamma: int) -> list:
    """Time-step visits per level per cycle, from the actual recursion."""
    visits = [0] * n_levels
    for kind, level in cycle_structure(n_levels, gamma):
        if kind == "E":
            visits[level] += 1
    return visits


def level_colorings(hierarchy: MultigridHierarchy) -> list:
    """Greedy edge colouring of each level (group sizes for the C90 model)."""
    out = []
    for lv in hierarchy.levels:
        struct = lv.solver.struct
        out.append(color_edges(struct.edges, struct.n_vertices))
    return out
