"""The paper's published numbers, transcribed from Tables 1-2 and the text.

Every harness report prints these next to the model/measured values so the
comparison (EXPERIMENTS.md) is reproducible from a single source of truth.
"""

from __future__ import annotations

__all__ = ["TABLE_1A", "TABLE_1B", "TABLE_1C", "TABLE_2A", "TABLE_2B",
           "TABLE_2C", "TEXT_CLAIMS"]

#: Y-MP C90, 100 single-grid cycles: (CPUs, wall s, CPU s, MFlops).
TABLE_1A = [
    (1, 1916, 1878, 252),
    (2, 974, 1909, 495),
    (4, 508, 1957, 966),
    (8, 273, 2038, 1856),
    (16, 156, 2185, 3252),
]

#: Y-MP C90, 100 V-cycle multigrid cycles.
TABLE_1B = [
    (1, 2586, 2557, 247),
    (2, 1326, 2611, 485),
    (4, 698, 2572, 945),
    (8, 380, 2805, 1804),
    (16, 223, 3085, 3161),
]

#: Y-MP C90, 100 W-cycle multigrid cycles.
TABLE_1C = [
    (1, 3041, 2992, 249),
    (2, 1552, 3048, 484),
    (4, 815, 3146, 939),
    (8, 444, 3323, 1790),
    (16, 268, 3709, 3136),
]

#: Touchstone Delta, 100 single-grid cycles:
#: (nodes, comm s, comp s, total s, MFlops).
TABLE_2A = [
    (256, 121, 326, 448, 778),
    (512, 95, 170, 265, 1496),
]

#: Touchstone Delta, 100 V-cycle multigrid cycles.
TABLE_2B = [
    (256, 536, 427, 963, 680),
    (512, 374, 231, 605, 1252),
]

#: Touchstone Delta, 100 W-cycle multigrid cycles (paper: estimated).
TABLE_2C = [
    (256, 787, 596, 1383, 573),
    (512, 565, 278, 843, 1030),
]

#: Quantitative claims made in the running text, keyed for the tests and
#: the comparison harness.
TEXT_CLAIMS = {
    # Section 2.3: sequential cycle-cost ratios vs a single-grid cycle.
    "w_cycle_cost_ratio": 1.90,
    "v_cycle_cost_ratio": 1.75,
    # Section 3.2.
    "c90_parallelism": 0.99,             # >99% parallel
    "c90_cpu_wall_ratio_16": 15.4,
    "c90_cpu_overhead_16": 0.20,          # ~20% CPU time increase
    "c90_speedup_16_wcycle": 12.4,
    "c90_gflops_16": 3.1,
    "c90_wall_16_wcycle_s": 242,          # incl. I/O & monitoring
    # Section 4.4 / 5.
    "delta_512_gflops_sg": 1.5,
    "delta_mg_v_rate_degradation": (0.10, 0.15),
    "delta_mg_w_rate_degradation": (0.25, 0.30),
    "delta_compute_comm_ratio": 0.5,      # ~50% comp/(comp+comm)... see text
    "c90_vs_delta_factor": 2.0,           # C90 ~2x faster than 512 Delta
    "delta_512_equiv_c90_cpus": 5,
    "reordering_speedup": 2.0,            # Section 4.2
    "c90_peak_fraction": 0.21,
    "delta_peak_fraction": 0.05,
    # Convergence (Figure 2 & Section 3.2): ~6 orders in 100 W-cycles on
    # the paper's mesh; single grid needs ~1 hour (vs 242 s) to converge.
    "w_cycle_orders_in_100": 6.0,
    "sg_to_converge_s": 3600.0,
    "v_cycle_to_converge_s": 360.0,
}
