"""Regeneration of the paper's Tables 1a-1c and 2a-2c.

Each ``table*`` function returns ``(model_rows, paper_rows)`` where the
model rows come from the measured workload (flops, colourings, partitions,
traffic) pushed through the machine models, scaled to the paper's mesh
sizes as documented in DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from functools import lru_cache

from ..distsolver import DistributedEulerSolver, DistributedMultigrid
from ..parti.simmpi import SimMachine
from ..partition import recursive_spectral_bisection
from ..perfmodel import (CrayWorkload, model_cray_table, measure_traffic,
                         model_delta_run, edge_loop_hit_rate,
                         PAPER_FINE_MESH)
from ..perfmodel.delta import fit_effective_message_costs
from .paper_data import (TABLE_1A, TABLE_1B, TABLE_1C, TABLE_2A, TABLE_2B,
                         TABLE_2C)
from .workloads import (FAST_CASE, FULL_CASE, CaseSpec, build_hierarchy,
                        level_colorings, measure_level_flops, mg_visits)

__all__ = ["table1", "table2", "format_table1", "format_table2",
           "EDGE_SWEEPS_PER_STEP"]

#: Edge sweeps per five-stage time step: 5 convective + 2x2 dissipation
#: passes + 2x5 smoothing sweeps + 1 time-step sweep.  Sets the number of
#: autotasked regions (colour loops) per step in the C90 overhead model.
EDGE_SWEEPS_PER_STEP = 20

#: Our model rank counts for the Delta runs.  The paper runs 256 and 512
#: nodes on an 804k-node mesh; we run 16 and 32 ranks on the laptop-scale
#: mesh, preserving the paper's 2:1 scaling step, and let the model scale
#: per-rank volume/surface quantities up (see perfmodel.delta).
DELTA_RANK_MAP = {256: 16, 512: 32}

_STRATEGIES = {"sg": (None, TABLE_2A, TABLE_1A),
               "v": (1, TABLE_2B, TABLE_1B),
               "w": (2, TABLE_2C, TABLE_1C)}


def _paper_levels(n_levels: int, single_grid: bool):
    nodes = PAPER_FINE_MESH["level_nodes"]
    edges = PAPER_FINE_MESH["level_edges"]
    if single_grid:
        return nodes[:1], edges[:1]
    return nodes[:n_levels], edges[:n_levels]


def table1(strategy: str, case: CaseSpec = FULL_CASE,
           cpu_counts=(1, 2, 4, 8, 16)):
    """Model Table 1a/1b/1c ('sg', 'v', 'w'): C90 wall/CPU/MFlops rows."""
    gamma, _, paper_rows = _STRATEGIES[strategy]
    hierarchy = build_hierarchy(case)
    level_flops = measure_level_flops(hierarchy)
    colorings = level_colorings(hierarchy)
    our_edges = [lv.solver.n_edges for lv in hierarchy.levels]

    single = gamma is None
    n_levels = 1 if single else hierarchy.n_levels
    _, paper_edges = _paper_levels(n_levels, single)
    n_levels = min(n_levels, len(paper_edges))

    scaled_flops, scaled_groups = [], []
    for l in range(n_levels):
        ratio = paper_edges[l] / our_edges[l]
        scaled_flops.append(level_flops[l] * ratio)
        scaled_groups.append(colorings[l].group_sizes() * ratio)
    visits = [1] if single else mg_visits(n_levels, gamma)

    workload = CrayWorkload(
        level_flops_per_cycle=scaled_flops,
        level_visits_per_cycle=visits,
        level_group_sizes=scaled_groups,
        sweeps_per_step=EDGE_SWEEPS_PER_STEP,
        n_cycles=100,
    )
    model_rows = [m.row() for m in model_cray_table(workload, cpu_counts)]
    return model_rows, paper_rows


def _measure_strategy(strategy: str, case: CaseSpec, p: int,
                      n_model_cycles: int, seed: int):
    """Run one strategy at ``p`` simulated ranks and measure it."""
    gamma, _, _ = _STRATEGIES[strategy]
    hierarchy = build_hierarchy(case)
    w_inf = case.freestream()
    machine = SimMachine(p)
    if gamma is None:
        fine_struct = hierarchy.levels[0].solver.struct
        asg = recursive_spectral_bisection(fine_struct.edges,
                                           fine_struct.n_vertices, p,
                                           seed=seed)
        solver = DistributedEulerSolver(fine_struct, w_inf, asg,
                                        case.config, machine=machine)
        solver.run(n_cycles=n_model_cycles)
        flops_dicts = [solver.rank_flops]
        level_vertices = [fine_struct.n_vertices]
        level_edges = [fine_struct.n_edges]
        ghost_ratio = [_ghost_ratio(solver)]
    else:
        assignments = [
            recursive_spectral_bisection(lv.solver.struct.edges,
                                         lv.solver.n_vertices, p, seed=seed)
            for lv in hierarchy.levels
        ]
        dmg = DistributedMultigrid(hierarchy, assignments, w_inf,
                                   case.config, machine=machine)
        dmg.run(n_cycles=n_model_cycles, gamma=gamma)
        flops_dicts = [s.rank_flops for s in dmg.solvers]
        level_vertices = [lv.solver.n_vertices for lv in hierarchy.levels]
        level_edges = [lv.solver.n_edges for lv in hierarchy.levels]
        ghost_ratio = [_ghost_ratio(s) for s in dmg.solvers]
    return measure_traffic(machine.log, flops_dicts, n_model_cycles,
                           level_vertices, level_edges, ghost_ratio)


def _ghost_ratio(solver: DistributedEulerSolver) -> float:
    """Mean ghosts per rank / mean owned per rank (saturation measure)."""
    ghosts = solver.schedule.ghost_counts().mean()
    owned = solver.dmesh.table.n_owned.mean()
    return float(ghosts / max(owned, 1e-300))


@lru_cache(maxsize=4)
def _delta_calibration(case_name: str, n_model_cycles: int, seed: int):
    """Fit effective message costs: (t_sync_s, t_byte_s).

    Calibration set: the communication columns of all six Table 2 rows
    (single grid / V / W at 256 and 512 nodes), in relative least squares.
    No two-parameter model fits all six exactly — Table 2c is the paper's
    own estimate — so the residuals per row are part of the reproduction
    record (EXPERIMENTS.md).  The per-byte term carries the surface
    traffic, the per-phase term the synchronisation cost that multiplies
    with coarse-grid visits.
    """
    case = {"fast": FAST_CASE, "full": FULL_CASE}[case_name] \
        if case_name in ("fast", "full") else FULL_CASE
    hierarchy = build_hierarchy(case)
    meas, nodes, comm, paper_level_sets = [], [], [], []
    for strategy, paper_table in (("sg", TABLE_2A), ("v", TABLE_2B),
                                  ("w", TABLE_2C)):
        single = strategy == "sg"
        levels = _paper_levels(1 if single else hierarchy.n_levels, single)
        for (paper_p, row) in zip((256, 512), paper_table):
            meas.append(_measure_strategy(strategy, case,
                                          DELTA_RANK_MAP[paper_p],
                                          n_model_cycles, seed))
            nodes.append(paper_p)
            comm.append(row[1])
            paper_level_sets.append(levels)
    return fit_effective_message_costs(meas, nodes, paper_level_sets, comm)


def table2(strategy: str, case: CaseSpec = FULL_CASE, n_model_cycles: int = 2,
           node_counts=(256, 512), seed: int = 1234, calibrated: bool = True):
    """Model Table 2a/2b/2c: Delta comm/comp/total/MFlops rows.

    Runs the actual distributed solver on the simulated machine at the
    mapped rank count, measures traffic and flops, then scales to the
    paper's mesh/nodes.  With ``calibrated=True`` the effective message
    costs fitted on Table 2a are used (see perfmodel.delta); otherwise the
    nominal NX hardware constants apply.
    """
    gamma, paper_rows, _ = _STRATEGIES[strategy]
    hierarchy = build_hierarchy(case)
    single = gamma is None
    n_levels = 1 if single else hierarchy.n_levels
    paper_nodes_lv, paper_edges_lv = _paper_levels(n_levels, single)

    fine_struct = hierarchy.levels[0].solver.struct
    hit_rate = edge_loop_hit_rate(fine_struct.edges,
                                  np.arange(fine_struct.n_edges))

    t_msg = t_byte = None
    if calibrated:
        t_msg, t_byte = _delta_calibration(case.name, n_model_cycles, seed)

    model_rows = []
    for paper_p in node_counts:
        meas = _measure_strategy(strategy, case, DELTA_RANK_MAP[paper_p],
                                 n_model_cycles, seed)
        model = model_delta_run(meas, paper_p, paper_nodes_lv, paper_edges_lv,
                                hit_rate, t_sync_s=t_msg, t_byte_s=t_byte)
        model_rows.append(model.row())
    return model_rows, paper_rows


# ---------------------------------------------------------------------------
def format_table1(model_rows, paper_rows, title: str) -> str:
    lines = [title,
             f"{'CPUs':>5s} {'wall(model)':>12s} {'wall(paper)':>12s} "
             f"{'CPUs(model)':>12s} {'CPUs(paper)':>12s} "
             f"{'MF(model)':>10s} {'MF(paper)':>10s}"]
    for m, p in zip(model_rows, paper_rows):
        lines.append(f"{m[0]:5d} {m[1]:12d} {p[1]:12d} {m[2]:12d} {p[2]:12d} "
                     f"{m[3]:10d} {p[3]:10d}")
    return "\n".join(lines)


def format_table2(model_rows, paper_rows, title: str) -> str:
    lines = [title,
             f"{'nodes':>6s} {'comm(m)':>8s} {'comm(p)':>8s} {'comp(m)':>8s} "
             f"{'comp(p)':>8s} {'total(m)':>9s} {'total(p)':>9s} "
             f"{'MF(m)':>7s} {'MF(p)':>7s}"]
    for m, p in zip(model_rows, paper_rows):
        lines.append(f"{m[0]:6d} {m[1]:8d} {p[1]:8d} {m[2]:8d} {p[2]:8d} "
                     f"{m[3]:9d} {p[3]:9d} {m[4]:7d} {p[4]:7d}")
    return "\n".join(lines)
