"""Section 5 — "Shared vs Distributed Memory: A Comparison".

Derives the paper's cross-machine claims from our two models:

* the full C90 outperforms the 512-node Delta by roughly a factor of two;
* the 512-node Delta is roughly equivalent to a 5-processor C90;
* both machines run far below peak (21% / 5%);
* the C90's rates are insensitive to solution strategy, the Delta's are
  not (coarse grids raise the communication-to-computation ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perfmodel.machines import CrayC90, TouchstoneDelta
from .tables import table1, table2
from .workloads import FULL_CASE, CaseSpec

__all__ = ["MachineComparison", "compare_machines"]


@dataclass
class MachineComparison:
    """Derived cross-machine quantities (model vs paper claims)."""

    c90_16_wall: float          # W-cycle, 100 cycles
    delta_512_wall: float       # W-cycle, 100 cycles
    c90_over_delta: float       # wall-clock factor (paper: ~2)
    delta_equiv_c90_cpus: float  # paper: ~5
    c90_peak_fraction: float     # paper: 0.21
    delta_peak_fraction: float   # paper: 0.05
    delta_comp_comm_ratio: float  # computation/total, paper ~50% for SG-ish
    c90_rate_spread: float       # max/min MFlops across strategies at 16 CPUs

    def report(self) -> str:
        return "\n".join([
            "Shared vs distributed memory (model | paper claim):",
            f"  C90/16 vs Delta/512 speed factor: "
            f"{self.c90_over_delta:.2f} | ~2",
            f"  Delta/512 equivalent C90 CPUs:    "
            f"{self.delta_equiv_c90_cpus:.1f} | ~5",
            f"  C90 fraction of peak:             "
            f"{self.c90_peak_fraction:.2f} | 0.21",
            f"  Delta fraction of peak:           "
            f"{self.delta_peak_fraction:.3f} | 0.05",
            f"  Delta comp/(comp+comm), W-cycle:  "
            f"{self.delta_comp_comm_ratio:.2f} | ~0.5 (problem dependent)",
            f"  C90 MFlops spread across strategies at 16 CPUs: "
            f"{self.c90_rate_spread:.2f}x | 'relatively insensitive'",
        ])


def compare_machines(case: CaseSpec = FULL_CASE) -> MachineComparison:
    """Build the Section 5 comparison from the two calibrated models."""
    cray = CrayC90()
    delta = TouchstoneDelta()

    rows_w_c90, _ = table1("w", case)
    rows_w_delta, _ = table2("w", case)
    rows_sg_delta, _ = table2("sg", case)

    c90_16 = rows_w_c90[-1]                 # (16, wall, cpu, mflops)
    delta_512 = rows_w_delta[-1]            # (512, comm, comp, total, mflops)
    c90_wall = float(c90_16[1])
    delta_wall = float(delta_512[3])

    # Equivalent C90 CPU count: interpolate the W-cycle wall-clock curve.
    equiv = None
    prev = None
    for row in rows_w_c90:
        p, wall = row[0], float(row[1])
        if wall <= delta_wall:
            if prev is None:
                equiv = float(p)
            else:
                p0, w0 = prev
                # log-linear interpolation between the bracketing rows
                import math
                frac = (math.log(w0) - math.log(delta_wall)) / \
                    (math.log(w0) - math.log(wall))
                equiv = p0 * (p / p0) ** frac
            break
        prev = (p, wall)
    if equiv is None:
        equiv = 16.0 * c90_wall / delta_wall if delta_wall > 0 else 16.0

    c90_peak = cray.peak_mflops_per_cpu * 16
    delta_peak = delta.peak_mflops_per_node * 512

    rates_16 = [float(table1(s, case)[0][-1][3]) for s in ("sg", "v", "w")]
    sg_512 = rows_sg_delta[-1]
    comp_ratio_w = float(delta_512[2]) / float(delta_512[3])

    return MachineComparison(
        c90_16_wall=c90_wall,
        delta_512_wall=delta_wall,
        c90_over_delta=delta_wall / c90_wall,
        delta_equiv_c90_cpus=equiv,
        c90_peak_fraction=float(c90_16[3]) / c90_peak,
        delta_peak_fraction=float(sg_512[4]) / delta_peak,
        delta_comp_comm_ratio=comp_ratio_w,
        c90_rate_spread=max(rates_16) / min(rates_16),
    )
