"""Regeneration of the paper's Figures 1-4.

* Figure 1 — the V/W cycle structure (E time steps, I interpolations);
* Figure 2 — convergence history of single grid vs V vs W cycles;
* Figure 3 — the mesh about the 3-D configuration (our ellipsoid analog),
  reported as counts + quality statistics;
* Figure 4 — Mach contours of the converged transonic solution, as
  marching-edge iso-line point sets plus shock diagnostics.

Everything returns plain data structures (no plotting dependency); the
benchmark harness prints the summaries and can dump ``.npz`` files for
external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mesh import build_edge_structure, ellipsoid_shell, mesh_quality
from ..multigrid import cycle_structure, run_multigrid
from ..solver import extract_isoline, mach_field
from .workloads import FULL_CASE, CaseSpec, build_hierarchy

__all__ = ["fig1_cycle_diagrams", "fig2_convergence", "fig3_mesh_report",
           "fig4_mach_contours", "format_cycle_diagram"]


def fig1_cycle_diagrams(n_levels: int = 4) -> dict:
    """Event sequences of the V- and W-cycles (Figure 1)."""
    return {
        "V": cycle_structure(n_levels, gamma=1),
        "W": cycle_structure(n_levels, gamma=2),
    }


def format_cycle_diagram(events: list, n_levels: int) -> str:
    """ASCII rendering of a cycle: one row per level, E/I marks in order."""
    rows = [[" "] * len(events) for _ in range(n_levels)]
    for col, (kind, level) in enumerate(events):
        rows[level][col] = kind
    return "\n".join(f"level {l}: " + "".join(rows[l]) for l in range(n_levels))


@dataclass
class ConvergenceFigure:
    """The three residual histories of Figure 2 (normalised to cycle 0)."""

    cycles: dict = field(default_factory=dict)       # name -> list of residuals

    def orders_reduced(self, name: str) -> float:
        r = np.asarray(self.cycles[name])
        r = r[r > 0]
        return float(np.log10(r[0] / r.min())) if r.size > 1 else 0.0

    def summary(self) -> str:
        lines = []
        for name, hist in self.cycles.items():
            lines.append(f"{name:>12s}: {len(hist) - 1} cycles, "
                         f"{self.orders_reduced(name):.2f} orders reduced, "
                         f"final residual {hist[-1]:.3e}")
        return "\n".join(lines)


def fig2_convergence(case: CaseSpec = FULL_CASE, n_mg_cycles: int = 100,
                     n_sg_cycles: int = 200) -> ConvergenceFigure:
    """Residual histories: single grid vs V-cycle vs W-cycle (Figure 2).

    The paper runs 500 single-grid and 100 multigrid cycles on the 804k
    mesh; defaults here are scaled for laptop turnaround and can be
    raised to the paper's counts with the keyword arguments.
    """
    hierarchy = build_hierarchy(case)
    fig = ConvergenceFigure()

    _, hist_w = run_multigrid(hierarchy, n_cycles=n_mg_cycles, gamma=2)
    fig.cycles["W-cycle"] = hist_w
    _, hist_v = run_multigrid(hierarchy, n_cycles=n_mg_cycles, gamma=1)
    fig.cycles["V-cycle"] = hist_v

    solver = hierarchy.fine.solver
    _, hist_sg = solver.run(n_cycles=n_sg_cycles)
    fig.cycles["single grid"] = hist_sg
    return fig


def fig3_mesh_report(n_surface: int = 10, n_layers: int = 10) -> dict:
    """The "mesh about a three dimensional configuration" report (Figure 3).

    The paper shows its second-finest aircraft mesh (106,064 nodes,
    575,986 tets).  We generate the ellipsoid-shell analog and report the
    same statistics plus quality metrics; resolution parameters scale the
    mesh up or down.
    """
    mesh = ellipsoid_shell(n_surface=n_surface, n_layers=n_layers)
    struct = build_edge_structure(mesh)
    quality = mesh_quality(mesh, struct)
    return {
        "mesh": mesh,
        "struct": struct,
        "quality": quality,
        "paper_nodes": 106_064,
        "paper_tets": 575_986,
        "report": (f"{mesh.describe()}\n{quality.report()}\n"
                   f"(paper's shown mesh: 106,064 nodes / 575,986 tets; "
                   f"finest: 804,056 nodes / ~4.5M tets)"),
    }


@dataclass
class MachContourFigure:
    """Figure 4 data: Mach field, iso-lines and shock diagnostics."""

    mach: np.ndarray
    levels: list
    isolines: dict          # level -> (npts, 3) crossing points
    mach_max: float
    mach_min: float
    shock_x: float | None   # streamwise shock position on the lower wall

    def summary(self) -> str:
        lines = [f"Mach range [{self.mach_min:.3f}, {self.mach_max:.3f}]"]
        for lvl in self.levels:
            lines.append(f"  M = {lvl:.2f}: {len(self.isolines[lvl])} "
                         f"contour points")
        if self.shock_x is not None:
            lines.append(f"shock foot at x = {self.shock_x:.3f} on the bump "
                         f"(bump spans [1, 2])")
        return "\n".join(lines)


def fig4_mach_contours(case: CaseSpec = FULL_CASE, n_cycles: int = 120,
                       levels=(0.8, 0.9, 0.95, 1.0, 1.05)) -> MachContourFigure:
    """Converge the transonic case with W-cycles and contour the Mach field.

    The paper's Figure 4 shows "good shock resolution" on the aircraft;
    our analog is the supersonic pocket terminated by a shock over the
    bump.  The shock position is located as the strongest streamwise Mach
    drop along the lower wall.
    """
    hierarchy = build_hierarchy(case)
    w, _ = run_multigrid(hierarchy, n_cycles=n_cycles, gamma=2)
    solver = hierarchy.fine.solver
    mesh = hierarchy.fine.mesh
    mach = mach_field(w)

    isolines = {lvl: extract_isoline(mesh.vertices, solver.edges, mach, lvl)
                for lvl in levels}

    # Shock diagnostic: on wall vertices (z near the bump), sort by x and
    # find the largest negative Mach jump inside the bump interval.
    wall = solver.bdata.wall_vertices
    shock_x = None
    if wall.size:
        x = mesh.vertices[wall, 0]
        order = np.argsort(x)
        xs, ms = x[order], mach[wall][order]
        inside = (xs > 1.0) & (xs < 2.2)
        if np.count_nonzero(inside) > 3:
            xs_i, ms_i = xs[inside], ms[inside]
            drops = np.diff(ms_i)
            k = int(np.argmin(drops))
            if drops[k] < -0.02:
                shock_x = float(0.5 * (xs_i[k] + xs_i[k + 1]))

    return MachContourFigure(
        mach=mach,
        levels=list(levels),
        isolines=isolines,
        mach_max=float(mach.max()),
        mach_min=float(mach.min()),
        shock_x=shock_x,
    )
