"""Check every quantitative claim in the paper's running text.

``check_claims`` evaluates the model/measured value for each entry of
:data:`repro.harness.paper_data.TEXT_CLAIMS` that we can compute, and
reports it next to the paper's number.  This is the text-claims
counterpart of the table regenerations — run via
``python -m repro.harness claims``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distsolver import random_shuffle_edges, sort_edges_by_vertex
from ..multigrid import cycle_work_units, run_multigrid
from ..perfmodel import node_rate_for_ordering
from .paper_data import TEXT_CLAIMS
from .tables import table1, table2
from .workloads import FULL_CASE, CaseSpec, build_hierarchy

__all__ = ["ClaimCheck", "check_claims", "format_claims"]


@dataclass
class ClaimCheck:
    name: str
    paper: str
    model: str
    holds: bool


def check_claims(case: CaseSpec = FULL_CASE,
                 fig2_cycles: int = 60) -> list:
    """Evaluate the checkable text claims; returns a list of ClaimCheck."""
    checks: list[ClaimCheck] = []
    hierarchy = build_hierarchy(case)

    # --- sequential cycle-cost ratios (Section 2.3) ------------------------
    v_ratio = cycle_work_units(hierarchy, 1)
    w_ratio = cycle_work_units(hierarchy, 2)
    checks.append(ClaimCheck(
        "V-cycle cost vs single-grid cycle",
        f"{TEXT_CLAIMS['v_cycle_cost_ratio']:.2f}x", f"{v_ratio:.2f}x",
        1.0 < v_ratio < TEXT_CLAIMS["v_cycle_cost_ratio"] + 0.3))
    checks.append(ClaimCheck(
        "W-cycle cost vs single-grid cycle",
        f"{TEXT_CLAIMS['w_cycle_cost_ratio']:.2f}x", f"{w_ratio:.2f}x",
        v_ratio < w_ratio < TEXT_CLAIMS["w_cycle_cost_ratio"] + 0.3))

    # --- C90 parallel efficiency (Section 3.2) -----------------------------
    rows_sg, _ = table1("sg", case)
    speedup = rows_sg[0][1] / rows_sg[-1][1]
    serial_fraction = (16.0 / speedup - 1.0) / 15.0
    checks.append(ClaimCheck(
        "C90 parallel fraction", "> 0.99",
        f"{1.0 - serial_fraction:.3f}", serial_fraction < 0.03))
    cpu_overhead = rows_sg[-1][2] / rows_sg[0][2] - 1.0
    checks.append(ClaimCheck(
        "C90 CPU-time inflation @16",
        f"~{TEXT_CLAIMS['c90_cpu_overhead_16']:.0%}",
        f"{cpu_overhead:.0%}", 0.0 < cpu_overhead < 0.6))

    rows_w, _ = table1("w", case)
    speedup_w = rows_w[0][1] / rows_w[-1][1]
    checks.append(ClaimCheck(
        "C90 W-cycle speed-up @16",
        f"{TEXT_CLAIMS['c90_speedup_16_wcycle']:.1f}x",
        f"{speedup_w:.1f}x", 8.0 < speedup_w < 16.0))

    # --- Delta rates (Section 4.4) -----------------------------------------
    rows_2a, _ = table2("sg", case)
    checks.append(ClaimCheck(
        "Delta 512 single-grid GFlops",
        f"{TEXT_CLAIMS['delta_512_gflops_sg']:.1f}",
        f"{rows_2a[1][4] / 1000:.1f}",
        0.8 < rows_2a[1][4] / 1000 < 2.5))
    rows_2b, _ = table2("v", case)
    v_deg = 1.0 - rows_2b[0][4] / rows_2a[0][4]
    lo, hi = TEXT_CLAIMS["delta_mg_v_rate_degradation"]
    checks.append(ClaimCheck(
        "Delta V-cycle rate degradation",
        f"{lo:.0%}-{hi:.0%}", f"{v_deg:.0%}", 0.03 < v_deg < 0.45))
    rows_2c, _ = table2("w", case)
    w_deg = 1.0 - rows_2c[0][4] / rows_2a[0][4]
    lo, hi = TEXT_CLAIMS["delta_mg_w_rate_degradation"]
    checks.append(ClaimCheck(
        "Delta W-cycle rate degradation",
        f"{lo:.0%}-{hi:.0%}", f"{w_deg:.0%}", 0.10 < w_deg < 0.60))

    # --- reordering speed-up (Section 4.2) ---------------------------------
    struct = hierarchy.levels[0].solver.struct
    ordered = node_rate_for_ordering(struct.edges,
                                     sort_edges_by_vertex(struct.edges))
    shuffled = node_rate_for_ordering(struct.edges,
                                      random_shuffle_edges(struct.n_edges))
    speedup_reorder = ordered.mflops / shuffled.mflops
    checks.append(ClaimCheck(
        "node/edge reordering speed-up",
        f"{TEXT_CLAIMS['reordering_speedup']:.1f}x",
        f"{speedup_reorder:.2f}x", 1.3 < speedup_reorder < 3.5))

    # --- W-cycle convergence (Figure 2 / Section 3.2) ----------------------
    _, hist_w = run_multigrid(hierarchy, n_cycles=fig2_cycles, gamma=2)
    hist_arr = np.asarray(hist_w)
    orders = float(np.log10(hist_arr[0] / max(hist_arr.min(), 1e-300)))
    scaled_target = TEXT_CLAIMS["w_cycle_orders_in_100"] * fig2_cycles / 100
    checks.append(ClaimCheck(
        f"W-cycle orders reduced in {fig2_cycles} cycles",
        f"~{scaled_target:.1f}", f"{orders:.2f}",
        orders > 0.5 * scaled_target))

    return checks


def format_claims(checks: list) -> str:
    lines = [f"{'claim':>38s} {'paper':>12s} {'model':>10s}  verdict"]
    for c in checks:
        lines.append(f"{c.name:>38s} {c.paper:>12s} {c.model:>10s}  "
                     f"{'holds' if c.holds else 'DEVIATES'}")
    n_hold = sum(c.holds for c in checks)
    lines.append(f"{n_hold}/{len(checks)} claims hold within the stated bands")
    return "\n".join(lines)
