"""Export figure data to ``.npz`` for external plotting.

The harness prints text summaries; this module saves the underlying
series so the figures can be drawn with any plotting tool:

* ``fig2_convergence.npz`` — residual histories per strategy;
* ``fig4_mach.npz`` — Mach field and per-level iso-line point clouds.

Used by ``python -m repro.harness fig2 --save DIR`` (and fig4).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_fig2", "save_fig4", "load_record"]


def save_fig2(fig, directory) -> Path:
    """Save a :class:`ConvergenceFigure`; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "fig2_convergence.npz"
    payload = {f"history_{name.replace(' ', '_')}": np.asarray(hist)
               for name, hist in fig.cycles.items()}
    np.savez_compressed(path, **payload)
    return path


def save_fig4(fig, directory) -> Path:
    """Save a :class:`MachContourFigure`; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "fig4_mach.npz"
    payload = {"mach": fig.mach,
               "levels": np.asarray(fig.levels),
               "shock_x": np.asarray(
                   fig.shock_x if fig.shock_x is not None else np.nan)}
    for lvl in fig.levels:
        payload[f"isoline_{lvl:.2f}".replace(".", "p")] = fig.isolines[lvl]
    np.savez_compressed(path, **payload)
    return path


def load_record(path) -> dict:
    """Load any record file back into a plain dict of arrays."""
    with np.load(path, allow_pickle=False) as data:
        return {key: data[key] for key in data.files}
