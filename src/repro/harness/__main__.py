"""Command-line harness: regenerate any table or figure of the paper.

Usage::

    python -m repro.harness table1a [--fast]
    python -m repro.harness table2c
    python -m repro.harness fig2 [--cycles N]
    python -m repro.harness compare
    python -m repro.harness all [--fast]

``--fast`` switches to the small FAST_CASE meshes (seconds instead of
minutes; numbers shift but every qualitative shape survives).
"""

from __future__ import annotations

import argparse
import sys

from .compare import compare_machines
from .figures import (fig1_cycle_diagrams, fig2_convergence, fig3_mesh_report,
                      fig4_mach_contours, format_cycle_diagram)
from .tables import format_table1, format_table2, table1, table2
from .workloads import FAST_CASE, FULL_CASE


def _print_table1(strategy: str, case) -> None:
    titles = {"sg": "Table 1a: Y-MP C90, 100 single grid cycles",
              "v": "Table 1b: Y-MP C90, 100 V-cycle multigrid cycles",
              "w": "Table 1c: Y-MP C90, 100 W-cycle multigrid cycles"}
    m, p = table1(strategy, case)
    print(format_table1(m, p, titles[strategy]))
    print()


def _print_table2(strategy: str, case) -> None:
    titles = {"sg": "Table 2a: Touchstone Delta, 100 single grid cycles",
              "v": "Table 2b: Touchstone Delta, 100 V-cycle cycles",
              "w": "Table 2c: Touchstone Delta, 100 W-cycle cycles"}
    m, p = table2(strategy, case)
    print(format_table2(m, p, titles[strategy]))
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.harness",
                                     description=__doc__)
    parser.add_argument("target", nargs="?", default="report", choices=[
        "table1a", "table1b", "table1c", "table2a", "table2b", "table2c",
        "fig1", "fig2", "fig3", "fig4", "compare", "claims", "report",
        "all"])
    parser.add_argument("--fast", action="store_true",
                        help="use the small FAST_CASE meshes")
    parser.add_argument("--cycles", type=int, default=None,
                        help="override cycle count for fig2/fig4/report")
    parser.add_argument("--save", default=None, metavar="DIR",
                        help="save fig2/fig4 data as .npz under DIR")
    parser.add_argument("--report", default=None, metavar="DIR",
                        help="write the run report (report.json + "
                             "report.md) under DIR; implies the 'report' "
                             "target when no target is given")
    parser.add_argument("--ranks", type=int, default=4,
                        help="rank count for the 'report' target")
    parser.add_argument("--backend", choices=["sim", "mp"], default="sim",
                        help="distributed backend for the 'report' "
                             "target: the simulated machine (traffic-"
                             "exact) or real OS processes")
    parser.add_argument("--transport", choices=["pipe", "shm"],
                        default="pipe",
                        help="ghost-payload transport for the mp backend "
                             "of the 'report' target: pickled arrays "
                             "through pipes, or zero-copy shared-memory "
                             "slabs (ignored for --backend sim)")
    parser.add_argument("--trace", default=None, metavar="DIR",
                        help="run with a live telemetry tracer and write "
                             "<target>_trace.json/.jsonl plus a per-phase "
                             "summary under DIR")
    parser.add_argument("--counters", action="store_true",
                        help="print the always-on operational event "
                             "counters (resilience.* detections, "
                             "recoveries, fault injections) after the run")
    args = parser.parse_args(argv)
    case = FAST_CASE if args.fast else FULL_CASE

    if args.target == "report":
        rc = _run_report(args)
        _print_event_counters(args)
        return rc

    targets = ([args.target] if args.target != "all" else
               ["table1a", "table1b", "table1c", "table2a", "table2b",
                "table2c", "fig1", "fig2", "fig3", "fig4", "compare",
                "claims"])

    if args.trace is not None:
        from repro.telemetry import Tracer, use_tracer
        tracer = Tracer()
        with use_tracer(tracer):
            rc = _run_targets(targets, args, case)
        _write_trace(tracer, args.trace, args.target)
        _print_event_counters(args)
        return rc
    rc = _run_targets(targets, args, case)
    _print_event_counters(args)
    return rc


def _run_report(args) -> int:
    """The 'report' target: one distributed run -> observatory RunReport.

    Default case is the box27 mesh at 4 ranks (the paper-scale smoke
    configuration CI archives); ``--fast`` drops to box8 for seconds-long
    test runs.  Both backends run a plain step loop (no residual-norm
    evaluations) so per-cycle traffic and flops are exactly one
    five-stage step — the normalisation the model table assumes.
    """
    import time as _time
    from pathlib import Path

    from repro.distsolver import DistributedEulerSolver
    from repro.mesh import box_mesh, build_edge_structure
    from repro.observatory import (mp_run_report, render_markdown,
                                   sim_run_report)
    from repro.partition import recursive_spectral_bisection
    from repro.solver import SolverConfig
    from repro.state import freestream_state
    from repro.telemetry import Tracer, use_tracer

    n = 8 if args.fast else 27
    case_name = f"box{n}"
    n_cycles = args.cycles or 2
    mesh = box_mesh(n, n, n)
    struct = build_edge_structure(mesh)
    w_inf = freestream_state(mach=0.768, alpha_deg=1.116)
    asg = recursive_spectral_bisection(struct.edges, struct.n_vertices,
                                       args.ranks)
    config = SolverConfig(transport=args.transport)

    def run_steps(driver):
        w_list = driver.freestream_solution()
        t0 = _time.perf_counter()
        for _ in range(n_cycles):
            w_list = driver.step(w_list)
        return _time.perf_counter() - t0

    if args.backend == "sim":
        tracer = Tracer()
        with use_tracer(tracer):
            driver = DistributedEulerSolver(struct, w_inf, asg, config)
            wall_s = run_steps(driver)
        report = sim_run_report(case_name, driver, tracer, n_cycles, wall_s)
    else:
        import numpy as np

        from repro.distsolver import run_distributed_mp

        # Structural twin on the simulated machine: traffic phases and
        # flop counts are partition properties, identical across
        # backends — they feed the model table while the mp run
        # supplies every host-side measurement.
        with use_tracer(Tracer()):
            twin = DistributedEulerSolver(struct, w_inf, asg, config)
            run_steps(twin)
        tracer = Tracer()
        w_global = np.tile(w_inf, (struct.n_vertices, 1))
        t0 = _time.perf_counter()
        run_distributed_mp(twin.dmesh, w_global, w_inf, config,
                           n_cycles=n_cycles, tracer=tracer)
        wall_s = _time.perf_counter() - t0
        report = mp_run_report(case_name, twin, tracer, n_cycles, wall_s)

    markdown = render_markdown(report)
    print(markdown)
    if args.report is not None:
        out = Path(args.report)
        out.mkdir(parents=True, exist_ok=True)
        report.to_json(out / "report.json")
        (out / "report.md").write_text(markdown, encoding="utf-8")
        print(f"report: wrote {out / 'report.json'} and {out / 'report.md'}")
    return 0


def _print_event_counters(args) -> None:
    if not args.counters:
        return
    from repro.telemetry import global_counters
    counters = global_counters()
    print("Operational event counters:")
    if not counters:
        print("  (none recorded)")
        return
    width = max(len(name) for name in counters)
    for name in sorted(counters):
        print(f"  {name:<{width}s} {counters[name]:12.0f}")


def _write_trace(tracer, out_dir: str, target: str) -> None:
    from pathlib import Path

    from repro.telemetry.export import (format_counters, format_summary,
                                        write_chrome_trace, write_jsonl)

    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    chrome = path / f"{target}_trace.json"
    jsonl = path / f"{target}_trace.jsonl"
    n_events = write_chrome_trace(tracer, chrome)
    write_jsonl(tracer, jsonl)
    print(f"trace: wrote {chrome} ({n_events} events) and {jsonl}")
    print(format_summary(tracer, wall_s=tracer.wall_time()))
    print()
    print(format_counters(tracer))


def _run_targets(targets, args, case) -> int:
    for target in targets:
        if target.startswith("table1"):
            _print_table1({"a": "sg", "b": "v", "c": "w"}[target[-1]], case)
        elif target.startswith("table2"):
            _print_table2({"a": "sg", "b": "v", "c": "w"}[target[-1]], case)
        elif target == "fig1":
            n_levels = len(case.levels)
            diagrams = fig1_cycle_diagrams(n_levels)
            for name, events in diagrams.items():
                print(f"Figure 1 — {name}-cycle structure "
                      f"({n_levels} levels):")
                print(format_cycle_diagram(events, n_levels))
                print()
        elif target == "fig2":
            n = args.cycles or (40 if args.fast else 100)
            fig = fig2_convergence(case, n_mg_cycles=n, n_sg_cycles=2 * n)
            print("Figure 2 — convergence histories:")
            print(fig.summary())
            if args.save:
                from .record import save_fig2
                print(f"saved: {save_fig2(fig, args.save)}")
            print()
        elif target == "fig3":
            size = (6, 6) if args.fast else (10, 10)
            print("Figure 3 — mesh about the 3-D configuration "
                  "(ellipsoid analog):")
            print(fig3_mesh_report(*size)["report"])
            print()
        elif target == "fig4":
            n = args.cycles or (40 if args.fast else 120)
            fig = fig4_mach_contours(case, n_cycles=n)
            print("Figure 4 — Mach contours of the transonic solution:")
            print(fig.summary())
            if args.save:
                from .record import save_fig4
                print(f"saved: {save_fig4(fig, args.save)}")
            print()
        elif target == "compare":
            print(compare_machines(case).report())
            print()
        elif target == "claims":
            from .claims import check_claims, format_claims
            n = args.cycles or (30 if args.fast else 60)
            print("Text-claim checks (paper vs model):")
            print(format_claims(check_claims(case, fig2_cycles=n)))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
