"""Sensitivity of the Table 2 reproduction to the calibrated constants.

The Delta model has exactly two fitted constants (per-phase sync cost,
per-byte cost).  A reproduction whose conclusions flip when a calibrated
constant moves by tens of percent would be fragile; this module perturbs
each constant over a range and reports which of the paper's qualitative
findings survive:

* single grid has the highest MFlops rate, W-cycle the lowest;
* communication share grows from single grid to W-cycle;
* total time drops from 256 to 512 nodes for every strategy.

Used by ``benchmarks/bench_sensitivity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tables import (DELTA_RANK_MAP, _delta_calibration, _measure_strategy,
                     _paper_levels)
from .workloads import FULL_CASE, CaseSpec, build_hierarchy

__all__ = ["SensitivityResult", "delta_sensitivity"]


@dataclass
class SensitivityResult:
    """Shape survival across a grid of constant perturbations."""

    factors: list
    #: per (sync_factor, byte_factor): dict of shape-name -> bool
    outcomes: dict = field(default_factory=dict)

    def all_shapes_hold(self) -> bool:
        return all(all(v.values()) for v in self.outcomes.values())

    def fraction_holding(self) -> float:
        checks = [ok for v in self.outcomes.values() for ok in v.values()]
        return sum(checks) / len(checks) if checks else 1.0

    def report(self) -> str:
        lines = [f"{'sync x':>7s} {'byte x':>7s}  shapes"]
        for (fs, fb), shapes in sorted(self.outcomes.items()):
            marks = " ".join(f"{name}={'ok' if ok else 'NO'}"
                             for name, ok in shapes.items())
            lines.append(f"{fs:7.2f} {fb:7.2f}  {marks}")
        return "\n".join(lines)


def _rows_for(strategy: str, case: CaseSpec, t_sync: float, t_byte: float,
              measurements: dict):
    """Model rows for one strategy at given constants (measurements reused)."""
    import numpy as np

    from ..perfmodel import edge_loop_hit_rate, model_delta_run

    hierarchy = build_hierarchy(case)
    single = strategy == "sg"
    n_levels = 1 if single else hierarchy.n_levels
    levels = _paper_levels(n_levels, single)
    fine_struct = hierarchy.levels[0].solver.struct
    hit = edge_loop_hit_rate(fine_struct.edges,
                             np.arange(fine_struct.n_edges))
    rows = []
    for paper_p in (256, 512):
        meas = measurements[(strategy, paper_p)]
        rows.append(model_delta_run(meas, paper_p, levels[0], levels[1], hit,
                                    t_sync_s=t_sync, t_byte_s=t_byte).row())
    return rows


def delta_sensitivity(case: CaseSpec = FULL_CASE,
                      factors=(0.5, 1.0, 2.0),
                      n_model_cycles: int = 2,
                      seed: int = 1234) -> SensitivityResult:
    """Perturb the fitted constants over ``factors`` x ``factors``."""
    t_sync0, t_byte0 = _delta_calibration(case.name, n_model_cycles, seed)
    # Measure each strategy once; the model is then re-evaluated cheaply.
    measurements = {}
    for strategy in ("sg", "v", "w"):
        for paper_p in (256, 512):
            measurements[(strategy, paper_p)] = _measure_strategy(
                strategy, case, DELTA_RANK_MAP[paper_p], n_model_cycles, seed)

    result = SensitivityResult(factors=list(factors))
    for fs in factors:
        for fb in factors:
            rows = {s: _rows_for(s, case, t_sync0 * fs, t_byte0 * fb,
                                 measurements)
                    for s in ("sg", "v", "w")}
            shapes = {
                "rate-order": (rows["sg"][0][4] > rows["v"][0][4]
                               > rows["w"][0][4]),
                "comm-share": (rows["sg"][1][1] / rows["sg"][1][3]
                               < rows["w"][1][1] / rows["w"][1][3]),
                "scaling": all(rows[s][1][3] < rows[s][0][3]
                               for s in ("sg", "v", "w")),
            }
            result.outcomes[(fs, fb)] = shapes
    return result
