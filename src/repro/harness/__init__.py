"""Experiment harness: regenerates every table and figure of the paper
and prints model-vs-paper comparisons.  CLI: ``python -m repro.harness``."""

from .compare import MachineComparison, compare_machines
from .figures import (fig1_cycle_diagrams, fig2_convergence, fig3_mesh_report,
                      fig4_mach_contours, format_cycle_diagram)
from .tables import format_table1, format_table2, table1, table2
from .workloads import FAST_CASE, FULL_CASE, CaseSpec, build_hierarchy

__all__ = [
    "MachineComparison", "compare_machines", "fig1_cycle_diagrams",
    "fig2_convergence", "fig3_mesh_report", "fig4_mach_contours",
    "format_cycle_diagram", "format_table1", "format_table2", "table1",
    "table2", "FAST_CASE", "FULL_CASE", "CaseSpec", "build_hierarchy",
]
