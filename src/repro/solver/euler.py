"""The single-grid EUL3D solver: five-stage Runge-Kutta on the edge scheme.

This is the "base solver that drives the multigrid algorithm" of Section
2.2.  One :class:`EulerSolver` instance owns the preprocessed edge
structure of one mesh; :meth:`step` advances the solution by one
five-stage time step (equations (1) of the paper):

* the convective operator ``Q`` is evaluated at every stage;
* the dissipative operator ``D`` is evaluated at the first two stages and
  frozen thereafter;
* local time steps and implicit residual averaging accelerate convergence;
* an optional multigrid forcing function ``P`` is added to the residual,
  which turns the same routine into the coarse-grid smoother of the FAS
  scheme (equation (3)).
"""

from __future__ import annotations

import numpy as np

from ..constants import NVAR, RK_ALPHAS, RK_DISSIPATION_STAGES
from ..perfmodel.flops import FlopCounter, NullFlopCounter
from ..telemetry import get_tracer, traced
from .bc import (FLOPS_PER_FARFIELD_VERTEX, FLOPS_PER_WALL_VERTEX,
                 BoundaryData, boundary_fluxes)
from .config import SolverConfig
from .dissipation import (FLOPS_PER_EDGE_DISS_PASS1, FLOPS_PER_EDGE_DISS_PASS2,
                          FLOPS_PER_VERTEX_DISS, dissipation_operator)
from .flux import (FLOPS_PER_EDGE_CONVECTIVE, FLOPS_PER_VERTEX_FLUXVEC,
                   convective_operator)
from .smoothing import (FLOPS_PER_EDGE_SMOOTH, FLOPS_PER_VERTEX_SMOOTH,
                        smooth_residual)
from .timestep import (FLOPS_PER_EDGE_TIMESTEP, FLOPS_PER_VERTEX_TIMESTEP,
                       local_timestep)

__all__ = ["EulerSolver"]


class EulerSolver:
    """Vertex-centred edge-based Euler solver on one unstructured mesh.

    Parameters
    ----------
    mesh : :class:`TetMesh` or a prebuilt :class:`EdgeStructure`.
    w_inf : (5,) freestream conserved state (see
        :func:`repro.state.freestream_state`); used by the farfield BC and
        as the default initial condition.
    config : numerical parameters; defaults are suitable for transonic flow.
    flops : optional :class:`FlopCounter` receiving analytic counts.
    tracer : optional :class:`repro.telemetry.Tracer`; defaults to the
        process-global tracer (the no-op :data:`~repro.telemetry.NULL_TRACER`
        unless one was installed), captured at construction.
    assets : optional :class:`repro.solver.assets.SolverAssets` — a
        prebuilt inspector-phase bundle (edge structure, CSR scatter,
        boundary data, executor) shared across solvers on the same mesh;
        see :func:`repro.solver.assets.get_solver_assets`.  Skips the
        ~seconds-scale schedule construction entirely.  The ``mesh``
        argument is ignored (pass ``None``) when ``assets`` is given.
    """

    def __init__(self, mesh, w_inf: np.ndarray,
                 config: SolverConfig | None = None, flops=None, tracer=None,
                 assets=None):
        self.config = config or SolverConfig()
        self.w_inf = np.asarray(w_inf, dtype=np.float64)
        if self.w_inf.shape != (NVAR,):
            raise ValueError(f"w_inf must have shape (5,), got {self.w_inf.shape}")
        self.flops = flops if flops is not None else NullFlopCounter()
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Invariant sanitizers from ``config.sanitize`` (null singletons
        #: when off; see :mod:`repro.analysis` and docs/static-analysis.md).
        from ..analysis.sanitize import build_sanitizers
        self.sanitizers = build_sanitizers(self.config.sanitize_set)

        from .assets import asset_config_key, build_solver_assets
        assets_provided = assets is not None
        if assets is None:
            # The inspector phase: edge structure, (optional) RCM
            # reordering, CSR incidence, boundary data, executor.
            assets = build_solver_assets(
                mesh, self.config, tracer=self.tracer,
                color_sanitizer=self.sanitizers["color"])
        elif assets.config_key != asset_config_key(self.config):
            raise ValueError(
                f"assets were built for {assets.config_key!r}, this config "
                f"needs {asset_config_key(self.config)!r}")
        self.assets = assets
        self.mesh = assets.mesh
        self.struct = assets.struct
        self.scatter = assets.scatter
        self.bdata = assets.bdata
        self.edges = self.struct.edges
        self.eta = self.struct.eta
        self.dual_volumes = self.struct.dual_volumes
        # Boundary vertices are excluded from residual averaging (see
        # repro.solver.smoothing for the stability rationale).
        self.boundary_mask = np.zeros(self.struct.n_vertices, dtype=bool)
        self.boundary_mask[self.bdata.wall_vertices] = True
        self.boundary_mask[self.bdata.far_vertices] = True

        # Non-serial executors route the hot path through the fused
        # zero-allocation pipeline (repro.kernels); ``serial`` keeps the
        # operator implementations below bit-identical to the seed.
        self.fused = None
        if self.config.executor != "serial":
            from ..kernels import FusedResidual, make_executor
            from ..kernels.executors import COMPILED_KINDS
            kind = assets.kind
            ex = assets.executor
            if ex is None or (assets_provided and self.config.sanitize_set):
                # Sanitizer hooks attach at executor construction, so a
                # shared pre-built executor would bypass them — rebuild.
                ex = make_executor(self.struct.edges, self.struct.n_vertices,
                                   kind=kind,
                                   n_threads=self.config.n_threads,
                                   tracer=self.tracer,
                                   sanitizer=self.sanitizers["color"])
            # Compiled kinds get the fully fused njit pipeline; the rest
            # run the NumPy fused pipeline over their scatter executor.
            if kind in COMPILED_KINDS:
                from ..kernels.compiled import CompiledResidual
                residual_cls = CompiledResidual
            else:
                residual_cls = FusedResidual
            self.fused = residual_cls(self.struct, self.bdata, self.config,
                                      self.w_inf, executor=ex,
                                      flops=self.flops, tracer=self.tracer,
                                      sanitizer=self.sanitizers["buffer"])
        #: Batched ensemble pipelines cached per batch width (see
        #: :meth:`solve_ensemble`); conditions are rebound per call.
        self._ensemble_pipelines: dict[int, object] = {}
        #: Density-residual RMS of the *input* state of the most recent
        #: :meth:`step` call (captured from stage 0 at no extra cost), or
        #: ``None`` before the first step.  See :meth:`run`.
        self.last_step_residual_norm: float | None = None

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.struct.n_vertices

    @property
    def n_edges(self) -> int:
        return self.struct.n_edges

    def freestream_solution(self) -> np.ndarray:
        """Uniform freestream initial condition ``(nv, 5)``."""
        return np.tile(self.w_inf, (self.n_vertices, 1))

    # ------------------------------------------------------------------
    @traced("solver.convective")
    def convective(self, w: np.ndarray) -> np.ndarray:
        """Q(w): interior edge fluxes plus boundary closure."""
        q = convective_operator(w, self.edges, self.eta, self.scatter)
        boundary_fluxes(w, self.bdata, self.w_inf, out=q)
        self.flops.add("convective",
                       FLOPS_PER_EDGE_CONVECTIVE * self.n_edges
                       + FLOPS_PER_VERTEX_FLUXVEC * self.n_vertices)
        self.flops.add("boundary",
                       FLOPS_PER_WALL_VERTEX * self.bdata.wall_vertices.size
                       + FLOPS_PER_FARFIELD_VERTEX * self.bdata.far_vertices.size)
        return q

    @traced("solver.dissipation")
    def dissipation(self, w: np.ndarray) -> np.ndarray:
        """D(w): blended Laplacian/biharmonic dissipative operator."""
        d = dissipation_operator(w, self.edges, self.eta, self.scatter,
                                 self.config.k2, self.config.k4,
                                 self.config.switch_floor)
        self.flops.add("dissipation",
                       (FLOPS_PER_EDGE_DISS_PASS1 + FLOPS_PER_EDGE_DISS_PASS2)
                       * self.n_edges
                       + FLOPS_PER_VERTEX_DISS * self.n_vertices)
        return d

    def residual(self, w: np.ndarray,
                 dissipation: np.ndarray | None = None) -> np.ndarray:
        """Full residual ``R(w) = Q(w) - D(w)``.

        When ``dissipation`` is given it is reused (the frozen-dissipation
        stages of the Runge-Kutta scheme); otherwise it is evaluated fresh.
        """
        if dissipation is None:
            if self.fused is not None:
                return self.fused.residual(w)
            dissipation = self.dissipation(w)
        return self.convective(w) - dissipation

    @traced("solver.timestep")
    def timestep(self, w: np.ndarray) -> np.ndarray:
        """Per-vertex local time step at the configured CFL number."""
        if self.fused is not None:
            dt = np.empty(self.n_vertices)
            self.fused.timestep(w, out=dt, update_state=True)
            return dt
        dt = local_timestep(w, self.edges, self.eta, self.scatter,
                            self.dual_volumes, self.bdata, self.config.cfl)
        self.flops.add("timestep",
                       FLOPS_PER_EDGE_TIMESTEP * self.n_edges
                       + FLOPS_PER_VERTEX_TIMESTEP * self.n_vertices)
        return dt

    # ------------------------------------------------------------------
    def step(self, w: np.ndarray, forcing: np.ndarray | None = None) -> np.ndarray:
        """One five-stage time step (paper equations (1) and (3)).

        ``forcing`` is the multigrid forcing function ``P`` added to every
        stage residual on coarse grids; ``None`` on the fine grid.
        Returns the updated solution (input array is not modified).

        As a by-product, the density-residual RMS of the *input* state is
        captured from the raw stage-0 residual (which is exactly ``R(w)``,
        evaluated in the same operator order as :meth:`residual`) and
        stored in :attr:`last_step_residual_norm` — :meth:`run` reuses it
        so convergence monitoring costs no extra residual evaluation.
        """
        if self.fused is not None:
            with self.tracer.span("solver.step"):
                wk, resnorm = self.fused.step(w, forcing=forcing)
            self.last_step_residual_norm = resnorm
            return wk
        cfg = self.config
        with self.tracer.span("solver.step"):
            w0 = w
            dt_over_v = (self.timestep(w0) / self.dual_volumes)[:, None]

            diss = None
            wk = w0
            for stage, alpha in enumerate(RK_ALPHAS):
                with self.tracer.span("rk.stage"):
                    if stage in RK_DISSIPATION_STAGES:
                        diss = self.dissipation(wk)
                    r = self.convective(wk) - diss
                    if stage == 0:
                        # Bit-identical to density_residual_norm(w0): stage 0
                        # runs dissipation(w0) then convective(w0) in the
                        # same order.
                        self.last_step_residual_norm = float(
                            np.sqrt(np.mean((r[:, 0] / self.dual_volumes) ** 2)))
                    if forcing is not None:
                        r = r + forcing
                    if cfg.residual_smoothing:
                        r = smooth_residual(r, self.edges, self.scatter,
                                            cfg.smoothing_eps,
                                            cfg.smoothing_sweeps,
                                            freeze_mask=self.boundary_mask)
                        self.flops.add("smoothing",
                                       cfg.smoothing_sweeps
                                       * (FLOPS_PER_EDGE_SMOOTH * self.n_edges
                                          + FLOPS_PER_VERTEX_SMOOTH
                                          * self.n_vertices))
                    wk = w0 - alpha * dt_over_v * r
                    self.flops.add("update", 3 * NVAR * self.n_vertices)
        return wk

    # ------------------------------------------------------------------
    def apply_recovery(self) -> SolverConfig:
        """Back off the scheme after a detected divergence.

        Swaps in :meth:`SolverConfig.backed_off` (CFL reduced by
        ``recovery_cfl_factor``, k2/k4 dissipation bumped by
        ``recovery_dissipation_factor``).  Both the serial operators and
        the fused pipeline read these knobs per call, so the change takes
        effect on the next step.  Returns the new config.
        """
        new_cfg = self.config.backed_off()
        self.config = new_cfg
        if self.fused is not None:
            self.fused.config = new_cfg
        return new_cfg

    def density_residual_norm(self, w: np.ndarray) -> float:
        """RMS of the density residual normalised by control volume.

        This is the quantity EUL3D monitors each cycle ("summing and
        printing out the average residual throughout the flow field at
        each multigrid cycle") and the ordinate of Figure 2.
        """
        r = self.residual(w)
        return float(np.sqrt(np.mean((r[:, 0] / self.dual_volumes) ** 2)))

    def run(self, w: np.ndarray | None = None, n_cycles: int = 100,
            callback=None, checkpoint_store=None,
            resume_from=None) -> tuple[np.ndarray, list[float]]:
        """Run ``n_cycles`` single-grid cycles from ``w`` (or freestream).

        Returns the final state and the per-cycle density residual history
        (the residual of the state *entering* each step, plus one final
        evaluation of the converged state).

        Resilience: when ``config.divergence_guard`` is on (the default)
        each cycle's monitored residual is health-checked; a NaN/Inf or a
        runaway norm triggers CFL backoff plus restore from the last
        checkpoint (see :class:`repro.resilience.StepGuard`), and raises
        :class:`repro.resilience.DivergenceError` once
        ``config.max_recoveries`` is exhausted.  ``checkpoint_store``
        receives a snapshot every ``config.checkpoint_interval`` cycles;
        ``resume_from`` (a :class:`repro.resilience.Checkpoint`) resumes a
        previous run **bit-identically** — the loop state is exactly
        ``(w, cycle, config)``.  On resume, ``history`` covers cycles
        ``resume_from.cycle .. n_cycles``.

        Cost note: earlier revisions evaluated ``R(w)`` once for monitoring
        and then again inside ``step`` — a full extra residual (about 1/6
        of a five-stage cycle) per cycle.  The monitoring norm is now taken
        from the raw stage-0 residual captured by :meth:`step`
        (:attr:`last_step_residual_norm`), which is the same quantity in
        the same operator order, so only the single trailing evaluation of
        the final state remains.
        """
        start_cycle = 0
        if resume_from is not None:
            from ..resilience import verify_checkpoint
            verify_checkpoint(resume_from, self.config)
            w = resume_from.w.copy()
            start_cycle = resume_from.cycle
        elif w is None:
            w = self.freestream_solution()

        guard = None
        if self.config.divergence_guard:
            from ..resilience import StepGuard
            guard = StepGuard(self, w, start_cycle=start_cycle,
                              store=checkpoint_store)

        history = []
        with self.tracer.span("solver.run"):
            cycle = start_cycle
            while cycle < n_cycles:
                with self.tracer.span("solver.cycle"):
                    w_new = self.step(w)
                resnorm = self.last_step_residual_norm
                if guard is not None:
                    verdict = guard.check(resnorm)
                    if verdict != "ok":
                        w, cycle = guard.recover(cycle, verdict, resnorm)
                        del history[cycle - start_cycle:]
                        continue
                    # Snapshot the *entering* state only now that its
                    # stage-0 residual proved it healthy — a snapshot
                    # taken before the check could capture the very
                    # corruption recovery needs to erase.
                    guard.note_cycle_start(cycle, w)
                w = w_new
                history.append(resnorm)
                if callback is not None:
                    callback(cycle, w, resnorm)
                cycle += 1
            history.append(self.density_residual_norm(w))
        return w, history

    # ------------------------------------------------------------------
    def _ensemble_executor(self):
        """Scatter executor shared by the batched ensemble pipelines.

        Non-serial kinds share the fused pipeline's executor (its
        ``signed``/``unsigned``/``neighbor_sum`` calls take arbitrary
        trailing shapes); compiled kinds fall back to the CSR scatter
        because their njit kernels are single-state; the serial config
        scatters through the CSR operator directly
        (:class:`~repro.kernels.executors.SerialExecutor` *is*
        :class:`~repro.scatter.EdgeScatter`).
        """
        if self.fused is not None:
            from ..kernels.executors import COMPILED_KINDS
            if self.assets.kind not in COMPILED_KINDS:
                return self.fused.executor
        return self.scatter

    def _ensemble_pipeline(self, width: int):
        """Cached batched pipeline of batch width ``width``.

        Pipelines (workspace arenas + edge-state buffers) are cached per
        width on this solver — conditions are rebound per
        :meth:`solve_ensemble` call via ``set_conditions`` — and the
        mesh-derived assets inside them are shared with the sequential
        path, so repeated ensemble calls never rebuild schedules.
        """
        pipe = self._ensemble_pipelines.get(width)
        if pipe is None:
            from ..kernels.ensemble import EnsembleResidual
            pipe = EnsembleResidual(self.struct, self.bdata, self.config,
                                    np.tile(self.w_inf, (width, 1)),
                                    executor=self._ensemble_executor(),
                                    flops=self.flops, tracer=self.tracer)
            self._ensemble_pipelines[width] = pipe
        return pipe

    def solve_ensemble(self, scenarios, *, w0=None, n_cycles: int = 100,
                       rtol: float = 0.0, atol: float = 0.0,
                       block_size: int | None = None, callback=None):
        """Advance many flow conditions through one batched pipeline.

        ``scenarios`` is a sequence of :class:`repro.solver.FlowState`
        (per-scenario Mach/alpha/beta and optional CFL) or an
        ``(S, 5)`` array of conserved freestream rows.  One fused sweep
        of the edge arrays advances every scenario at once — see
        :mod:`repro.kernels.ensemble` — with per-scenario convergence
        tracking and early-exit masking of converged scenarios.
        Returns an :class:`repro.solver.EnsembleResult`.

        A batch of one delegates to the sequential :meth:`step` loop
        (reusing this solver's existing buffers — bit-identical to
        :meth:`run`); each scenario of a wider batch is bit-identical
        to its own sequential ``executor="fused"`` solve.  See
        :func:`repro.solver.ensemble.solve_ensemble` for the knobs.
        """
        from .ensemble import solve_ensemble
        return solve_ensemble(self, scenarios, w0=w0, n_cycles=n_cycles,
                              rtol=rtol, atol=atol, block_size=block_size,
                              callback=callback)
