"""Ensemble solving: many flow conditions through one batched pipeline.

This is the driver layer over :class:`repro.kernels.ensemble.EnsembleResidual`:
it normalises scenario specifications (:class:`FlowState` rows or raw
freestream arrays), splits the batch into cache-sized blocks, tracks
per-scenario convergence, early-exits converged or diverged scenarios
(freezing them at their entering state, exactly the state whose residual
norm passed or failed), and compacts the batch when enough scenarios
have exited that a narrower pipeline is cheaper.

Numerics contract
-----------------
Scenario columns never interact (every batched operation is elementwise
over the scenario axis or a fixed-order per-column reduction), so block
splitting and mid-run compaction are *exact*: each scenario's trajectory
is bit-identical to a sequential ``executor="fused"`` solve at its
conditions, at any batch width, with any exit pattern around it.  A
batch of one never touches the batched kernels at all — it runs the
sequential :meth:`~repro.solver.EulerSolver.step` loop on the solver's
existing buffers.

For batches wider than one the same guarantee extends to block
placement: every block — including a width-1 remainder (e.g. the tail
of ``S=9`` at ``block_size=8``) — runs the batched pipeline, except
that solvers stepping through the fused family take the cheaper
sequential shortcut for width-1 blocks *because* it is bit-identical
for them.  For ``executor="serial"`` and the compiled kinds the
sequential step is a different pipeline (the batched path falls back
to the CSR scatter), so their width-1 remainders stay batched and the
whole ensemble shares one set of numerics regardless of block layout.

Unlike :meth:`EulerSolver.run`, no divergence-recovery ladder is applied
(no CFL backoff, no checkpoint restore): a scenario whose residual norm
goes non-finite is frozen and flagged in
:attr:`EnsembleResult.diverged`.  Batch members are independent
requests; recovery policy belongs to the caller.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..constants import NVAR
from ..state import freestream_state

__all__ = ["FlowState", "EnsembleResult", "solve_ensemble",
           "DEFAULT_BLOCK_SIZE"]

#: Internal batch-block width: scenarios are advanced in blocks of at
#: most this many columns so the working set (state + edge buffers
#: scale linearly in the batch width) stays cache-resident.  Measured on
#: the recording container the per-scenario scatter cost bottoms out
#: around 8 columns and regresses past ~32 as edge buffers spill L3;
#: block splitting is numerically exact (see module docstring), so this
#: is purely a throughput knob.
DEFAULT_BLOCK_SIZE = 8


@dataclass(frozen=True)
class FlowState:
    """One scenario: freestream flow condition plus optional CFL override.

    ``mach``/``alpha_deg``/``beta_deg`` feed
    :func:`repro.state.freestream_state`; ``cfl`` of ``None`` inherits
    the solver config's CFL.  Instances are immutable and hashable —
    safe as cache keys and in scenario grids.
    """

    mach: float
    alpha_deg: float = 0.0
    beta_deg: float = 0.0
    cfl: float | None = None

    def freestream(self) -> np.ndarray:
        """Conserved freestream row ``(5,)`` for this condition."""
        return freestream_state(self.mach, self.alpha_deg, self.beta_deg)

    def resolved_cfl(self, config) -> float:
        """This scenario's CFL: the override, else ``config.cfl``."""
        return float(config.cfl if self.cfl is None else self.cfl)

    @staticmethod
    def grid(machs, alphas=(0.0,), betas=(0.0,), cfl=None) -> list["FlowState"]:
        """Cartesian sweep grid, Mach-major (matches ``itertools.product``)."""
        return [FlowState(float(m), float(a), float(b), cfl)
                for m in machs for a in alphas for b in betas]


@dataclass
class EnsembleResult:
    """Outcome of one :func:`solve_ensemble` call.

    ``states`` is ``(S, nv, 5)`` — each scenario's final state (the
    entering state it froze at, for early exits).  ``histories[s]`` is
    that scenario's per-cycle density-residual norms: the norm of the
    state entering each executed cycle plus one trailing norm of the
    final state — the same contract as :meth:`EulerSolver.run`.
    ``cycles[s]`` counts the five-stage steps actually applied.
    """

    states: np.ndarray
    histories: list[list[float]]
    converged: np.ndarray
    diverged: np.ndarray
    cycles: np.ndarray
    wall_s: float

    @property
    def n_scenarios(self) -> int:
        return self.states.shape[0]

    @property
    def final_norms(self) -> np.ndarray:
        """Trailing residual norm per scenario."""
        return np.array([h[-1] for h in self.histories])

    @property
    def scenarios_per_s(self) -> float:
        """Whole-call throughput (scenarios completed per wall second)."""
        return self.n_scenarios / self.wall_s if self.wall_s > 0 else 0.0


# ----------------------------------------------------------------------
def _normalize_scenarios(solver, scenarios):
    """-> ``(w_inf_rows (S, 5), cfls (S,))`` from either spec form."""
    if isinstance(scenarios, np.ndarray):
        rows = np.asarray(scenarios, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != NVAR:
            raise ValueError(
                f"scenario array must be (S, {NVAR}), got {rows.shape}")
        cfls = np.full(rows.shape[0], float(solver.config.cfl))
        return rows, cfls
    flows = list(scenarios)
    if not flows:
        raise ValueError("solve_ensemble needs at least one scenario")
    rows = np.empty((len(flows), NVAR))
    cfls = np.empty(len(flows))
    for i, f in enumerate(flows):
        if isinstance(f, FlowState):
            rows[i] = f.freestream()
            cfls[i] = f.resolved_cfl(solver.config)
        else:
            row = np.asarray(f, dtype=np.float64)
            if row.shape != (NVAR,):
                raise TypeError(
                    f"scenario {i} must be a FlowState or a ({NVAR},) "
                    f"conserved row, got {f!r}")
            rows[i] = row
            cfls[i] = solver.config.cfl
    return rows, cfls


def _initial_states(solver, w_inf_rows, w0):
    """-> ``(S, nv, 5)`` initial states (freestream tile by default)."""
    S, nv = w_inf_rows.shape[0], solver.n_vertices
    if w0 is None:
        return np.broadcast_to(w_inf_rows[:, None, :], (S, nv, NVAR)).copy()
    w0 = np.asarray(w0, dtype=np.float64)
    if w0.shape == (nv, NVAR):
        return np.broadcast_to(w0, (S, nv, NVAR)).copy()
    if w0.shape == (S, nv, NVAR):
        return w0.copy()
    raise ValueError(
        f"w0 must be (nv, 5) or (S, nv, 5), got {w0.shape}")


def _is_converged(rn: float, h0: float, rtol: float, atol: float) -> bool:
    return rn <= atol or (rtol > 0.0 and rn <= rtol * h0)


def _single_matches_batched(solver) -> bool:
    """Whether :func:`_solve_single` is bit-identical to the batched path.

    The batched kernels are the twin of the *fused* pipeline running the
    fused family's scatter executor, so a sequential ``solver.step`` loop
    produces the same bits only when the solver itself steps through that
    pipeline with that executor.  ``executor="serial"`` steps through the
    seed operators and compiled kinds through the njit kernels (the
    batched path falls back to the CSR scatter for those), so for them a
    width-1 block must ride the batched pipeline like every other block —
    otherwise a scenario's bit pattern would depend on its block
    placement within one ``solve_ensemble`` call.
    """
    from ..kernels.executors import COMPILED_KINDS
    return solver.fused is not None and \
        solver.assets.kind not in COMPILED_KINDS


def _sequential_solver(solver, w_inf_row: np.ndarray, cfl: float):
    """``solver`` itself when the conditions match, else a cheap clone.

    The clone shares every mesh-derived asset (edge structure, CSR
    scatter, executor) through ``assets=``, so it costs only the fused
    pipeline's arena allocation.
    """
    if (np.array_equal(w_inf_row, solver.w_inf)
            and float(cfl) == float(solver.config.cfl)):
        return solver
    from .euler import EulerSolver
    cfg = solver.config
    if float(cfl) != float(cfg.cfl):
        cfg = dataclasses.replace(cfg, cfl=float(cfl))
    return EulerSolver(None, w_inf_row, cfg, flops=solver.flops,
                       tracer=solver.tracer, assets=solver.assets)


def _solve_single(solver, w_inf_row, cfl, w0_row, n_cycles, rtol, atol,
                  callback, sid):
    """Sequential step loop for a batch of one (existing buffers)."""
    seq = _sequential_solver(solver, w_inf_row, cfl)
    w = w0_row
    history: list[float] = []
    converged = diverged = False
    steps = 0
    h0 = None
    for cycle in range(n_cycles):
        w_new = seq.step(w)
        rn = float(seq.last_step_residual_norm)
        history.append(rn)
        if callback is not None:
            callback(cycle, np.array([sid]), np.array([rn]))
        if not np.isfinite(rn):
            diverged = True
            break
        if h0 is None:
            h0 = rn
        if _is_converged(rn, h0, rtol, atol):
            converged = True
            break
        w = w_new
        steps += 1
    else:
        history.append(seq.density_residual_norm(w))
    return w, history, converged, diverged, steps


def _batched_trailing_norms(pipeline, wT, out=None) -> np.ndarray:
    """Per-scenario ``density_residual_norm`` of the batched states.

    Same elementwise operations and the same 1-D pairwise column mean as
    the sequential formula, hence bitwise-equal per scenario.
    """
    r = pipeline.residual(wT)
    buf = r[:, 0, :] / pipeline.dual_volumes[:, None]
    buf *= buf
    if out is None:
        out = np.empty(buf.shape[1])
    for s in range(buf.shape[1]):
        out[s] = float(np.sqrt(np.mean(buf[:, s])))
    return out


def _solve_block(solver, sids, w_inf_rows, cfls, w0_rows, n_cycles, rtol,
                 atol, callback):
    """Advance one block of scenarios to completion.

    ``sids`` are the global scenario indices of the block (for the
    callback); returns per-block ``(states, histories, converged,
    diverged, cycles)``.
    """
    from ..kernels.ensemble import batch_major, scenario_major

    S = len(sids)
    pipeline = solver._ensemble_pipeline(S)
    pipeline.set_conditions(w_inf_rows, cfl=cfls)
    wT = batch_major(w0_rows)

    final = np.array(w0_rows, copy=True)
    histories: list[list[float]] = [[] for _ in range(S)]
    converged = np.zeros(S, dtype=bool)
    diverged = np.zeros(S, dtype=bool)
    cycles = np.zeros(S, dtype=np.int64)
    h0 = np.full(S, -1.0)
    # Live scenarios: block id ``bids[i]`` occupies pipeline column
    # ``cols[i]``.  Exited columns may ride along dead (still stepped,
    # no longer recorded) until enough exit to make compacting onto a
    # narrower pipeline pay for the rebuild.
    bids = np.arange(S)
    cols = np.arange(S)

    cycle = 0
    while cycle < n_cycles and bids.size:
        wT_new, norms = pipeline.step(wT)
        norms = norms.copy()
        if callback is not None:
            callback(cycle, sids[bids], norms[cols])
        keep = []
        for i in range(bids.size):
            bid, col = int(bids[i]), int(cols[i])
            rn = float(norms[col])
            histories[bid].append(rn)
            if not np.isfinite(rn):
                diverged[bid] = True
            else:
                if h0[bid] < 0.0:
                    h0[bid] = rn
                if not _is_converged(rn, h0[bid], rtol, atol):
                    keep.append(i)
                    continue
                converged[bid] = True
            # Freeze at the entering state — the state whose norm was
            # just measured; its step result in wT_new is discarded.
            final[bid] = wT[:, :, col]
            cycles[bid] = cycle
        wT = wT_new
        cycle += 1
        if len(keep) != bids.size:
            bids = bids[keep]
            cols = cols[keep]
            if not bids.size:
                break
            if bids.size <= pipeline.n_scenarios // 2:
                # Compact the survivors onto a narrower cached pipeline
                # (exact: columns are independent, survivors keep their
                # bit patterns).  The halving policy bounds both the
                # dead-column overhead (< 2x) and the number of cached
                # pipeline widths (log2 of the block size).
                wT = batch_major(scenario_major(wT)[cols])
                pipeline = solver._ensemble_pipeline(bids.size)
                pipeline.set_conditions(w_inf_rows[bids], cfl=cfls[bids])
                cols = np.arange(bids.size)

    if bids.size:
        # Ran the full cycle budget: trailing norm of the final state,
        # same contract as EulerSolver.run.
        tail = _batched_trailing_norms(pipeline, wT)
        per_col = scenario_major(wT)
        for i in range(bids.size):
            bid, col = int(bids[i]), int(cols[i])
            final[bid] = per_col[col]
            histories[bid].append(float(tail[col]))
            cycles[bid] = n_cycles
    return final, histories, converged, diverged, cycles


def solve_ensemble(solver, scenarios, *, w0=None, n_cycles: int = 100,
                   rtol: float = 0.0, atol: float = 0.0,
                   block_size: int | None = None,
                   callback=None) -> EnsembleResult:
    """Solve every scenario with batched residual evaluations.

    Parameters
    ----------
    solver : the :class:`~repro.solver.EulerSolver` owning the mesh
        assets (its config supplies k2/k4/smoothing and the default CFL).
    scenarios : sequence of :class:`FlowState` / ``(5,)`` conserved rows,
        or an ``(S, 5)`` array of freestream states.
    w0 : initial state — ``None`` (per-scenario freestream), a shared
        ``(nv, 5)`` state, or per-scenario ``(S, nv, 5)`` states.
    n_cycles : cycle budget per scenario.
    rtol, atol : early-exit thresholds on the entering density-residual
        norm (``rn <= atol`` or ``rn <= rtol * first_norm``).  The
        defaults disable early exit, matching :meth:`EulerSolver.run`'s
        fixed-budget behaviour.
    block_size : internal batch width (default
        :data:`DEFAULT_BLOCK_SIZE`); purely a throughput knob.
    callback : optional ``f(cycle, scenario_ids, norms)`` called once
        per cycle per block with the entering norms of live scenarios.
    """
    t0 = perf_counter()
    w_inf_rows, cfls = _normalize_scenarios(solver, scenarios)
    S = w_inf_rows.shape[0]
    w0_rows = _initial_states(solver, w_inf_rows, w0)
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    block_size = max(1, int(block_size))

    states = np.empty_like(w0_rows)
    histories: list[list[float]] = [None] * S  # type: ignore[list-item]
    converged = np.zeros(S, dtype=bool)
    diverged = np.zeros(S, dtype=bool)
    cycles = np.zeros(S, dtype=np.int64)

    with solver.tracer.span("ensemble.solve"):
        if solver.tracer.enabled:
            solver.tracer.gauge("ensemble.batch", float(S))
        # A batch of one always reuses the solver's own buffers (the
        # documented batch-of-1 contract).  A width-1 *remainder* block
        # of a wider batch takes the sequential shortcut only when that
        # shortcut is bit-identical to the batched pipeline — otherwise
        # every block, however narrow, rides the batched kernels so a
        # scenario's bits never depend on its block placement.
        single_ok = S == 1 or _single_matches_batched(solver)
        for lo in range(0, S, block_size):
            hi = min(lo + block_size, S)
            sids = np.arange(lo, hi)
            if hi - lo == 1 and single_ok:
                w, h, cv, dv, cy = _solve_single(
                    solver, w_inf_rows[lo], cfls[lo], w0_rows[lo],
                    n_cycles, rtol, atol, callback, lo)
                states[lo] = w
                histories[lo] = h
                converged[lo], diverged[lo], cycles[lo] = cv, dv, cy
                continue
            blk_states, blk_hist, blk_conv, blk_div, blk_cyc = _solve_block(
                solver, sids, w_inf_rows[lo:hi], cfls[lo:hi],
                w0_rows[lo:hi], n_cycles, rtol, atol, callback)
            states[lo:hi] = blk_states
            for i in range(hi - lo):
                histories[lo + i] = blk_hist[i]
            converged[lo:hi] = blk_conv
            diverged[lo:hi] = blk_div
            cycles[lo:hi] = blk_cyc

    wall = perf_counter() - t0
    if solver.tracer.enabled and wall > 0.0:
        solver.tracer.gauge("observatory.rate.ensemble-solve.scenarios_per_s",
                            S / wall)
    return EnsembleResult(states=states, histories=histories,
                          converged=converged, diverged=diverged,
                          cycles=cycles, wall_s=wall)
