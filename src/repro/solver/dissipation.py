"""Artificial dissipation D(w): blended Laplacian/biharmonic operator.

Section 2.2 of the paper: the central Galerkin discretisation "requires
additional artificial dissipation to maintain stability.  This is
constructed as a blend of Laplacian and biharmonic operators on the
conserved variables.  The biharmonic operator acts everywhere in the flow
field except near shock waves, where the Laplacian operator is turned on".

This is the unstructured-mesh JST scheme:

* pass 1 over edges — undivided Laplacian ``L_i = sum_j (w_j - w_i)`` and
  the pressure-based shock switch
  ``nu_i = |sum_j (p_j - p_i)| / sum_j (p_j + p_i)``;
* pass 2 over edges — edge dissipative flux
  ``d_ij = lam_ij [ eps2_ij (w_j - w_i) - eps4_ij (L_j - L_i) ]``
  with ``eps2 = k2 max(nu_i, nu_j)``, ``eps4 = max(0, k4 - eps2)`` and
  ``lam_ij`` the convective spectral radius associated with the dual face
  (``|u_avg . eta| + c_avg |eta|``).

The two-pass structure ("D(w) requires a two-pass loop over the edges to
assemble the biharmonic dissipation") is preserved because it is exactly
what drives the distributed-memory communication pattern.
"""

from __future__ import annotations

import numpy as np

from ..scatter import EdgeScatter, gather_edge_difference
from ..state import pressure, primitive_from_conserved

__all__ = ["dissipation_operator", "undivided_laplacian", "pressure_switch",
           "edge_spectral_radius", "FLOPS_PER_EDGE_DISS_PASS1",
           "FLOPS_PER_EDGE_DISS_PASS2", "FLOPS_PER_VERTEX_DISS"]

FLOPS_PER_EDGE_DISS_PASS1 = 24   # L scatter (2x5 adds), p diff/sum + switch scatters
FLOPS_PER_EDGE_DISS_PASS2 = 58   # lambda, eps blend, d_ij, 2x5 scatter adds
FLOPS_PER_VERTEX_DISS = 16       # pressure, switch normalisation


def undivided_laplacian(w: np.ndarray, edges: np.ndarray,
                        scatter: EdgeScatter) -> np.ndarray:
    """``L_i = sum_{j ~ i} (w_j - w_i)`` for all five conserved variables."""
    diff = gather_edge_difference(edges, w)           # w_j - w_i per edge
    # signed() adds +value at edge[0] and -value at edge[1]:
    # vertex i=edge[0] receives +(w_j - w_i)  (correct),
    # vertex j=edge[1] receives -(w_j - w_i) = (w_i - w_j) (correct).
    return scatter.signed(diff)


def pressure_switch(w: np.ndarray, edges: np.ndarray, scatter: EdgeScatter,
                    floor: float = 1e-12) -> np.ndarray:
    """Shock sensor ``nu_i`` in [0, 1]: large across shocks, ~0 in smooth flow."""
    p = pressure(w)
    p_diff = gather_edge_difference(edges, p)
    p_sum = p[edges[:, 0]] + p[edges[:, 1]]
    num = scatter.signed(p_diff)          # sum_j (p_j - p_i)
    den = scatter.unsigned(p_sum)         # sum_j (p_j + p_i)
    return np.abs(num) / np.maximum(den, floor)


def edge_spectral_radius(w: np.ndarray, edges: np.ndarray,
                         eta: np.ndarray) -> np.ndarray:
    """Convective spectral radius per edge: ``|u_avg . eta| + c_avg |eta|``."""
    rho, u, v, wv, p = primitive_from_conserved(w)
    vel = np.stack([u, v, wv], axis=1)
    c = np.sqrt(1.4 * p / rho)
    vel_avg = 0.5 * (vel[edges[:, 0]] + vel[edges[:, 1]])
    c_avg = 0.5 * (c[edges[:, 0]] + c[edges[:, 1]])
    eta_norm = np.linalg.norm(eta, axis=1)
    return np.abs(np.einsum("ed,ed->e", vel_avg, eta)) + c_avg * eta_norm


def dissipation_operator(w: np.ndarray, edges: np.ndarray, eta: np.ndarray,
                         scatter: EdgeScatter, k2: float, k4: float,
                         switch_floor: float = 1e-12,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Full dissipative operator ``D(w)``, shape ``(nv, 5)``.

    Defined so that the semi-discrete update is
    ``dw/dt = -(Q(w) - D(w)) / V``: the Laplacian term acts diffusively and
    the biharmonic term damps the high-frequency error components the
    multigrid scheme relies on (Section 2.2).  ``out`` (shape ``(nv, 5)``)
    is overwritten with the result when given.
    """
    # ---- pass 1: Laplacian of w and the pressure switch -------------------
    lap = undivided_laplacian(w, edges, scatter)
    nu = pressure_switch(w, edges, scatter, switch_floor)

    # ---- pass 2: blended edge fluxes --------------------------------------
    lam = edge_spectral_radius(w, edges, eta)
    nu_edge = np.maximum(nu[edges[:, 0]], nu[edges[:, 1]])
    eps2 = k2 * nu_edge
    eps4 = np.maximum(0.0, k4 - eps2)
    w_diff = gather_edge_difference(edges, w)
    lap_diff = gather_edge_difference(edges, lap)
    d_edge = lam[:, None] * (eps2[:, None] * w_diff - eps4[:, None] * lap_diff)
    # D_i = sum_j d_ij; edge value d_ij enters +at i and (by antisymmetry of
    # the differences) -at j, which is exactly the signed scatter.
    return scatter.signed(d_edge, out=out)
