"""Convective operator Q(w): the single edge loop of the scheme.

The Galerkin/median-dual central scheme evaluates, for each edge (i, j)
with directed dual-face area ``eta_ij``,

    ``phi_ij = 1/2 (F(w_i) + F(w_j)) . eta_ij``

and accumulates ``+phi`` into vertex ``i`` and ``-phi`` into vertex ``j``.
Boundary faces close the control volumes through the lumped per-vertex
boundary normals (see :mod:`repro.solver.bc`).

Flop convention (used by the performance models, mirroring the paper's
"counting the number of operations in each loop"): one add, subtract,
multiply, divide or sqrt each count as one flop.
"""

from __future__ import annotations

import numpy as np

from ..scatter import EdgeScatter
from ..state import flux_vectors

__all__ = ["convective_operator", "edge_flux", "FLOPS_PER_EDGE_CONVECTIVE",
           "FLOPS_PER_VERTEX_FLUXVEC"]

#: Per-edge cost: averaging the two 5x3 flux tensors (15 adds + 15 halvings)
#: plus the eta projection (5 components x (3 mul + 2 add)) plus the two
#: scatter accumulations (2 x 5 adds).
FLOPS_PER_EDGE_CONVECTIVE = 30 + 25 + 10

#: Per-vertex cost of assembling the 5x3 flux tensor from conserved state.
FLOPS_PER_VERTEX_FLUXVEC = 36


def edge_flux(w: np.ndarray, edges: np.ndarray, eta: np.ndarray,
              fluxes: np.ndarray | None = None,
              out: np.ndarray | None = None) -> np.ndarray:
    """Central edge fluxes ``(ne, 5)``: ``1/2 (F_i + F_j) . eta``.

    ``fluxes`` lets the caller reuse precomputed per-vertex flux tensors;
    ``out`` (shape ``(ne, 5)``) receives the result without allocating.
    """
    if fluxes is None:
        fluxes = flux_vectors(w)
    favg = fluxes[edges[:, 0]] + fluxes[edges[:, 1]]          # (ne, 5, 3)
    if out is None:
        return 0.5 * np.einsum("ekd,ed->ek", favg, eta)
    np.einsum("ekd,ed->ek", favg, eta, out=out)
    np.multiply(out, 0.5, out=out)
    return out


def convective_operator(w: np.ndarray, edges: np.ndarray, eta: np.ndarray,
                        scatter: EdgeScatter,
                        fluxes: np.ndarray | None = None,
                        out: np.ndarray | None = None) -> np.ndarray:
    """Interior part of Q(w): edge-loop flux accumulation, shape ``(nv, 5)``.

    The boundary closure (wall pressure flux, farfield characteristic flux)
    is added separately by :func:`repro.solver.bc.boundary_fluxes` so that
    the distributed-memory driver can overlap the two phases the way the
    paper's executor does.  ``out`` (shape ``(nv, 5)``) is overwritten.
    """
    phi = edge_flux(w, edges, eta, fluxes)
    return scatter.signed(phi, out=out)
