"""The EUL3D flow solver: edge-based Galerkin scheme + 5-stage Runge-Kutta.

Public surface:

* :class:`EulerSolver` — single-grid solver on one mesh (drives multigrid);
* :class:`SolverConfig` — numerical parameters;
* boundary, dissipation, time-step and smoothing kernels for direct use by
  the distributed-memory driver;
* monitoring helpers (convergence history, Mach field, forces).
"""

from .assets import (SolverAssets, build_solver_assets, clear_asset_cache,
                     get_solver_assets, mesh_fingerprint)
from .bc import BoundaryData, boundary_fluxes, build_boundary_data, characteristic_state
from .config import SolverConfig
from .dissipation import dissipation_operator, pressure_switch, undivided_laplacian
from .ensemble import EnsembleResult, FlowState, solve_ensemble
from .euler import EulerSolver
from .flux import convective_operator, edge_flux
from .monitor import (ConvergenceHistory, extract_isoline, integrated_forces,
                      mach_field, surface_pressure_coefficient)
from .smoothing import smooth_residual
from .timestep import local_timestep

__all__ = [
    "EulerSolver", "SolverConfig", "FlowState", "EnsembleResult",
    "solve_ensemble", "SolverAssets", "get_solver_assets",
    "build_solver_assets", "clear_asset_cache", "mesh_fingerprint",
    "BoundaryData", "boundary_fluxes",
    "build_boundary_data", "characteristic_state", "dissipation_operator",
    "pressure_switch", "undivided_laplacian", "convective_operator",
    "edge_flux", "ConvergenceHistory", "extract_isoline", "integrated_forces",
    "mach_field", "surface_pressure_coefficient", "smooth_residual",
    "local_timestep",
]

from .diagnostics import (AeroCoefficients, aero_coefficients,
                          entropy_error_norm, entropy_field)

__all__ += ["AeroCoefficients", "aero_coefficients", "entropy_error_norm",
            "entropy_field"]
