"""Convergence monitoring and flow-field diagnostics.

Provides the quantities plotted in the paper's figures: the residual
convergence history (Figure 2) and the Mach-number field with simple
contour extraction (Figure 4), plus integrated aerodynamic loads used by
the examples to show the solver is producing physically sensible answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..state import mach_number, pressure
from .bc import BoundaryData

__all__ = ["ConvergenceHistory", "residual_health", "mach_field",
           "surface_pressure_coefficient", "integrated_forces",
           "extract_isoline"]


def residual_health(value: float, reference: float,
                    growth_ratio: float) -> str:
    """Classify one monitored residual sample.

    Returns ``"nan"`` for a non-finite residual (a NaN or Inf anywhere in
    the flow field propagates into the density-residual RMS within one
    step), ``"diverged"`` when the residual exceeds ``growth_ratio``
    times the best (finite) ``reference`` norm seen so far, and ``"ok"``
    otherwise.  This is the scalar test behind the resilience layer's
    per-step guard (:class:`repro.resilience.StepGuard`).
    """
    if not np.isfinite(value):
        return "nan"
    if np.isfinite(reference) and value > growth_ratio * reference:
        return "diverged"
    return "ok"


@dataclass
class ConvergenceHistory:
    """Residual history with the convergence-rate summaries the paper quotes.

    Each :meth:`append` also records a wall-clock timestamp (seconds since
    the history was created), so residual-vs-time plots — the natural
    companion of the telemetry subsystem's per-phase breakdown — need no
    extra bookkeeping from the caller.
    """

    residuals: list = field(default_factory=list)
    label: str = ""
    #: Wall-clock time of each appended residual, seconds since creation.
    timestamps: list = field(default_factory=list)
    t_start: float = field(default_factory=time.perf_counter, repr=False)
    #: Out-of-band events: ``(cycle, kind, detail)`` tuples recorded by
    #: :meth:`record_event` — recovery actions, checkpoint restores,
    #: rank failures — so a convergence plot can be annotated with what
    #: the resilience layer did to the run.
    events: list = field(default_factory=list)

    def append(self, value: float, timestamp: float | None = None) -> None:
        """Record one residual; ``timestamp`` overrides the wall clock."""
        self.residuals.append(float(value))
        if timestamp is None:
            timestamp = time.perf_counter() - self.t_start
        self.timestamps.append(float(timestamp))

    def record_event(self, cycle: int, kind: str, detail: str = "") -> None:
        """Annotate the history with one resilience/lifecycle event."""
        self.events.append((int(cycle), str(kind), str(detail)))

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(timestamps, residuals)`` as float arrays, ready to plot."""
        return (np.asarray(self.timestamps, dtype=float),
                np.asarray(self.residuals, dtype=float))

    @property
    def orders_reduced(self) -> float:
        """Orders of magnitude of residual reduction since the first cycle."""
        r = np.asarray(self.residuals)
        if len(r) < 2 or r[0] <= 0:
            return 0.0
        floor = np.maximum(r.min(), 1e-300)
        return float(np.log10(r[0] / floor))

    def cycles_to_reduction(self, orders: float) -> int | None:
        """First cycle at which the residual dropped by ``orders`` decades."""
        r = np.asarray(self.residuals)
        if len(r) == 0:
            return None
        target = r[0] * 10.0 ** (-orders)
        below = np.flatnonzero(r <= target)
        return int(below[0]) if below.size else None

    def asymptotic_rate(self, tail: int = 20) -> float:
        """Geometric-mean per-cycle reduction factor over the last ``tail`` cycles."""
        r = np.asarray(self.residuals, dtype=float)
        r = r[r > 0]
        if len(r) < 2:
            return 1.0
        tail = min(tail, len(r) - 1)
        return float((r[-1] / r[-1 - tail]) ** (1.0 / tail))


def mach_field(w: np.ndarray) -> np.ndarray:
    """Per-vertex Mach number (the field contoured in Figure 4)."""
    return mach_number(w)


def surface_pressure_coefficient(w: np.ndarray, bdata: BoundaryData,
                                 w_inf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(wall vertex ids, Cp) with ``Cp = (p - p_inf) / (1/2 rho_inf q_inf^2)``."""
    p_inf = float(pressure(w_inf[None])[0])
    rho_inf = float(w_inf[0])
    q_inf2 = float(np.sum((w_inf[1:4] / w_inf[0]) ** 2))
    verts = bdata.wall_vertices
    cp = (pressure(w[verts]) - p_inf) / (0.5 * rho_inf * q_inf2)
    return verts, cp


def integrated_forces(w: np.ndarray, bdata: BoundaryData) -> np.ndarray:
    """Pressure force on all solid walls: ``F = sum_i p_i b_i`` (3-vector)."""
    p_wall = pressure(w[bdata.wall_vertices])
    return (p_wall[:, None] * bdata.wall_normals).sum(axis=0)


def extract_isoline(vertices: np.ndarray, edges: np.ndarray,
                    field_values: np.ndarray, level: float) -> np.ndarray:
    """Points where ``field == level`` along mesh edges (marching-edges).

    Returns an ``(npts, 3)`` cloud of crossing points — the raw material of
    a contour plot like Figure 4, without needing a plotting library.
    """
    fi = field_values[edges[:, 0]]
    fj = field_values[edges[:, 1]]
    crossing = (fi - level) * (fj - level) < 0.0
    if not np.any(crossing):
        return np.zeros((0, 3))
    fi, fj = fi[crossing], fj[crossing]
    t = (level - fi) / (fj - fi)
    pi = vertices[edges[crossing, 0]]
    pj = vertices[edges[crossing, 1]]
    return pi + t[:, None] * (pj - pi)
