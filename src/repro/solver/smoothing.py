"""Implicit residual averaging (Jacobi-smoothed residuals).

"To accelerate convergence of the base solver, locally varying time steps
and implicit residual averaging are used" (Section 2.2).  The averaged
residual solves ``(I - eps * Lap) R_bar = R`` approximately via a small
fixed number of Jacobi sweeps,

    ``R_bar^{m+1}_i = (R_i + eps * sum_{j~i} R_bar^m_j) / (1 + eps * N_i)``,

which extends the support of the residual and roughly doubles the stable
CFL number of the five-stage scheme.

Boundary treatment: boundary vertices are *excluded* from the averaging —
their residuals pass through unsmoothed (``freeze_mask``).  Boundary
vertices have one-sided stencils and boundary-condition-shaped residuals;
mixing them into the interior averaging was found to destabilise the
impulsive-start transient on wall-clustered meshes (a slow blow-up around
cycle 60-160 at any CFL), while freezing them restores the full
theoretical CFL benefit.  See tests/solver/test_stability.py.
"""

from __future__ import annotations

import numpy as np

from ..scatter import EdgeScatter

__all__ = ["smooth_residual", "FLOPS_PER_EDGE_SMOOTH", "FLOPS_PER_VERTEX_SMOOTH"]

FLOPS_PER_EDGE_SMOOTH = 10    # per sweep: gather-sum of neighbour residuals
FLOPS_PER_VERTEX_SMOOTH = 12  # per sweep: combine and normalise


def smooth_residual(residual: np.ndarray, edges: np.ndarray,
                    scatter: EdgeScatter, eps: float, sweeps: int,
                    freeze_mask: np.ndarray | None = None,
                    out: np.ndarray | None = None,
                    work: np.ndarray | None = None) -> np.ndarray:
    """Jacobi-smoothed copy of ``residual`` (input is not modified).

    ``freeze_mask`` marks vertices whose residual must pass through
    unchanged (boundary vertices); they still *contribute* to their
    neighbours' averages, with their raw residual value.

    ``out`` receives the smoothed residual and ``work`` (same shape)
    holds the per-sweep neighbour sums; passing both makes repeated calls
    allocation-free apart from the ``denom`` row (callers wanting zero
    allocations should use :class:`repro.kernels.FusedResidual`, which
    also precomputes the denominator).
    """
    if sweeps <= 0 or eps <= 0.0:
        if out is not None:
            np.copyto(out, residual)
            return out
        return residual
    denom = 1.0 + eps * scatter.degree[:, None]
    if out is None:
        smoothed = residual
        for _ in range(sweeps):
            smoothed = (residual + eps * scatter.neighbor_sum(smoothed)) / denom
            if freeze_mask is not None:
                smoothed[freeze_mask] = residual[freeze_mask]
        return smoothed
    ns = work if work is not None else np.empty_like(residual)
    smoothed = residual
    for _ in range(sweeps):
        scatter.neighbor_sum(smoothed, out=ns)
        np.multiply(ns, eps, out=ns)
        np.add(ns, residual, out=ns)
        np.divide(ns, denom, out=out)
        if freeze_mask is not None:
            out[freeze_mask] = residual[freeze_mask]
        smoothed = out
    return out
