"""Physical diagnostics: entropy error and aerodynamic coefficients.

For the steady Euler equations in smooth flow, entropy is constant along
streamlines and equal to the freestream value everywhere (for a uniform
upstream).  Numerically generated *entropy error* is therefore the classic
accuracy metric of inviscid solvers: it measures spurious dissipation,
wall-boundary imperfections and shock strength, without needing an exact
solution.  Across shocks a physical entropy *rise* occurs, so the metric
is reported both over the whole field and with shocked cells excluded.

Aerodynamic coefficients normalise the pressure loads the examples print
to the conventional ``C_L``/``C_D`` form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import GAMMA
from ..state import pressure
from .bc import BoundaryData
from .monitor import integrated_forces

__all__ = ["entropy_field", "entropy_error_norm", "AeroCoefficients",
           "aero_coefficients"]


def entropy_field(w: np.ndarray) -> np.ndarray:
    """Entropy function ``s = p / rho^gamma`` per vertex."""
    w = np.asarray(w)
    return pressure(w) / w[..., 0] ** GAMMA


def entropy_error_norm(w: np.ndarray, w_inf: np.ndarray,
                       exclude_shocked: bool = False,
                       shock_threshold: float = 1.02) -> float:
    """RMS relative entropy deviation from freestream.

    ``exclude_shocked`` drops vertices whose entropy *rose* more than
    ``shock_threshold`` times the freestream value (physical shock
    entropy production), leaving the purely numerical error.
    """
    s = entropy_field(w)
    s_inf = float(entropy_field(w_inf[None])[0])
    rel = s / s_inf - 1.0
    if exclude_shocked:
        rel = rel[s < shock_threshold * s_inf]
    if rel.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(rel ** 2)))


@dataclass
class AeroCoefficients:
    """Lift/drag/side-force coefficients in the wind frame."""

    cl: float
    cd: float
    cy: float
    reference_area: float
    force: np.ndarray

    def report(self) -> str:
        return (f"CL = {self.cl:+.4f}, CD = {self.cd:+.4f}, "
                f"CY = {self.cy:+.4f} (Sref = {self.reference_area:.4g})")


def aero_coefficients(w: np.ndarray, bdata: BoundaryData, w_inf: np.ndarray,
                      reference_area: float,
                      alpha_deg: float = 0.0) -> AeroCoefficients:
    """Pressure force coefficients about the wind axes.

    The body axes are x (streamwise at zero alpha), y (span), z (up); the
    wind frame is rotated by ``alpha`` in the x-z plane.  Only pressure
    forces exist in inviscid flow.
    """
    rho_inf = float(w_inf[0])
    vel_inf = w_inf[1:4] / w_inf[0]
    q_inf = 0.5 * rho_inf * float(vel_inf @ vel_inf)
    force = integrated_forces(w, bdata)
    # Subtract the freestream-pressure closure so open wall patches (e.g.
    # a channel floor) report loads relative to p_inf, as Cp-based
    # integration would.
    p_inf = float(pressure(w_inf[None])[0])
    force = force - p_inf * bdata.wall_normals.sum(axis=0)

    alpha = np.deg2rad(alpha_deg)
    drag_dir = np.array([np.cos(alpha), 0.0, np.sin(alpha)])
    lift_dir = np.array([-np.sin(alpha), 0.0, np.cos(alpha)])
    denom = q_inf * reference_area
    return AeroCoefficients(
        cl=float(force @ lift_dir) / denom,
        cd=float(force @ drag_dir) / denom,
        cy=float(force[1]) / denom,
        reference_area=reference_area,
        force=force,
    )
