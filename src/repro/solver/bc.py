"""Boundary conditions: solid-wall tangency and characteristic farfield.

The control volume of a boundary vertex is closed by its lumped boundary
normal ``b_i`` (one third of each incident boundary face's directed area).
The boundary contribution to the convective residual is the flux through
that lumped normal:

* **wall / symmetry** (flow tangency): only the pressure acts, so the
  momentum equations receive ``p_i b_i`` and mass/energy receive nothing;
* **farfield**: a locally one-dimensional characteristic (Riemann
  invariant) analysis along the outward normal blends the interior state
  with the freestream, and the full Euler flux of the resulting boundary
  state is applied.  This is the standard non-reflecting treatment for
  external transonic flows such as the paper's M = 0.768 case.
"""

from __future__ import annotations

import numpy as np

from ..constants import GAMMA, GAMMA_M1
from ..mesh.tetra import PATCH_FARFIELD, PATCH_WALL, PATCH_SYMMETRY
from ..state import flux_vectors, pressure, primitive_from_conserved

__all__ = ["BoundaryData", "build_boundary_data", "boundary_fluxes",
           "characteristic_state", "FLOPS_PER_WALL_VERTEX", "FLOPS_PER_FARFIELD_VERTEX"]

FLOPS_PER_WALL_VERTEX = 18
FLOPS_PER_FARFIELD_VERTEX = 110


class BoundaryData:
    """Precomputed boundary-vertex index sets and lumped normals.

    Attributes
    ----------
    wall_vertices, far_vertices : vertex index arrays (walls include
        symmetry planes — both enforce tangency for inviscid flow).
    wall_normals, far_normals : matching lumped directed normals (not unit).
    far_unit : unit outward normals for the characteristic analysis.
    """

    def __init__(self, struct):
        wall_acc = np.zeros((struct.n_vertices, 3))
        for tag in (PATCH_WALL, PATCH_SYMMETRY):
            if tag in struct.vertex_bnormals:
                wall_acc += struct.vertex_bnormals[tag]
        far_acc = struct.vertex_bnormals.get(
            PATCH_FARFIELD, np.zeros((struct.n_vertices, 3)))

        wall_norm = np.linalg.norm(wall_acc, axis=1)
        far_norm = np.linalg.norm(far_acc, axis=1)
        self.wall_vertices = np.flatnonzero(wall_norm > 0.0)
        self.far_vertices = np.flatnonzero(far_norm > 0.0)
        self.wall_normals = wall_acc[self.wall_vertices]
        self.far_normals = far_acc[self.far_vertices]
        self.far_unit = self.far_normals / far_norm[self.far_vertices, None]
        self.n_vertices = struct.n_vertices


def build_boundary_data(struct) -> BoundaryData:
    """Assemble :class:`BoundaryData` from an edge structure."""
    return BoundaryData(struct)


def characteristic_state(w_int: np.ndarray, unit_normals: np.ndarray,
                         w_inf: np.ndarray) -> np.ndarray:
    """Boundary state from 1-D Riemann invariants along the outward normal.

    ``w_int`` holds the interior states at farfield vertices; ``w_inf``
    is the freestream conserved state — either one ``(5,)`` row shared by
    every vertex or an ``(n, 5)`` per-row array (the ensemble pipeline
    feeds one freestream per (vertex, scenario) row).  Subsonic
    in/outflow blends the two Riemann invariants; supersonic flow takes
    the upwind state whole.

    The shared-``(5,)`` path is bit-identical to the historical scalar
    formulation: the freestream invariants are now broadcast arrays, and
    elementwise float64 ops on equal values give equal results.
    """
    w_inf = np.asarray(w_inf, dtype=np.float64)
    winf_rows = w_inf[None, :] if w_inf.ndim == 1 else w_inf
    if winf_rows.shape[0] not in (1, w_int.shape[0]):
        raise ValueError(
            f"w_inf rows {winf_rows.shape[0]} do not broadcast over "
            f"{w_int.shape[0]} boundary rows")
    rho_i, u_i, v_i, wv_i, p_i = primitive_from_conserved(w_int)
    rho_f, u_f, v_f, wv_f, p_f = primitive_from_conserved(winf_rows)
    vel_i = np.stack([u_i, v_i, wv_i], axis=1)
    vel_f = np.stack([np.broadcast_to(u_f, rho_i.shape),
                      np.broadcast_to(v_f, rho_i.shape),
                      np.broadcast_to(wv_f, rho_i.shape)], axis=1)
    c_i = np.sqrt(GAMMA * p_i / rho_i)
    c_f = np.broadcast_to(np.sqrt(GAMMA * p_f / rho_f), rho_i.shape)

    un_i = np.einsum("id,id->i", vel_i, unit_normals)
    un_f = np.einsum("id,id->i", vel_f, unit_normals)

    # Outgoing (interior) and incoming (freestream) acoustic invariants.
    r_plus = un_i + 2.0 * c_i / GAMMA_M1
    r_minus = un_f - 2.0 * c_f / GAMMA_M1
    # Supersonic overrides: both invariants from the upwind side.
    supersonic_out = un_i >= c_i
    supersonic_in = un_i <= -c_i
    r_minus = np.where(supersonic_out, un_i - 2.0 * c_i / GAMMA_M1, r_minus)
    r_plus = np.where(supersonic_in, un_f + 2.0 * c_f / GAMMA_M1, r_plus)

    un_b = 0.5 * (r_plus + r_minus)
    c_b = 0.25 * GAMMA_M1 * (r_plus - r_minus)

    outflow = un_b > 0.0
    # Entropy and tangential velocity advect from the upwind side.
    s_i = p_i / rho_i ** GAMMA
    s_f = np.broadcast_to(p_f / rho_f ** GAMMA, rho_i.shape)
    s_b = np.where(outflow, s_i, s_f)
    vel_t = np.where(outflow[:, None], vel_i - un_i[:, None] * unit_normals,
                     vel_f - un_f[:, None] * unit_normals)

    rho_b = (c_b * c_b / (GAMMA * s_b)) ** (1.0 / GAMMA_M1)
    p_b = rho_b * c_b * c_b / GAMMA
    vel_b = vel_t + un_b[:, None] * unit_normals

    q2 = np.einsum("id,id->i", vel_b, vel_b)
    w_b = np.empty_like(w_int)
    w_b[:, 0] = rho_b
    w_b[:, 1:4] = rho_b[:, None] * vel_b
    w_b[:, 4] = p_b / GAMMA_M1 + 0.5 * rho_b * q2
    return w_b


def boundary_fluxes(w: np.ndarray, bdata: BoundaryData, w_inf: np.ndarray,
                    out: np.ndarray | None = None) -> np.ndarray:
    """Boundary closure of the convective operator, shape ``(nv, 5)``.

    Accumulates the wall pressure flux and the farfield characteristic
    flux into the residual array (allocating it when ``out`` is None).
    """
    if out is None:
        out = np.zeros((bdata.n_vertices, 5))

    if bdata.wall_vertices.size:
        p_wall = pressure(w[bdata.wall_vertices])
        out[bdata.wall_vertices, 1:4] += p_wall[:, None] * bdata.wall_normals

    if bdata.far_vertices.size:
        w_b = characteristic_state(w[bdata.far_vertices], bdata.far_unit, w_inf)
        f_b = flux_vectors(w_b)                                # (nb, 5, 3)
        out[bdata.far_vertices] += np.einsum("ikd,id->ik", f_b, bdata.far_normals)
    return out
