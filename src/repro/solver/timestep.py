"""Local time stepping: per-vertex maximum stable time step.

"To accelerate convergence of the base solver, locally varying time steps
... are used" (Section 2.2).  The admissible step of vertex ``i`` is
proportional to its control volume divided by the sum of convective
spectral radii over its incident dual faces (edges and boundary normals):

    ``dt_i = CFL * V_i / ( sum_{e ∋ i} lam_e + lam_boundary,i )``.
"""

from __future__ import annotations

import numpy as np

from ..scatter import EdgeScatter
from ..state import primitive_from_conserved
from .bc import BoundaryData
from .dissipation import edge_spectral_radius

__all__ = ["local_timestep", "FLOPS_PER_EDGE_TIMESTEP", "FLOPS_PER_VERTEX_TIMESTEP"]

FLOPS_PER_EDGE_TIMESTEP = 18
FLOPS_PER_VERTEX_TIMESTEP = 4


def local_timestep(w: np.ndarray, edges: np.ndarray, eta: np.ndarray,
                   scatter: EdgeScatter, dual_volumes: np.ndarray,
                   bdata: BoundaryData, cfl: float,
                   out: np.ndarray | None = None) -> np.ndarray:
    """Per-vertex local time step ``(nv,)`` at CFL ``cfl``.

    ``out`` (shape ``(nv,)``) doubles as the spectral-radius accumulator
    and receives the final time steps, so the call allocates only the
    per-edge wave speeds.
    """
    lam = edge_spectral_radius(w, edges, eta)
    sigma = scatter.unsigned(lam, out=out)

    # Boundary contribution: spectral radius through the lumped normals.
    rho, u, v, wv, p = primitive_from_conserved(w)
    vel = np.stack([u, v, wv], axis=1)
    c = np.sqrt(1.4 * p / rho)
    for verts, normals in ((bdata.wall_vertices, bdata.wall_normals),
                           (bdata.far_vertices, bdata.far_normals)):
        if verts.size:
            nn = np.linalg.norm(normals, axis=1)
            un = np.abs(np.einsum("id,id->i", vel[verts], normals))
            # Boundary vertex lists are flatnonzero-derived (unique), so
            # the fancy += is exactly the historical np.add.at.
            sigma[verts] += un + c[verts] * nn

    if out is None:
        return cfl * dual_volumes / np.maximum(sigma, 1e-300)
    np.maximum(sigma, 1e-300, out=out)
    np.divide(dual_volumes, out, out=out)
    np.multiply(out, cfl, out=out)
    return out
