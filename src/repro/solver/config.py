"""Solver configuration: numerical parameters of the EUL3D scheme."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..constants import (CFL_DEFAULT, CFL_UNSMOOTHED, K2_DEFAULT, K4_DEFAULT,
                         RESIDUAL_SMOOTHING_EPS, RESIDUAL_SMOOTHING_SWEEPS)

__all__ = ["SolverConfig"]


@dataclass(frozen=True)
class SolverConfig:
    """Numerical parameters of the five-stage scheme.

    Defaults follow common JST-scheme practice and the paper's description:
    local time stepping and implicit residual averaging on, dissipation
    re-evaluated at the first two Runge-Kutta stages only.
    """

    cfl: float = CFL_DEFAULT
    k2: float = K2_DEFAULT
    k4: float = K4_DEFAULT
    residual_smoothing: bool = True
    smoothing_eps: float = RESIDUAL_SMOOTHING_EPS
    smoothing_sweeps: int = RESIDUAL_SMOOTHING_SWEEPS
    #: Floor on the pressure-switch denominator, guards 0/0 at stagnation.
    switch_floor: float = 1e-12

    def without_smoothing(self) -> "SolverConfig":
        """Variant with residual averaging off and a stable (lower) CFL."""
        return replace(self, residual_smoothing=False, cfl=min(self.cfl, CFL_UNSMOOTHED))
