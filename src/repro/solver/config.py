"""Solver configuration: numerical parameters of the EUL3D scheme."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..constants import (CFL_DEFAULT, CFL_UNSMOOTHED, K2_DEFAULT, K4_DEFAULT,
                         RESIDUAL_SMOOTHING_EPS, RESIDUAL_SMOOTHING_SWEEPS)

__all__ = ["SolverConfig", "EXECUTOR_KINDS", "DIST_MODES", "TRANSPORTS"]

#: Recognised hot-path execution strategies (see ``repro.kernels``):
#: ``serial`` keeps the seed operators bit-identical; ``fused`` runs the
#: fused zero-allocation pipeline over the CSR scatter; ``colored`` runs it
#: over conflict-free colour groups; ``colored-threaded`` additionally
#: splits each colour across ``n_threads`` workers; ``compiled`` /
#: ``compiled-parallel`` run the numba-jitted fused kernels (serial order
#: / colour-parallel ``prange``) and require the ``compiled`` extra.
#: ``auto`` picks from the measured crossover table — the compiled family
#: when numba is importable, else ``fused`` or ``colored-threaded`` (see
#: :func:`repro.kernels.executors.resolve_auto_kind`).
EXECUTOR_KINDS = ("serial", "fused", "colored", "colored-threaded",
                  "compiled", "compiled-parallel", "auto")

#: Distributed execution modes (see ``repro.distsolver``): ``overlap``
#: (default) posts ghost exchanges, computes interior edges while
#: messages are in flight, completes boundary edges on arrival and
#: aggregates same-stage scatters into one message per neighbour pair;
#: ``blocking`` is the original barrier-per-phase ``np.add.at`` executor,
#: kept as the measured baseline.
DIST_MODES = ("blocking", "overlap")

#: Ghost-payload transports of the true-process mp backend (see
#: ``repro.distsolver.mp_solver``): ``pipe`` pickles every payload array
#: through the rank-pair ``multiprocessing`` pipes (the bit-identical
#: baseline); ``shm`` moves payloads by memcpy through inspector-sized
#: ``multiprocessing.shared_memory`` slabs while the pipes carry only
#: small control descriptors (see ``repro.distsolver.shm_channel``).
#: Ignored by the simulated backend, which has no process boundary.
TRANSPORTS = ("pipe", "shm")


@dataclass(frozen=True)
class SolverConfig:
    """Numerical parameters of the five-stage scheme.

    Defaults follow common JST-scheme practice and the paper's description:
    local time stepping and implicit residual averaging on, dissipation
    re-evaluated at the first two Runge-Kutta stages only.
    """

    cfl: float = CFL_DEFAULT
    k2: float = K2_DEFAULT
    k4: float = K4_DEFAULT
    residual_smoothing: bool = True
    smoothing_eps: float = RESIDUAL_SMOOTHING_EPS
    smoothing_sweeps: int = RESIDUAL_SMOOTHING_SWEEPS
    #: Floor on the pressure-switch denominator, guards 0/0 at stagnation.
    switch_floor: float = 1e-12
    #: Hot-path strategy, one of :data:`EXECUTOR_KINDS`.  ``serial`` (the
    #: default) is bit-identical to the seed solver; the others run the
    #: fused pipeline and agree with it to roundoff (<= 1e-12 relative).
    executor: str = "serial"
    #: Worker count for ``executor="colored-threaded"`` (ignored otherwise).
    n_threads: int = 1
    #: RCM cache-locality edge reordering at solver construction.  ``None``
    #: (default) means automatic: on for every non-serial executor, off for
    #: ``serial`` (reordering permutes summation order, which would break
    #: the serial path's bit-identity guarantee).
    edge_reorder: bool | None = None
    #: Distributed execution mode, one of :data:`DIST_MODES` — the
    #: latency-hiding ``overlap`` executor (default) or the original
    #: ``blocking`` barrier-per-phase executor.
    dist_mode: str = "overlap"
    #: Ghost-payload transport of the mp backend, one of
    #: :data:`TRANSPORTS` — ``pipe`` (default, pickled arrays through
    #: pipes) or ``shm`` (zero-copy shared-memory slabs, bit-identical
    #: results, control messages only through the pipes).
    transport: str = "pipe"

    # -- resilience policy (see repro.resilience and docs/resilience.md) --
    #: Per-step health check of the monitored residual norm (NaN/Inf and
    #: runaway growth).  Costs two float comparisons per cycle; detection
    #: triggers the recovery ladder below.
    divergence_guard: bool = True
    #: A residual exceeding ``guard_growth_ratio`` times the best norm
    #: seen so far is classified as divergence (NaN/Inf is always caught).
    guard_growth_ratio: float = 1.0e6
    #: Recovery attempts (CFL backoff + checkpoint restore) before the
    #: run gives up with a :class:`~repro.resilience.DivergenceError`.
    max_recoveries: int = 2
    #: CFL multiplier applied by each recovery (must be in (0, 1]).
    recovery_cfl_factor: float = 0.5
    #: Multiplier applied to k2/k4 dissipation by each recovery (>= 1).
    recovery_dissipation_factor: float = 1.5
    #: Cycles between automatic solver-state snapshots in the stepping
    #: loops (0 = only the initial state is kept as the restore target).
    checkpoint_interval: int = 0

    # -- invariant sanitizers (see repro.analysis, docs/static-analysis.md)
    #: ``"off"`` (default, zero overhead via the NullSanitizer gate),
    #: ``"all"``, or a comma-separated subset of
    #: :data:`repro.analysis.SANITIZER_NAMES` — e.g. ``"color,schedule"``.
    #: Enabled sanitizers verify colouring conflict-freedom, PARTI
    #: schedule completeness and post/complete pairing, and workspace
    #: aliasing / per-stage allocation discipline; violations raise
    #: :class:`repro.analysis.SanitizerError`.
    sanitize: str = "off"

    def __post_init__(self):
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}")
        if self.dist_mode not in DIST_MODES:
            raise ValueError(
                f"dist_mode must be one of {DIST_MODES}, got {self.dist_mode!r}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}")
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")
        if self.guard_growth_ratio <= 1.0:
            raise ValueError(
                f"guard_growth_ratio must be > 1, got {self.guard_growth_ratio}")
        if not (0.0 < self.recovery_cfl_factor <= 1.0):
            raise ValueError(
                f"recovery_cfl_factor must be in (0, 1], got "
                f"{self.recovery_cfl_factor}")
        if self.recovery_dissipation_factor < 1.0:
            raise ValueError(
                f"recovery_dissipation_factor must be >= 1, got "
                f"{self.recovery_dissipation_factor}")
        if self.max_recoveries < 0:
            raise ValueError(
                f"max_recoveries must be >= 0, got {self.max_recoveries}")
        if self.checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0, got "
                f"{self.checkpoint_interval}")
        self.sanitize_set  # noqa: B018 - validates the sanitize string

    def backed_off(self) -> "SolverConfig":
        """The recovery variant: CFL reduced, dissipation bumped."""
        return replace(self,
                       cfl=self.cfl * self.recovery_cfl_factor,
                       k2=self.k2 * self.recovery_dissipation_factor,
                       k4=self.k4 * self.recovery_dissipation_factor)

    @property
    def sanitize_set(self) -> frozenset:
        """The :attr:`sanitize` string resolved to a set of sanitizer names."""
        from ..analysis.sanitize import SANITIZER_NAMES
        raw = self.sanitize.strip().lower()
        if raw in ("", "off", "none"):
            return frozenset()
        if raw == "all":
            return frozenset(SANITIZER_NAMES)
        names = frozenset(t.strip() for t in raw.split(",") if t.strip())
        unknown = names - frozenset(SANITIZER_NAMES)
        if unknown:
            raise ValueError(
                f"sanitize names {sorted(unknown)} not in {SANITIZER_NAMES} "
                f"(or use 'off'/'all')")
        return names

    @property
    def reorder_edges_enabled(self) -> bool:
        """Resolved edge-reordering decision (see :attr:`edge_reorder`)."""
        if self.edge_reorder is None:
            return self.executor != "serial"
        return bool(self.edge_reorder)

    def without_smoothing(self) -> "SolverConfig":
        """Variant with residual averaging off and a stable (lower) CFL."""
        return replace(self, residual_smoothing=False, cfl=min(self.cfl, CFL_UNSMOOTHED))
