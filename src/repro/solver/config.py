"""Solver configuration: numerical parameters of the EUL3D scheme."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..constants import (CFL_DEFAULT, CFL_UNSMOOTHED, K2_DEFAULT, K4_DEFAULT,
                         RESIDUAL_SMOOTHING_EPS, RESIDUAL_SMOOTHING_SWEEPS)

__all__ = ["SolverConfig", "EXECUTOR_KINDS"]

#: Recognised hot-path execution strategies (see ``repro.kernels``):
#: ``serial`` keeps the seed operators bit-identical; ``fused`` runs the
#: fused zero-allocation pipeline over the CSR scatter; ``colored`` runs it
#: over conflict-free colour groups; ``colored-threaded`` additionally
#: splits each colour across ``n_threads`` workers.
EXECUTOR_KINDS = ("serial", "fused", "colored", "colored-threaded")


@dataclass(frozen=True)
class SolverConfig:
    """Numerical parameters of the five-stage scheme.

    Defaults follow common JST-scheme practice and the paper's description:
    local time stepping and implicit residual averaging on, dissipation
    re-evaluated at the first two Runge-Kutta stages only.
    """

    cfl: float = CFL_DEFAULT
    k2: float = K2_DEFAULT
    k4: float = K4_DEFAULT
    residual_smoothing: bool = True
    smoothing_eps: float = RESIDUAL_SMOOTHING_EPS
    smoothing_sweeps: int = RESIDUAL_SMOOTHING_SWEEPS
    #: Floor on the pressure-switch denominator, guards 0/0 at stagnation.
    switch_floor: float = 1e-12
    #: Hot-path strategy, one of :data:`EXECUTOR_KINDS`.  ``serial`` (the
    #: default) is bit-identical to the seed solver; the others run the
    #: fused pipeline and agree with it to roundoff (<= 1e-12 relative).
    executor: str = "serial"
    #: Worker count for ``executor="colored-threaded"`` (ignored otherwise).
    n_threads: int = 1
    #: RCM cache-locality edge reordering at solver construction.  ``None``
    #: (default) means automatic: on for every non-serial executor, off for
    #: ``serial`` (reordering permutes summation order, which would break
    #: the serial path's bit-identity guarantee).
    edge_reorder: bool | None = None

    def __post_init__(self):
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}")
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")

    @property
    def reorder_edges_enabled(self) -> bool:
        """Resolved edge-reordering decision (see :attr:`edge_reorder`)."""
        if self.edge_reorder is None:
            return self.executor != "serial"
        return bool(self.edge_reorder)

    def without_smoothing(self) -> "SolverConfig":
        """Variant with residual averaging off and a stable (lower) CFL."""
        return replace(self, residual_smoothing=False, cfl=min(self.cfl, CFL_UNSMOOTHED))
