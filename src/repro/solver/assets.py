"""Shared, cacheable solver assets keyed by (mesh fingerprint, config).

Constructing an :class:`~repro.solver.EulerSolver` from a
:class:`~repro.mesh.tetra.TetMesh` pays for the full inspector phase:
edge extraction, RCM reordering, CSR incidence assembly, graph coloring
and boundary preprocessing — ~1.5 s on the paper's 21k-vertex box mesh,
i.e. orders of magnitude more than a single residual evaluation.  A
Mach/alpha/CFL sweep that builds one solver per flow condition therefore
spends almost all of its time rebuilding identical schedules.

This module makes those products first-class and reusable:

* :func:`mesh_fingerprint` — content hash of the mesh (or prebuilt edge
  structure);
* :class:`SolverAssets` — the bundle of mesh-derived, condition-free
  products (edge structure, CSR scatter, boundary data, executor);
* :func:`get_solver_assets` — module-level cache keyed by
  ``(mesh fingerprint, structural config key)`` so repeated ensemble
  members never rebuild schedules.

``EulerSolver(..., assets=...)`` then skips straight to the per-condition
state (freestream rows, fused pipeline arenas), and
:meth:`EulerSolver.solve_ensemble` shares one asset bundle across every
scenario in the batch.

Caching is skipped when runtime sanitizers are enabled — sanitizer hooks
are registered at executor construction, so a cached executor built
without them would silently bypass the checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..mesh.edges import EdgeStructure, build_edge_structure
from ..mesh.tetra import TetMesh
from ..scatter import EdgeScatter
from ..telemetry import get_tracer
from .bc import BoundaryData
from .config import SolverConfig

__all__ = ["SolverAssets", "mesh_fingerprint", "asset_config_key",
           "build_solver_assets", "get_solver_assets", "clear_asset_cache"]


def mesh_fingerprint(mesh) -> str:
    """Content hash (sha256 hex) of a mesh or prebuilt edge structure.

    For a :class:`TetMesh` the hash covers vertex coordinates, tet
    connectivity and the boundary tagger's qualified name (the tagger is
    a callable; its identity, not its code, enters the key — two taggers
    with the same qualname but different behaviour would collide, so
    name taggers distinctly).  For an :class:`EdgeStructure` it covers
    the edge/geometry arrays themselves.
    """
    h = hashlib.sha256()
    if isinstance(mesh, TetMesh):
        h.update(b"tetmesh")
        h.update(np.ascontiguousarray(mesh.vertices))
        h.update(np.ascontiguousarray(mesh.tets))
        tagger = mesh.boundary_tagger
        tag_name = "" if tagger is None else (
            f"{getattr(tagger, '__module__', '')}."
            f"{getattr(tagger, '__qualname__', repr(type(tagger)))}")
        h.update(tag_name.encode())
    elif isinstance(mesh, EdgeStructure):
        h.update(b"edgestructure")
        h.update(np.ascontiguousarray(mesh.edges))
        h.update(np.ascontiguousarray(mesh.eta))
        h.update(np.ascontiguousarray(mesh.dual_volumes))
        h.update(np.ascontiguousarray(mesh.bface_tags))
    else:
        raise TypeError(
            f"mesh must be TetMesh or EdgeStructure, got {type(mesh)}")
    return h.hexdigest()


def asset_config_key(config: SolverConfig) -> str:
    """The structural part of a config: fields that shape the assets.

    Numerical knobs (CFL, k2/k4, smoothing) do not enter — assets built
    once serve any flow condition on the same mesh.
    """
    return (f"executor={config.executor}|n_threads={config.n_threads}"
            f"|edge_reorder={config.edge_reorder}")


@dataclass(eq=False)
class SolverAssets:
    """Condition-free products of the solver's inspector phase.

    ``executor`` is ``None`` for the serial configuration (the serial
    path scatters through ``scatter`` directly); ``kind`` records the
    resolved executor kind (``"auto"`` is resolved at build time).
    """

    struct: EdgeStructure
    scatter: EdgeScatter
    bdata: BoundaryData
    kind: str
    executor: object = None
    mesh: TetMesh | None = None
    reordered: bool = False
    config_key: str = ""
    fingerprint: str | None = field(default=None, repr=False)


def build_solver_assets(mesh, config: SolverConfig | None = None, *,
                        tracer=None, color_sanitizer=None) -> SolverAssets:
    """Build the asset bundle exactly as ``EulerSolver.__init__`` would."""
    config = config or SolverConfig()
    tracer = tracer if tracer is not None else get_tracer()
    if isinstance(mesh, TetMesh):
        mesh_obj, struct = mesh, build_edge_structure(mesh)
    elif isinstance(mesh, EdgeStructure):
        mesh_obj, struct = None, mesh
    else:
        raise TypeError(
            f"mesh must be TetMesh or EdgeStructure, got {type(mesh)}")

    reordered = False
    if config.reorder_edges_enabled:
        from ..kernels import reorder_edges
        struct = reorder_edges(struct)
        reordered = True

    scatter = EdgeScatter(struct.edges, struct.n_vertices, tracer=tracer)
    bdata = BoundaryData(struct)

    kind, executor = "serial", None
    if config.executor != "serial":
        from ..kernels import make_executor
        from ..kernels.executors import resolve_auto_kind
        kind = config.executor
        if kind == "auto":
            kind = resolve_auto_kind(struct.edges, struct.n_vertices,
                                     config.n_threads)
        executor = make_executor(struct.edges, struct.n_vertices, kind=kind,
                                 n_threads=config.n_threads, tracer=tracer,
                                 sanitizer=color_sanitizer)
    return SolverAssets(struct=struct, scatter=scatter, bdata=bdata,
                        kind=kind, executor=executor, mesh=mesh_obj,
                        reordered=reordered,
                        config_key=asset_config_key(config))


_ASSET_CACHE: dict[tuple[str, str], SolverAssets] = {}


def get_solver_assets(mesh, config: SolverConfig | None = None, *,
                      tracer=None) -> SolverAssets:
    """Cached :func:`build_solver_assets`.

    The cache key is ``(mesh fingerprint, structural config key)``; a
    hit returns the *same* bundle (schedules, CSR operators and executor
    threads are shared — they are stateless per call).  When
    ``config.sanitize`` enables runtime sanitizers the cache is bypassed
    and a fresh bundle is built every time.
    """
    config = config or SolverConfig()
    if config.sanitize_set:
        return build_solver_assets(mesh, config, tracer=tracer)
    key = (mesh_fingerprint(mesh), asset_config_key(config))
    assets = _ASSET_CACHE.get(key)
    if assets is None:
        assets = build_solver_assets(mesh, config, tracer=tracer)
        assets.fingerprint = key[0]
        _ASSET_CACHE[key] = assets
    return assets


def clear_asset_cache() -> None:
    """Drop every cached bundle (tests and memory-pressure escape hatch)."""
    _ASSET_CACHE.clear()
