"""PARTI runtime primitives (Parallel Automated Runtime Toolkit at ICASE)
re-implemented on a simulated message-passing machine."""

from .incremental import IncrementalGhosts, IncrementalScheduleBuilder
from .schedule import GatherSchedule, build_gather_schedule
from .simmpi import PhaseTraffic, SimMachine, TrafficLog
from .translation import TranslationTable

__all__ = [
    "IncrementalGhosts", "IncrementalScheduleBuilder", "GatherSchedule",
    "build_gather_schedule", "PhaseTraffic", "SimMachine", "TrafficLog",
    "TranslationTable",
]
