"""Distributed translation table: global index -> (owner, local offset).

PARTI's first job is "the distribution and retrieval of data from the
numerous processor local memories": arrays are distributed irregularly
according to the mesh partition, and a translation table records where
every global element lives.  Local storage on each rank is laid out as

    ``[ owned elements (in ascending global order) | ghost slots ]``

so owned data occupies ``[0, n_owned)`` and off-processor copies are
appended by the schedules (the paper's "off-processor data copies").
"""

from __future__ import annotations

import numpy as np

__all__ = ["TranslationTable"]


class TranslationTable:
    """Owner and local offset of every global index under a partition."""

    def __init__(self, assignment: np.ndarray, n_parts: int | None = None):
        assignment = np.asarray(assignment)
        if assignment.ndim != 1:
            raise ValueError("assignment must be 1-D (one owner per global index)")
        self.assignment = assignment.astype(np.int32)
        self.n_parts = int(n_parts if n_parts is not None else assignment.max() + 1)
        if np.any((assignment < 0) | (assignment >= self.n_parts)):
            raise ValueError("assignment contains out-of-range ranks")
        self.n_global = assignment.shape[0]

        #: global ids owned by each rank, ascending.
        self.owned_globals = [np.flatnonzero(self.assignment == r)
                              for r in range(self.n_parts)]
        self.n_owned = np.array([g.size for g in self.owned_globals])
        #: local offset of each global index within its owner.
        self.local_index = np.empty(self.n_global, dtype=np.int64)
        for r, globals_r in enumerate(self.owned_globals):
            self.local_index[globals_r] = np.arange(globals_r.size)

    def owner_of(self, global_ids: np.ndarray) -> np.ndarray:
        return self.assignment[global_ids]

    def local_of(self, global_ids: np.ndarray) -> np.ndarray:
        return self.local_index[global_ids]

    def dereference(self, global_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(owner, local offset) pairs — the PARTI ``dereference`` call."""
        return self.owner_of(global_ids), self.local_of(global_ids)

    def scatter_global_array(self, values: np.ndarray) -> list:
        """Distribute a replicated global array into per-rank owned blocks."""
        return [values[g] for g in self.owned_globals]

    def gather_global_array(self, per_rank: list) -> np.ndarray:
        """Reassemble a replicated global array from per-rank owned blocks."""
        first = per_rank[0]
        out = np.empty((self.n_global,) + first.shape[1:], dtype=first.dtype)
        for r, block in enumerate(per_rank):
            out[self.owned_globals[r]] = block
        return out
