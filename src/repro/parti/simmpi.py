"""Simulated message-passing machine.

The Intel Touchstone Delta and its NX message layer are long gone; this
module provides the substitute substrate documented in DESIGN.md: a
deterministic, single-process machine with ``n_ranks`` private address
spaces and explicit typed messages.  Every PARTI primitive moves data only
through :meth:`SimMachine.exchange`, so the byte/message traffic the
performance model prices is *measured*, not assumed.

The execution model is bulk-synchronous: ranks compute independently
(driven in lockstep by the SPMD driver), then exchange messages in a named
phase.  The traffic log records, per phase and per rank, the number of
messages and bytes sent and received — the inputs to the Touchstone Delta
communication model (latency x messages + bytes / bandwidth, maximised
over ranks per phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.sanitize import NULL_SANITIZER
from ..telemetry import get_tracer

__all__ = ["SimMachine", "TrafficLog", "PhaseTraffic"]


@dataclass
class PhaseTraffic:
    """Per-rank traffic counters of one named communication phase.

    Besides the per-rank send/receive totals this also keeps the full
    ``(n_ranks, n_ranks)`` neighbour matrices (``pair_msgs[src, dst]`` /
    ``pair_bytes[src, dst]``) — the raw material of the observatory's
    per-cycle communication matrix (the paper's neighbour-traffic view).
    """

    n_ranks: int
    msgs_sent: np.ndarray = None
    bytes_sent: np.ndarray = None
    msgs_recv: np.ndarray = None
    bytes_recv: np.ndarray = None
    pair_msgs: np.ndarray = None
    pair_bytes: np.ndarray = None
    occurrences: int = 0

    def __post_init__(self):
        self.msgs_sent = np.zeros(self.n_ranks, dtype=np.int64)
        self.bytes_sent = np.zeros(self.n_ranks, dtype=np.int64)
        self.msgs_recv = np.zeros(self.n_ranks, dtype=np.int64)
        self.bytes_recv = np.zeros(self.n_ranks, dtype=np.int64)
        self.pair_msgs = np.zeros((self.n_ranks, self.n_ranks),
                                  dtype=np.int64)
        self.pair_bytes = np.zeros((self.n_ranks, self.n_ranks),
                                   dtype=np.int64)

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    @property
    def total_msgs(self) -> int:
        return int(self.msgs_sent.sum())


@dataclass
class TrafficLog:
    """Accumulates :class:`PhaseTraffic` per phase name."""

    n_ranks: int
    phases: dict = field(default_factory=dict)

    def phase(self, name: str) -> PhaseTraffic:
        if name not in self.phases:
            self.phases[name] = PhaseTraffic(self.n_ranks)
        return self.phases[name]

    @property
    def total_bytes(self) -> int:
        return sum(p.total_bytes for p in self.phases.values())

    @property
    def total_msgs(self) -> int:
        return sum(p.total_msgs for p in self.phases.values())

    def reset(self) -> None:
        self.phases.clear()

    def report(self) -> str:
        lines = [f"{'phase':>24s} {'msgs':>10s} {'bytes':>14s}"]
        for name, p in sorted(self.phases.items()):
            lines.append(f"{name:>24s} {p.total_msgs:10d} {p.total_bytes:14d}")
        lines.append(f"{'total':>24s} {self.total_msgs:10d} {self.total_bytes:14d}")
        return "\n".join(lines)


class SimMachine:
    """``n_ranks`` simulated processors joined by a logged message fabric.

    ``exchange`` is an all-to-all-v step: it takes ``{(src, dst): array}``
    and returns the same mapping after "delivery", recording traffic under
    the given phase name.  Empty messages are not sent (PARTI aggregates
    small messages and never posts empties), and one (src, dst) array
    counts as a single message regardless of size — message aggregation is
    the sender's job and is what the schedule machinery implements.
    """

    def __init__(self, n_ranks: int, tracer=None, injector=None):
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.n_ranks = n_ranks
        self.log = TrafficLog(n_ranks)
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Optional :class:`repro.resilience.FaultInjector`: consulted for
        #: every cross-rank message, it can drop or corrupt payloads
        #: deterministically (the simulated machine's failure model; rank
        #: death only exists on the real-process backend).
        self.injector = injector
        #: Optional :class:`repro.analysis.ScheduleSanitizer` observing
        #: every exchange/post/complete (the null singleton costs one
        #: attribute check per call).  Installed by the distributed
        #: drivers when ``SolverConfig.sanitize`` includes ``schedule``.
        self.sanitizer = NULL_SANITIZER

    def _post(self, messages: dict, phase: str) -> tuple[dict, int]:
        """Filter, log and 'send' messages; shared by post/exchange.

        Returns ``(delivered, n_dropped)`` where ``n_dropped`` counts
        messages lost in transit (fault injection) — the schedule
        sanitizer turns nonzero drops into findings.
        """
        injector = self.injector
        n_dropped = 0
        traffic = self.log.phase(phase)
        traffic.occurrences += 1
        n_msgs = 0
        n_bytes = 0
        delivered = {}
        for (src, dst), payload in messages.items():
            if not (0 <= src < self.n_ranks and 0 <= dst < self.n_ranks):
                raise ValueError(f"bad ranks ({src}, {dst})")
            if src == dst:
                # Local copies are free on a real machine too.
                delivered[(src, dst)] = payload
                continue
            if injector is not None:
                payload = injector.on_sim_message(
                    phase, traffic.occurrences, src, dst, payload)
                if payload is None:       # dropped in transit
                    n_dropped += 1
                    continue
            payload = np.ascontiguousarray(payload)
            if payload.size == 0:
                continue
            traffic.msgs_sent[src] += 1
            traffic.bytes_sent[src] += payload.nbytes
            traffic.msgs_recv[dst] += 1
            traffic.bytes_recv[dst] += payload.nbytes
            traffic.pair_msgs[src, dst] += 1
            traffic.pair_bytes[src, dst] += payload.nbytes
            n_msgs += 1
            n_bytes += payload.nbytes
            delivered[(src, dst)] = payload
        if self.tracer.enabled:
            # The phase string is dynamic (names come from the
            # schedules), so build counter keys only when tracing.
            self.tracer.count("comm." + phase + ".msgs", n_msgs)
            self.tracer.count("comm." + phase + ".bytes", n_bytes)
        return delivered, n_dropped

    def exchange(self, messages: dict, phase: str) -> dict:
        with self.tracer.span("comm.exchange"):
            delivered, n_dropped = self._post(messages, phase)
            if self.sanitizer.enabled:
                self.sanitizer.on_exchange(phase, n_dropped)
            return delivered

    def post(self, messages: dict, phase: str) -> dict:
        """Non-blocking send half of an exchange (the overlap executor).

        Traffic is logged at post time — on a real machine the bytes go
        on the wire here, while the poster computes interior work.  The
        payloads are "in flight" (buffered, since a copy of the send
        buffer may be reused by the caller) until :meth:`complete`.
        """
        with self.tracer.span("comm.post"):
            delivered, n_dropped = self._post(messages, phase)
            # Snapshot payloads: the sender's pack buffers are reused by
            # the next post while this exchange is still pending.
            pending = {key: np.array(payload, copy=True)
                       for key, payload in delivered.items()}
            if self.sanitizer.enabled:
                self.sanitizer.on_post(phase, pending, n_dropped)
            return pending

    def complete(self, pending: dict) -> dict:
        """Blocking receive half matching an earlier :meth:`post`."""
        with self.tracer.span("comm.complete"):
            if self.sanitizer.enabled:
                self.sanitizer.on_complete(pending)
            return pending
