"""Communication schedules: the PARTI inspector/executor core.

"During program execution, the inspector examines the data references made
by a processor, and calculates what off-processor data needs to be
fetched.  The executor loop then uses the information from the inspector
to implement the actual computation. ... Each inspector produces a
communications schedule, which is essentially a pattern of communication
for gathering or scattering data" (Section 4.1).

:func:`build_gather_schedule` is the inspector: from each rank's set of
required off-processor global indices it derives, once, the packed
send/receive pattern.  :class:`GatherSchedule` is the executor side:

* :meth:`GatherSchedule.gather` fills each rank's ghost block from the
  owners' local arrays (one aggregated message per (owner, requester)
  pair — "latency or start-up cost is reduced by packing various small
  messages with the same destinations into one large message");
* :meth:`GatherSchedule.scatter_add` runs the same pattern backwards,
  accumulating ghost contributions into the owners' local arrays (the
  residual assembly of crossing edges).

Both executors are also available split into a non-blocking ``*_begin``
(post the sends) and a blocking ``*_finish`` (deliver) half, so a caller
can compute its interior edge contributions while the ghost messages are
in flight — the latency-hiding pattern of the overlap executor.  The
``scatter_add_multi_*`` variant packs several component arrays into one
message per neighbour pair ("packing various small messages with the
same destinations into one large message"), cutting the per-stage
message count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .simmpi import SimMachine
from .translation import TranslationTable

__all__ = ["GatherSchedule", "build_gather_schedule"]


@dataclass
class GatherSchedule:
    """Precomputed gather/scatter pattern for one ghost layout.

    Attributes
    ----------
    table : the translation table the schedule was built against.
    ghost_globals : per rank, the global ids of its ghost slots, ordered
        by (owner, global id) so each incoming message lands in one
        contiguous slice.
    send_indices : ``{(owner, requester): local indices}`` — which owned
        elements each owner packs for each requester.
    recv_slices : ``{(owner, requester): (start, stop)}`` — where the
        message lands in the requester's ghost block.
    """

    table: TranslationTable
    ghost_globals: list
    send_indices: dict
    recv_slices: dict
    name: str = "gather"
    #: Reusable per-((owner, requester), trailing shape, dtype) send pack
    #: buffers — the executor's steady state allocates nothing (same
    #: convention as the fused residual pipeline's stage workspaces).
    #: Safe to reuse across calls: the receiver copies each payload into
    #: its ghost block before :meth:`gather` returns.
    _pack_buffers: dict = field(default_factory=dict, repr=False,
                                compare=False)

    @property
    def n_ranks(self) -> int:
        return self.table.n_parts

    def ghost_counts(self) -> np.ndarray:
        return np.array([g.size for g in self.ghost_globals])

    def total_ghosts(self) -> int:
        return int(self.ghost_counts().sum())

    # ------------------------------------------------------------------
    def _pack(self, key: tuple, source: np.ndarray,
              idx: np.ndarray) -> np.ndarray:
        """Pack ``source[idx]`` into a reusable preallocated buffer."""
        trailing = source.shape[1:]
        buf_key = (key, trailing, source.dtype)
        buf = self._pack_buffers.get(buf_key)
        if buf is None or buf.shape[0] != idx.size:
            buf = np.empty((idx.size,) + trailing, dtype=source.dtype)
            self._pack_buffers[buf_key] = buf
        np.take(source, idx, axis=0, out=buf)
        return buf

    def _pack_gather(self, machine: SimMachine, owned: list) -> dict:
        n_packed = 0
        messages = {}
        for (src, dst), idx in self.send_indices.items():
            buf = self._pack((src, dst), owned[src], idx)
            n_packed += buf.nbytes
            messages[(src, dst)] = buf
        if machine.tracer.enabled:
            machine.tracer.count("parti.gather.bytes_packed", n_packed)
        return messages

    def _place_ghosts(self, delivered: dict, ghosts: list) -> None:
        for (src, dst), payload in delivered.items():
            start, stop = self.recv_slices[(src, dst)]
            ghosts[dst][start:stop] = payload

    def gather(self, machine: SimMachine, owned: list, phase: str | None = None) -> list:
        """Fetch ghost values: returns per-rank ghost arrays.

        ``owned[r]`` is rank r's owned block ``(n_owned_r, ...)``.
        """
        phase = phase or self.name
        tracer = machine.tracer
        with tracer.span("parti.gather"):
            delivered = machine.exchange(self._pack_gather(machine, owned),
                                         phase)
            ghosts = []
            for r in range(self.n_ranks):
                shape = (self.ghost_globals[r].size,) + owned[r].shape[1:]
                buf = np.zeros(shape, dtype=owned[r].dtype)
                ghosts.append(buf)
            self._place_ghosts(delivered, ghosts)
        return ghosts

    def gather_begin(self, machine: SimMachine, owned: list,
                     phase: str | None = None) -> dict:
        """Post the sends of a gather; returns the pending-exchange token.

        The caller computes interior work between ``gather_begin`` and
        :meth:`gather_finish` — that window is where communication
        latency hides.
        """
        phase = phase or self.name
        with machine.tracer.span("parti.gather.begin"):
            return machine.post(self._pack_gather(machine, owned), phase)

    def gather_finish(self, machine: SimMachine, pending: dict,
                      ghosts: list) -> None:
        """Deliver a posted gather into per-rank ghost blocks (in place)."""
        with machine.tracer.span("parti.gather.finish"):
            self._place_ghosts(machine.complete(pending), ghosts)

    def scatter_add(self, machine: SimMachine, ghost_contrib: list,
                    owned: list, phase: str | None = None) -> None:
        """Accumulate ghost-slot contributions back into the owners.

        Runs the gather pattern in reverse; ``owned[r]`` is updated in
        place.  This is PARTI's scatter-add executor used for residual
        assembly of partition-crossing edges.
        """
        phase = phase or (self.name + "-scatter")
        tracer = machine.tracer
        with tracer.span("parti.scatter_add"):
            n_packed = 0
            messages = {}
            for (owner, requester), (start, stop) in self.recv_slices.items():
                # Ghost blocks are (owner, id)-ordered, so the "pack" here
                # is a contiguous slice — a view, no copy needed.
                payload = ghost_contrib[requester][start:stop]
                n_packed += payload.nbytes
                messages[(requester, owner)] = payload
            if tracer.enabled:
                tracer.count("parti.scatter_add.bytes_packed", n_packed)
            delivered = machine.exchange(messages, phase)
            for (requester, owner), payload in delivered.items():
                idx = self.send_indices[(owner, requester)]
                # Send indices are unique per pair (the inspector
                # deduplicates), so plain fancy-indexed accumulation is
                # exact — no ``np.add.at`` needed.
                owned[owner][idx] += payload

    # -- aggregated, overlappable scatter-add ---------------------------
    def scatter_add_multi_begin(self, machine: SimMachine,
                                ghost_comps: list,
                                phase: str) -> dict:
        """Post one packed message per pair covering several components.

        ``ghost_comps[c][r]`` is rank r's ghost block of component ``c``
        (shape ``(n_ghost_r, k_c)`` or ``(n_ghost_r,)``); all components
        headed for the same owner are column-packed into a single
        message — the message-aggregation half of the overlap executor.
        """
        with machine.tracer.span("parti.scatter_add.begin"):
            n_packed = 0
            messages = {}
            for (owner, requester), (start, stop) in self.recv_slices.items():
                nrows = stop - start
                cols = [c[requester].reshape(c[requester].shape[0], -1)
                        [start:stop] for c in ghost_comps]
                width = sum(c.shape[1] for c in cols)
                buf_key = ((owner, requester), ("multi", width), np.float64)
                buf = self._pack_buffers.get(buf_key)
                if buf is None or buf.shape[0] != nrows:
                    buf = np.empty((nrows, width))
                    self._pack_buffers[buf_key] = buf
                c0 = 0
                for c in cols:
                    buf[:, c0:c0 + c.shape[1]] = c
                    c0 += c.shape[1]
                n_packed += buf.nbytes
                messages[(requester, owner)] = buf
            if machine.tracer.enabled:
                machine.tracer.count("parti.scatter_add.bytes_packed",
                                     n_packed)
            return machine.post(messages, phase)

    def scatter_add_multi_finish(self, machine: SimMachine, pending: dict,
                                 owned_comps: list) -> None:
        """Fold a posted multi-scatter into the owners' component arrays."""
        with machine.tracer.span("parti.scatter_add.finish"):
            delivered = machine.complete(pending)
            for (requester, owner), payload in delivered.items():
                idx = self.send_indices[(owner, requester)]
                c0 = 0
                for comp in owned_comps:
                    o = comp[owner]
                    # ``[:, None]`` (not reshape) so 1-D components stay
                    # writable views of the caller's array.
                    o2 = o if o.ndim == 2 else o[:, None]
                    k = o2.shape[1]
                    o2[idx] += payload[:, c0:c0 + k]
                    c0 += k


def build_gather_schedule(required_globals: list, table: TranslationTable,
                          name: str = "gather") -> GatherSchedule:
    """The inspector: derive a schedule from per-rank required global ids.

    ``required_globals[r]`` may contain duplicates and owned ids; both are
    removed (duplicate removal is the hash-table deduplication of Section
    4.3 — here a sort-unique, semantically identical).
    """
    n_ranks = table.n_parts
    ghost_globals: list = []
    send_indices: dict = {}
    recv_slices: dict = {}

    for r in range(n_ranks):
        req = np.unique(np.asarray(required_globals[r], dtype=np.int64))
        req = req[table.owner_of(req) != r]           # drop locally owned
        owners = table.owner_of(req)
        # Order ghosts by (owner, global) => per-owner contiguous slices.
        order = np.lexsort((req, owners))
        req = req[order]
        owners = owners[order]
        ghost_globals.append(req)
        for owner in np.unique(owners):
            sel = owners == owner
            start = int(np.flatnonzero(sel)[0])
            stop = start + int(sel.sum())
            send_indices[(int(owner), r)] = table.local_of(req[sel])
            recv_slices[(int(owner), r)] = (start, stop)

    return GatherSchedule(table=table, ghost_globals=ghost_globals,
                          send_indices=send_indices, recv_slices=recv_slices,
                          name=name)
