"""Incremental communication schedules (Section 4.3).

"We have developed optimizations which make it possible to track and reuse
off-processor data copies. ... Incremental schedules obtain only those
off-processor data not requested by a given set of pre-existing schedules.
Hash-tables are used [to] omit duplicate off-processor data references."

:class:`IncrementalScheduleBuilder` keeps, per rank, a hash table mapping
already-fetched global ids to their ghost slots.  Each ``add`` call takes
the next loop's reference set and returns a schedule covering **only the
new ids** plus an index map that lets the executor address old and new
copies uniformly.  The ablation benchmark compares total bytes moved with
and without this reuse — the paper's measured saving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..telemetry import get_tracer
from .schedule import GatherSchedule, build_gather_schedule
from .simmpi import SimMachine
from .translation import TranslationTable

__all__ = ["IncrementalScheduleBuilder", "IncrementalGhosts"]


@dataclass
class IncrementalGhosts:
    """One increment: the schedule for new ids and the cumulative layout."""

    schedule: GatherSchedule
    #: per rank: ghost slot of every id required by this loop (old or new)
    slots_for_required: list
    #: per rank: total ghost slots allocated so far (after this increment)
    cumulative_ghosts: np.ndarray


class IncrementalScheduleBuilder:
    """Builds a chain of incremental schedules over a shared ghost layout.

    Ghost slots are allocated append-only: slot numbers handed out by
    earlier increments stay valid, so executors can keep using data
    gathered by previous schedules — the whole point of the optimisation.
    """

    def __init__(self, table: TranslationTable, tracer=None):
        self.table = table
        self.n_ranks = table.n_parts
        self.tracer = tracer if tracer is not None else get_tracer()
        # The hash tables of the paper: global id -> ghost slot, per rank.
        self._slot_of: list = [dict() for _ in range(self.n_ranks)]
        self._next_slot = np.zeros(self.n_ranks, dtype=np.int64)
        self.increments: list = []
        #: Cumulative off-processor ids requested / found already resident
        #: across all :meth:`add` calls (the paper's hash-table dedup).
        self.total_requested = 0
        self.total_hits = 0

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of requested off-processor ids already resident."""
        if self.total_requested == 0:
            return 0.0
        return self.total_hits / self.total_requested

    # ------------------------------------------------------------------
    def ghost_count(self, rank: int) -> int:
        return int(self._next_slot[rank])

    def add(self, required_globals: list, name: str = "incr") -> IncrementalGhosts:
        """Register one loop's reference set; schedule only the new ids."""
        new_per_rank = []
        slots_per_rank = []
        n_requested = 0
        n_new = 0
        for r in range(self.n_ranks):
            req = np.unique(np.asarray(required_globals[r], dtype=np.int64))
            req = req[self.table.owner_of(req) != r]
            slot_map = self._slot_of[r]
            new_ids = [g for g in req.tolist() if g not in slot_map]
            n_requested += req.size
            n_new += len(new_ids)
            new_per_rank.append(np.array(new_ids, dtype=np.int64))
            slots_per_rank.append(req)     # placeholder, resolved below

        self.total_requested += n_requested
        self.total_hits += n_requested - n_new
        if self.tracer.enabled:
            self.tracer.count("parti.incr.ids_requested", n_requested)
            self.tracer.count("parti.incr.ids_new", n_new)
            self.tracer.gauge("parti.incr.dedup_hit_rate",
                              self.dedup_hit_rate)

        schedule = build_gather_schedule(new_per_rank, self.table, name=name)
        # Allocate slots for the new ids in schedule ghost order (so one
        # gathered message lands in one contiguous run of new slots).
        for r in range(self.n_ranks):
            slot_map = self._slot_of[r]
            base = int(self._next_slot[r])
            for k, g in enumerate(schedule.ghost_globals[r].tolist()):
                slot_map[g] = base + k
            self._next_slot[r] = base + schedule.ghost_globals[r].size

        resolved = []
        for r in range(self.n_ranks):
            slot_map = self._slot_of[r]
            resolved.append(np.array([slot_map[g] for g in slots_per_rank[r].tolist()],
                                     dtype=np.int64))
        incr = IncrementalGhosts(schedule=schedule,
                                 slots_for_required=resolved,
                                 cumulative_ghosts=self._next_slot.copy())
        self.increments.append(incr)
        return incr

    # ------------------------------------------------------------------
    def gather_increment(self, machine: SimMachine, incr: IncrementalGhosts,
                         owned: list, ghost_store: list,
                         phase: str | None = None) -> None:
        """Fetch only the increment's new ids into the shared ghost store.

        ``ghost_store[r]`` must be large enough for
        ``incr.cumulative_ghosts[r]`` slots; the new values are appended at
        the slots this increment allocated.
        """
        new_ghosts = incr.schedule.gather(machine, owned, phase)
        for r in range(self.n_ranks):
            n_new = incr.schedule.ghost_globals[r].size
            if n_new:
                start = int(incr.cumulative_ghosts[r]) - n_new
                ghost_store[r][start:start + n_new] = new_ghosts[r]
