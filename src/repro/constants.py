"""Physical and numerical constants shared across the EUL3D reproduction.

The solver works with the compressible Euler equations for a calorically
perfect gas.  All quantities are non-dimensional: density and speed of sound
are O(1) at freestream, which mirrors the normalisation used by EUL3D-class
codes and keeps residual magnitudes comparable to the paper's convergence
plots (Figure 2).
"""

from __future__ import annotations

#: Ratio of specific heats for air (calorically perfect gas).
GAMMA: float = 1.4

#: gamma - 1, precomputed because it appears in every pressure evaluation.
GAMMA_M1: float = GAMMA - 1.0

#: Number of conserved variables: [rho, rho*u, rho*v, rho*w, rho*E].
NVAR: int = 5

#: Five-stage Runge-Kutta coefficients from the paper (Section 2.2, eq. 1):
#: alpha = 1/4, 1/6, 3/8, 1/2, 1.  The final stage coefficient is 1 so that
#: w^{n+1} = w^(5).
RK_ALPHAS: tuple[float, ...] = (0.25, 1.0 / 6.0, 0.375, 0.5, 1.0)

#: Stages (0-based) at which the dissipative operator D(w) is re-evaluated.
#: The paper evaluates D at the first two stages and freezes it afterwards.
RK_DISSIPATION_STAGES: tuple[int, ...] = (0, 1)

#: Default second-difference (Laplacian) dissipation coefficient k2.
#: Active near shocks via the pressure switch.
K2_DEFAULT: float = 0.5

#: Default fourth-difference (biharmonic) dissipation coefficient k4.
#: Active in smooth flow; switched off where the Laplacian term dominates.
#: 1/32 was selected by a convergence sweep on the transonic bump case:
#: 1/64 leaves a residual limit cycle, 1/32 converges ~9 orders.
K4_DEFAULT: float = 1.0 / 32.0

#: Default CFL number for the five-stage scheme with residual averaging.
#: The classical support formula eps >= ((N/N*)^2 - 1)/4 with the
#: five-stage unsmoothed limit N* ~ 2.5 admits N ~ 4 at eps = 0.6.  The
#: averaging excludes boundary vertices (freeze_mask): smoothing across
#: the one-sided boundary stencils was found to destabilise the
#: impulsive-start transient on wall-clustered meshes; with the exclusion
#: CFL 4 is robust.  See repro.solver.smoothing and the stability tests.
CFL_DEFAULT: float = 4.0

#: Default CFL number without residual averaging (stability bound of the
#: five-stage scheme on the scalar model problem is about 2.5-3).
CFL_UNSMOOTHED: float = 2.0

#: Implicit residual averaging coefficient (Jacobi smoothing of residuals).
#: See CFL_DEFAULT for the stability rationale.
RESIDUAL_SMOOTHING_EPS: float = 0.6

#: Number of Jacobi sweeps used to approximate the implicit averaging.
RESIDUAL_SMOOTHING_SWEEPS: int = 2
