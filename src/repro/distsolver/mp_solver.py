"""The complete distributed solver over real OS processes.

Where :mod:`repro.distsolver.mp_exchange` demonstrates one phase, this
module runs the *entire* five-stage EUL3D step loop SPMD-style: one
process per rank, each executing the exact per-rank kernels of
:mod:`repro.distsolver.rank_kernels` (the same functions the simulated
driver uses), with ghost gathers and scatter-adds travelling through
multiprocessing pipes.

Message matching: every rank executes the identical deterministic sequence
of exchange operations, so each exchange carries a monotonically
increasing operation index; receivers match on it and stash early
arrivals.  Pipes preserve per-sender ordering, so the stash stays tiny.

Transports (``config.transport``): ``pipe`` (default) pickles every
payload array through the rank-pair pipes; ``shm`` moves payloads by
memcpy through inspector-sized :mod:`~repro.distsolver.shm_channel`
slabs while the pipes carry only small control descriptors — same
message matching, same sanitizer pairing, bit-identical results.

Fault tolerance (see ``docs/resilience.md``): every exchange op has a
configurable receive timeout and bounded send retry; a
:class:`repro.resilience.FaultInjector` can kill a rank, drop/delay a
pipe message, or corrupt a payload at exact deterministic coordinates;
the driver polls worker exit codes while collecting results, so a dead
rank surfaces as a prompt :class:`repro.resilience.RankFailedError`
naming the rank and its last completed op — not as a bare
``queue.Empty`` after ``n_ranks x timeout`` seconds.  With
``config.checkpoint_interval > 0`` the run is split into segments with a
solver-state checkpoint (and NaN health check) at each boundary, and can
be resumed bit-identically from any checkpoint.

This backend exists to show the reproduction's distributed algorithm is a
real SPMD program, not an artefact of the simulated machine; the
measurement instrument for the paper's tables remains
:class:`repro.parti.simmpi.SimMachine`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque

import numpy as np

from ..analysis.sanitize import NULL_SANITIZER, ScheduleSanitizer
from ..constants import NVAR, RK_ALPHAS, RK_DISSIPATION_STAGES
from ..resilience import (Checkpoint, DivergenceError, ExchangeTimeoutError,
                          collect_results, verify_checkpoint)
from ..solver.config import SolverConfig
from ..telemetry import (NULL_TRACER, Tracer, count_event, get_tracer,
                         global_counters, merge_global_counters)
from . import rank_kernels
from .partitioned_mesh import DistributedMesh
from .shm_channel import (CTRL_BYTES, ShmInlet, ShmSlabPool, is_shm_ctrl,
                          pair_extents)

__all__ = ["run_distributed_mp", "widen_pipe"]

#: Target kernel-buffer size for inbox pipes on the pipe transport.
#: The Linux default (64 KiB) holds only a couple of pickled box27
#: ghost payloads; with per-inbox send locks a writer blocking on a
#: full inbox holds its lock while the inbox owner may itself be
#: blocked writing — a circular wait.  In-flight demand per inbox is
#: bounded (each peer can run at most ~2 ops ahead before its own
#: receives stall), so 1 MiB covers paper-scale meshes with room to
#: spare; the op timeout stays as the backstop elsewhere.
PIPE_CAPACITY = 1 << 20


def widen_pipe(conn, target_bytes: int = PIPE_CAPACITY) -> int:
    """Grow a pipe's kernel buffer toward ``target_bytes`` (best effort).

    Returns the new capacity, or 0 where ``F_SETPIPE_SZ`` is
    unavailable (non-Linux) or refused (unprivileged requests above
    ``/proc/sys/fs/pipe-max-size`` clamp) — callers proceed either
    way and rely on the receive timeout to surface a wedged exchange.
    """
    import fcntl
    setsz = getattr(fcntl, "F_SETPIPE_SZ", None)
    if setsz is None:                 # pragma: no cover - non-Linux
        return 0
    try:
        return fcntl.fcntl(conn.fileno(), setsz, target_bytes)
    except OSError:                   # pragma: no cover - kernel clamp
        return 0


class _PipeTransport:
    """Per-rank exchange endpoint with operation-index matching.

    ``op_timeout`` bounds every receive (and labels exhausted send
    retries); ``max_send_retries`` bounds re-attempts of sends the fault
    injector reports as transiently lost; ``progress`` is a shared array
    where this rank publishes its last *completed* op index so the
    driver can quote it when the rank dies.
    """

    def __init__(self, rank: int, inbox, outboxes: dict,
                 send_indices: dict, recv_slices: dict, *,
                 injector=None, op_timeout: float = 30.0,
                 max_send_retries: int = 3, progress=None, sanitizer=None,
                 outbox_locks: dict | None = None):
        self.rank = rank
        self.inbox = inbox
        self.outboxes = outboxes
        # Every rank writes into every other rank's single inbox pipe,
        # and pipe writes larger than PIPE_BUF (4 KiB on Linux) are not
        # atomic: two ranks' concurrent payload sends interleave and the
        # receiver dies unpickling the shredded stream.  One lock per
        # destination inbox serializes the writers.  (The shm transport
        # needs no locks — its control descriptors are far below
        # PIPE_BUF, so its pipe writes are atomic.)
        self.outbox_locks = outbox_locks or {}
        self.send_indices = send_indices     # {dst: local idx}
        self.recv_slices = recv_slices       # {src: (start, stop)}
        self.injector = injector
        self.op_timeout = op_timeout
        self.max_send_retries = max_send_retries
        self.progress = progress
        self.op = 0
        self._stash: dict = {}
        #: Set by the rank worker after fork (tracers are per-process).
        self.tracer = NULL_TRACER
        #: Optional :class:`repro.analysis.ScheduleSanitizer` pairing the
        #: overlapped begin/finish halves per op index (null when off).
        self.sanitizer = sanitizer if sanitizer is not None \
            else NULL_SANITIZER

    # -- fault-aware primitives -----------------------------------------
    def _op_start(self, op: int) -> None:
        if self.injector is not None:
            self.injector.maybe_kill(self.rank, op)

    def _op_done(self, op: int) -> None:
        if self.progress is not None:
            self.progress[self.rank] = op

    def _send(self, dst: int, op: int, payload) -> None:
        if self.tracer.enabled:
            # Neighbour-pair accounting for the observatory's comm
            # matrix: this rank's payload reports what it sent to whom
            # (the parent reassembles the (src, dst) matrix from all
            # ranks' payload counters).  Dynamic names, so gated.
            self.tracer.count(f"observatory.sent.{dst}.msgs", 1)
            self.tracer.count(f"observatory.sent.{dst}.bytes",
                              payload.nbytes)
        inj = self.injector
        if inj is None:
            self._pipe_send(dst, (self.rank, op, payload))
            return
        attempts = self.max_send_retries + 1
        for attempt in range(attempts):
            filtered = inj.on_send(self.rank, dst, op, attempt, payload)
            if filtered is None:             # transient loss: retry
                count_event("resilience.send.retry")
                continue
            self._pipe_send(dst, (self.rank, op, filtered))
            return
        raise ExchangeTimeoutError(self.rank, op,
                                   f"send ({attempts} attempts)",
                                   self.op_timeout, peer=dst)

    def _pipe_send(self, dst: int, msg) -> None:
        lock = self.outbox_locks.get(dst)
        if lock is None:
            self.outboxes[dst].send(msg)
        else:
            with lock:
                self.outboxes[dst].send(msg)

    def _open_payload(self, src: int, data):
        """Resolve a received message body to its payload array.

        The pipe transport's bodies *are* the arrays; the shm transport
        overrides this to map control descriptors onto slab views.
        Called at consumption time (not at stash time), so per-pair
        sequence order is preserved for stashed early arrivals.
        """
        return data

    def _recv_op(self, op: int):
        stash = self._stash
        entries = stash.get(op)
        if entries:
            # popleft keeps per-sender FIFO order: pipes deliver each
            # sender's messages in send order, and stashing must not
            # reorder them (the shm descriptors are sequence-checked).
            src, data = entries.popleft()
            if not entries:
                # Drained: drop the key, or the stash grows by one empty
                # deque per early-arriving op for the rest of the run.
                del stash[op]
            return src, self._open_payload(src, data)
        deadline = time.monotonic() + self.op_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self.inbox.poll(remaining):
                raise ExchangeTimeoutError(self.rank, op, "recv",
                                           self.op_timeout)
            src, msg_op, data = self.inbox.recv()
            if msg_op == op:
                return src, self._open_payload(src, data)
            stash.setdefault(msg_op, deque()).append((src, data))

    def _recv_op_from(self, op: int, want_src: int):
        """Receive op ``op`` specifically from ``want_src``.

        The scatter folds use this to consume contributions in sorted
        sender order: ghost vertices shared by several neighbours make
        the ``+=`` order observable in the low bits, so folding in
        arrival order (the old behaviour) left the mp backend
        non-deterministic run to run.  There is exactly one message per
        (op, sender) pair, so the stash scan is over at most
        ``n_neighbours`` entries.
        """
        stash = self._stash
        entries = stash.get(op)
        if entries:
            for i, (src, data) in enumerate(entries):
                if src == want_src:
                    del entries[i]
                    if not entries:
                        del stash[op]
                    return self._open_payload(src, data)
        deadline = time.monotonic() + self.op_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self.inbox.poll(remaining):
                raise ExchangeTimeoutError(self.rank, op, "recv",
                                           self.op_timeout, peer=want_src)
            src, msg_op, data = self.inbox.recv()
            if msg_op == op and src == want_src:
                return self._open_payload(src, data)
            stash.setdefault(msg_op, deque()).append((src, data))

    # -- collective ops --------------------------------------------------
    def gather(self, local: np.ndarray, n_owned: int) -> None:
        """Fill ghost slots of ``local`` from the owners (in place)."""
        tracer = self.tracer
        with tracer.span("mp.gather"):
            op = self.op
            self.op += 1
            self._op_start(op)
            n_bytes = 0
            for dst, idx in self.send_indices.items():
                payload = local[idx]
                n_bytes += payload.nbytes
                self._send(dst, op, payload)
            if tracer.enabled:
                tracer.count("mp.gather.bytes_sent", n_bytes)
            for _ in range(len(self.recv_slices)):
                src, data = self._recv_op(op)
                start, stop = self.recv_slices[src]
                local[n_owned + start:n_owned + stop] = data
            self._op_done(op)

    def scatter_add(self, local: np.ndarray, n_owned: int) -> None:
        """Fold ghost-slot contributions back into the owners (in place)."""
        tracer = self.tracer
        with tracer.span("mp.scatter_add"):
            op = self.op
            self.op += 1
            self._op_start(op)
            n_bytes = 0
            for src, (start, stop) in self.recv_slices.items():
                payload = local[n_owned + start:n_owned + stop]
                n_bytes += payload.nbytes
                self._send(src, op, payload)
            if tracer.enabled:
                tracer.count("mp.scatter_add.bytes_sent", n_bytes)
            for src in sorted(self.send_indices):
                data = self._recv_op_from(op, src)
                # Send indices are unique per pair (np.unique'd at schedule
                # build), so the fancy += matches the np.add.at it replaces;
                # sorted sender order keeps the fold deterministic where
                # ghost vertices are shared by several neighbours.
                local[self.send_indices[src]] += data
            self._op_done(op)

    # -- overlapped (begin/finish) halves --------------------------------
    def gather_begin(self, local: np.ndarray) -> int:
        """Post the sends of a ghost gather; returns the op index.

        The caller computes interior edge contributions between this and
        :meth:`gather_finish` — the pipe transfer happens concurrently
        in the peer processes, so the latency genuinely hides.
        """
        op = self.op
        self.op += 1
        self._op_start(op)
        n_bytes = 0
        for dst, idx in self.send_indices.items():
            payload = local[idx]
            n_bytes += payload.nbytes
            self._send(dst, op, payload)
        if self.tracer.enabled:
            self.tracer.count("mp.gather.bytes_sent", n_bytes)
        if self.sanitizer.enabled:
            self.sanitizer.on_post_op(self.rank, op)
        return op

    def gather_finish(self, op: int, local: np.ndarray,
                      n_owned: int) -> None:
        """Receive the ghost slices of a posted gather (in place)."""
        with self.tracer.span("mp.gather.finish"):
            for _ in range(len(self.recv_slices)):
                src, data = self._recv_op(op)
                start, stop = self.recv_slices[src]
                local[n_owned + start:n_owned + stop] = data
            self._op_done(op)
        if self.sanitizer.enabled:
            self.sanitizer.on_complete_op(self.rank, op)

    def scatter_add_multi_begin(self, arrays: list, n_owned: int) -> int:
        """Post one column-packed scatter message per neighbour covering
        the ghost slices of several arrays (message aggregation)."""
        op = self.op
        self.op += 1
        self._op_start(op)
        n_bytes = 0
        for src, (start, stop) in self.recv_slices.items():
            cols = [(a if a.ndim == 2 else a[:, None])
                    [n_owned + start:n_owned + stop] for a in arrays]
            payload = cols[0] if len(cols) == 1 else np.concatenate(cols,
                                                                    axis=1)
            n_bytes += payload.nbytes
            self._send(src, op, payload)
        if self.tracer.enabled:
            self.tracer.count("mp.scatter_add.bytes_sent", n_bytes)
        if self.sanitizer.enabled:
            self.sanitizer.on_post_op(self.rank, op)
        return op

    def scatter_add_multi_finish(self, op: int, arrays: list,
                                 n_owned: int) -> None:
        """Fold a posted multi-scatter into the owned rows (in place)."""
        with self.tracer.span("mp.scatter_add.finish"):
            for src in sorted(self.send_indices):
                data = self._recv_op_from(op, src)
                idx = self.send_indices[src]
                c0 = 0
                for a in arrays:
                    a2 = a if a.ndim == 2 else a[:, None]
                    k = a2.shape[1]
                    # Send indices are unique per pair (the inspector
                    # deduplicates), so fancy-indexed += is exact.
                    a2[idx] += data[:, c0:c0 + k]
                    c0 += k
            self._op_done(op)
        if self.sanitizer.enabled:
            self.sanitizer.on_complete_op(self.rank, op)

    def shutdown(self) -> None:
        """Release transport resources at the end of a worker's run."""


class _ShmTransport(_PipeTransport):
    """Zero-copy variant: payloads through shared-memory slabs.

    Identical collective semantics, op matching, sanitizer pairing and
    fault surface as :class:`_PipeTransport` — only ``_send`` and the
    payload-opening hook differ.  A send memcpys the array into the
    pair's next slab slot and pushes a small ``("shm", seq, slot,
    shape)`` descriptor through the pipe; a receive opens the descriptor
    into a slab view (no copy) and releases the slot back to the sender
    once the payload has been consumed (next receive, or op completion).

    Fault coordinates keep addressing the *logical* send: ``drop`` and
    ``delay`` act on the control message (the payload stays staged in
    the slab across retries), ``corrupt`` acts on the slab contents.
    """

    def __init__(self, rank: int, inbox, outboxes: dict,
                 send_indices: dict, recv_slices: dict, *,
                 pool: ShmSlabPool, **kwargs):
        super().__init__(rank, inbox, outboxes, send_indices, recv_slices,
                         **kwargs)
        self.pool = pool
        self.channels_out = pool.outlet_channels(rank)
        self._inlet = ShmInlet(pool.inlet_channels(rank))

    def _send(self, dst: int, op: int, payload) -> None:
        if self.tracer.enabled:
            # The pipe now carries only the control descriptor — the
            # comm matrix's pipe bytes collapse to CTRL_BYTES while the
            # slab memcpy volume is accounted on its own counter.
            self.tracer.count(f"observatory.sent.{dst}.msgs", 1)
            self.tracer.count(f"observatory.sent.{dst}.bytes", CTRL_BYTES)
            self.tracer.count(f"observatory.shm.{dst}.bytes", payload.nbytes)
        claimed = self.channels_out[dst].begin_send(
            payload.shape, time.monotonic() + self.op_timeout)
        if claimed is None:
            raise ExchangeTimeoutError(self.rank, op, "send (slab wait)",
                                       self.op_timeout, peer=dst)
        ctrl, view = claimed
        np.copyto(view, payload)
        inj = self.injector
        if inj is None:
            self.outboxes[dst].send((self.rank, op, ctrl))
            return
        attempts = self.max_send_retries + 1
        for attempt in range(attempts):
            filtered = inj.on_send(self.rank, dst, op, attempt, view)
            if filtered is None:             # dropped control message
                count_event("resilience.send.retry")
                continue
            if filtered is not view:         # corrupted slab contents
                np.copyto(view, filtered)
            self.outboxes[dst].send((self.rank, op, ctrl))
            return
        raise ExchangeTimeoutError(self.rank, op,
                                   f"send ({attempts} attempts)",
                                   self.op_timeout, peer=dst)

    def _open_payload(self, src: int, data):
        if is_shm_ctrl(data):
            return self._inlet.open(src, data)
        return data

    def _op_done(self, op: int) -> None:
        # Op complete: every receive of this op has been consumed, so
        # all outstanding slots can go back to their senders.
        self._inlet.release_all()
        super()._op_done(op)

    def shutdown(self) -> None:
        # Drop this process's slab views and close its inherited mapping
        # so interpreter teardown never races numpy view destruction
        # against the segment close.
        self._inlet.release_all()
        self.pool.close()


def _rank_worker(rm, transport: _PipeTransport, w_local: np.ndarray,
                 w_inf: np.ndarray, config: SolverConfig, n_cycles: int,
                 result_queue, trace: bool = False) -> None:
    """One rank's full solver loop (mirrors DistributedEulerSolver.step).

    Every edge-scatter array of the stage loop is preallocated once per
    rank and reused via the ``out=`` parameters of
    :mod:`repro.distsolver.rank_kernels` — only the small owned-size
    temporaries and the pipe messages are allocated per stage.

    Failures (exchange timeouts, kernel exceptions) are reported through
    the result queue as an ``("err", rank, reason, traceback)`` sentinel
    before the process exits nonzero, so the driver can name the culprit
    instead of timing out.
    """
    try:
        _rank_worker_inner(rm, transport, w_local, w_inf, config, n_cycles,
                           result_queue, trace)
    except BaseException as exc:   # noqa: BLE001 - anything must be reported
        count_event("resilience.worker_error")
        reason = f"{type(exc).__name__}: {exc}"
        try:
            result_queue.put(("err", rm.rank, reason,
                              traceback.format_exc()))
            result_queue.close()
            result_queue.join_thread()   # flush before dying
        finally:
            os._exit(1)


def _rank_worker_inner(rm, transport: _PipeTransport, w_local: np.ndarray,
                       w_inf: np.ndarray, config: SolverConfig,
                       n_cycles: int, result_queue, trace: bool) -> None:
    cfg = config
    n_owned = rm.n_owned
    n_local = rm.n_local
    # A per-process tracer: the parent merges the payload it sends back
    # into its own tracer's ``remote_payloads`` (ranks share no clock, so
    # the timelines stay on separate pid rows in merged exports).
    tracer = Tracer() if trace else NULL_TRACER
    transport.tracer = tracer
    # Fork inherits the parent's always-on event counters; snapshot them
    # so this rank reports only its own additions back to the driver.
    counters_baseline = global_counters()

    # Per-rank buffer arena, reused across stages and cycles.
    sigma = np.empty((n_local, 1))
    q = np.empty((n_local, NVAR))
    packed = np.empty((n_local, NVAR + 2))
    d = np.empty((n_local, NVAR))
    ns = np.empty((n_local, NVAR))
    rbar = np.zeros((n_local, NVAR))
    w0 = np.empty((n_local, NVAR))
    wk_buf = np.empty((n_local, NVAR))
    dt_over_v = np.empty((n_owned, 1))

    def step(w_list_local):
        transport.gather(w_list_local, n_owned)
        rank_kernels.spectral_sigma(rm, w_list_local, out=sigma)
        transport.scatter_add(sigma, n_owned)
        dt = rank_kernels.timestep_from_sigma(rm, w_list_local,
                                              sigma[:n_owned, 0], cfg.cfl)
        dt_over_v[:, 0] = dt / rm.dual_volumes

        np.copyto(w0, w_list_local)
        wk = w_list_local
        diss = None
        for stage, alpha in enumerate(RK_ALPHAS):
            with tracer.span("rk.stage"):
                if stage > 0:
                    transport.gather(wk, n_owned)
                if stage in RK_DISSIPATION_STAGES:
                    rank_kernels.dissipation_partials(rm, wk, out=packed)
                    transport.scatter_add(packed, n_owned)
                    lnu = rank_kernels.finalize_switch(packed,
                                                       cfg.switch_floor)
                    transport.gather(lnu, n_owned)
                    rank_kernels.dissipation_edges(rm, wk, lnu, cfg.k2,
                                                   cfg.k4, out=d)
                    transport.scatter_add(d, n_owned)
                    diss = d
                rank_kernels.convective_local(rm, wk, out=q)
                transport.scatter_add(q, n_owned)
                rank_kernels.boundary_closure(rm, wk, w_inf, q)
                r = q[:n_owned] - diss[:n_owned]
                if cfg.residual_smoothing and cfg.smoothing_sweeps > 0:
                    rbar[...] = 0.0
                    rbar[:n_owned] = r
                    transport.gather(rbar, n_owned)
                    for sweep in range(cfg.smoothing_sweeps):
                        rank_kernels.neighbor_sum_partial(rm, rbar, out=ns)
                        transport.scatter_add(ns, n_owned)
                        rbar[:n_owned] = rank_kernels.smoothing_update(
                            rm, r, ns[:n_owned], cfg.smoothing_eps)
                        if sweep + 1 < cfg.smoothing_sweeps:
                            transport.gather(rbar, n_owned)
                    r = rbar[:n_owned]
                wk = rank_kernels.stage_update(rm, w0, r, dt_over_v, alpha,
                                               out=wk_buf)
        return wk

    # -- latency-hiding step (dist_mode="overlap") -----------------------
    from ..kernels.executors import COMPILED_KINDS
    ops = (rank_kernels.rank_ops(rm, tracer,
                                 compiled=cfg.executor in COMPILED_KINDS)
           if cfg.dist_mode == "overlap" else None)
    sigma1 = np.zeros(n_local)              # 1-D spectral sums (overlap)
    lap6 = np.zeros((n_local, NVAR + 1))    # signed partials [L | p-diff]
    den = np.zeros(n_local)                 # unsigned pressure sums
    lnu6 = np.zeros((n_local, NVAR + 1))    # finalized [L | nu]

    def step_overlap(w_list_local):
        wk = w_list_local
        for stage, alpha in enumerate(RK_ALPHAS):
            with tracer.span("rk.stage"):
                with_sigma = stage == 0
                gop = transport.gather_begin(wk)
                if stage in RK_DISSIPATION_STAGES:
                    with tracer.span("mp.overlap.interior"):
                        ops.stage_begin(wk, need_diss=True)
                        ops.partials6("interior", wk, lap6, False)
                        ops.pressure_den("interior", den, False)
                        if with_sigma:
                            ops.sigma("interior", sigma1, False)
                    transport.gather_finish(gop, wk, n_owned)
                    ops.stage_complete(wk, need_diss=True)
                    ops.partials6("boundary", wk, lap6, True)
                    ops.pressure_den("boundary", den, True)
                    if with_sigma:
                        ops.sigma("boundary", sigma1, True)
                    comps = ([sigma1, lap6, den] if with_sigma
                             else [lap6, den])
                    sop = transport.scatter_add_multi_begin(comps, n_owned)
                    with tracer.span("mp.overlap.interior"):
                        ops.convective("interior", q, False)
                    transport.scatter_add_multi_finish(sop, comps, n_owned)
                    ops.finalize_lnu(lap6, den, cfg.switch_floor, lnu6)
                    gop = transport.gather_begin(lnu6)
                    with tracer.span("mp.overlap.interior"):
                        ops.dissipation("interior", wk, lnu6, cfg.k2,
                                        cfg.k4, d, False)
                    transport.gather_finish(gop, lnu6, n_owned)
                    ops.dissipation("boundary", wk, lnu6, cfg.k2, cfg.k4,
                                    d, True)
                    ops.convective("boundary", q, True)
                    sop = transport.scatter_add_multi_begin([q, d], n_owned)
                    transport.scatter_add_multi_finish(sop, [q, d], n_owned)
                else:
                    with tracer.span("mp.overlap.interior"):
                        ops.stage_begin(wk, need_diss=False)
                        ops.convective("interior", q, False)
                    transport.gather_finish(gop, wk, n_owned)
                    ops.stage_complete(wk, need_diss=False)
                    ops.convective("boundary", q, True)
                    sop = transport.scatter_add_multi_begin([q], n_owned)
                    transport.scatter_add_multi_finish(sop, [q], n_owned)
                if with_sigma:
                    # Ghosts fresh: freeze w^(0) and the local time step
                    # from the sigma sums folded into the partials message.
                    dt = rank_kernels.timestep_from_sigma(
                        rm, wk, sigma1[:n_owned], cfg.cfl)
                    dt_over_v[:, 0] = dt / rm.dual_volumes
                    np.copyto(w0, wk)
                rank_kernels.boundary_closure(rm, wk, w_inf, q)
                r = q[:n_owned] - d[:n_owned]
                if cfg.residual_smoothing and cfg.smoothing_sweeps > 0:
                    rbar[:n_owned] = r
                    gop = transport.gather_begin(rbar)
                    for sweep in range(cfg.smoothing_sweeps):
                        with tracer.span("mp.overlap.interior"):
                            ops.neighbor_sum("interior", rbar, ns, False)
                        transport.gather_finish(gop, rbar, n_owned)
                        ops.neighbor_sum("boundary", rbar, ns, True)
                        sop = transport.scatter_add_multi_begin([ns],
                                                                n_owned)
                        transport.scatter_add_multi_finish(sop, [ns],
                                                           n_owned)
                        rbar[:n_owned] = ops.smoothing_update(
                            r, ns[:n_owned], cfg.smoothing_eps)
                        if sweep + 1 < cfg.smoothing_sweeps:
                            gop = transport.gather_begin(rbar)
                    r = rbar[:n_owned]
                wk = rank_kernels.stage_update(rm, w0, r, dt_over_v, alpha,
                                               out=wk_buf)
        return wk

    do_step = step if cfg.dist_mode == "blocking" else step_overlap
    w = w_local
    for _ in range(n_cycles):
        with tracer.span("solver.cycle"):
            w = do_step(w)
        if transport.sanitizer.enabled:
            # Strict by default: an unmatched begin raises here and
            # surfaces through the worker's error sentinel.
            transport.sanitizer.assert_drained(f"rank {rm.rank} cycle")
    payload = (tracer.to_payload(pid=rm.rank + 1, label=f"rank{rm.rank}")
               if trace else None)
    counters_delta = {
        name: value - counters_baseline.get(name, 0.0)
        for name, value in global_counters().items()
        if value != counters_baseline.get(name, 0.0)
    }
    transport.shutdown()
    result_queue.put(("ok", rm.rank, w[:n_owned], payload, counters_delta))


def _run_segment(dmesh: DistributedMesh, w_global: np.ndarray,
                 w_inf: np.ndarray, config: SolverConfig, n_cycles: int,
                 timeout: float, tracer, trace: bool, injector,
                 op_timeout: float, max_send_retries: int,
                 poll_interval: float) -> np.ndarray:
    """Spawn one worker per rank, run ``n_cycles`` cycles, collect.

    All pipe endpoints and the result queue are closed deterministically
    in the ``finally`` block — repeated calls in one process leak no
    file descriptors.
    """
    schedule = dmesh.schedule
    n_ranks = dmesh.n_ranks
    ctx = mp.get_context("fork")
    inbox_recv, inbox_send = zip(*[ctx.Pipe(duplex=False)
                                   for _ in range(n_ranks)])
    result_queue = ctx.Queue()
    # Lock-free: each rank is the sole writer of its own slot.
    progress = ctx.Array("q", n_ranks, lock=False)
    for rank in range(n_ranks):
        progress[rank] = -1

    sanitize_schedule = "schedule" in config.sanitize_set
    # The shm transport's slab pool is created in the parent *before* the
    # forks so every rank worker inherits the one mapping; the parent
    # unlinks it in the finally block (children's mappings stay valid
    # until they exit).
    pool = (ShmSlabPool(pair_extents(schedule))
            if config.transport == "shm" else None)
    # Serialize concurrent writers per inbox (see _PipeTransport); the
    # shm transport's sub-PIPE_BUF control messages don't need this.
    outbox_locks = (None if pool is not None else
                    {dst: ctx.Lock() for dst in range(n_ranks)})
    if pool is None:
        # Pickled payloads need kernel buffer headroom so a locked
        # writer never blocks on a full inbox (see PIPE_CAPACITY).
        for conn in inbox_send:
            widen_pipe(conn)
    workers = []
    collected = False
    try:
        for rank in range(n_ranks):
            rm = dmesh.ranks[rank]
            w_local = np.zeros((rm.n_local, NVAR))
            w_local[:rm.n_owned] = w_global[dmesh.table.owned_globals[rank]]
            transport_cls = _PipeTransport if pool is None else _ShmTransport
            shm_kwargs = {} if pool is None else {"pool": pool}
            transport = transport_cls(
                rank, inbox_recv[rank],
                {dst: inbox_send[dst] for dst in range(n_ranks)},
                {dst: idx for (src, dst), idx in schedule.send_indices.items()
                 if src == rank},
                {src: sl for (src, dst), sl in schedule.recv_slices.items()
                 if dst == rank},
                injector=injector, op_timeout=op_timeout,
                max_send_retries=max_send_retries, progress=progress,
                # One sanitizer per rank process (forked with the
                # transport); findings raise inside the worker and
                # surface through its error sentinel.
                sanitizer=(ScheduleSanitizer() if sanitize_schedule
                           else None),
                outbox_locks=outbox_locks,
                **shm_kwargs,
            )
            proc = ctx.Process(target=_rank_worker,
                               args=(rm, transport, w_local, w_inf, config,
                                     n_cycles, result_queue, trace))
            proc.start()
            workers.append(proc)

        results = collect_results(result_queue, workers, n_ranks, timeout,
                                  poll_interval=poll_interval,
                                  progress=progress, expect_fields=3)
        collected = True
        out = np.empty((dmesh.table.n_global, NVAR))
        for rank, (w_owned, payload, rank_counters) in results.items():
            out[dmesh.table.owned_globals[rank]] = w_owned
            if payload is not None:
                tracer.remote_payloads.append(payload)
            if rank_counters:
                # Fold each child rank's event-counter delta into the
                # parent so ``harness --counters`` sees all ranks.
                merge_global_counters(rank_counters)
        return out
    finally:
        if not collected:
            # Failure path: peers may sit in multi-second receive waits;
            # tear them down now rather than letting join() block.
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
        for proc in workers:
            proc.join(timeout=10.0)
            if proc.is_alive():       # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5.0)
        for conn in (*inbox_recv, *inbox_send):
            conn.close()
        result_queue.close()
        result_queue.join_thread()
        if pool is not None:
            pool.close()
            pool.unlink()


def run_distributed_mp(dmesh: DistributedMesh, w_global: np.ndarray,
                       w_inf: np.ndarray, config: SolverConfig | None = None,
                       n_cycles: int = 1,
                       timeout: float = 300.0, tracer=None, *,
                       injector=None, op_timeout: float = 30.0,
                       max_send_retries: int = 3,
                       poll_interval: float = 0.05,
                       checkpoint_store=None,
                       resume_from=None) -> np.ndarray:
    """Run ``n_cycles`` five-stage steps with one OS process per rank.

    Returns the assembled global solution; compare against
    :class:`repro.solver.EulerSolver` or the simulated driver.

    ``timeout`` is the wall-clock deadline for collecting **all** ranks
    of a segment (not per rank); worker exit codes are polled every
    ``poll_interval`` seconds while waiting, so a crashed rank raises
    :class:`repro.resilience.RankFailedError` promptly.  ``injector``
    (a :class:`repro.resilience.FaultInjector`) enables deterministic
    fault injection; ``op_timeout``/``max_send_retries`` bound every
    exchange op inside the workers.

    With ``config.checkpoint_interval > 0`` the run is split into
    segments of that many cycles; at each boundary the assembled state is
    NaN-checked (:class:`repro.resilience.DivergenceError` on failure)
    and snapshotted into ``checkpoint_store`` (when given).
    ``resume_from`` restarts from such a checkpoint bit-identically —
    each cycle begins with a full ghost gather, so the owned global state
    is the complete inter-cycle state.

    When ``tracer`` (or the ambient global tracer) is enabled, each rank
    worker records its own timeline and the payloads are merged into
    ``tracer.remote_payloads`` (pid = rank + 1) for the exporters.
    """
    config = config or SolverConfig()
    tracer = tracer if tracer is not None else get_tracer()
    trace = bool(tracer.enabled)
    interval = config.checkpoint_interval
    if "schedule" in config.sanitize_set:
        # Static verification once in the parent, before any fork: the
        # same schedule feeds every segment and every rank transport.
        ScheduleSanitizer().check_schedule(dmesh.schedule)

    start_cycle = 0
    w_current = w_global
    if resume_from is not None:
        verify_checkpoint(resume_from, config)
        w_current = resume_from.w
        start_cycle = resume_from.cycle

    cycle = start_cycle
    if cycle >= n_cycles:
        return np.array(w_current, dtype=np.float64, copy=True)
    while cycle < n_cycles:
        seg_end = (n_cycles if interval <= 0 else
                   min(n_cycles, (cycle // interval + 1) * interval))
        w_current = _run_segment(dmesh, w_current, w_inf, config,
                                 seg_end - cycle, timeout, tracer, trace,
                                 injector, op_timeout, max_send_retries,
                                 poll_interval)
        cycle = seg_end
        if config.divergence_guard and not np.all(np.isfinite(w_current)):
            count_event("resilience.guard.nan")
            raise DivergenceError("nan", cycle, float("nan"))
        if checkpoint_store is not None:
            checkpoint_store.save(Checkpoint.of(cycle, w_current, config))
    return w_current
