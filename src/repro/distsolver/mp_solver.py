"""The complete distributed solver over real OS processes.

Where :mod:`repro.distsolver.mp_exchange` demonstrates one phase, this
module runs the *entire* five-stage EUL3D step loop SPMD-style: one
process per rank, each executing the exact per-rank kernels of
:mod:`repro.distsolver.rank_kernels` (the same functions the simulated
driver uses), with ghost gathers and scatter-adds travelling through
multiprocessing pipes.

Message matching: every rank executes the identical deterministic sequence
of exchange operations, so each exchange carries a monotonically
increasing operation index; receivers match on it and stash early
arrivals.  Pipes preserve per-sender ordering, so the stash stays tiny.

This backend exists to show the reproduction's distributed algorithm is a
real SPMD program, not an artefact of the simulated machine; the
measurement instrument for the paper's tables remains
:class:`repro.parti.simmpi.SimMachine`.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from ..constants import NVAR, RK_ALPHAS, RK_DISSIPATION_STAGES
from ..solver.config import SolverConfig
from ..telemetry import NULL_TRACER, Tracer, get_tracer
from . import rank_kernels
from .partitioned_mesh import DistributedMesh

__all__ = ["run_distributed_mp"]


class _PipeTransport:
    """Per-rank exchange endpoint with operation-index matching."""

    def __init__(self, rank: int, inbox, outboxes: dict,
                 send_indices: dict, recv_slices: dict):
        self.rank = rank
        self.inbox = inbox
        self.outboxes = outboxes
        self.send_indices = send_indices     # {dst: local idx}
        self.recv_slices = recv_slices       # {src: (start, stop)}
        self.op = 0
        self._stash: dict = {}
        #: Set by the rank worker after fork (tracers are per-process).
        self.tracer = NULL_TRACER

    def _recv_op(self, op: int):
        if op in self._stash and self._stash[op]:
            return self._stash[op].pop()
        while True:
            src, msg_op, data = self.inbox.recv()
            if msg_op == op:
                return src, data
            self._stash.setdefault(msg_op, []).append((src, data))

    def gather(self, local: np.ndarray, n_owned: int) -> None:
        """Fill ghost slots of ``local`` from the owners (in place)."""
        tracer = self.tracer
        with tracer.span("mp.gather"):
            op = self.op
            self.op += 1
            n_bytes = 0
            for dst, idx in self.send_indices.items():
                payload = local[idx]
                n_bytes += payload.nbytes
                self.outboxes[dst].send((self.rank, op, payload))
            if tracer.enabled:
                tracer.count("mp.gather.bytes_sent", n_bytes)
            for _ in range(len(self.recv_slices)):
                src, data = self._recv_op(op)
                start, stop = self.recv_slices[src]
                local[n_owned + start:n_owned + stop] = data

    def scatter_add(self, local: np.ndarray, n_owned: int) -> None:
        """Fold ghost-slot contributions back into the owners (in place)."""
        tracer = self.tracer
        with tracer.span("mp.scatter_add"):
            op = self.op
            self.op += 1
            n_bytes = 0
            for src, (start, stop) in self.recv_slices.items():
                payload = local[n_owned + start:n_owned + stop]
                n_bytes += payload.nbytes
                self.outboxes[src].send((self.rank, op, payload))
            if tracer.enabled:
                tracer.count("mp.scatter_add.bytes_sent", n_bytes)
            for _ in range(len(self.send_indices)):
                src, data = self._recv_op(op)
                np.add.at(local, self.send_indices[src], data)


def _rank_worker(rm, transport: _PipeTransport, w_local: np.ndarray,
                 w_inf: np.ndarray, config: SolverConfig, n_cycles: int,
                 result_queue, trace: bool = False) -> None:
    """One rank's full solver loop (mirrors DistributedEulerSolver.step).

    Every edge-scatter array of the stage loop is preallocated once per
    rank and reused via the ``out=`` parameters of
    :mod:`repro.distsolver.rank_kernels` — only the small owned-size
    temporaries and the pipe messages are allocated per stage.
    """
    cfg = config
    n_owned = rm.n_owned
    n_local = rm.n_local
    # A per-process tracer: the parent merges the payload it sends back
    # into its own tracer's ``remote_payloads`` (ranks share no clock, so
    # the timelines stay on separate pid rows in merged exports).
    tracer = Tracer() if trace else NULL_TRACER
    transport.tracer = tracer

    # Per-rank buffer arena, reused across stages and cycles.
    sigma = np.empty((n_local, 1))
    q = np.empty((n_local, NVAR))
    packed = np.empty((n_local, NVAR + 2))
    d = np.empty((n_local, NVAR))
    ns = np.empty((n_local, NVAR))
    rbar = np.empty((n_local, NVAR))
    w0 = np.empty((n_local, NVAR))
    wk_buf = np.empty((n_local, NVAR))
    dt_over_v = np.empty((n_owned, 1))

    def step(w_list_local):
        transport.gather(w_list_local, n_owned)
        rank_kernels.spectral_sigma(rm, w_list_local, out=sigma)
        transport.scatter_add(sigma, n_owned)
        dt = rank_kernels.timestep_from_sigma(rm, w_list_local,
                                              sigma[:n_owned, 0], cfg.cfl)
        dt_over_v[:, 0] = dt / rm.dual_volumes

        np.copyto(w0, w_list_local)
        wk = w_list_local
        diss = None
        for stage, alpha in enumerate(RK_ALPHAS):
            with tracer.span("rk.stage"):
                if stage > 0:
                    transport.gather(wk, n_owned)
                if stage in RK_DISSIPATION_STAGES:
                    rank_kernels.dissipation_partials(rm, wk, out=packed)
                    transport.scatter_add(packed, n_owned)
                    lnu = rank_kernels.finalize_switch(packed,
                                                       cfg.switch_floor)
                    transport.gather(lnu, n_owned)
                    rank_kernels.dissipation_edges(rm, wk, lnu, cfg.k2,
                                                   cfg.k4, out=d)
                    transport.scatter_add(d, n_owned)
                    diss = d
                rank_kernels.convective_local(rm, wk, out=q)
                transport.scatter_add(q, n_owned)
                rank_kernels.boundary_closure(rm, wk, w_inf, q)
                r = q[:n_owned] - diss[:n_owned]
                if cfg.residual_smoothing and cfg.smoothing_sweeps > 0:
                    rbar[...] = 0.0
                    rbar[:n_owned] = r
                    transport.gather(rbar, n_owned)
                    for sweep in range(cfg.smoothing_sweeps):
                        rank_kernels.neighbor_sum_partial(rm, rbar, out=ns)
                        transport.scatter_add(ns, n_owned)
                        rbar[:n_owned] = rank_kernels.smoothing_update(
                            rm, r, ns[:n_owned], cfg.smoothing_eps)
                        if sweep + 1 < cfg.smoothing_sweeps:
                            transport.gather(rbar, n_owned)
                    r = rbar[:n_owned]
                wk = rank_kernels.stage_update(rm, w0, r, dt_over_v, alpha,
                                               out=wk_buf)
        return wk

    w = w_local
    for _ in range(n_cycles):
        with tracer.span("solver.cycle"):
            w = step(w)
    payload = (tracer.to_payload(pid=rm.rank + 1, label=f"rank{rm.rank}")
               if trace else None)
    result_queue.put((rm.rank, w[:n_owned], payload))


def run_distributed_mp(dmesh: DistributedMesh, w_global: np.ndarray,
                       w_inf: np.ndarray, config: SolverConfig | None = None,
                       n_cycles: int = 1,
                       timeout: float = 300.0, tracer=None) -> np.ndarray:
    """Run ``n_cycles`` five-stage steps with one OS process per rank.

    Returns the assembled global solution; compare against
    :class:`repro.solver.EulerSolver` or the simulated driver.

    When ``tracer`` (or the ambient global tracer) is enabled, each rank
    worker records its own timeline and the payloads are merged into
    ``tracer.remote_payloads`` (pid = rank + 1) for the exporters.
    """
    config = config or SolverConfig()
    tracer = tracer if tracer is not None else get_tracer()
    trace = bool(tracer.enabled)
    schedule = dmesh.schedule
    n_ranks = dmesh.n_ranks
    ctx = mp.get_context("fork")
    inbox_recv, inbox_send = zip(*[ctx.Pipe(duplex=False)
                                   for _ in range(n_ranks)])
    result_queue = ctx.Queue()

    workers = []
    for rank in range(n_ranks):
        rm = dmesh.ranks[rank]
        w_local = np.zeros((rm.n_local, NVAR))
        w_local[:rm.n_owned] = w_global[dmesh.table.owned_globals[rank]]
        transport = _PipeTransport(
            rank, inbox_recv[rank],
            {dst: inbox_send[dst] for dst in range(n_ranks)},
            {dst: idx for (src, dst), idx in schedule.send_indices.items()
             if src == rank},
            {src: sl for (src, dst), sl in schedule.recv_slices.items()
             if dst == rank},
        )
        proc = ctx.Process(target=_rank_worker,
                           args=(rm, transport, w_local, w_inf, config,
                                 n_cycles, result_queue, trace))
        proc.start()
        workers.append(proc)

    out = np.empty((dmesh.table.n_global, NVAR))
    try:
        for _ in range(n_ranks):
            rank, w_owned, payload = result_queue.get(timeout=timeout)
            out[dmesh.table.owned_globals[rank]] = w_owned
            if payload is not None:
                tracer.remote_payloads.append(payload)
    finally:
        for proc in workers:
            proc.join(timeout=10.0)
            if proc.is_alive():       # pragma: no cover - defensive
                proc.terminate()
    return out
