"""SPMD distributed Euler solver over the PARTI runtime.

The numerical scheme is *identical* to :class:`repro.solver.EulerSolver`
("the final parallel code remains as close as possible to the original
sequential code"); only the data access changes: every edge loop is
preceded by a ghost **gather** and followed by a **scatter-add** of the
contributions computed into ghost slots.  All data motion goes through the
gather schedules of :mod:`repro.parti`, so every byte and message is
logged per phase — the measurements behind Tables 2a-2c.

Communication pattern per five-stage cycle (matching Section 4.3's account
of "a sequence of three loops over edges followed by a loop over boundary
faces" per stage), in the original ``dist_mode="blocking"`` executor:

========================  =======================================
phase                     when
========================  =======================================
``w-gather``              once per stage (ghost flow variables)
``q-scatter``             once per stage (crossing-edge fluxes)
``diss-partials``         stages 1-2 (Laplacian + switch partials)
``diss-gather``           stages 1-2 (ghost L and nu)
``d-scatter``             stages 1-2 (crossing-edge dissipation)
``dt-scatter``            once per cycle (spectral radius sums)
``smooth-gather/scatter``  per Jacobi sweep per stage
========================  =======================================

The default ``dist_mode="overlap"`` executor is the latency-hiding
variant: every gather/scatter is split into a posted *begin* half and a
delivering *finish* half, interior edge contributions (both endpoints
owned) are computed inside the in-flight window (``dist.overlap.interior``
spans), boundary edge contributions complete on arrival, and same-stage
scatters are column-packed into one message per neighbour pair:

========================  =======================================
phase                     replaces
========================  =======================================
``sigma-diss-partials``   ``dt-scatter`` + ``diss-partials`` (stage 1)
``qd-scatter``            ``q-scatter`` + ``d-scatter`` (stages 1-2)
``diss-partials``         unchanged name, overlapped (stage 2)
``q-scatter``             unchanged name, overlapped (stages 3-5)
``w-gather``/``diss-gather``/``smooth-*``  unchanged names, overlapped
========================  =======================================
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..constants import NVAR, RK_ALPHAS, RK_DISSIPATION_STAGES
from ..mesh.edges import EdgeStructure
from ..parti.simmpi import SimMachine
from ..solver.bc import BoundaryData
from ..solver.config import SolverConfig
from ..solver.dissipation import (FLOPS_PER_EDGE_DISS_PASS1,
                                  FLOPS_PER_EDGE_DISS_PASS2,
                                  FLOPS_PER_VERTEX_DISS)
from ..solver.flux import (FLOPS_PER_EDGE_CONVECTIVE, FLOPS_PER_VERTEX_FLUXVEC)
from ..solver.smoothing import FLOPS_PER_EDGE_SMOOTH, FLOPS_PER_VERTEX_SMOOTH
from ..solver.timestep import FLOPS_PER_EDGE_TIMESTEP, FLOPS_PER_VERTEX_TIMESTEP
from ..telemetry import traced
from . import rank_kernels
from .partitioned_mesh import DistributedMesh, partition_solver_data

__all__ = ["DistributedEulerSolver"]


class DistributedEulerSolver:
    """EUL3D on the simulated distributed-memory machine.

    Parameters
    ----------
    struct : sequential :class:`EdgeStructure` of the mesh.
    w_inf : (5,) freestream conserved state.
    assignment : per-vertex rank assignment (from any partitioner).
    config : solver parameters (must match the sequential run to compare).
    machine : optional shared :class:`SimMachine` (e.g. one machine across
        all multigrid levels so traffic aggregates).
    """

    def __init__(self, struct: EdgeStructure, w_inf: np.ndarray,
                 assignment: np.ndarray, config: SolverConfig | None = None,
                 machine: SimMachine | None = None, phase_prefix: str = "",
                 injector=None):
        self.struct = struct
        self.config = config or SolverConfig()
        self.phase_prefix = phase_prefix
        self.w_inf = np.asarray(w_inf, dtype=np.float64)
        bdata = BoundaryData(struct)
        self.dmesh: DistributedMesh = partition_solver_data(struct, bdata, assignment)
        self.machine = machine or SimMachine(self.dmesh.n_ranks,
                                             injector=injector)
        if injector is not None and machine is not None:
            machine.injector = injector
        if self.machine.n_ranks != self.dmesh.n_ranks:
            raise ValueError("machine size does not match partition")
        #: Shares the machine's tracer so compute spans interleave with
        #: the ``comm.exchange`` / ``parti.*`` spans on one timeline.
        self.tracer = self.machine.tracer
        #: Schedule sanitizer from ``config.sanitize`` (null when off).
        #: Verifies the gather schedule once at construction, then rides
        #: the machine's post/complete hooks to catch unmatched overlap
        #: exchanges and in-transit message loss.
        from ..analysis.sanitize import build_sanitizers
        self.sanitizer = build_sanitizers(
            self.config.sanitize_set)["schedule"]
        if self.sanitizer.enabled:
            self.sanitizer.check_schedule(self.dmesh.schedule)
            self.machine.sanitizer = self.sanitizer
        #: per-phase, per-rank flop counts (inputs of the Delta model)
        self.rank_flops: dict = defaultdict(
            lambda: np.zeros(self.n_ranks, dtype=np.float64))

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.dmesh.n_ranks

    @property
    def schedule(self):
        return self.dmesh.schedule

    def freestream_solution(self) -> list:
        """Per-rank local state arrays [owned | ghost] set to freestream."""
        return [np.tile(self.w_inf, (rm.n_local, 1)) for rm in self.dmesh.ranks]

    def collect(self, w_list: list) -> np.ndarray:
        """Reassemble the global solution from owned blocks (for tests)."""
        return self.dmesh.table.gather_global_array(
            [w[:rm.n_owned] for w, rm in zip(w_list, self.dmesh.ranks)])

    def distribute(self, w_global: np.ndarray) -> list:
        """Split a global state into per-rank local arrays (ghosts stale)."""
        w_list = []
        for rm in self.dmesh.ranks:
            local = np.empty((rm.n_local, NVAR))
            local[:rm.n_owned] = w_global[self.dmesh.table.owned_globals[rm.rank]]
            local[rm.n_owned:] = w_global[self.schedule.ghost_globals[rm.rank]]
            w_list.append(local)
        return w_list

    def _count(self, phase: str, per_rank_values) -> None:
        self.rank_flops[phase] += np.asarray(per_rank_values, dtype=np.float64)

    # -- communication helpers ------------------------------------------
    def _owned_views(self, arrays: list) -> list:
        return [a[:rm.n_owned] for a, rm in zip(arrays, self.dmesh.ranks)]

    def _ghost_views(self, arrays: list) -> list:
        return [a[rm.n_owned:] for a, rm in zip(arrays, self.dmesh.ranks)]

    def _gather_ghosts(self, arrays: list, phase: str) -> None:
        """Refresh ghost slices of per-rank local arrays in place."""
        ghosts = self.schedule.gather(self.machine, self._owned_views(arrays),
                                      self.phase_prefix + phase)
        for a, rm, g in zip(arrays, self.dmesh.ranks, ghosts):
            a[rm.n_owned:] = g

    def _scatter_add_ghosts(self, arrays: list, phase: str) -> None:
        """Fold ghost-slot contributions back into owners, in place."""
        self.schedule.scatter_add(self.machine, self._ghost_views(arrays),
                                  self._owned_views(arrays),
                                  self.phase_prefix + phase)

    def _gather_begin(self, arrays: list, phase: str) -> dict:
        """Post a ghost gather; the caller overlaps interior compute."""
        return self.schedule.gather_begin(self.machine,
                                          self._owned_views(arrays),
                                          self.phase_prefix + phase)

    def _gather_finish(self, pending: dict, arrays: list) -> None:
        self.schedule.gather_finish(self.machine, pending,
                                    self._ghost_views(arrays))

    def _scatter_multi(self, comps: list, phase: str,
                       overlap_fn=None) -> None:
        """Aggregated scatter-add of several components with overlap.

        Posts one packed message per neighbour pair covering all
        ``comps``, runs ``overlap_fn`` (interior compute) while the
        messages are in flight, then folds into the owners.
        """
        pending = self.schedule.scatter_add_multi_begin(
            self.machine, [self._ghost_views(c) for c in comps],
            self.phase_prefix + phase)
        if overlap_fn is not None:
            with self.tracer.span("dist.overlap.interior"):
                overlap_fn()
        self.schedule.scatter_add_multi_finish(
            self.machine, pending, [self._owned_views(c) for c in comps])

    # -- kernels ----------------------------------------------------------
    @traced("dist.convective")
    def _convective(self, w_list: list) -> list:
        """Q(w) on owned vertices; expects fresh ghosts in ``w_list``."""
        q_list = [rank_kernels.convective_local(rm, w)
                  for rm, w in zip(self.dmesh.ranks, w_list)]
        self._count("convective",
                    [FLOPS_PER_EDGE_CONVECTIVE * rm.n_edges
                     + FLOPS_PER_VERTEX_FLUXVEC * rm.n_local
                     for rm in self.dmesh.ranks])
        self._scatter_add_ghosts(q_list, "q-scatter")
        # Boundary closure on owned vertices (no communication needed).
        for rm, w, q in zip(self.dmesh.ranks, w_list, q_list):
            rank_kernels.boundary_closure(rm, w, self.w_inf, q)
        return q_list

    @traced("dist.dissipation")
    def _dissipation(self, w_list: list) -> list:
        """D(w) on owned vertices (two edge passes + three comm phases)."""
        cfg = self.config
        packed = [rank_kernels.dissipation_partials(rm, w)
                  for rm, w in zip(self.dmesh.ranks, w_list)]
        self._count("dissipation",
                    [FLOPS_PER_EDGE_DISS_PASS1 * rm.n_edges
                     for rm in self.dmesh.ranks])
        # One aggregated scatter: [L(5) | num | den] = 7 columns per vertex.
        self._scatter_add_ghosts(packed, "diss-partials")

        # Owners now hold complete L and the switch; ghosts need them next.
        lnu_list = [rank_kernels.finalize_switch(pk, cfg.switch_floor)
                    for pk in packed]
        self._gather_ghosts(lnu_list, "diss-gather")
        self._count("dissipation",
                    [FLOPS_PER_VERTEX_DISS * rm.n_owned
                     for rm in self.dmesh.ranks])

        d_list = [rank_kernels.dissipation_edges(rm, w, lnu, cfg.k2, cfg.k4)
                  for rm, w, lnu in zip(self.dmesh.ranks, w_list, lnu_list)]
        self._count("dissipation",
                    [FLOPS_PER_EDGE_DISS_PASS2 * rm.n_edges
                     for rm in self.dmesh.ranks])
        self._scatter_add_ghosts(d_list, "d-scatter")
        return d_list

    @traced("dist.timestep")
    def _timestep(self, w_list: list) -> list:
        """Local dt on owned vertices (one scatter of spectral-radius sums)."""
        sigma_list = [rank_kernels.spectral_sigma(rm, w)
                      for rm, w in zip(self.dmesh.ranks, w_list)]
        self._count("timestep",
                    [FLOPS_PER_EDGE_TIMESTEP * rm.n_edges
                     for rm in self.dmesh.ranks])
        self._scatter_add_ghosts(sigma_list, "dt-scatter")

        dt_list = [rank_kernels.timestep_from_sigma(
            rm, w, sigma[:rm.n_owned, 0], self.config.cfl)
            for rm, w, sigma in zip(self.dmesh.ranks, w_list, sigma_list)]
        self._count("timestep",
                    [FLOPS_PER_VERTEX_TIMESTEP * rm.n_owned
                     for rm in self.dmesh.ranks])
        return dt_list

    @traced("dist.smooth")
    def _smooth(self, r_list: list) -> list:
        """Jacobi residual averaging; ``r_list`` holds owned residuals."""
        cfg = self.config
        if not cfg.residual_smoothing or cfg.smoothing_sweeps <= 0:
            return r_list
        # Work arrays with ghost slots for the neighbour sums.
        rbar = []
        for rm, r in zip(self.dmesh.ranks, r_list):
            buf = np.zeros((rm.n_local, NVAR))
            buf[:rm.n_owned] = r
            rbar.append(buf)
        self._gather_ghosts(rbar, "smooth-gather")
        for sweep in range(cfg.smoothing_sweeps):
            ns_list = [rank_kernels.neighbor_sum_partial(rm, rb)
                       for rm, rb in zip(self.dmesh.ranks, rbar)]
            self._count("smoothing",
                        [FLOPS_PER_EDGE_SMOOTH * rm.n_edges
                         for rm in self.dmesh.ranks])
            self._scatter_add_ghosts(ns_list, "smooth-scatter")
            for rm, rb, ns, r in zip(self.dmesh.ranks, rbar, ns_list, r_list):
                rb[:rm.n_owned] = rank_kernels.smoothing_update(
                    rm, r, ns[:rm.n_owned], cfg.smoothing_eps)
            self._count("smoothing",
                        [FLOPS_PER_VERTEX_SMOOTH * rm.n_owned
                         for rm in self.dmesh.ranks])
            if sweep + 1 < cfg.smoothing_sweeps:
                self._gather_ghosts(rbar, "smooth-gather")
        return [rb[:rm.n_owned] for rm, rb in zip(self.dmesh.ranks, rbar)]

    # -- overlap executor (dist_mode="overlap") -------------------------
    def _ensure_overlap(self) -> None:
        """Build per-rank CSR operators and persistent stage buffers."""
        if hasattr(self, "_ops"):
            return
        ranks = self.dmesh.ranks
        # Compiled executor configs shrink the flight-window compute with
        # the njit rank edge loops; everything else keeps the CSR split.
        from ..kernels.executors import COMPILED_KINDS
        use_compiled = self.config.executor in COMPILED_KINDS
        self._ops = [rank_kernels.rank_ops(rm, self.tracer,
                                           compiled=use_compiled)
                     for rm in ranks]

        def alloc(*trailing):
            return [np.zeros((rm.n_local,) + trailing) for rm in ranks]

        self._oq = alloc(NVAR)          # convective contributions
        self._od = alloc(NVAR)          # dissipation contributions
        self._osig = alloc()            # spectral-radius sums
        self._olap6 = alloc(NVAR + 1)   # signed partials [L | p-diff]
        self._oden = alloc()            # unsigned pressure sums
        self._olnu = alloc(NVAR + 1)    # finalized [L | nu]
        self._ons = alloc(NVAR)         # smoothing neighbour sums
        self._orbar = alloc(NVAR)       # smoothing work state

    def _overlap_diss_qd(self, w_list: list, pending_w: dict | None,
                         with_sigma: bool) -> None:
        """Dissipation-stage front half of the overlap executor.

        On return ``self._oq``/``self._od`` hold complete owned
        convective/dissipation contributions (boundary closure not yet
        applied) and, when ``with_sigma``, ``self._osig`` holds complete
        owned spectral-radius sums — with the sigma scatter folded into
        the dissipation-partials message (``sigma-diss-partials``) and
        the q/d scatters folded into one (``qd-scatter``).
        """
        cfg = self.config
        ranks = self.dmesh.ranks
        ops = self._ops
        q, d, sig = self._oq, self._od, self._osig
        lap6, den, lnu = self._olap6, self._oden, self._olnu

        # Window 1 (w ghosts in flight): interior pass-1 partials.
        with self.tracer.span("dist.overlap.interior"):
            for r, (op, w) in enumerate(zip(ops, w_list)):
                op.stage_begin(w, need_diss=True)
                op.partials6("interior", w, lap6[r], accumulate=False)
                op.pressure_den("interior", den[r], accumulate=False)
                if with_sigma:
                    op.sigma("interior", sig[r], accumulate=False)
        if pending_w is not None:
            self._gather_finish(pending_w, w_list)
        for r, (op, w) in enumerate(zip(ops, w_list)):
            op.stage_complete(w, need_diss=True)
            op.partials6("boundary", w, lap6[r], accumulate=True)
            op.pressure_den("boundary", den[r], accumulate=True)
            if with_sigma:
                op.sigma("boundary", sig[r], accumulate=True)
        self._count("dissipation", [FLOPS_PER_EDGE_DISS_PASS1 * rm.n_edges
                                    for rm in ranks])
        if with_sigma:
            self._count("timestep", [FLOPS_PER_EDGE_TIMESTEP * rm.n_edges
                                     for rm in ranks])

        # Window 2 (packed partials scatter in flight): interior fluxes.
        def interior_q():
            for r, op in enumerate(ops):
                op.convective("interior", q[r], accumulate=False)

        comps = ([sig, lap6, den] if with_sigma else [lap6, den])
        phase = "sigma-diss-partials" if with_sigma else "diss-partials"
        self._scatter_multi(comps, phase, overlap_fn=interior_q)

        # Window 3 (ghost [L | nu] gather in flight): interior dissipation
        # (interior edges only read owned rows of lnu).
        for r, op in enumerate(ops):
            op.finalize_lnu(lap6[r], den[r], cfg.switch_floor, lnu[r])
        self._count("dissipation", [FLOPS_PER_VERTEX_DISS * rm.n_owned
                                    for rm in ranks])
        pending = self._gather_begin(lnu, "diss-gather")
        with self.tracer.span("dist.overlap.interior"):
            for r, (op, w) in enumerate(zip(ops, w_list)):
                op.dissipation("interior", w, lnu[r], cfg.k2, cfg.k4,
                               d[r], accumulate=False)
        self._gather_finish(pending, lnu)
        for r, (op, w) in enumerate(zip(ops, w_list)):
            op.dissipation("boundary", w, lnu[r], cfg.k2, cfg.k4,
                           d[r], accumulate=True)
            op.convective("boundary", q[r], accumulate=True)
        self._count("dissipation", [FLOPS_PER_EDGE_DISS_PASS2 * rm.n_edges
                                    for rm in ranks])
        self._count("convective",
                    [FLOPS_PER_EDGE_CONVECTIVE * rm.n_edges
                     + FLOPS_PER_VERTEX_FLUXVEC * rm.n_local for rm in ranks])
        self._scatter_multi([q, d], "qd-scatter")

    def _overlap_q(self, w_list: list, pending_w: dict | None) -> None:
        """Convective-only stage front half (stages without dissipation)."""
        ranks = self.dmesh.ranks
        ops = self._ops
        q = self._oq
        with self.tracer.span("dist.overlap.interior"):
            for r, (op, w) in enumerate(zip(ops, w_list)):
                op.stage_begin(w, need_diss=False)
                op.convective("interior", q[r], accumulate=False)
        if pending_w is not None:
            self._gather_finish(pending_w, w_list)
        for r, (op, w) in enumerate(zip(ops, w_list)):
            op.stage_complete(w, need_diss=False)
            op.convective("boundary", q[r], accumulate=True)
        self._count("convective",
                    [FLOPS_PER_EDGE_CONVECTIVE * rm.n_edges
                     + FLOPS_PER_VERTEX_FLUXVEC * rm.n_local for rm in ranks])
        self._scatter_multi([q], "q-scatter")

    def _closure_and_r(self, w_list: list, forcing: list | None) -> list:
        """Boundary closure on complete q, then R = Q - D on owned rows."""
        ranks = self.dmesh.ranks
        for rm, w, qr in zip(ranks, w_list, self._oq):
            rank_kernels.boundary_closure(rm, w, self.w_inf, qr)
        r = [qr[:rm.n_owned] - dr[:rm.n_owned]
             for rm, qr, dr in zip(ranks, self._oq, self._od)]
        if forcing is not None:
            r = [rr + fr for rr, fr in zip(r, forcing)]
        return r

    @traced("dist.smooth")
    def _smooth_overlap(self, r_list: list) -> list:
        """Jacobi averaging with overlapped gathers and CSR kernels."""
        cfg = self.config
        if not cfg.residual_smoothing or cfg.smoothing_sweeps <= 0:
            return r_list
        ranks, ops = self.dmesh.ranks, self._ops
        rbar, ns = self._orbar, self._ons
        for rm, rb, r in zip(ranks, rbar, r_list):
            rb[:rm.n_owned] = r
        pending = self._gather_begin(rbar, "smooth-gather")
        for sweep in range(cfg.smoothing_sweeps):
            with self.tracer.span("dist.overlap.interior"):
                for r, (op, rb) in enumerate(zip(ops, rbar)):
                    op.neighbor_sum("interior", rb, ns[r], accumulate=False)
            self._gather_finish(pending, rbar)
            for r, (op, rb) in enumerate(zip(ops, rbar)):
                op.neighbor_sum("boundary", rb, ns[r], accumulate=True)
            self._count("smoothing", [FLOPS_PER_EDGE_SMOOTH * rm.n_edges
                                      for rm in ranks])
            self._scatter_multi([ns], "smooth-scatter")
            for rm, op, rb, r in zip(ranks, ops, rbar, r_list):
                rb[:rm.n_owned] = op.smoothing_update(
                    r, ns[rm.rank][:rm.n_owned], cfg.smoothing_eps)
            self._count("smoothing", [FLOPS_PER_VERTEX_SMOOTH * rm.n_owned
                                      for rm in ranks])
            if sweep + 1 < cfg.smoothing_sweeps:
                pending = self._gather_begin(rbar, "smooth-gather")
        return [rb[:rm.n_owned] for rm, rb in zip(ranks, rbar)]

    # ------------------------------------------------------------------
    def residual(self, w_list: list, refresh_ghosts: bool = True) -> list:
        """Full residual R = Q - D on owned vertices (for MG transfers)."""
        if self.config.dist_mode == "blocking":
            if refresh_ghosts:
                self._gather_ghosts(w_list, "w-gather")
            q = self._convective(w_list)
            d = self._dissipation(w_list)
            return [qr[:rm.n_owned] - dr[:rm.n_owned]
                    for rm, qr, dr in zip(self.dmesh.ranks, q, d)]
        self._ensure_overlap()
        pending = (self._gather_begin(w_list, "w-gather")
                   if refresh_ghosts else None)
        self._overlap_diss_qd(w_list, pending, with_sigma=False)
        return self._closure_and_r(w_list, None)

    @traced("dist.step")
    def step(self, w_list: list, forcing: list | None = None) -> list:
        """One five-stage step; returns new per-rank local states."""
        if self.config.dist_mode == "blocking":
            out = self._step_blocking(w_list, forcing)
        else:
            out = self._step_overlap(w_list, forcing)
        if self.sanitizer.enabled:
            # Every posted exchange of the step must have completed by
            # now — an outstanding one is a latent deadlock.
            self.sanitizer.assert_drained("dist.step")
        return out

    def _step_blocking(self, w_list: list, forcing: list | None) -> list:
        """The original barrier-per-phase executor (benchmark baseline)."""
        cfg = self.config
        ranks = self.dmesh.ranks
        self._gather_ghosts(w_list, "w-gather")
        dt = self._timestep(w_list)
        dt_over_v = [(d / rm.dual_volumes)[:, None] for d, rm in zip(dt, ranks)]

        w0 = [w.copy() for w in w_list]
        wk = w_list
        diss = None
        for stage, alpha in enumerate(RK_ALPHAS):
            with self.tracer.span("rk.stage"):
                if stage > 0:
                    self._gather_ghosts(wk, "w-gather")
                if stage in RK_DISSIPATION_STAGES:
                    diss = self._dissipation(wk)
                q = self._convective(wk)
                r = [qr[:rm.n_owned] - dr[:rm.n_owned]
                     for rm, qr, dr in zip(ranks, q, diss)]
                if forcing is not None:
                    r = [rr + fr for rr, fr in zip(r, forcing)]
                r = self._smooth(r)
                wk = [rank_kernels.stage_update(rm, w0r, rr, dov, alpha)
                      for rm, w0r, rr, dov in zip(ranks, w0, r, dt_over_v)]
                self._count("update", [3 * NVAR * rm.n_owned for rm in ranks])
        return wk

    def _step_overlap(self, w_list: list, forcing: list | None) -> list:
        """Latency-hiding five-stage step (dist_mode="overlap").

        Stage 1 folds the spectral-radius scatter into the dissipation
        partials message and finalizes the local time step from the
        folded sums, so the cycle has no separate ``dt-scatter`` phase.
        """
        cfg = self.config
        ranks = self.dmesh.ranks
        self._ensure_overlap()

        wk = w_list
        w0 = None
        dt_over_v = None
        for stage, alpha in enumerate(RK_ALPHAS):
            with self.tracer.span("rk.stage"):
                pending = self._gather_begin(wk, "w-gather")
                if stage in RK_DISSIPATION_STAGES:
                    self._overlap_diss_qd(wk, pending,
                                          with_sigma=(stage == 0))
                else:
                    self._overlap_q(wk, pending)
                if stage == 0:
                    # Ghosts are fresh: freeze w^(0) and the time step.
                    dt_over_v = []
                    for rm, w, sig in zip(ranks, wk, self._osig):
                        dt = rank_kernels.timestep_from_sigma(
                            rm, w, sig[:rm.n_owned], cfg.cfl)
                        dt_over_v.append((dt / rm.dual_volumes)[:, None])
                    self._count("timestep",
                                [FLOPS_PER_VERTEX_TIMESTEP * rm.n_owned
                                 for rm in ranks])
                    w0 = [w.copy() for w in wk]
                r = self._closure_and_r(wk, forcing)
                r = self._smooth_overlap(r)
                wk = [rank_kernels.stage_update(rm, w0r, rr, dov, alpha)
                      for rm, w0r, rr, dov in zip(ranks, w0, r, dt_over_v)]
                self._count("update", [3 * NVAR * rm.n_owned for rm in ranks])
        return wk

    def density_residual_norm(self, w_list: list) -> float:
        """Global RMS of R_rho / V over owned vertices (matches sequential)."""
        r = self.residual([w.copy() for w in w_list])
        total, count = 0.0, 0
        for rm, rr in zip(self.dmesh.ranks, r):
            total += float(np.sum((rr[:, 0] / rm.dual_volumes) ** 2))
            count += rm.n_owned
        return float(np.sqrt(total / count))

    def run(self, w_list: list | None = None, n_cycles: int = 100,
            callback=None, checkpoint_store=None,
            resume_from=None) -> tuple[list, list]:
        """Run single-grid cycles; returns final state and residual history.

        Resilience: the pre-step residual norm is health-checked each
        cycle when ``config.divergence_guard`` is on — a NaN/Inf (e.g.
        from a corrupted exchange payload injected into the
        :class:`SimMachine`) or runaway growth raises
        :class:`repro.resilience.DivergenceError` naming the cycle within
        one step of the corruption.  ``checkpoint_store`` receives the
        assembled global state every ``config.checkpoint_interval``
        cycles; ``resume_from`` restarts bit-identically (each cycle
        begins with a full ghost gather, so the owned state is the whole
        inter-cycle state).
        """
        from ..resilience import Checkpoint, DivergenceError, verify_checkpoint
        from ..solver.monitor import residual_health
        from ..telemetry import count_event

        cfg = self.config
        start_cycle = 0
        if resume_from is not None:
            verify_checkpoint(resume_from, cfg)
            w_list = self.distribute(resume_from.w)
            start_cycle = resume_from.cycle
        elif w_list is None:
            w_list = self.freestream_solution()

        history = []
        best_norm = float("inf")
        for cycle in range(start_cycle, n_cycles):
            resnorm = self.density_residual_norm(w_list)
            if cfg.divergence_guard:
                verdict = residual_health(resnorm, best_norm,
                                          cfg.guard_growth_ratio)
                if verdict != "ok":
                    count_event("resilience.guard." + verdict)
                    raise DivergenceError(verdict, cycle, resnorm,
                                          reference=(best_norm
                                                     if np.isfinite(best_norm)
                                                     else None))
                best_norm = min(best_norm, resnorm)
            if (checkpoint_store is not None and cfg.checkpoint_interval > 0
                    and cycle % cfg.checkpoint_interval == 0):
                checkpoint_store.save(
                    Checkpoint.of(cycle, self.collect(w_list), cfg))
            history.append(resnorm)
            w_list = self.step(w_list)
            if callback is not None:
                callback(cycle, w_list, history[-1])
        history.append(self.density_residual_norm(w_list))
        return w_list, history
