"""SPMD distributed Euler solver over the PARTI runtime.

The numerical scheme is *identical* to :class:`repro.solver.EulerSolver`
("the final parallel code remains as close as possible to the original
sequential code"); only the data access changes: every edge loop is
preceded by a ghost **gather** and followed by a **scatter-add** of the
contributions computed into ghost slots.  All data motion goes through the
gather schedules of :mod:`repro.parti`, so every byte and message is
logged per phase — the measurements behind Tables 2a-2c.

Communication pattern per five-stage cycle (matching Section 4.3's account
of "a sequence of three loops over edges followed by a loop over boundary
faces" per stage):

========================  =======================================
phase                     when
========================  =======================================
``w-gather``              once per stage (ghost flow variables)
``q-scatter``             once per stage (crossing-edge fluxes)
``diss-partials``         stages 1-2 (Laplacian + switch partials)
``diss-gather``           stages 1-2 (ghost L and nu)
``d-scatter``             stages 1-2 (crossing-edge dissipation)
``dt-scatter``            once per cycle (spectral radius sums)
``smooth-gather/scatter``  per Jacobi sweep per stage
========================  =======================================
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..constants import NVAR, RK_ALPHAS, RK_DISSIPATION_STAGES
from ..mesh.edges import EdgeStructure
from ..parti.simmpi import SimMachine
from ..solver.bc import BoundaryData
from ..solver.config import SolverConfig
from ..solver.dissipation import (FLOPS_PER_EDGE_DISS_PASS1,
                                  FLOPS_PER_EDGE_DISS_PASS2,
                                  FLOPS_PER_VERTEX_DISS)
from ..solver.flux import (FLOPS_PER_EDGE_CONVECTIVE, FLOPS_PER_VERTEX_FLUXVEC)
from ..solver.smoothing import FLOPS_PER_EDGE_SMOOTH, FLOPS_PER_VERTEX_SMOOTH
from ..solver.timestep import FLOPS_PER_EDGE_TIMESTEP, FLOPS_PER_VERTEX_TIMESTEP
from ..telemetry import traced
from . import rank_kernels
from .partitioned_mesh import DistributedMesh, partition_solver_data

__all__ = ["DistributedEulerSolver"]


class DistributedEulerSolver:
    """EUL3D on the simulated distributed-memory machine.

    Parameters
    ----------
    struct : sequential :class:`EdgeStructure` of the mesh.
    w_inf : (5,) freestream conserved state.
    assignment : per-vertex rank assignment (from any partitioner).
    config : solver parameters (must match the sequential run to compare).
    machine : optional shared :class:`SimMachine` (e.g. one machine across
        all multigrid levels so traffic aggregates).
    """

    def __init__(self, struct: EdgeStructure, w_inf: np.ndarray,
                 assignment: np.ndarray, config: SolverConfig | None = None,
                 machine: SimMachine | None = None, phase_prefix: str = "",
                 injector=None):
        self.struct = struct
        self.config = config or SolverConfig()
        self.phase_prefix = phase_prefix
        self.w_inf = np.asarray(w_inf, dtype=np.float64)
        bdata = BoundaryData(struct)
        self.dmesh: DistributedMesh = partition_solver_data(struct, bdata, assignment)
        self.machine = machine or SimMachine(self.dmesh.n_ranks,
                                             injector=injector)
        if injector is not None and machine is not None:
            machine.injector = injector
        if self.machine.n_ranks != self.dmesh.n_ranks:
            raise ValueError("machine size does not match partition")
        #: Shares the machine's tracer so compute spans interleave with
        #: the ``comm.exchange`` / ``parti.*`` spans on one timeline.
        self.tracer = self.machine.tracer
        #: per-phase, per-rank flop counts (inputs of the Delta model)
        self.rank_flops: dict = defaultdict(
            lambda: np.zeros(self.n_ranks, dtype=np.float64))

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.dmesh.n_ranks

    @property
    def schedule(self):
        return self.dmesh.schedule

    def freestream_solution(self) -> list:
        """Per-rank local state arrays [owned | ghost] set to freestream."""
        return [np.tile(self.w_inf, (rm.n_local, 1)) for rm in self.dmesh.ranks]

    def collect(self, w_list: list) -> np.ndarray:
        """Reassemble the global solution from owned blocks (for tests)."""
        return self.dmesh.table.gather_global_array(
            [w[:rm.n_owned] for w, rm in zip(w_list, self.dmesh.ranks)])

    def distribute(self, w_global: np.ndarray) -> list:
        """Split a global state into per-rank local arrays (ghosts stale)."""
        w_list = []
        for rm in self.dmesh.ranks:
            local = np.empty((rm.n_local, NVAR))
            local[:rm.n_owned] = w_global[self.dmesh.table.owned_globals[rm.rank]]
            local[rm.n_owned:] = w_global[self.schedule.ghost_globals[rm.rank]]
            w_list.append(local)
        return w_list

    def _count(self, phase: str, per_rank_values) -> None:
        self.rank_flops[phase] += np.asarray(per_rank_values, dtype=np.float64)

    # -- communication helpers ------------------------------------------
    def _gather_ghosts(self, arrays: list, phase: str) -> None:
        """Refresh ghost slices of per-rank local arrays in place."""
        owned = [a[:rm.n_owned] for a, rm in zip(arrays, self.dmesh.ranks)]
        ghosts = self.schedule.gather(self.machine, owned,
                                      self.phase_prefix + phase)
        for a, rm, g in zip(arrays, self.dmesh.ranks, ghosts):
            a[rm.n_owned:] = g

    def _scatter_add_ghosts(self, arrays: list, phase: str) -> None:
        """Fold ghost-slot contributions back into owners, in place."""
        ghost = [a[rm.n_owned:] for a, rm in zip(arrays, self.dmesh.ranks)]
        owned = [a[:rm.n_owned] for a, rm in zip(arrays, self.dmesh.ranks)]
        self.schedule.scatter_add(self.machine, ghost, owned,
                                  self.phase_prefix + phase)

    # -- kernels ----------------------------------------------------------
    @traced("dist.convective")
    def _convective(self, w_list: list) -> list:
        """Q(w) on owned vertices; expects fresh ghosts in ``w_list``."""
        q_list = [rank_kernels.convective_local(rm, w)
                  for rm, w in zip(self.dmesh.ranks, w_list)]
        self._count("convective",
                    [FLOPS_PER_EDGE_CONVECTIVE * rm.n_edges
                     + FLOPS_PER_VERTEX_FLUXVEC * rm.n_local
                     for rm in self.dmesh.ranks])
        self._scatter_add_ghosts(q_list, "q-scatter")
        # Boundary closure on owned vertices (no communication needed).
        for rm, w, q in zip(self.dmesh.ranks, w_list, q_list):
            rank_kernels.boundary_closure(rm, w, self.w_inf, q)
        return q_list

    @traced("dist.dissipation")
    def _dissipation(self, w_list: list) -> list:
        """D(w) on owned vertices (two edge passes + three comm phases)."""
        cfg = self.config
        packed = [rank_kernels.dissipation_partials(rm, w)
                  for rm, w in zip(self.dmesh.ranks, w_list)]
        self._count("dissipation",
                    [FLOPS_PER_EDGE_DISS_PASS1 * rm.n_edges
                     for rm in self.dmesh.ranks])
        # One aggregated scatter: [L(5) | num | den] = 7 columns per vertex.
        self._scatter_add_ghosts(packed, "diss-partials")

        # Owners now hold complete L and the switch; ghosts need them next.
        lnu_list = [rank_kernels.finalize_switch(pk, cfg.switch_floor)
                    for pk in packed]
        self._gather_ghosts(lnu_list, "diss-gather")
        self._count("dissipation",
                    [FLOPS_PER_VERTEX_DISS * rm.n_owned
                     for rm in self.dmesh.ranks])

        d_list = [rank_kernels.dissipation_edges(rm, w, lnu, cfg.k2, cfg.k4)
                  for rm, w, lnu in zip(self.dmesh.ranks, w_list, lnu_list)]
        self._count("dissipation",
                    [FLOPS_PER_EDGE_DISS_PASS2 * rm.n_edges
                     for rm in self.dmesh.ranks])
        self._scatter_add_ghosts(d_list, "d-scatter")
        return d_list

    @traced("dist.timestep")
    def _timestep(self, w_list: list) -> list:
        """Local dt on owned vertices (one scatter of spectral-radius sums)."""
        sigma_list = [rank_kernels.spectral_sigma(rm, w)
                      for rm, w in zip(self.dmesh.ranks, w_list)]
        self._count("timestep",
                    [FLOPS_PER_EDGE_TIMESTEP * rm.n_edges
                     for rm in self.dmesh.ranks])
        self._scatter_add_ghosts(sigma_list, "dt-scatter")

        dt_list = [rank_kernels.timestep_from_sigma(
            rm, w, sigma[:rm.n_owned, 0], self.config.cfl)
            for rm, w, sigma in zip(self.dmesh.ranks, w_list, sigma_list)]
        self._count("timestep",
                    [FLOPS_PER_VERTEX_TIMESTEP * rm.n_owned
                     for rm in self.dmesh.ranks])
        return dt_list

    @traced("dist.smooth")
    def _smooth(self, r_list: list) -> list:
        """Jacobi residual averaging; ``r_list`` holds owned residuals."""
        cfg = self.config
        if not cfg.residual_smoothing or cfg.smoothing_sweeps <= 0:
            return r_list
        # Work arrays with ghost slots for the neighbour sums.
        rbar = []
        for rm, r in zip(self.dmesh.ranks, r_list):
            buf = np.zeros((rm.n_local, NVAR))
            buf[:rm.n_owned] = r
            rbar.append(buf)
        self._gather_ghosts(rbar, "smooth-gather")
        for sweep in range(cfg.smoothing_sweeps):
            ns_list = [rank_kernels.neighbor_sum_partial(rm, rb)
                       for rm, rb in zip(self.dmesh.ranks, rbar)]
            self._count("smoothing",
                        [FLOPS_PER_EDGE_SMOOTH * rm.n_edges
                         for rm in self.dmesh.ranks])
            self._scatter_add_ghosts(ns_list, "smooth-scatter")
            for rm, rb, ns, r in zip(self.dmesh.ranks, rbar, ns_list, r_list):
                rb[:rm.n_owned] = rank_kernels.smoothing_update(
                    rm, r, ns[:rm.n_owned], cfg.smoothing_eps)
            self._count("smoothing",
                        [FLOPS_PER_VERTEX_SMOOTH * rm.n_owned
                         for rm in self.dmesh.ranks])
            if sweep + 1 < cfg.smoothing_sweeps:
                self._gather_ghosts(rbar, "smooth-gather")
        return [rb[:rm.n_owned] for rm, rb in zip(self.dmesh.ranks, rbar)]

    # ------------------------------------------------------------------
    def residual(self, w_list: list, refresh_ghosts: bool = True) -> list:
        """Full residual R = Q - D on owned vertices (for MG transfers)."""
        if refresh_ghosts:
            self._gather_ghosts(w_list, "w-gather")
        q = self._convective(w_list)
        d = self._dissipation(w_list)
        return [qr[:rm.n_owned] - dr[:rm.n_owned]
                for rm, qr, dr in zip(self.dmesh.ranks, q, d)]

    @traced("dist.step")
    def step(self, w_list: list, forcing: list | None = None) -> list:
        """One five-stage step; returns new per-rank local states."""
        cfg = self.config
        ranks = self.dmesh.ranks
        self._gather_ghosts(w_list, "w-gather")
        dt = self._timestep(w_list)
        dt_over_v = [(d / rm.dual_volumes)[:, None] for d, rm in zip(dt, ranks)]

        w0 = [w.copy() for w in w_list]
        wk = w_list
        diss = None
        for stage, alpha in enumerate(RK_ALPHAS):
            with self.tracer.span("rk.stage"):
                if stage > 0:
                    self._gather_ghosts(wk, "w-gather")
                if stage in RK_DISSIPATION_STAGES:
                    diss = self._dissipation(wk)
                q = self._convective(wk)
                r = [qr[:rm.n_owned] - dr[:rm.n_owned]
                     for rm, qr, dr in zip(ranks, q, diss)]
                if forcing is not None:
                    r = [rr + fr for rr, fr in zip(r, forcing)]
                r = self._smooth(r)
                wk = [rank_kernels.stage_update(rm, w0r, rr, dov, alpha)
                      for rm, w0r, rr, dov in zip(ranks, w0, r, dt_over_v)]
                self._count("update", [3 * NVAR * rm.n_owned for rm in ranks])
        return wk

    def density_residual_norm(self, w_list: list) -> float:
        """Global RMS of R_rho / V over owned vertices (matches sequential)."""
        r = self.residual([w.copy() for w in w_list])
        total, count = 0.0, 0
        for rm, rr in zip(self.dmesh.ranks, r):
            total += float(np.sum((rr[:, 0] / rm.dual_volumes) ** 2))
            count += rm.n_owned
        return float(np.sqrt(total / count))

    def run(self, w_list: list | None = None, n_cycles: int = 100,
            callback=None, checkpoint_store=None,
            resume_from=None) -> tuple[list, list]:
        """Run single-grid cycles; returns final state and residual history.

        Resilience: the pre-step residual norm is health-checked each
        cycle when ``config.divergence_guard`` is on — a NaN/Inf (e.g.
        from a corrupted exchange payload injected into the
        :class:`SimMachine`) or runaway growth raises
        :class:`repro.resilience.DivergenceError` naming the cycle within
        one step of the corruption.  ``checkpoint_store`` receives the
        assembled global state every ``config.checkpoint_interval``
        cycles; ``resume_from`` restarts bit-identically (each cycle
        begins with a full ghost gather, so the owned state is the whole
        inter-cycle state).
        """
        from ..resilience import Checkpoint, DivergenceError, verify_checkpoint
        from ..solver.monitor import residual_health
        from ..telemetry import count_event

        cfg = self.config
        start_cycle = 0
        if resume_from is not None:
            verify_checkpoint(resume_from, cfg)
            w_list = self.distribute(resume_from.w)
            start_cycle = resume_from.cycle
        elif w_list is None:
            w_list = self.freestream_solution()

        history = []
        best_norm = float("inf")
        for cycle in range(start_cycle, n_cycles):
            resnorm = self.density_residual_norm(w_list)
            if cfg.divergence_guard:
                verdict = residual_health(resnorm, best_norm,
                                          cfg.guard_growth_ratio)
                if verdict != "ok":
                    count_event("resilience.guard." + verdict)
                    raise DivergenceError(verdict, cycle, resnorm,
                                          reference=(best_norm
                                                     if np.isfinite(best_norm)
                                                     else None))
                best_norm = min(best_norm, resnorm)
            if (checkpoint_store is not None and cfg.checkpoint_interval > 0
                    and cycle % cfg.checkpoint_interval == 0):
                checkpoint_store.save(
                    Checkpoint.of(cycle, self.collect(w_list), cfg))
            history.append(resnorm)
            w_list = self.step(w_list)
            if callback is not None:
                callback(cycle, w_list, history[-1])
        history.append(self.density_residual_norm(w_list))
        return w_list, history
