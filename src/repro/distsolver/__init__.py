"""Distributed-memory EUL3D: SPMD drivers, partitioned data, reordering."""

from .driver import DistributedEulerSolver
from .multigrid import (DistributedInterp, DistributedMultigrid,
                        distributed_fmg_start)
from .partitioned_mesh import DistributedMesh, RankMesh, partition_solver_data
from .reorder import (apply_vertex_permutation, bfs_renumber,
                      random_shuffle_edges, reuse_distances,
                      sort_edges_by_vertex)

__all__ = [
    "DistributedEulerSolver", "DistributedInterp", "DistributedMultigrid",
    "DistributedMesh", "RankMesh", "partition_solver_data",
    "distributed_fmg_start",
    "apply_vertex_permutation", "bfs_renumber", "random_shuffle_edges",
    "reuse_distances", "sort_edges_by_vertex",
]

from .mp_exchange import mp_convective_residual

__all__ += ["mp_convective_residual"]

from .mp_solver import run_distributed_mp

__all__ += ["run_distributed_mp"]
