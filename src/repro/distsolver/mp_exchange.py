"""True SPMD execution of the PARTI pattern over OS processes.

The simulated machine (:mod:`repro.parti.simmpi`) is the measurement
instrument for the paper's tables; this module demonstrates that the same
inspector data drives *real* message passing: every rank is a separate
Python process, ghost exchanges travel through multiprocessing pipes, and
the assembled residual is bit-compatible with the sequential operator (up
to summation order, like the simulated runs).

Scope: the convective-residual phase (gather ghosts -> edge-flux loop ->
scatter-add crossing contributions), which contains both PARTI executor
directions — here in latency-hiding form: each rank posts its ghost
sends, computes the *interior* edge contributions (both endpoints owned,
via a precomputed CSR :class:`~repro.scatter.EdgeScatter`) while the
messages are in flight, then completes the *boundary* edges on arrival.
The full five-stage solver runs on the simulated machine and in
:mod:`repro.distsolver.mp_solver`.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from ..constants import NVAR
from ..parti.schedule import GatherSchedule
from ..resilience import collect_results
from ..scatter import EdgeScatter
from ..state import flux_vectors
from .partitioned_mesh import DistributedMesh

__all__ = ["mp_convective_residual"]


def _worker(rank: int, payload: dict, inbox, outboxes: dict,
            result_queue) -> None:
    """One rank's SPMD loop: post gather, interior loop, finish, scatter.

    ``payload`` carries this rank's mesh data (edge list split
    interior/boundary) and its slice of the schedule (who to send what,
    and where incoming data lands).
    """
    n_owned = payload["n_owned"]
    n_ghost = payload["n_ghost"]
    n_local = n_owned + n_ghost
    w_local = payload["w_local"]            # [owned | ghost-uninitialised]
    send_indices = payload["send_indices"]   # {dst: local idx to pack}
    recv_slices = payload["recv_slices"]     # {src: (start, stop)} in ghosts
    return_indices = payload["send_indices"]  # scatter goes backwards

    # Ranks run asynchronously: a fast neighbour's scatter message can
    # arrive while this rank is still waiting for gather data, so
    # out-of-phase messages are stashed and replayed.
    stash: list = []

    def recv_phase(expected: str):
        for k, (src, phase, data) in enumerate(stash):
            if phase == expected:
                stash.pop(k)
                return src, data
        while True:
            src, phase, data = inbox.recv()
            if phase == expected:
                return src, data
            stash.append((src, phase, data))

    # --- gather begin: post owned values ----------------------------------
    for dst, idx in send_indices.items():
        outboxes[dst].send((rank, "gather", w_local[idx]))

    # --- overlap window: interior edge loop off owned rows only -----------
    def edge_flux(edges, eta, sc, out, accumulate):
        favg = f[edges[:, 0]] + f[edges[:, 1]]
        phi = 0.5 * np.einsum("ekd,ed->ek", favg, eta)
        sc.signed(phi, out=out, accumulate=accumulate)

    f = np.zeros((n_local, NVAR, 3))
    f[:n_owned] = flux_vectors(w_local[:n_owned])
    q = np.zeros((n_local, NVAR))
    sc_int = EdgeScatter(payload["interior_edges"], n_local)
    edge_flux(payload["interior_edges"], payload["eta_interior"], sc_int,
              q, False)

    # --- gather finish: receive ghosts, complete boundary edges -----------
    pending = set(recv_slices)
    while pending:
        src, data = recv_phase("gather")
        start, stop = recv_slices[src]
        w_local[n_owned + start:n_owned + stop] = data
        pending.discard(src)
    f[n_owned:] = flux_vectors(w_local[n_owned:])
    sc_bnd = EdgeScatter(payload["boundary_edges"], n_local)
    edge_flux(payload["boundary_edges"], payload["eta_boundary"], sc_bnd,
              q, True)

    # --- scatter-add: return ghost-slot contributions to their owners ------
    for src, (start, stop) in recv_slices.items():
        outboxes[src].send((rank, "scatter", q[n_owned + start:n_owned + stop]))
    pending = set(return_indices)
    while pending:
        src, data = recv_phase("scatter")
        # Send indices are unique per pair (inspector dedup): += is exact.
        q[return_indices[src]] += data
        pending.discard(src)

    result_queue.put((rank, q[:n_owned]))


def _rank_payload(dmesh: DistributedMesh, schedule: GatherSchedule,
                  rank: int, w_owned: np.ndarray) -> dict:
    rm = dmesh.ranks[rank]
    w_local = np.zeros((rm.n_local, NVAR))
    w_local[:rm.n_owned] = w_owned
    send_indices = {dst: idx for (src, dst), idx
                    in schedule.send_indices.items() if src == rank}
    recv_slices = {src: sl for (src, dst), sl
                   in schedule.recv_slices.items() if dst == rank}
    return {
        "n_owned": rm.n_owned, "n_ghost": rm.n_ghost,
        "interior_edges": rm.edges[rm.interior_edges],
        "boundary_edges": rm.edges[rm.boundary_edges],
        "eta_interior": rm.eta[rm.interior_edges],
        "eta_boundary": rm.eta[rm.boundary_edges],
        "w_local": w_local,
        "send_indices": send_indices,
        "recv_slices": recv_slices,
    }


def mp_convective_residual(dmesh: DistributedMesh, w_global: np.ndarray,
                           timeout: float = 60.0) -> np.ndarray:
    """Interior convective residual computed by real parallel processes.

    Returns the assembled global residual (no boundary closure — compare
    against :func:`repro.solver.flux.convective_operator`).
    """
    schedule = dmesh.schedule
    n_ranks = dmesh.n_ranks
    ctx = mp.get_context("fork")     # workers inherit numpy state cheaply

    # One duplex pipe per rank for its inbox; every worker gets the send
    # ends of all inboxes as its outboxes.
    inbox_recv, inbox_send = zip(*[ctx.Pipe(duplex=False)
                                   for _ in range(n_ranks)])
    result_queue = ctx.Queue()

    workers = []
    collected = False
    try:
        for rank in range(n_ranks):
            owned = w_global[dmesh.table.owned_globals[rank]]
            payload = _rank_payload(dmesh, schedule, rank, owned)
            outboxes = {dst: inbox_send[dst] for dst in range(n_ranks)}
            proc = ctx.Process(target=_worker,
                               args=(rank, payload, inbox_recv[rank],
                                     outboxes, result_queue))
            proc.start()
            workers.append(proc)

        # Whole-collection deadline with worker-exitcode polling: a dead
        # rank raises RankFailedError promptly instead of queue.Empty
        # after the full timeout (see repro.resilience.collect).
        results = collect_results(result_queue, workers, n_ranks, timeout)
        collected = True
        out = np.empty((dmesh.table.n_global, NVAR))
        for rank, (q_owned,) in results.items():
            out[dmesh.table.owned_globals[rank]] = q_owned
        return out
    finally:
        if not collected:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
        for proc in workers:
            proc.join(timeout=5.0)
            if proc.is_alive():      # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5.0)
        # Close every pipe endpoint and the queue deterministically so
        # repeated calls in one process leak no file descriptors.
        for conn in (*inbox_recv, *inbox_send):
            conn.close()
        result_queue.close()
        result_queue.join_thread()
