"""True SPMD execution of the PARTI pattern over OS processes.

The simulated machine (:mod:`repro.parti.simmpi`) is the measurement
instrument for the paper's tables; this module demonstrates that the same
inspector data drives *real* message passing: every rank is a separate
Python process, ghost exchanges travel through multiprocessing pipes, and
the assembled residual is bit-compatible with the sequential operator (up
to summation order, like the simulated runs).

Scope: the convective-residual phase (gather ghosts -> edge-flux loop ->
scatter-add crossing contributions), which contains both PARTI executor
directions — here in latency-hiding form: each rank posts its ghost
sends, computes the *interior* edge contributions (both endpoints owned,
via a precomputed CSR :class:`~repro.scatter.EdgeScatter`) while the
messages are in flight, then completes the *boundary* edges on arrival.
The full five-stage solver runs on the simulated machine and in
:mod:`repro.distsolver.mp_solver`.

``transport="shm"`` swaps the pickled-array pipe payloads for the
zero-copy :mod:`~repro.distsolver.shm_channel` slabs (same phase
protocol, control descriptors through the pipes).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque

import numpy as np

from ..constants import NVAR
from ..parti.schedule import GatherSchedule
from ..resilience import collect_results
from ..resilience.errors import TransportProtocolError
from ..scatter import EdgeScatter
from ..state import flux_vectors
from .mp_solver import widen_pipe
from .partitioned_mesh import DistributedMesh
from .shm_channel import ShmInlet, ShmSlabPool, is_shm_ctrl, pair_extents

__all__ = ["mp_convective_residual"]


class _PhaseStash:
    """Out-of-phase message buffer: per-phase deques, per-sender FIFO.

    Ranks run asynchronously: a fast neighbour's scatter message can
    arrive while this rank is still waiting for gather data, so
    mismatched messages are stashed and replayed.  One deque per phase
    keeps each sender's messages in their pipe arrival order (the old
    single-list scan broke per-sender FIFO and re-walked every stashed
    entry per receive); ``want_src`` narrows a receive to one sender so
    the scatter fold can run in deterministic sender order.  Shm control
    descriptors are resolved to their slab views through ``opener`` at
    *consumption* time — a stashed descriptor holds its slot lease until
    the phase actually reads it.
    """

    def __init__(self, inbox, opener=None):
        self.inbox = inbox
        self.opener = opener
        self._stash: dict = {}

    def recv(self, expected: str, want_src: int | None = None):
        """Next ``(src, data)`` of phase ``expected`` (any or one src)."""
        entries = self._stash.get(expected)
        found = None
        if entries:
            if want_src is None:
                found = entries.popleft()
            else:
                for k, (src, data) in enumerate(entries):
                    if src == want_src:
                        del entries[k]
                        found = (src, data)
                        break
            if not entries:
                del self._stash[expected]
        if found is None:
            while True:
                src, phase, data = self.inbox.recv()
                if phase == expected and (want_src is None
                                          or src == want_src):
                    found = (src, data)
                    break
                self._stash.setdefault(phase, deque()).append((src, data))
        src, data = found
        if self.opener is not None and is_shm_ctrl(data):
            data = self.opener(src, data)
        return src, data


def _worker(rank: int, payload: dict, inbox, outboxes: dict,
            result_queue, pool=None, timeout: float = 60.0,
            outbox_locks: dict | None = None) -> None:
    """One rank's SPMD loop: post gather, interior loop, finish, scatter.

    ``payload`` carries this rank's mesh data (edge list split
    interior/boundary) and its slice of the schedule (who to send what,
    and where incoming data lands).  With ``pool`` given, payloads move
    through its shared-memory slabs and the pipes carry only control
    descriptors.
    """
    n_owned = payload["n_owned"]
    n_ghost = payload["n_ghost"]
    n_local = n_owned + n_ghost
    w_local = payload["w_local"]            # [owned | ghost-uninitialised]
    send_indices = payload["send_indices"]   # {dst: local idx to pack}
    recv_slices = payload["recv_slices"]     # {src: (start, stop)} in ghosts
    #: Scatter-return landing map — built explicitly by ``_rank_payload``
    #: (NOT an alias of ``send_indices``): each requester this rank
    #: packed gather values for returns its ghost contributions onto
    #: exactly those packed local indices.
    return_indices = payload["return_indices"]

    outlet = pool.outlet_channels(rank) if pool is not None else None
    inlet = ShmInlet(pool.inlet_channels(rank)) if pool is not None else None

    def send(dst: int, phase: str, data: np.ndarray) -> None:
        if outlet is None:
            # Pipe writes above PIPE_BUF are not atomic and every rank
            # writes into dst's one inbox — the per-inbox lock keeps
            # concurrent payload sends from interleaving.  (shm control
            # descriptors below are sub-PIPE_BUF, hence lock-free.)
            with outbox_locks[dst]:
                outboxes[dst].send((rank, phase, data))
            return
        claimed = outlet[dst].begin_send(data.shape,
                                         time.monotonic() + timeout)
        if claimed is None:   # pragma: no cover - wedged peer
            raise TransportProtocolError(
                (rank, dst), f"slab wait timed out in phase {phase!r}")
        ctrl, view = claimed
        np.copyto(view, data)
        outboxes[dst].send((rank, phase, ctrl))

    stash = _PhaseStash(inbox,
                        opener=inlet.open if inlet is not None else None)

    # --- gather begin: post owned values ----------------------------------
    for dst, idx in send_indices.items():
        send(dst, "gather", w_local[idx])

    # --- overlap window: interior edge loop off owned rows only -----------
    def edge_flux(edges, eta, sc, out, accumulate):
        favg = f[edges[:, 0]] + f[edges[:, 1]]
        phi = 0.5 * np.einsum("ekd,ed->ek", favg, eta)
        sc.signed(phi, out=out, accumulate=accumulate)

    f = np.zeros((n_local, NVAR, 3))
    f[:n_owned] = flux_vectors(w_local[:n_owned])
    q = np.zeros((n_local, NVAR))
    sc_int = EdgeScatter(payload["interior_edges"], n_local)
    edge_flux(payload["interior_edges"], payload["eta_interior"], sc_int,
              q, False)

    # --- gather finish: receive ghosts, complete boundary edges -----------
    for _ in range(len(recv_slices)):
        src, data = stash.recv("gather")
        start, stop = recv_slices[src]
        w_local[n_owned + start:n_owned + stop] = data
    f[n_owned:] = flux_vectors(w_local[n_owned:])
    sc_bnd = EdgeScatter(payload["boundary_edges"], n_local)
    edge_flux(payload["boundary_edges"], payload["eta_boundary"], sc_bnd,
              q, True)

    # --- scatter-add: return ghost-slot contributions to their owners ------
    for src, (start, stop) in recv_slices.items():
        send(src, "scatter", q[n_owned + start:n_owned + stop])
    for src in sorted(return_indices):
        _, data = stash.recv("scatter", src)
        # Send indices are unique per pair (inspector dedup): += is exact;
        # sorted sender order keeps the fold deterministic where ghost
        # vertices are shared by several neighbours.
        q[return_indices[src]] += data

    if inlet is not None:
        inlet.release_all()
        pool.close()
    result_queue.put(("ok", rank, q[:n_owned]))


def _rank_payload(dmesh: DistributedMesh, schedule: GatherSchedule,
                  rank: int, w_owned: np.ndarray) -> dict:
    rm = dmesh.ranks[rank]
    w_local = np.zeros((rm.n_local, NVAR))
    w_local[:rm.n_owned] = w_owned
    send_indices = {dst: idx for (src, dst), idx
                    in schedule.send_indices.items() if src == rank}
    recv_slices = {src: sl for (src, dst), sl
                   in schedule.recv_slices.items() if dst == rank}
    # The scatter return runs opposite to the gather: every requester
    # this rank packed gather values for sends back its accumulated
    # ghost contributions, which land on exactly those packed local
    # indices.  The map coincides with ``send_indices`` today, but it is
    # a distinct contract (owner <- requester, not owner -> requester) —
    # building it independently keeps the two directions auditable and
    # stops a change to the gather packing from silently re-routing the
    # scatter fold.
    return_indices = {requester: idx for (owner, requester), idx
                      in schedule.send_indices.items() if owner == rank}
    return {
        "n_owned": rm.n_owned, "n_ghost": rm.n_ghost,
        "interior_edges": rm.edges[rm.interior_edges],
        "boundary_edges": rm.edges[rm.boundary_edges],
        "eta_interior": rm.eta[rm.interior_edges],
        "eta_boundary": rm.eta[rm.boundary_edges],
        "w_local": w_local,
        "send_indices": send_indices,
        "recv_slices": recv_slices,
        "return_indices": return_indices,
    }


def mp_convective_residual(dmesh: DistributedMesh, w_global: np.ndarray,
                           timeout: float = 60.0,
                           transport: str = "pipe") -> np.ndarray:
    """Interior convective residual computed by real parallel processes.

    Returns the assembled global residual (no boundary closure — compare
    against :func:`repro.solver.flux.convective_operator`).
    ``transport`` selects the ghost-payload fabric: ``"pipe"`` (pickled
    arrays) or ``"shm"`` (zero-copy shared-memory slabs).
    """
    if transport not in ("pipe", "shm"):
        raise ValueError(f"transport must be 'pipe' or 'shm', "
                         f"got {transport!r}")
    schedule = dmesh.schedule
    n_ranks = dmesh.n_ranks
    ctx = mp.get_context("fork")     # workers inherit numpy state cheaply

    # One duplex pipe per rank for its inbox; every worker gets the send
    # ends of all inboxes as its outboxes.
    inbox_recv, inbox_send = zip(*[ctx.Pipe(duplex=False)
                                   for _ in range(n_ranks)])
    result_queue = ctx.Queue()
    # Created before the forks so every worker inherits the one mapping.
    pool = (ShmSlabPool(pair_extents(schedule, max_cols=NVAR))
            if transport == "shm" else None)
    # Pipe transport only: pickled ghost payloads exceed PIPE_BUF, so
    # concurrent writers into one inbox need serialising (shm control
    # descriptors are tiny and atomic, no lock required).
    outbox_locks = (None if pool is not None else
                    {dst: ctx.Lock() for dst in range(n_ranks)})
    if pool is None:
        # Kernel buffer headroom so a locked writer never blocks on a
        # full inbox (see mp_solver.PIPE_CAPACITY).
        for conn in inbox_send:
            widen_pipe(conn)

    workers = []
    collected = False
    try:
        for rank in range(n_ranks):
            owned = w_global[dmesh.table.owned_globals[rank]]
            payload = _rank_payload(dmesh, schedule, rank, owned)
            outboxes = {dst: inbox_send[dst] for dst in range(n_ranks)}
            proc = ctx.Process(target=_worker,
                               args=(rank, payload, inbox_recv[rank],
                                     outboxes, result_queue, pool, timeout,
                                     outbox_locks))
            proc.start()
            workers.append(proc)

        # Whole-collection deadline with worker-exitcode polling: a dead
        # rank raises RankFailedError promptly instead of queue.Empty
        # after the full timeout (see repro.resilience.collect).  Each
        # worker returns exactly one field (its owned residual rows);
        # declaring the arity turns a payload drift into a typed
        # ResultContractError naming the rank.
        results = collect_results(result_queue, workers, n_ranks, timeout,
                                  expect_fields=1)
        collected = True
        out = np.empty((dmesh.table.n_global, NVAR))
        for rank, (q_owned,) in results.items():
            out[dmesh.table.owned_globals[rank]] = q_owned
        return out
    finally:
        if not collected:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
        for proc in workers:
            proc.join(timeout=5.0)
            if proc.is_alive():      # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5.0)
        # Close every pipe endpoint and the queue deterministically so
        # repeated calls in one process leak no file descriptors.
        for conn in (*inbox_recv, *inbox_send):
            conn.close()
        result_queue.close()
        result_queue.join_thread()
        if pool is not None:
            pool.close()
            pool.unlink()
