"""Zero-copy shared-memory slabs for the mp backend's ghost exchanges.

The pipe transport pickles every ghost payload through a
``multiprocessing`` pipe — at 4+ ranks the serialization (pickle, 64 KiB
kernel pipe chunks, unpickle-allocation) dominates exactly where the
paper reports near-linear scaling.  This module implements the hybrid
MPI-3 shared-memory pattern instead: bulk data moves by ``memcpy``
through ``multiprocessing.shared_memory`` slabs while the existing pipes
carry only tiny ``(rank, op, descriptor)`` control messages.

Layout
------
One shared-memory segment holds, for every *directed* neighbour pair
``(src, dst)`` of the inspector's :class:`~repro.parti.schedule
.GatherSchedule`, a double-buffered slab region::

    [ consumed_seq (int64, cacheline-padded) | slot 0 | slot 1 ]

sized from the schedule's send/recv extents (``rows`` = the larger of
the pair's gather and scatter-return message lengths, ``cols`` = the
widest aggregated payload the solver ever packs, ``2 * NVAR`` columns
for the merged q+d scatter).

Protocol
--------
A send is a sequence-number handshake over the slab plus a control
message over the pipe:

1. the sender waits until ``seq - consumed <= N_SLOTS`` (the receiver
   has released the slot's previous occupant), then memcpys the payload
   into slot ``seq % N_SLOTS``;
2. the *control descriptor* ``("shm", seq, slot, shape)`` travels
   through the pipe in place of the array, reusing the transport's
   op-index matching, stashing, timeout and retry machinery unchanged;
3. the receiver validates the per-pair FIFO (``seq`` must be the next
   expected — a gap means a lost or reordered control message and
   raises :class:`~repro.resilience.TransportProtocolError`), reads the
   payload directly from the slab (a NumPy view, no copy), and releases
   the lease by publishing ``consumed = seq`` once the data has been
   copied out (on the next open, or when the op completes).

Both transports (``mp_solver._ShmTransport``,
``mp_exchange``'s shm workers) share the :class:`ShmInlet` lease
bookkeeping; the fork start method makes the parent's single segment
visible in every rank worker without per-process attach calls.  NumPy
views over the segment are created lazily *per process*, so the parent
(which never touches payload slots) can close its mapping cleanly in
the driver's ``finally`` block.
"""

from __future__ import annotations

import pickle
import time
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from ..constants import NVAR
from ..resilience.errors import TransportProtocolError

__all__ = ["CTRL_BYTES", "DEFAULT_MAX_COLS", "N_SLOTS", "ShmChannel",
           "ShmInlet", "ShmSlabPool", "is_shm_ctrl", "pair_extents"]

#: Slots per directed pair (double buffering: the sender may run at most
#: one op ahead of the receiver's consumption on any pair).
N_SLOTS = 2

#: Widest payload the solver packs into one message: the aggregated
#: ``[q, d]`` scatter of the overlap executor (2 * NVAR columns).  The
#: blocking path's widest is ``NVAR + 2`` (dissipation partials) and the
#: sigma-diss-partials aggregate is ``NVAR + 3``.
DEFAULT_MAX_COLS = 2 * NVAR

#: Cacheline-padded per-pair header: ``consumed_seq`` int64 at offset 0.
_HDR_BYTES = 64

#: Pickled size of one control message ``(rank, op, ("shm", seq, slot,
#: shape))`` — what actually crosses the pipe per exchange in shm mode.
#: Measured once at import against a representative descriptor; the
#: observatory's comm matrix counts this instead of the payload bytes.
CTRL_BYTES = len(pickle.dumps((3, 1 << 20, ("shm", 1 << 40, 1,
                                            (1 << 20, 2 * NVAR)))))

#: Sender poll interval while waiting for a slot release, seconds.
_SPIN_S = 5e-5


def is_shm_ctrl(data: object) -> bool:
    """True when a pipe payload is a slab control descriptor."""
    return type(data) is tuple and len(data) == 4 and data[0] == "shm"


def pair_extents(schedule: Any,
                 max_cols: int = DEFAULT_MAX_COLS) -> dict:
    """Slab extents ``{(src, dst): (rows, cols)}`` from the inspector.

    Directed pair ``(a, b)`` carries the gather messages of schedule
    pair ``(owner=a, requester=b)`` and the scatter-return messages of
    pair ``(owner=b, requester=a)`` (the requester returns ghost
    contributions to the owner), so its row extent is the larger of the
    two message lengths.  Pairs with traffic in one direction only
    (asymmetric neighbour pairs) still get both slabs — the scatter
    return always runs opposite to the gather.
    """
    counts = {pair: len(idx) for pair, idx in schedule.send_indices.items()}
    extents: dict = {}
    for a, b in counts:
        for pair in ((a, b), (b, a)):
            rows = max(counts.get(pair, 0), counts.get(pair[::-1], 0))
            extents[pair] = (rows, max_cols)
    return extents


class ShmChannel:
    """One directed pair's double-buffered slab (sender + receiver ends).

    The same object is used on both sides after the fork: the sender
    process advances ``_next_seq``, the receiver ``_expect_seq`` — each
    counter lives in exactly one process, only the ``consumed`` header
    crosses the process boundary (through the shared segment).
    """

    def __init__(self, shm: shared_memory.SharedMemory, offset: int,
                 rows: int, cols: int, pair: tuple):
        self._shm = shm
        self._offset = offset
        self.rows = rows
        self.cols = cols
        self.pair = pair
        self._next_seq = 1       # sender-side
        self._expect_seq = 1     # receiver-side
        # Lazy per-process views (see module doc).
        self._hdr: np.ndarray | None = None
        self._slots: list[np.ndarray] | None = None

    def _ensure_views(self) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._hdr is None or self._slots is None:
            buf = self._shm.buf
            self._hdr = np.ndarray((1,), dtype=np.int64, buffer=buf,
                                   offset=self._offset)
            cap = self.rows * self.cols
            base = self._offset + _HDR_BYTES
            self._slots = [np.ndarray((cap,), dtype=np.float64, buffer=buf,
                                      offset=base + k * cap * 8)
                           for k in range(N_SLOTS)]
        return self._hdr, self._slots

    def drop_views(self) -> None:
        """Release this process's NumPy views so the mapping can close."""
        self._hdr = None
        self._slots = None

    # -- sender side -----------------------------------------------------
    def begin_send(self, shape: tuple,
                   deadline: float) -> tuple[tuple, np.ndarray] | None:
        """Claim the next slot; returns ``(ctrl, view)`` or ``None``.

        Blocks (spinning on the ``consumed`` header) until the slot's
        previous occupant has been released by the receiver; ``None``
        means the deadline passed first — the receiver is wedged, and
        the caller turns that into an :class:`ExchangeTimeoutError`
        naming the op.
        """
        hdr, slots = self._ensure_views()
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if n > self.rows * self.cols:
            raise TransportProtocolError(
                self.pair, f"payload of shape {shape} overflows the "
                f"{self.rows}x{self.cols} slab")
        seq = self._next_seq
        while seq - int(hdr[0]) > N_SLOTS:
            if time.monotonic() > deadline:
                return None
            time.sleep(_SPIN_S)
        self._next_seq = seq + 1
        slot = seq % N_SLOTS
        view = slots[slot][:n].reshape(shape)
        return ("shm", seq, slot, shape), view

    # -- receiver side ---------------------------------------------------
    def open(self, ctrl: tuple) -> tuple[int, np.ndarray]:
        """Validate a control descriptor; returns ``(seq, payload view)``.

        The view aliases the slab — the caller must copy out (or finish
        reading) before :meth:`release` hands the slot back to the
        sender.  A sequence gap means a control message was lost or
        delivered out of per-pair order: the slab contents can no longer
        be trusted, so this raises instead of returning stale data.
        """
        _, slots = self._ensure_views()
        _kind, seq, slot, shape = ctrl
        if seq != self._expect_seq:
            raise TransportProtocolError(
                self.pair, f"control message carries seq {seq}, expected "
                f"{self._expect_seq} (lost or reordered control message)")
        if slot != seq % N_SLOTS:
            raise TransportProtocolError(
                self.pair, f"seq {seq} arrived in slot {slot}, expected "
                f"{seq % N_SLOTS}")
        self._expect_seq = seq + 1
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return seq, slots[slot][:n].reshape(shape)

    def release(self, seq: int) -> None:
        """Publish ``consumed = seq``: the sender may reuse the slot."""
        hdr, _ = self._ensure_views()
        hdr[0] = seq


class ShmInlet:
    """Receiver-side lease bookkeeping shared by both mp transports.

    :meth:`open` maps a control descriptor to its slab view and releases
    the *previous* lease — by the time the caller asks for the next
    message it has copied the last one out (both transports copy
    immediately after every receive).  :meth:`release_all` closes the
    window at op/phase completion.
    """

    def __init__(self, channels: dict):
        #: {src rank: ShmChannel src->me}
        self.channels: dict[int, ShmChannel] = channels
        self._leased: list[tuple[ShmChannel, int]] = []

    def open(self, src: int, ctrl: tuple) -> np.ndarray:
        self.release_all()
        seq, view = self.channels[src].open(ctrl)
        self._leased.append((self.channels[src], seq))
        return view

    def release_all(self) -> None:
        for channel, seq in self._leased:
            channel.release(seq)
        self._leased.clear()


class ShmSlabPool:
    """The driver-side segment: one shared-memory block, all pair slabs.

    Created in the parent before the fork; rank workers inherit the
    mapping and build their channel views lazily.  The parent closes and
    unlinks in its ``finally`` block — ``close`` tolerates views still
    alive in-process (unit tests), ``unlink`` removes the name while the
    children's inherited mappings stay valid until they exit.
    """

    def __init__(self, extents: dict):
        self._offsets: dict[tuple[int, int], tuple[int, int, int]] = {}
        size = 0
        for pair in sorted(extents):
            rows, cols = extents[pair]
            self._offsets[pair] = (size, rows, cols)
            region = _HDR_BYTES + N_SLOTS * rows * cols * 8
            size += (region + 63) & ~63      # 64-byte align each region
        self.shm = shared_memory.SharedMemory(create=True,
                                              size=max(size, 8))
        self.shm.buf[:size] = b"\0" * size   # consumed counters start at 0
        self._channels: dict[tuple[int, int], ShmChannel] = {}

    def channel(self, src: int, dst: int) -> ShmChannel:
        """The (cached) channel of directed pair ``src -> dst``."""
        pair = (src, dst)
        if pair not in self._channels:
            offset, rows, cols = self._offsets[pair]
            self._channels[pair] = ShmChannel(self.shm, offset, rows, cols,
                                              pair)
        return self._channels[pair]

    def inlet_channels(self, rank: int) -> dict:
        """``{src: channel}`` for every pair arriving at ``rank``."""
        return {src: self.channel(src, rank)
                for (src, dst) in self._offsets if dst == rank}

    def outlet_channels(self, rank: int) -> dict:
        """``{dst: channel}`` for every pair departing ``rank``."""
        return {dst: self.channel(src, dst)
                for (src, dst) in self._offsets if src == rank}

    def close(self) -> None:
        for channel in self._channels.values():
            channel.drop_views()
        try:
            self.shm.close()
        except BufferError:   # pragma: no cover - in-process views alive
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:   # pragma: no cover - already unlinked
            pass
