"""Node and edge reordering for cache locality (Section 4.2).

"The edge list was therefore reordered such that all the edges incident on
a vertex are listed consecutively.  In this manner, once the data for a
vertex is brought into the cache it can be used a number of times before
it is removed. ... We also performed node renumbering which causes data
associated with nodes linked by mesh edges to be stored in nearby memory
locations.  These optimizations alone improved the single node
computational rate by a factor of two."

This module provides both transforms plus the *reuse-distance* measurement
that feeds the i860 cache model (:mod:`repro.perfmodel.cache`):

* :func:`bfs_renumber` — breadth-first (Cuthill-McKee-style) vertex
  renumbering, which clusters graph neighbours in index space;
* :func:`sort_edges_by_vertex` — stable sort of the edge list by first
  endpoint, putting all edges of a vertex consecutively;
* :func:`reuse_distances` — for the vertex access stream of an edge loop,
  the index distance since each vertex was last touched.  Short distances
  mean the vertex is still cached; the cache model thresholds these
  against the i860's capacity to estimate a hit rate.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..mesh.adjacency import vertex_neighbors_csr

__all__ = ["bfs_renumber", "sort_edges_by_vertex", "apply_vertex_permutation",
           "reuse_distances", "random_shuffle_edges"]


def bfs_renumber(edges: np.ndarray, n_vertices: int, seed_vertex: int = 0) -> np.ndarray:
    """Permutation ``perm[old] = new`` from breadth-first traversal.

    Neighbours are visited in ascending old-index order (Cuthill-McKee
    without the degree sort — adequate for locality, cheaper to compute).
    Disconnected components are appended in old-index order.
    """
    indptr, indices = vertex_neighbors_csr(edges, n_vertices)
    perm = np.full(n_vertices, -1, dtype=np.int64)
    next_new = 0
    seen = np.zeros(n_vertices, dtype=bool)
    start_candidates = iter(range(n_vertices))
    queue = deque()
    if 0 <= seed_vertex < n_vertices:
        queue.append(seed_vertex)
        seen[seed_vertex] = True
    while next_new < n_vertices:
        if not queue:
            for cand in start_candidates:
                if not seen[cand]:
                    queue.append(cand)
                    seen[cand] = True
                    break
        v = queue.popleft()
        perm[v] = next_new
        next_new += 1
        for nb in indices[indptr[v]:indptr[v + 1]]:
            if not seen[nb]:
                seen[nb] = True
                queue.append(int(nb))
    return perm


def apply_vertex_permutation(perm: np.ndarray, vertices: np.ndarray,
                             tets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Renumbered copies of vertex coordinates and tet connectivity."""
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size)
    return vertices[inv], perm[tets]


def sort_edges_by_vertex(edges: np.ndarray) -> np.ndarray:
    """Indices that sort edges by (first endpoint, second endpoint).

    After the sort, all edges incident on vertex ``v`` through their first
    endpoint are consecutive — the paper's edge reordering.
    """
    return np.lexsort((edges[:, 1], edges[:, 0]))


def random_shuffle_edges(n_edges: int, seed: int = 0) -> np.ndarray:
    """Adversarial baseline ordering (what an advancing-front generator's
    raw output resembles: no locality at all)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n_edges)


def reuse_distances(access_stream: np.ndarray) -> np.ndarray:
    """Distance (in stream positions) since the previous access of each item.

    First accesses get ``+inf`` (compulsory misses).  The stream for an
    edge loop is ``edges[order].ravel()`` — each edge touches both
    endpoints.  Computed in O(n) with a last-seen table.
    """
    stream = np.asarray(access_stream)
    last_seen = {}
    out = np.empty(stream.shape[0], dtype=np.float64)
    for pos, item in enumerate(stream.tolist()):
        prev = last_seen.get(item)
        out[pos] = np.inf if prev is None else pos - prev
        last_seen[item] = pos
    return out
