"""Distributed FAS multigrid: per-level SPMD solvers + inter-grid schedules.

"In the multigrid strategy, the patterns for transferring data between the
various meshes of the multigrid sequence must be determined" (Section 2.4)
and "the communication required for inter-grid transfers ... has been
found to constitute a small fraction of the total communication costs"
(Section 4.4) — a claim the traffic log lets us check directly, because
the transfer phases are named separately from the smoothing phases.

Every mesh of the sequence is partitioned independently (as the paper
does); the four interpolation addresses of each vertex may therefore live
on other ranks, and each transfer operator gets its own gather schedule
from the PARTI inspector.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..multigrid.transfer import TransferOperator
from ..parti.schedule import build_gather_schedule
from ..parti.simmpi import SimMachine
from ..parti.translation import TranslationTable
from ..solver.config import SolverConfig
from .driver import DistributedEulerSolver

__all__ = ["DistributedInterp", "DistributedMultigrid", "distributed_fmg_start"]


class DistributedInterp:
    """Distributed 4-address/4-weight interpolation between two partitions.

    ``apply``: target rank gathers the donor values its owned targets
    reference and interpolates.  ``transpose_apply``: target ranks push
    weighted contributions back to donor owners (conservative residual
    restriction).
    """

    def __init__(self, op: TransferOperator, donor_table: TranslationTable,
                 target_table: TranslationTable, machine: SimMachine,
                 phase: str):
        if donor_table.n_parts != target_table.n_parts:
            raise ValueError("donor and target partitions must use equal rank counts")
        self.machine = machine
        self.phase = phase
        self.donor_table = donor_table
        self.target_table = target_table
        n_ranks = donor_table.n_parts

        # Inspector: donor globals referenced by each rank's owned targets.
        required = []
        for r in range(n_ranks):
            owned_targets = target_table.owned_globals[r]
            required.append(op.addresses[owned_targets].ravel())
        self.schedule = build_gather_schedule(required, donor_table,
                                              name=phase)

        # Local address tables: donor global -> [donor owned | ghost] slot.
        self.addr_local = []
        self.weights = []
        #: Per-rank CSR transpose operators ``P^T`` over the local donor
        #: layout [owned | ghost] — addresses and weights are fixed at
        #: construction, so the restriction scatter is one sparse
        #: mat-vec instead of four ``np.add.at`` passes.
        self.pt_local = []
        self.n_donor_owned = donor_table.n_owned
        for r in range(n_ranks):
            g2l = np.full(donor_table.n_global, -1, dtype=np.int64)
            g2l[donor_table.owned_globals[r]] = np.arange(donor_table.n_owned[r])
            ghosts = self.schedule.ghost_globals[r]
            g2l[ghosts] = donor_table.n_owned[r] + np.arange(ghosts.size)
            owned_targets = target_table.owned_globals[r]
            local = g2l[op.addresses[owned_targets]]
            if np.any(local < 0):
                raise AssertionError("transfer inspector missed a donor reference")
            self.addr_local.append(local)
            wts = op.weights[owned_targets]
            self.weights.append(wts)
            nt = owned_targets.size
            n_rows = int(donor_table.n_owned[r]) + ghosts.size
            self.pt_local.append(sp.csr_matrix(
                (wts.ravel(), (local.ravel(), np.repeat(np.arange(nt), 4))),
                shape=(n_rows, nt)))

    # ------------------------------------------------------------------
    def apply(self, donor_owned: list) -> list:
        """Interpolate donor fields to owned target vertices, per rank."""
        ghosts = self.schedule.gather(self.machine, donor_owned, self.phase)
        out = []
        for r, (addr, wts) in enumerate(zip(self.addr_local, self.weights)):
            full = np.concatenate([donor_owned[r], ghosts[r]], axis=0)
            vals = full[addr]                      # (n_targets, 4, ...)
            if vals.ndim == 2:
                out.append(np.einsum("tk,tk->t", wts, vals))
            else:
                out.append(np.einsum("tk,tk...->t...", wts, vals))
        return out

    def transpose_apply(self, target_owned: list) -> list:
        """Scatter weighted target fields back to donor owners (P^T v)."""
        n_ranks = self.donor_table.n_parts
        donor_acc = []
        ghost_acc = []
        for r in range(n_ranks):
            n_own = int(self.n_donor_owned[r])
            # One CSR mat-vec applies all four address/weight columns.
            acc = self.pt_local[r] @ target_owned[r]
            donor_acc.append(acc[:n_own])
            ghost_acc.append(acc[n_own:])
        self.schedule.scatter_add(self.machine, ghost_acc, donor_acc,
                                  self.phase + "-scatter")
        return donor_acc


class DistributedMultigrid:
    """FAS V/W cycles where every level runs on the simulated machine.

    Parameters
    ----------
    hierarchy : a sequential :class:`repro.multigrid.MultigridHierarchy`
        (provides meshes, edge structures and transfer operators — the
        sequential preprocessing the paper also performs).
    assignments : per-level vertex partition arrays (equal rank counts).
    w_inf, config : as for the solvers.
    machine : shared :class:`SimMachine`; defaults to a fresh one.
    """

    def __init__(self, hierarchy, assignments: list, w_inf, config=None,
                 machine: SimMachine | None = None):
        if len(assignments) != hierarchy.n_levels:
            raise ValueError("one partition per level required")
        config = config or SolverConfig()
        n_ranks = int(np.max(assignments[0])) + 1
        self.machine = machine or SimMachine(n_ranks)
        self.hierarchy = hierarchy
        self.solvers = [
            DistributedEulerSolver(lv.solver.struct, w_inf, asg, config,
                                   machine=self.machine,
                                   phase_prefix=f"L{l}-")
            for l, (lv, asg) in enumerate(zip(hierarchy.levels, assignments))
        ]
        # Inter-grid operators on the distributed partitions.
        self.prolong = []      # coarse -> fine (corrections)
        self.restrict_vars = []  # fine -> coarse (flow variables)
        for l in range(hierarchy.n_levels - 1):
            fine_lv = hierarchy.levels[l]
            fine_table = self.solvers[l].dmesh.table
            coarse_table = self.solvers[l + 1].dmesh.table
            self.prolong.append(DistributedInterp(
                fine_lv.from_coarse, coarse_table, fine_table,
                self.machine, phase=f"transfer-prolong-L{l}"))
            self.restrict_vars.append(DistributedInterp(
                fine_lv.to_coarse_vars, fine_table, coarse_table,
                self.machine, phase=f"transfer-restrict-L{l}"))

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.solvers)

    def freestream_solution(self) -> list:
        return self.solvers[0].freestream_solution()

    def _restrict_residual(self, level: int, resid_owned: list) -> list:
        """Conservative residual restriction: transpose of prolongation."""
        return self.prolong[level].transpose_apply(resid_owned)

    def mg_cycle(self, w_list: list, gamma: int = 1, level: int = 0,
                 forcing: list | None = None) -> list:
        solver = self.solvers[level]
        w_new = solver.step(w_list, forcing=forcing)

        if level + 1 < self.n_levels:
            resid = solver.residual([w.copy() for w in w_new])
            if forcing is not None:
                resid = [r + f for r, f in zip(resid, forcing)]
            w_owned = [w[:rm.n_owned] for w, rm
                       in zip(w_new, solver.dmesh.ranks)]
            w_c0_owned = self.restrict_vars[level].apply(w_owned)
            r_c = self._restrict_residual(level, resid)

            coarse = self.solvers[level + 1]
            w_c0 = coarse.freestream_solution()
            for wl, rm, own in zip(w_c0, coarse.dmesh.ranks, w_c0_owned):
                wl[:rm.n_owned] = own
            r_c_of_wc0 = coarse.residual([w.copy() for w in w_c0])
            forcing_c = [rc - rr for rc, rr in zip(r_c, r_c_of_wc0)]

            w_c = [w.copy() for w in w_c0]
            visits = gamma if level + 2 < self.n_levels else 1
            for _ in range(max(1, visits)):
                w_c = self.mg_cycle(w_c, gamma=gamma, level=level + 1,
                                    forcing=forcing_c)

            corr_owned = [ (wc[:rm.n_owned] - w0[:rm.n_owned])
                          for wc, w0, rm in zip(w_c, w_c0, coarse.dmesh.ranks)]
            corr_fine = self.prolong[level].apply(corr_owned)
            for wl, rm, cf in zip(w_new, solver.dmesh.ranks, corr_fine):
                wl[:rm.n_owned] += cf
        return w_new

    def run(self, w_list: list | None = None, n_cycles: int = 100,
            gamma: int = 1, callback=None) -> tuple[list, list]:
        """Run V- (gamma=1) or W- (gamma=2) cycles on the machine."""
        if w_list is None:
            w_list = self.freestream_solution()
        fine = self.solvers[0]
        history = []
        for cycle in range(n_cycles):
            history.append(fine.density_residual_norm(w_list))
            w_list = self.mg_cycle(w_list, gamma=gamma)
            if callback is not None:
                callback(cycle, w_list, history[-1])
        history.append(fine.density_residual_norm(w_list))
        return w_list, history


def distributed_fmg_start(dmg: DistributedMultigrid,
                          cycles_per_level: int = 10,
                          gamma: int = 2) -> list:
    """Nested-iteration start on the distributed hierarchy.

    Mirrors :func:`repro.multigrid.fmg.fmg_start`: converge partially on
    the coarsest level's partition, prolong upward through the
    distributed transfer operators, cycle at each level.  Returns the
    fine-level per-rank state.
    """
    n = dmg.n_levels
    w = dmg.solvers[-1].freestream_solution()
    for li in range(n - 1, -1, -1):
        if li < n - 1:
            coarse = dmg.solvers[li + 1]
            owned = [wl[:rm.n_owned] for wl, rm
                     in zip(w, coarse.dmesh.ranks)]
            fine_owned = dmg.prolong[li].apply(owned)
            w = dmg.solvers[li].freestream_solution()
            for wl, rm, fo in zip(w, dmg.solvers[li].dmesh.ranks,
                                  fine_owned):
                wl[:rm.n_owned] = fo
        for _ in range(cycles_per_level if li > 0 else 0):
            w = dmg.mg_cycle(w, gamma=gamma, level=li)
    return w
