"""Per-rank solver kernels, shared by every distributed execution backend.

These free functions contain all the *local* arithmetic of one simulated
processor's solver step: the edge loops over the rank's edge set, the
boundary closure on its owned vertices, and the stage update.  They are
used by both

* :class:`repro.distsolver.driver.DistributedEulerSolver` — the central
  SPMD driver over the simulated (traffic-logged) machine, and
* :mod:`repro.distsolver.mp_solver` — the true multiprocessing backend,

so the two backends cannot drift apart numerically.  Communication is the
caller's job; every function takes local arrays (owned + ghost layout)
and returns local contributions.

Every scatter-producing kernel accepts an optional preallocated ``out``
array (zeroed and overwritten) so the multiprocessing backend's stage loop
reuses one set of per-rank buffers instead of allocating per stage.
"""

from __future__ import annotations

import numpy as np

from ..constants import NVAR
from ..scatter import scatter_add_edges
from ..solver.bc import characteristic_state
from ..state import flux_vectors, pressure, primitive_from_conserved
from .partitioned_mesh import RankMesh

__all__ = [
    "convective_local", "boundary_closure", "dissipation_partials",
    "finalize_switch", "dissipation_edges", "spectral_sigma",
    "timestep_from_sigma", "neighbor_sum_partial", "smoothing_update",
    "stage_update",
]


def convective_local(rm: RankMesh, w_local: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
    """Edge-loop convective contributions, ``(n_local, 5)`` (pre-scatter)."""
    f = flux_vectors(w_local)
    favg = f[rm.edges[:, 0]] + f[rm.edges[:, 1]]
    phi = 0.5 * np.einsum("ekd,ed->ek", favg, rm.eta)
    return scatter_add_edges(rm.edges, phi, rm.n_local, out=out,
                             zero_out=True)


def boundary_closure(rm: RankMesh, w_local: np.ndarray, w_inf: np.ndarray,
                     q_local: np.ndarray) -> None:
    """Add wall-pressure and farfield characteristic fluxes (in place)."""
    if rm.wall_vertices.size:
        p_wall = pressure(w_local[rm.wall_vertices])
        q_local[rm.wall_vertices, 1:4] += p_wall[:, None] * rm.wall_normals
    if rm.far_vertices.size:
        w_b = characteristic_state(w_local[rm.far_vertices], rm.far_unit,
                                   w_inf)
        f_b = flux_vectors(w_b)
        q_local[rm.far_vertices] += np.einsum("ikd,id->ik", f_b,
                                              rm.far_normals)


def dissipation_partials(rm: RankMesh, w_local: np.ndarray,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Pass-1 partial sums packed as ``[L(5) | p-diff | p-sum]`` columns.

    ``out`` must have shape ``(n_local, 7)`` when given; it is zeroed and
    filled in place (column views keep the packed exchange layout).
    """
    e0, e1 = rm.edges[:, 0], rm.edges[:, 1]
    if out is None:
        out = np.zeros((rm.n_local, NVAR + 2))
    else:
        out[...] = 0.0
    diff = w_local[e1] - w_local[e0]
    lap = out[:, :NVAR]
    np.add.at(lap, e0, diff)
    np.subtract.at(lap, e1, diff)
    p = pressure(w_local)
    p_diff = p[e1] - p[e0]
    p_sum = p[e0] + p[e1]
    num = out[:, NVAR]
    np.add.at(num, e0, p_diff)
    np.subtract.at(num, e1, p_diff)
    den = out[:, NVAR + 1]
    np.add.at(den, e0, p_sum)
    np.add.at(den, e1, p_sum)
    return out


def finalize_switch(packed: np.ndarray, switch_floor: float) -> np.ndarray:
    """Complete partials -> ``[L(5) | nu]`` per vertex."""
    lap = packed[:, :NVAR]
    nu = np.abs(packed[:, NVAR]) / np.maximum(packed[:, NVAR + 1],
                                              switch_floor)
    return np.concatenate([lap, nu[:, None]], axis=1)


def dissipation_edges(rm: RankMesh, w_local: np.ndarray, lnu: np.ndarray,
                      k2: float, k4: float,
                      out: np.ndarray | None = None) -> np.ndarray:
    """Pass-2 blended dissipation contributions, ``(n_local, 5)``."""
    lap, nu = lnu[:, :NVAR], lnu[:, NVAR]
    rho, u, v, wv, p = primitive_from_conserved(w_local)
    vel = np.stack([u, v, wv], axis=1)
    c = np.sqrt(1.4 * p / rho)
    e0, e1 = rm.edges[:, 0], rm.edges[:, 1]
    vel_avg = 0.5 * (vel[e0] + vel[e1])
    c_avg = 0.5 * (c[e0] + c[e1])
    eta_norm = np.linalg.norm(rm.eta, axis=1)
    lam = np.abs(np.einsum("ed,ed->e", vel_avg, rm.eta)) + c_avg * eta_norm
    nu_edge = np.maximum(nu[e0], nu[e1])
    eps2 = k2 * nu_edge
    eps4 = np.maximum(0.0, k4 - eps2)
    d_edge = lam[:, None] * (eps2[:, None] * (w_local[e1] - w_local[e0])
                             - eps4[:, None] * (lap[e1] - lap[e0]))
    return scatter_add_edges(rm.edges, d_edge, rm.n_local, out=out,
                             zero_out=True)


def spectral_sigma(rm: RankMesh, w_local: np.ndarray,
                   out: np.ndarray | None = None) -> np.ndarray:
    """Edge spectral-radius sums, ``(n_local, 1)`` (pre-scatter)."""
    rho, u, v, wv, p = primitive_from_conserved(w_local)
    vel = np.stack([u, v, wv], axis=1)
    c = np.sqrt(1.4 * p / rho)
    e0, e1 = rm.edges[:, 0], rm.edges[:, 1]
    vel_avg = 0.5 * (vel[e0] + vel[e1])
    c_avg = 0.5 * (c[e0] + c[e1])
    eta_norm = np.linalg.norm(rm.eta, axis=1)
    lam = np.abs(np.einsum("ed,ed->e", vel_avg, rm.eta)) + c_avg * eta_norm
    sigma = out if out is not None else np.zeros((rm.n_local, 1))
    if out is not None:
        sigma[...] = 0.0
    np.add.at(sigma[:, 0], e0, lam)
    np.add.at(sigma[:, 0], e1, lam)
    return sigma


def timestep_from_sigma(rm: RankMesh, w_local: np.ndarray,
                        sigma_owned: np.ndarray, cfl: float) -> np.ndarray:
    """Local dt on owned vertices from completed spectral-radius sums."""
    s = sigma_owned.copy()
    rho, u, v, wv, p = primitive_from_conserved(w_local[:rm.n_owned])
    vel = np.stack([u, v, wv], axis=1)
    c = np.sqrt(1.4 * p / rho)
    for verts, normals in ((rm.wall_vertices, rm.wall_normals),
                           (rm.far_vertices, rm.far_normals)):
        if verts.size:
            nn = np.linalg.norm(normals, axis=1)
            un = np.abs(np.einsum("id,id->i", vel[verts], normals))
            np.add.at(s, verts, un + c[verts] * nn)
    return cfl * rm.dual_volumes / np.maximum(s, 1e-300)


def neighbor_sum_partial(rm: RankMesh, rbar_local: np.ndarray,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Per-edge neighbour sums for one Jacobi sweep, ``(n_local, 5)``."""
    ns = out if out is not None else np.zeros((rm.n_local, NVAR))
    if out is not None:
        ns[...] = 0.0
    np.add.at(ns, rm.edges[:, 0], rbar_local[rm.edges[:, 1]])
    np.add.at(ns, rm.edges[:, 1], rbar_local[rm.edges[:, 0]])
    return ns


def smoothing_update(rm: RankMesh, r_owned: np.ndarray,
                     ns_owned: np.ndarray, eps: float) -> np.ndarray:
    """One Jacobi update with boundary-frozen residuals."""
    out = (r_owned + eps * ns_owned) / (1.0 + eps * rm.degree[:, None])
    out[rm.smoothing_freeze] = r_owned[rm.smoothing_freeze]
    return out


def stage_update(rm: RankMesh, w0_local: np.ndarray, r_owned: np.ndarray,
                 dt_over_v: np.ndarray, alpha: float,
                 out: np.ndarray | None = None) -> np.ndarray:
    """``w^(k) = w^(0) - alpha * dt/V * r`` on owned vertices.

    Ghost rows of ``out`` are copied from ``w0_local`` (stale until the
    next gather), matching the copy semantics of the allocating path.
    """
    if out is None:
        out = w0_local.copy()
    else:
        np.copyto(out, w0_local)
    out[:rm.n_owned] = w0_local[:rm.n_owned] - alpha * dt_over_v * r_owned
    return out
