"""Per-rank solver kernels, shared by every distributed execution backend.

These free functions contain all the *local* arithmetic of one simulated
processor's solver step: the edge loops over the rank's edge set, the
boundary closure on its owned vertices, and the stage update.  They are
used by both

* :class:`repro.distsolver.driver.DistributedEulerSolver` — the central
  SPMD driver over the simulated (traffic-logged) machine, and
* :mod:`repro.distsolver.mp_solver` — the true multiprocessing backend,

so the two backends cannot drift apart numerically.  Communication is the
caller's job; every function takes local arrays (owned + ghost layout)
and returns local contributions.

Every scatter-producing kernel accepts an optional preallocated ``out``
array (zeroed and overwritten) so the multiprocessing backend's stage loop
reuses one set of per-rank buffers instead of allocating per stage.
"""

from __future__ import annotations

import numpy as np

from ..constants import NVAR
from ..scatter import (EdgeScatter, scatter_add_edges, scatter_add_unsigned,
                       scatter_neighbor_sum)
from ..solver.bc import characteristic_state
from ..state import flux_vectors, pressure, primitive_from_conserved
from .partitioned_mesh import RankMesh

__all__ = [
    "convective_local", "boundary_closure", "dissipation_partials",
    "finalize_switch", "dissipation_edges", "spectral_sigma",
    "timestep_from_sigma", "neighbor_sum_partial", "smoothing_update",
    "stage_update", "RankOps", "rank_ops",
]


def convective_local(rm: RankMesh, w_local: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
    """Edge-loop convective contributions, ``(n_local, 5)`` (pre-scatter)."""
    f = flux_vectors(w_local)
    favg = f[rm.edges[:, 0]] + f[rm.edges[:, 1]]
    phi = 0.5 * np.einsum("ekd,ed->ek", favg, rm.eta)
    return scatter_add_edges(rm.edges, phi, rm.n_local, out=out,
                             zero_out=True)


def boundary_closure(rm: RankMesh, w_local: np.ndarray, w_inf: np.ndarray,
                     q_local: np.ndarray) -> None:
    """Add wall-pressure and farfield characteristic fluxes (in place)."""
    if rm.wall_vertices.size:
        p_wall = pressure(w_local[rm.wall_vertices])
        q_local[rm.wall_vertices, 1:4] += p_wall[:, None] * rm.wall_normals
    if rm.far_vertices.size:
        w_b = characteristic_state(w_local[rm.far_vertices], rm.far_unit,
                                   w_inf)
        f_b = flux_vectors(w_b)
        q_local[rm.far_vertices] += np.einsum("ikd,id->ik", f_b,
                                              rm.far_normals)


def dissipation_partials(rm: RankMesh, w_local: np.ndarray,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Pass-1 partial sums packed as ``[L(5) | p-diff | p-sum]`` columns.

    ``out`` must have shape ``(n_local, 7)`` when given; it is zeroed and
    filled in place (column views keep the packed exchange layout).
    """
    e0, e1 = rm.edges[:, 0], rm.edges[:, 1]
    if out is None:
        out = np.zeros((rm.n_local, NVAR + 2))
    else:
        out[...] = 0.0
    diff = w_local[e1] - w_local[e0]
    # The reference scatters run the same np.add.at/np.subtract.at calls
    # in the same order the in-line loops did, so results stay bitwise
    # identical; ``out`` was zeroed above, so no zero_out here.
    scatter_add_edges(rm.edges, diff, rm.n_local, out=out[:, :NVAR])
    p = pressure(w_local)
    p_diff = p[e1] - p[e0]
    p_sum = p[e0] + p[e1]
    scatter_add_edges(rm.edges, p_diff, rm.n_local, out=out[:, NVAR])
    scatter_add_unsigned(rm.edges, p_sum, rm.n_local, out=out[:, NVAR + 1])
    return out


def finalize_switch(packed: np.ndarray, switch_floor: float) -> np.ndarray:
    """Complete partials -> ``[L(5) | nu]`` per vertex."""
    lap = packed[:, :NVAR]
    nu = np.abs(packed[:, NVAR]) / np.maximum(packed[:, NVAR + 1],
                                              switch_floor)
    return np.concatenate([lap, nu[:, None]], axis=1)


def dissipation_edges(rm: RankMesh, w_local: np.ndarray, lnu: np.ndarray,
                      k2: float, k4: float,
                      out: np.ndarray | None = None) -> np.ndarray:
    """Pass-2 blended dissipation contributions, ``(n_local, 5)``."""
    lap, nu = lnu[:, :NVAR], lnu[:, NVAR]
    rho, u, v, wv, p = primitive_from_conserved(w_local)
    vel = np.stack([u, v, wv], axis=1)
    c = np.sqrt(1.4 * p / rho)
    e0, e1 = rm.edges[:, 0], rm.edges[:, 1]
    vel_avg = 0.5 * (vel[e0] + vel[e1])
    c_avg = 0.5 * (c[e0] + c[e1])
    lam = np.abs(np.einsum("ed,ed->e", vel_avg, rm.eta)) + c_avg * rm.eta_norm
    nu_edge = np.maximum(nu[e0], nu[e1])
    eps2 = k2 * nu_edge
    eps4 = np.maximum(0.0, k4 - eps2)
    d_edge = lam[:, None] * (eps2[:, None] * (w_local[e1] - w_local[e0])
                             - eps4[:, None] * (lap[e1] - lap[e0]))
    return scatter_add_edges(rm.edges, d_edge, rm.n_local, out=out,
                             zero_out=True)


def spectral_sigma(rm: RankMesh, w_local: np.ndarray,
                   out: np.ndarray | None = None) -> np.ndarray:
    """Edge spectral-radius sums, ``(n_local, 1)`` (pre-scatter)."""
    rho, u, v, wv, p = primitive_from_conserved(w_local)
    vel = np.stack([u, v, wv], axis=1)
    c = np.sqrt(1.4 * p / rho)
    e0, e1 = rm.edges[:, 0], rm.edges[:, 1]
    vel_avg = 0.5 * (vel[e0] + vel[e1])
    c_avg = 0.5 * (c[e0] + c[e1])
    lam = np.abs(np.einsum("ed,ed->e", vel_avg, rm.eta)) + c_avg * rm.eta_norm
    sigma = out if out is not None else np.zeros((rm.n_local, 1))
    if out is not None:
        sigma[...] = 0.0
    scatter_add_unsigned(rm.edges, lam, rm.n_local, out=sigma[:, 0])
    return sigma


def timestep_from_sigma(rm: RankMesh, w_local: np.ndarray,
                        sigma_owned: np.ndarray, cfl: float) -> np.ndarray:
    """Local dt on owned vertices from completed spectral-radius sums."""
    s = sigma_owned.copy()
    rho, u, v, wv, p = primitive_from_conserved(w_local[:rm.n_owned])
    vel = np.stack([u, v, wv], axis=1)
    c = np.sqrt(1.4 * p / rho)
    for verts, normals, nn in ((rm.wall_vertices, rm.wall_normals, rm.wall_nn),
                               (rm.far_vertices, rm.far_normals, rm.far_nn)):
        if verts.size:
            un = np.abs(np.einsum("id,id->i", vel[verts], normals))
            # Boundary vertex lists are flatnonzero-derived (unique), so
            # the fancy += is exactly the historical np.add.at.
            s[verts] += un + c[verts] * nn
    return cfl * rm.dual_volumes / np.maximum(s, 1e-300)


def neighbor_sum_partial(rm: RankMesh, rbar_local: np.ndarray,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Per-edge neighbour sums for one Jacobi sweep, ``(n_local, 5)``."""
    ns = out if out is not None else np.zeros((rm.n_local, NVAR))
    if out is not None:
        ns[...] = 0.0
    scatter_neighbor_sum(rm.edges, rbar_local, rm.n_local, out=ns)
    return ns


def smoothing_update(rm: RankMesh, r_owned: np.ndarray,
                     ns_owned: np.ndarray, eps: float) -> np.ndarray:
    """One Jacobi update with boundary-frozen residuals."""
    out = (r_owned + eps * ns_owned) / (1.0 + eps * rm.degree[:, None])
    out[rm.smoothing_freeze] = r_owned[rm.smoothing_freeze]
    return out


def stage_update(rm: RankMesh, w0_local: np.ndarray, r_owned: np.ndarray,
                 dt_over_v: np.ndarray, alpha: float,
                 out: np.ndarray | None = None) -> np.ndarray:
    """``w^(k) = w^(0) - alpha * dt/V * r`` on owned vertices.

    Ghost rows of ``out`` are copied from ``w0_local`` (stale until the
    next gather), matching the copy semantics of the allocating path.
    """
    if out is None:
        out = w0_local.copy()
    else:
        np.copyto(out, w0_local)
    out[:rm.n_owned] = w0_local[:rm.n_owned] - alpha * dt_over_v * r_owned
    return out


# ----------------------------------------------------------------------
# Latency-hiding CSR kernel set (the overlap executor's compute side)
# ----------------------------------------------------------------------

class _PartOps:
    """CSR operators and scratch buffers for one edge subset of a rank."""

    __slots__ = ("edges", "eta", "eta_norm", "sc", "lam", "lam_valid",
                 "_scratch", "e0", "e1", "eta_half", "eta_norm_half")

    def __init__(self, edges: np.ndarray, eta: np.ndarray,
                 eta_norm: np.ndarray, n_local: int, tracer=None):
        self.edges = np.ascontiguousarray(edges)
        self.eta = np.ascontiguousarray(eta)
        self.eta_norm = np.ascontiguousarray(eta_norm)
        self.sc = EdgeScatter(self.edges, n_local, tracer=tracer)
        self.lam = np.empty(self.edges.shape[0])
        self.lam_valid = False
        self._scratch = {}
        # Contiguous endpoint columns + half geometry for the compiled
        # edge loops (tiny; harmless when the compiled path is off).
        self.e0 = np.ascontiguousarray(self.edges[:, 0], dtype=np.int64)
        self.e1 = np.ascontiguousarray(self.edges[:, 1], dtype=np.int64)
        self.eta_half = 0.5 * self.eta
        self.eta_norm_half = 0.5 * self.eta_norm

    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]

    def scratch(self, key: str, trailing: tuple) -> np.ndarray:
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty((self.n_edges,) + trailing)
            self._scratch[key] = buf
        return buf


class RankOps:
    """Latency-hiding kernel set for one rank: CSR split interior/boundary.

    Precomputes, once per rank, the interior/boundary split of the edge
    list as two :class:`~repro.scatter.EdgeScatter` CSR operators over
    the full local ``[owned | ghost]`` layout.  Interior results
    *overwrite* a shared output buffer while ghost messages are still in
    flight; boundary results *accumulate* on top once they arrive.
    Because the interior operator's accumulation runs to completion
    before the boundary operator continues each vertex's running sum,
    the composition is bit-identical to a single CSR operator over the
    edge list ordered ``[interior; boundary]`` (verified by the
    hypothesis suite).

    Per stage the class maintains a shared thermodynamic context —
    flux vectors, pressure, velocity, sound speed — split the same way:
    owned rows at :meth:`stage_begin` (available before any
    communication), ghost rows at :meth:`stage_complete` (after the
    gather lands).  The edge spectral radius ``lam``, previously
    recomputed identically by :func:`dissipation_edges` and
    :func:`spectral_sigma`, is built lazily once per stage per subset
    from that context and shared by both consumers.
    """

    PARTS = ("interior", "boundary")

    def __init__(self, rm: RankMesh, tracer=None, compiled: bool = False):
        self.rm = rm
        n_local = rm.n_local
        #: Compiled (njit) edge loops replace the CSR operators when the
        #: solver config selects a compiled executor.  Opt-in only: the
        #: compiled loops reassociate per-edge arithmetic, and the
        #: default CSR path carries bit-identity guarantees (overlap ==
        #: blocking == sequential) that must not silently change.
        self.compiled = bool(compiled)
        if self.compiled:
            from ..kernels.compiled import load_kernels, require_numba
            require_numba("the compiled RankOps edge loops")
            self._ck = load_kernels()
        else:
            self._ck = None
        self.interior = _PartOps(rm.edges[rm.interior_edges],
                                 rm.eta[rm.interior_edges],
                                 rm.eta_norm[rm.interior_edges],
                                 n_local, tracer)
        self.boundary = _PartOps(rm.edges[rm.boundary_edges],
                                 rm.eta[rm.boundary_edges],
                                 rm.eta_norm[rm.boundary_edges],
                                 n_local, tracer)
        # Stage-local thermo context over local rows [owned | ghost].
        #: flux tensors (every stage)
        self.f = np.zeros((n_local, NVAR, 3))
        #: ``pressure(w)`` — the partials' p (dissipation stages only)
        self.p = np.zeros(n_local)
        #: velocity + sound speed from ``primitive_from_conserved`` —
        #: the spectral radius' thermo (dissipation stages only)
        self.vel = np.zeros((n_local, 3))
        self.c = np.zeros(n_local)
        self._smooth_denom = {}

    def part(self, which: str) -> _PartOps:
        return self.interior if which == "interior" else self.boundary

    # -- per-stage thermo context --------------------------------------
    def _refresh_rows(self, w_local: np.ndarray, rows: slice,
                      need_diss: bool) -> None:
        wr = w_local[rows]
        if wr.shape[0] == 0:
            return
        self.f[rows] = flux_vectors(wr)
        if need_diss:
            rho, u, v, wv, p = primitive_from_conserved(wr)
            self.vel[rows, 0] = u
            self.vel[rows, 1] = v
            self.vel[rows, 2] = wv
            self.c[rows] = np.sqrt(1.4 * p / rho)
            self.p[rows] = pressure(wr)

    def stage_begin(self, w_local: np.ndarray, need_diss: bool) -> None:
        """Refresh owned thermo rows; ghost messages may still be in flight."""
        self._refresh_rows(w_local, slice(0, self.rm.n_owned), need_diss)
        self.interior.lam_valid = False
        self.boundary.lam_valid = False

    def stage_complete(self, w_local: np.ndarray, need_diss: bool) -> None:
        """Refresh ghost thermo rows once the stage's w-gather has landed."""
        self._refresh_rows(w_local, slice(self.rm.n_owned, self.rm.n_local),
                           need_diss)
        self.boundary.lam_valid = False

    def _lam(self, which: str) -> np.ndarray:
        """Edge spectral radius of one subset (cached per stage)."""
        po = self.part(which)
        if not po.lam_valid:
            if self.compiled:
                self._ck.edge_lam_ser(po.e0, po.e1, po.eta_half,
                                      po.eta_norm_half, self.vel, self.c,
                                      po.lam)
            else:
                e0, e1 = po.edges[:, 0], po.edges[:, 1]
                vel_avg = 0.5 * (self.vel[e0] + self.vel[e1])
                c_avg = 0.5 * (self.c[e0] + self.c[e1])
                np.abs(np.einsum("ed,ed->e", vel_avg, po.eta), out=po.lam)
                po.lam += c_avg * po.eta_norm
            po.lam_valid = True
        return po.lam

    # -- edge kernels ---------------------------------------------------
    def convective(self, which: str, out: np.ndarray,
                   accumulate: bool) -> np.ndarray:
        """Convective edge contributions of one subset into ``out``."""
        po = self.part(which)
        if self.compiled:
            self._ck.rank_convective(po.e0, po.e1, self.f, po.eta, out,
                                     not accumulate)
            return out
        favg = po.scratch("favg", (NVAR, 3))
        np.add(self.f[po.edges[:, 0]], self.f[po.edges[:, 1]], out=favg)
        phi = po.scratch("phi", (NVAR,))
        np.einsum("ekd,ed->ek", favg, po.eta, out=phi)
        phi *= 0.5
        return po.sc.signed(phi, out=out, accumulate=accumulate)

    def sigma(self, which: str, out: np.ndarray,
              accumulate: bool) -> np.ndarray:
        """Spectral-radius sums of one subset, ``(n_local,)``."""
        po = self.part(which)
        if self.compiled:
            self._ck.rank_sigma(po.e0, po.e1, self._lam(which), out,
                                not accumulate)
            return out
        return po.sc.unsigned(self._lam(which), out=out,
                              accumulate=accumulate)

    def partials6(self, which: str, w_local: np.ndarray, out6: np.ndarray,
                  accumulate: bool) -> np.ndarray:
        """Signed dissipation partials ``[L(5) | p-diff]``, ``(n_local, 6)``."""
        po = self.part(which)
        if self.compiled:
            self._ck.rank_partials6(po.e0, po.e1, w_local, self.p, out6,
                                    not accumulate)
            return out6
        e0, e1 = po.edges[:, 0], po.edges[:, 1]
        vals = po.scratch("partials6", (NVAR + 1,))
        np.subtract(w_local[e1], w_local[e0], out=vals[:, :NVAR])
        np.subtract(self.p[e1], self.p[e0], out=vals[:, NVAR])
        return po.sc.signed(vals, out=out6, accumulate=accumulate)

    def pressure_den(self, which: str, out: np.ndarray,
                     accumulate: bool) -> np.ndarray:
        """Unsigned pressure-sum partials (switch denominator), ``(n_local,)``."""
        po = self.part(which)
        if self.compiled:
            self._ck.rank_pressure_den(po.e0, po.e1, self.p, out,
                                       not accumulate)
            return out
        e0, e1 = po.edges[:, 0], po.edges[:, 1]
        psum = po.scratch("psum", ())
        np.add(self.p[e0], self.p[e1], out=psum)
        return po.sc.unsigned(psum, out=out, accumulate=accumulate)

    def finalize_lnu(self, lap6: np.ndarray, den: np.ndarray,
                     switch_floor: float, out: np.ndarray) -> np.ndarray:
        """Complete partials -> ``[L(5) | nu]`` on owned rows of ``out``."""
        no = self.rm.n_owned
        out[:no, :NVAR] = lap6[:no, :NVAR]
        out[:no, NVAR] = (np.abs(lap6[:no, NVAR])
                          / np.maximum(den[:no], switch_floor))
        return out

    def dissipation(self, which: str, w_local: np.ndarray, lnu: np.ndarray,
                    k2: float, k4: float, out: np.ndarray,
                    accumulate: bool) -> np.ndarray:
        """Blended dissipation contributions of one subset, ``(n_local, 5)``."""
        po = self.part(which)
        if self.compiled:
            self._ck.rank_dissipation(po.e0, po.e1, w_local, lnu,
                                      self._lam(which), k2, k4, out,
                                      not accumulate)
            return out
        e0, e1 = po.edges[:, 0], po.edges[:, 1]
        lap, nu = lnu[:, :NVAR], lnu[:, NVAR]
        lam = self._lam(which)
        nu_edge = np.maximum(nu[e0], nu[e1])
        eps2 = k2 * nu_edge
        eps4 = np.maximum(0.0, k4 - eps2)
        d_edge = po.scratch("d_edge", (NVAR,))
        d_edge[...] = lam[:, None] * (
            eps2[:, None] * (w_local[e1] - w_local[e0])
            - eps4[:, None] * (lap[e1] - lap[e0]))
        return po.sc.signed(d_edge, out=out, accumulate=accumulate)

    def neighbor_sum(self, which: str, rbar_local: np.ndarray,
                     out: np.ndarray, accumulate: bool) -> np.ndarray:
        """Jacobi neighbour sums of one subset, ``(n_local, 5)``."""
        po = self.part(which)
        if self.compiled:
            self._ck.rank_neighbor_sum(po.e0, po.e1, rbar_local, out,
                                       not accumulate)
            return out
        return po.sc.neighbor_sum(rbar_local, out=out,
                                  accumulate=accumulate)

    # -- vertex kernels -------------------------------------------------
    def smoothing_update(self, r_owned: np.ndarray, ns_owned: np.ndarray,
                         eps: float) -> np.ndarray:
        """One Jacobi update, with the denominator cached per epsilon."""
        rm = self.rm
        denom = self._smooth_denom.get(eps)
        if denom is None:
            denom = 1.0 + eps * rm.degree[:, None]
            self._smooth_denom[eps] = denom
        out = (r_owned + eps * ns_owned) / denom
        out[rm.smoothing_freeze] = r_owned[rm.smoothing_freeze]
        return out


def rank_ops(rm: RankMesh, tracer=None, compiled: bool = False) -> RankOps:
    """The rank's cached :class:`RankOps` (rebuilt if ``compiled`` flips)."""
    ops = getattr(rm, "_ops", None)
    if ops is None or ops.compiled != bool(compiled):
        ops = RankOps(rm, tracer=tracer, compiled=compiled)
        rm._ops = ops
    return ops
