"""Per-rank solver data: the distributed mirror of the edge structure.

"After the input data has been partitioned, a data file is created for
each processor to read" (Section 4.1).  :func:`partition_solver_data`
plays the role of that preprocessing step: given the sequential edge
structure and a vertex partition it produces one :class:`RankMesh` per
rank holding

* the rank's edges in **local numbering** (owned vertices first, ghost
  slots appended), with their dual-face areas, split into **interior**
  edges (both endpoints owned — computable before any communication
  completes) and **boundary** edges (touching a ghost slot — computable
  only once the ghost gather has arrived), the split that the
  latency-hiding executor overlaps with communication;
* the gather schedule for its ghost vertices (built by the PARTI
  inspector from the edge endpoints — "this is inferred by the subset of
  all mesh edges which cross partition boundaries");
* owned-vertex geometry (dual volumes, boundary normals) and the complete
  vertex degrees needed by the residual smoother.

Each global edge is assigned to exactly one rank — the owner of its first
endpoint — so flux work is never duplicated and crossing-edge
contributions are returned to their owners with the scatter-add executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.edges import EdgeStructure
from ..parti.schedule import GatherSchedule, build_gather_schedule
from ..parti.translation import TranslationTable
from ..solver.bc import BoundaryData

__all__ = ["RankMesh", "DistributedMesh", "partition_solver_data"]


@dataclass
class RankMesh:
    """Everything one simulated processor knows about the mesh."""

    rank: int
    n_owned: int
    n_ghost: int
    #: (ne_r, 2) edges in local numbering [0, n_owned + n_ghost)
    edges: np.ndarray
    #: (ne_r, 3) dual-face areas of this rank's edges
    eta: np.ndarray
    #: (n_owned,) control volumes of owned vertices
    dual_volumes: np.ndarray
    #: complete edge degree of owned vertices (for Jacobi smoothing)
    degree: np.ndarray
    #: owned vertices excluded from residual averaging (boundary vertices)
    smoothing_freeze: np.ndarray
    #: wall boundary: local owned ids + lumped normals
    wall_vertices: np.ndarray
    wall_normals: np.ndarray
    #: farfield boundary: local owned ids, lumped normals, unit normals
    far_vertices: np.ndarray
    far_normals: np.ndarray
    far_unit: np.ndarray
    #: (ne_r,) dual-face area magnitudes ``|eta|`` — static geometry,
    #: precomputed here instead of per call in the spectral-radius and
    #: dissipation edge kernels.
    eta_norm: np.ndarray = None
    #: lumped-normal magnitudes of the boundary vertices (time step).
    wall_nn: np.ndarray = None
    far_nn: np.ndarray = None
    #: edge ids with both endpoints owned (< n_owned): computable while
    #: ghost messages are still in flight.
    interior_edges: np.ndarray = None
    #: edge ids touching at least one ghost slot: completed on arrival.
    boundary_edges: np.ndarray = None

    def __post_init__(self):
        if self.eta_norm is None:
            self.eta_norm = np.linalg.norm(self.eta, axis=1)
        if self.wall_nn is None:
            self.wall_nn = (np.linalg.norm(self.wall_normals, axis=1)
                            if self.wall_vertices.size else np.zeros(0))
        if self.far_nn is None:
            self.far_nn = (np.linalg.norm(self.far_normals, axis=1)
                           if self.far_vertices.size else np.zeros(0))
        if self.interior_edges is None:
            interior = np.all(self.edges < self.n_owned, axis=1)
            self.interior_edges = np.flatnonzero(interior)
            self.boundary_edges = np.flatnonzero(~interior)

    @property
    def n_local(self) -> int:
        return self.n_owned + self.n_ghost

    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]


@dataclass
class DistributedMesh:
    """The full distributed mesh: per-rank data plus the shared schedule."""

    table: TranslationTable
    ranks: list
    schedule: GatherSchedule       # vertex-ghost gather pattern

    @property
    def n_ranks(self) -> int:
        return self.table.n_parts

    def local_to_global(self, rank: int) -> np.ndarray:
        """Global vertex ids of rank's local slots [owned | ghost]."""
        return np.concatenate([self.table.owned_globals[rank],
                               self.schedule.ghost_globals[rank]])


def partition_solver_data(struct: EdgeStructure, bdata: BoundaryData,
                          assignment: np.ndarray) -> DistributedMesh:
    """Build all per-rank data for a vertex partition (the inspector pass)."""
    table = TranslationTable(assignment)
    n_ranks = table.n_parts
    edges, eta = struct.edges, struct.eta

    # Edge ownership: the owner of the first endpoint computes the edge.
    edge_owner = table.owner_of(edges[:, 0])

    # Inspector: per-rank off-processor vertex references = endpoints of
    # owned edges that live elsewhere.
    required = []
    rank_edge_ids = []
    for r in range(n_ranks):
        eids = np.flatnonzero(edge_owner == r)
        rank_edge_ids.append(eids)
        required.append(edges[eids].ravel())
    schedule = build_gather_schedule(required, table, name="vertex-ghosts")

    # Complete vertex degree (smoothing denominator), computed globally
    # once — equivalent to a one-time scatter-add at preprocessing time.
    degree_global = np.zeros(table.n_global, dtype=np.int64)
    np.add.at(degree_global, edges.ravel(), 1)

    ranks = []
    for r in range(n_ranks):
        owned = table.owned_globals[r]
        ghosts = schedule.ghost_globals[r]
        n_owned, n_ghost = owned.size, ghosts.size
        # Global -> local mapping for this rank.
        g2l = np.full(table.n_global, -1, dtype=np.int64)
        g2l[owned] = np.arange(n_owned)
        g2l[ghosts] = n_owned + np.arange(n_ghost)

        eids = rank_edge_ids[r]
        local_edges = g2l[edges[eids]]
        if np.any(local_edges < 0):
            raise AssertionError("inspector missed an off-processor reference")

        owned_mask_wall = np.isin(bdata.wall_vertices, owned)
        owned_mask_far = np.isin(bdata.far_vertices, owned)
        wall_v = g2l[bdata.wall_vertices[owned_mask_wall]]
        far_v = g2l[bdata.far_vertices[owned_mask_far]]
        freeze = np.zeros(n_owned, dtype=bool)
        freeze[wall_v] = True
        freeze[far_v] = True

        ranks.append(RankMesh(
            rank=r,
            n_owned=n_owned,
            n_ghost=n_ghost,
            edges=local_edges,
            eta=eta[eids],
            dual_volumes=struct.dual_volumes[owned],
            degree=degree_global[owned],
            smoothing_freeze=freeze,
            wall_vertices=wall_v,
            wall_normals=bdata.wall_normals[owned_mask_wall],
            far_vertices=far_v,
            far_normals=bdata.far_normals[owned_mask_far],
            far_unit=bdata.far_unit[owned_mask_far],
        ))
    return DistributedMesh(table=table, ranks=ranks, schedule=schedule)
