"""Balance-aware edge colouring: trade colour count for vector length.

The greedy colouring produces groups whose sizes decay sharply (the last
colours hold only the leftover conflicted edges).  On a vector machine the
small trailing colours run at poor vector efficiency and each colour costs
a fork/join, so there are two levers:

* **fewer colours** — fewer synchronisations, but the greedy tail is
  unavoidable;
* **balanced colours** — equal group sizes maximise the *minimum* vector
  length at a possibly slightly higher colour count.

``color_edges_balanced`` assigns each edge to the *smallest* admissible
colour group rather than the lowest-numbered one, which equalises sizes
while preserving conflict-freedom.  The ablation benchmark feeds both
colourings to the C90 model and compares modelled rates — the "colour
count vs vector length" trade-off DESIGN.md calls out.
"""

from __future__ import annotations

import numpy as np

from .greedy import EdgeColoring

__all__ = ["color_edges_balanced"]


def color_edges_balanced(edges: np.ndarray, n_vertices: int,
                         max_colors: int | None = None) -> EdgeColoring:
    """Conflict-free colouring choosing the smallest admissible group.

    ``max_colors`` optionally caps the palette; when no admissible colour
    exists within the cap, a new colour is opened anyway (correctness
    first).  Sizes end up within a few percent of each other instead of
    the greedy colouring's steep tail.
    """
    ne = edges.shape[0]
    used = [0] * n_vertices          # per-vertex colour bitmask
    sizes: list[int] = []
    colors_list = [0] * ne
    cap = max_colors if max_colors is not None else 1 << 30
    for e, (i, j) in enumerate(edges.tolist()):
        mask = used[i] | used[j]
        best = -1
        best_size = None
        c = 0
        m = mask
        # Scan existing colours for the smallest admissible one.
        for c in range(len(sizes)):
            if not (m >> c) & 1:
                if best_size is None or sizes[c] < best_size:
                    best = c
                    best_size = sizes[c]
        if best < 0:
            if len(sizes) < cap:
                best = len(sizes)
                sizes.append(0)
            else:       # cap reached but no admissible colour: must open
                best = len(sizes)
                sizes.append(0)
        bit = 1 << best
        used[i] |= bit
        used[j] |= bit
        sizes[best] += 1
        colors_list[e] = best

    colors = np.asarray(colors_list, dtype=np.int32)
    n_colors = int(colors.max()) + 1 if ne else 0
    groups = [np.flatnonzero(colors == c) for c in range(n_colors)]
    groups = [g for g in groups if g.size]
    groups.sort(key=len, reverse=True)
    out = np.empty_like(colors)
    for new_c, g in enumerate(groups):
        out[g] = new_c
    return EdgeColoring(colors=out, groups=groups)
