"""Edge colouring and the coloured (vector/parallel) execution model."""

from .greedy import EdgeColoring, color_edges, split_into_subgroups, verify_coloring
from .vectorized import ColoredEdgeExecutor

__all__ = ["EdgeColoring", "color_edges", "split_into_subgroups",
           "verify_coloring", "ColoredEdgeExecutor"]

from .balanced import color_edges_balanced

__all__ += ["color_edges_balanced"]
