"""Edge colouring for vector/parallel execution (Section 3.1).

On the Cray Y-MP C90 the edge loops "are split into groups or colors such
that within each group, no recurrences occur" — i.e. no two edges of one
colour touch the same vertex, so the scatter accumulation inside a colour
vectorises safely.  "The typical number of groups is not high, say 20 to
30" for tetrahedral meshes, which matches the maximum vertex degree plus a
small constant (greedy edge colouring uses at most ``2*maxdeg - 1``
colours; on meshes it stays close to ``maxdeg``).

The autotasking strategy then "further divide[s] the colorized groups into
subgroups that can be computed in parallel": each colour is cut into one
contiguous subgroup per CPU, and the subgroup length is the vector length
seen by each processor — the quantity the C90 performance model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EdgeColoring", "color_edges", "split_into_subgroups",
           "verify_coloring"]


@dataclass
class EdgeColoring:
    """Result of the greedy edge colouring.

    ``colors[e]`` is the colour of edge ``e``; ``groups`` lists the edge
    ids of each colour, largest first (processing big colours first keeps
    vector lengths long for the bulk of the work).
    """

    colors: np.ndarray
    groups: list

    @property
    def n_colors(self) -> int:
        return len(self.groups)

    def group_sizes(self) -> np.ndarray:
        return np.array([len(g) for g in self.groups])

    def vector_lengths(self, n_cpus: int) -> np.ndarray:
        """Per-colour vector length when split across ``n_cpus`` CPUs."""
        return np.ceil(self.group_sizes() / n_cpus).astype(int)


def color_edges(edges: np.ndarray, n_vertices: int) -> EdgeColoring:
    """Greedy conflict-free edge colouring.

    Processes edges in index order; each edge takes the smallest colour
    not already used by an edge incident on either endpoint.  Vertex
    colour sets are kept as bitmasks, so the inner loop is O(1) per edge
    in practice.  This mirrors the sequential preprocessing colouring the
    paper runs on one Y-MP processor.
    """
    ne = edges.shape[0]
    # Python-int bitmasks: arbitrary colour count, and plain-int bit ops are
    # much faster than NumPy scalar indexing in this inherently sequential loop.
    used = [0] * n_vertices
    colors_list = [0] * ne
    for e, (i, j) in enumerate(edges.tolist()):
        mask = used[i] | used[j]
        # Index of the lowest zero bit of the combined mask.
        c = (~mask & (mask + 1)).bit_length() - 1
        bit = 1 << c
        used[i] |= bit
        used[j] |= bit
        colors_list[e] = c
    colors = np.asarray(colors_list, dtype=np.int32)

    n_colors = int(colors.max()) + 1 if ne else 0
    groups = [np.flatnonzero(colors == c) for c in range(n_colors)]
    groups = [g for g in groups if g.size]
    groups.sort(key=len, reverse=True)
    # Re-number colours to match the sorted group order.
    colors_sorted = np.empty_like(colors)
    for new_c, g in enumerate(groups):
        colors_sorted[g] = new_c
    return EdgeColoring(colors=colors_sorted, groups=groups)


def verify_coloring(edges: np.ndarray, coloring: EdgeColoring,
                    n_vertices: int) -> bool:
    """True iff no two same-coloured edges share a vertex (the recurrence-
    freedom invariant that makes vectorisation safe)."""
    for group in coloring.groups:
        touched = np.concatenate([edges[group, 0], edges[group, 1]])
        if np.unique(touched).size != touched.size:
            return False
    return True


def split_into_subgroups(group: np.ndarray, n_cpus: int) -> list:
    """Contiguous split of one colour across CPUs (the autotasking cut).

    Returns ``n_cpus`` arrays (some possibly empty for tiny colours);
    lengths differ by at most one, which is the load balance the
    autotasking compiler achieves on a uniform loop.
    """
    return np.array_split(group, n_cpus)
