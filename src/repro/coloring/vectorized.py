"""Coloured edge-loop executor: the shared-memory execution model.

Inside one colour no two edges touch the same vertex, so the scatter
accumulation can use *direct indexed stores* (``out[idx] += val``) without
read-modify-write hazards — which is precisely why the Cray autotasking
compiler can vectorise each colour (Section 3.1).  Running the loop colour
by colour here both demonstrates that invariant (it would silently drop
updates if the colouring were wrong, which the tests check against the
reference scatter) and exposes the per-colour structure the C90
performance model prices.
"""

from __future__ import annotations

import numpy as np

from .greedy import EdgeColoring, split_into_subgroups

__all__ = ["ColoredEdgeExecutor"]


class ColoredEdgeExecutor:
    """Executes signed edge accumulations colour by colour.

    Equivalent to :meth:`repro.scatter.EdgeScatter.signed` up to summation
    order, but structured the way the vector machine executes it: an outer
    sequential loop over colours, an inner conflict-free vector loop.
    """

    def __init__(self, edges: np.ndarray, coloring: EdgeColoring, n_vertices: int):
        self.edges = edges
        self.coloring = coloring
        self.n_vertices = n_vertices

    def signed(self, edge_values: np.ndarray) -> np.ndarray:
        """``sum_e (+v at i, -v at j)``, executed one colour at a time."""
        out = np.zeros((self.n_vertices,) + edge_values.shape[1:],
                       dtype=edge_values.dtype)
        for group in self.coloring.groups:
            # Conflict-freedom makes these plain indexed updates exact.
            out[self.edges[group, 0]] += edge_values[group]
            out[self.edges[group, 1]] -= edge_values[group]
        return out

    def parallel_schedule(self, n_cpus: int) -> list:
        """Subgroup decomposition: list of (colour, cpu, edge-ids) tasks.

        This is the unit-of-work structure the autotasking compiler builds:
        within a colour the CPUs run concurrently; colours are separated by
        a synchronisation.  The C90 model charges one slave-start overhead
        per colour and prices each subgroup by its vector length.
        """
        tasks = []
        for color, group in enumerate(self.coloring.groups):
            for cpu, sub in enumerate(split_into_subgroups(group, n_cpus)):
                if sub.size:
                    tasks.append((color, cpu, sub))
        return tasks
