"""Derived performance metrics over the raw telemetry streams.

The tracer records *what happened* (spans, counters, gauges); the paper's
analysis needs *derived* quantities — who talked to whom, how balanced the
ranks were, how much communication latency the overlap executor actually
hid, and what per-edge rates each executor achieved.  This module computes
those four artifacts from either telemetry source:

* the :class:`~repro.parti.simmpi.SimMachine` traffic log (sim backend —
  the per-pair matrices are always-on because the simulated machine *is*
  the measurement instrument), or
* the per-rank :class:`~repro.telemetry.TracePayload` stream of the mp
  backend (``observatory.sent.<dst>.*`` counters, per-rank span
  timelines), merged across all ranks.

Everything here runs *after* a run, on recorded data — the observatory
adds nothing to the hot path beyond the gated counter/gauge call sites it
consumes (see docs/observability.md, "Derived metrics").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..telemetry.export import aggregate, all_payloads

__all__ = ["CommMatrix", "LoadBalance", "OverlapStats",
           "comm_matrix_from_log", "comm_matrix_from_payloads",
           "load_balance_from_rank_flops", "load_balance_from_payloads",
           "overlap_from_spans", "achieved_rates",
           "HIDDEN_SPANS", "EXPOSED_SPANS", "RATE_GAUGE_PREFIX"]

#: Spans whose inclusive time is compute executed while messages were in
#: flight (the overlap executor's interior windows).
HIDDEN_SPANS = ("dist.overlap.interior", "mp.overlap.interior")

#: Spans whose inclusive time is *exposed* communication wait: the
#: delivering finish halves of posted exchanges.  (``comm.complete`` is
#: nested inside ``parti.*.finish`` on the sim backend, so only the outer
#: names are listed — inclusive times would double-count otherwise.)
EXPOSED_SPANS = ("parti.gather.finish", "parti.scatter_add.finish",
                 "mp.gather.finish", "mp.scatter_add.finish")

#: Per-executor throughput gauges emitted by the fused pipeline.
RATE_GAUGE_PREFIX = "observatory.rate."


@dataclass
class CommMatrix:
    """Per-neighbour-pair message/byte totals of one run.

    ``msgs[src][dst]`` / ``bytes[src][dst]`` count what rank ``src`` sent
    to rank ``dst`` over the whole run; divide by ``n_cycles`` for the
    per-cycle view the paper's neighbour-traffic analysis uses.
    """

    n_ranks: int
    n_cycles: int
    msgs: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    bytes: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    #: Payload bytes that moved through shared-memory slabs instead of
    #: the pipes (mp backend with ``transport="shm"``; all-zero
    #: otherwise).  In shm mode ``bytes`` collapses to the per-message
    #: control-descriptor size — the pickled-byte collapse the transport
    #: exists to produce — while the ghost volume shows up here.
    shm_bytes: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    def __post_init__(self):
        if self.msgs.size == 0:
            self.msgs = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)
        if self.bytes.size == 0:
            self.bytes = np.zeros((self.n_ranks, self.n_ranks),
                                  dtype=np.int64)
        if self.shm_bytes.size == 0:
            self.shm_bytes = np.zeros((self.n_ranks, self.n_ranks),
                                      dtype=np.int64)

    @property
    def nonempty(self) -> bool:
        return bool(self.msgs.sum() > 0)

    @property
    def total_msgs(self) -> int:
        return int(self.msgs.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.bytes.sum())

    @property
    def total_shm_bytes(self) -> int:
        return int(self.shm_bytes.sum())

    @property
    def msgs_per_cycle(self) -> np.ndarray:
        return self.msgs / max(self.n_cycles, 1)

    @property
    def bytes_per_cycle(self) -> np.ndarray:
        return self.bytes / max(self.n_cycles, 1)

    @property
    def n_neighbor_pairs(self) -> int:
        """Directed (src, dst) pairs that exchanged at least one message."""
        return int(np.count_nonzero(self.msgs))

    def to_dict(self) -> dict:
        d = {"n_ranks": self.n_ranks, "n_cycles": self.n_cycles,
             "msgs": self.msgs.tolist(), "bytes": self.bytes.tolist()}
        if self.total_shm_bytes:
            d["shm_bytes"] = self.shm_bytes.tolist()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CommMatrix":
        # shm_bytes is optional so reports recorded before the shm
        # transport existed still load.
        shm = (np.asarray(d["shm_bytes"], dtype=np.int64)
               if "shm_bytes" in d else np.zeros((0, 0)))
        return cls(n_ranks=int(d["n_ranks"]), n_cycles=int(d["n_cycles"]),
                   msgs=np.asarray(d["msgs"], dtype=np.int64),
                   bytes=np.asarray(d["bytes"], dtype=np.int64),
                   shm_bytes=shm)


def comm_matrix_from_log(log, n_cycles: int) -> CommMatrix:
    """Sum the per-pair matrices of a SimMachine traffic log's phases."""
    cm = CommMatrix(n_ranks=log.n_ranks, n_cycles=n_cycles)
    for traffic in log.phases.values():
        cm.msgs += traffic.pair_msgs
        cm.bytes += traffic.pair_bytes
    return cm


def comm_matrix_from_payloads(source, n_ranks: int,
                              n_cycles: int) -> CommMatrix:
    """Reassemble the (src, dst) matrix from mp rank payload counters.

    Each rank worker counts ``observatory.sent.<dst>.msgs/bytes`` into
    its own tracer (plus ``observatory.shm.<dst>.bytes`` for slab
    traffic under ``transport="shm"``); the payload's ``pid`` is
    ``rank + 1`` (the driver's own timeline is pid 0), which identifies
    the source row.
    """
    cm = CommMatrix(n_ranks=n_ranks, n_cycles=n_cycles)
    for p in all_payloads(source):
        src = p.pid - 1
        if not (0 <= src < n_ranks):
            continue
        for name, value in p.counters.items():
            if not name.startswith("observatory."):
                continue
            parts = name.split(".")
            if len(parts) != 4 or parts[1] not in ("sent", "shm"):
                continue
            _, channel, dst_str, metric = parts
            dst = int(dst_str)
            if not (0 <= dst < n_ranks):
                continue
            if channel == "shm":
                if metric == "bytes":
                    cm.shm_bytes[src, dst] += int(value)
            elif metric == "msgs":
                cm.msgs[src, dst] += int(value)
            elif metric == "bytes":
                cm.bytes[src, dst] += int(value)
    return cm


@dataclass
class LoadBalance:
    """Per-rank work distribution and the paper's imbalance factor.

    ``imbalance = max(per_rank) / mean(per_rank)`` — 1.0 is perfect; the
    bulk-synchronous step runs at the pace of the slowest rank, so the
    factor is a direct lower bound on lost parallel efficiency.  The
    basis names what was measured: ``"flops"`` (sim backend — the
    single-process simulation has no per-rank wall clocks) or
    ``"busy_s"`` (mp backend — per-rank cycle time from the worker
    timelines).
    """

    basis: str
    per_rank: list = field(default_factory=list)

    @property
    def imbalance(self) -> float:
        values = np.asarray(self.per_rank, dtype=np.float64)
        if values.size == 0 or values.mean() <= 0.0:
            return 1.0
        return float(values.max() / values.mean())

    def to_dict(self) -> dict:
        return {"basis": self.basis,
                "per_rank": [float(v) for v in self.per_rank],
                "imbalance": self.imbalance}

    @classmethod
    def from_dict(cls, d: dict) -> "LoadBalance":
        return cls(basis=d["basis"], per_rank=list(d["per_rank"]))


def load_balance_from_rank_flops(rank_flops: dict) -> LoadBalance:
    """Per-rank flop totals from a sim driver's ``rank_flops`` phases."""
    total = None
    for arr in rank_flops.values():
        total = arr.copy() if total is None else total + arr
    per_rank = [] if total is None else [float(v) for v in total]
    return LoadBalance(basis="flops", per_rank=per_rank)


def load_balance_from_payloads(source, n_ranks: int,
                               busy_span: str = "solver.cycle") -> LoadBalance:
    """Per-rank busy seconds from the mp workers' cycle spans."""
    per_rank = [0.0] * n_ranks
    for p in all_payloads(source):
        rank = p.pid - 1
        if not (0 <= rank < n_ranks) or p.records.size == 0:
            continue
        names = p.names
        if busy_span not in names:
            continue
        name_id = names.index(busy_span)
        recs = p.records[p.records["name"] == name_id]
        per_rank[rank] += float((recs["t1"] - recs["t0"]).sum())
    return LoadBalance(basis="busy_s", per_rank=per_rank)


@dataclass
class OverlapStats:
    """How much communication latency the overlap executor hid.

    ``hidden_s`` is compute executed inside the message-flight windows
    (the ``*.overlap.interior`` spans); ``exposed_s`` is time spent
    waiting in the delivering finish halves.  The efficiency is the
    hidden fraction of the total communication window — 1.0 means every
    exchange completed behind interior compute, 0.0 means fully
    synchronous (the blocking executor's regime).
    """

    hidden_s: float = 0.0
    exposed_s: float = 0.0

    @property
    def efficiency(self) -> float:
        window = self.hidden_s + self.exposed_s
        if window <= 0.0:
            return 0.0
        return self.hidden_s / window

    def to_dict(self) -> dict:
        return {"hidden_s": self.hidden_s, "exposed_s": self.exposed_s,
                "efficiency": self.efficiency}

    @classmethod
    def from_dict(cls, d: dict) -> "OverlapStats":
        return cls(hidden_s=float(d["hidden_s"]),
                   exposed_s=float(d["exposed_s"]))


def overlap_from_spans(source) -> OverlapStats:
    """Hidden/exposed communication time from merged span aggregates."""
    stats = aggregate(source)
    hidden = sum(stats[n]["total_s"] for n in HIDDEN_SPANS if n in stats)
    exposed = sum(stats[n]["total_s"] for n in EXPOSED_SPANS if n in stats)
    return OverlapStats(hidden_s=float(hidden), exposed_s=float(exposed))


def achieved_rates(source) -> dict:
    """Per-executor-kind achieved rates from ``observatory.rate.*`` gauges.

    Returns ``{kind: {metric: mean_value}}`` merged across payloads
    (observation-count-weighted means), e.g.
    ``{"fused": {"edges_per_s": 3.1e6, "vertices_per_s": 4.8e5}}``.
    """
    sums: dict[str, dict[str, list[float]]] = {}
    for p in all_payloads(source):
        for name, stats in p.gauges.items():
            if not name.startswith(RATE_GAUGE_PREFIX):
                continue
            kind, metric = name[len(RATE_GAUGE_PREFIX):].rsplit(".", 1)
            acc = sums.setdefault(kind, {}).setdefault(metric, [0.0, 0.0])
            count = float(stats.get("count", 1.0))
            acc[0] += float(stats.get("mean", 0.0)) * count
            acc[1] += count
    return {kind: {metric: (total / count if count else 0.0)
                   for metric, (total, count) in metrics.items()}
            for kind, metrics in sums.items()}
