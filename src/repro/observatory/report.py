"""Run reports: one serializable record of a distributed run's analysis.

A :class:`RunReport` packages the observatory's derived metrics — comm
matrix, load balance, overlap efficiency, achieved rates, and the
predicted-vs-measured model table — together with enough run metadata to
compare reports across commits (the regression tracker in
``benchmarks/track.py`` ingests the JSON form).  Two builders cover the
two distributed backends:

* :func:`sim_run_report` — from a :class:`DistributedEulerSolver` run on
  the simulated machine (per-pair traffic from the machine log, load
  balance from the flop instrumentation);
* :func:`mp_run_report` — from a ``run_distributed_mp`` run plus its
  *structural twin* (a sim run of the same partition, supplying the
  traffic/flop inputs of the model table, which are partition properties
  and identical across backends); per-rank payloads are merged for the
  comm matrix, busy times and overlap spans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import (CommMatrix, LoadBalance, OverlapStats, achieved_rates,
                      comm_matrix_from_log, comm_matrix_from_payloads,
                      load_balance_from_payloads, load_balance_from_rank_flops,
                      overlap_from_spans)
from .modelcheck import ModelRow, measured_comm_seconds, predicted_vs_measured

__all__ = ["RunReport", "sim_run_report", "mp_run_report",
           "render_markdown"]

#: Bump when the JSON schema changes incompatibly.
REPORT_VERSION = 1


@dataclass
class RunReport:
    """Derived-metrics record of one distributed run."""

    case: str
    backend: str                     # "sim" | "mp"
    dist_mode: str
    n_ranks: int
    n_cycles: int
    n_vertices: int
    n_edges: int
    wall_s: float
    comm_matrix: CommMatrix
    load_balance: LoadBalance
    overlap: OverlapStats
    rates: dict = field(default_factory=dict)
    model_rows: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    version: int = REPORT_VERSION

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "case": self.case,
            "backend": self.backend,
            "dist_mode": self.dist_mode,
            "n_ranks": self.n_ranks,
            "n_cycles": self.n_cycles,
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "wall_s": self.wall_s,
            "comm_matrix": self.comm_matrix.to_dict(),
            "load_balance": self.load_balance.to_dict(),
            "overlap": self.overlap.to_dict(),
            "rates": self.rates,
            "model_rows": [r.to_dict() for r in self.model_rows],
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunReport":
        return cls(
            case=d["case"], backend=d["backend"], dist_mode=d["dist_mode"],
            n_ranks=int(d["n_ranks"]), n_cycles=int(d["n_cycles"]),
            n_vertices=int(d["n_vertices"]), n_edges=int(d["n_edges"]),
            wall_s=float(d["wall_s"]),
            comm_matrix=CommMatrix.from_dict(d["comm_matrix"]),
            load_balance=LoadBalance.from_dict(d["load_balance"]),
            overlap=OverlapStats.from_dict(d["overlap"]),
            rates=dict(d.get("rates", {})),
            model_rows=[ModelRow.from_dict(r)
                        for r in d.get("model_rows", [])],
            counters=dict(d.get("counters", {})),
            version=int(d.get("version", REPORT_VERSION)),
        )

    def to_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def from_json(cls, path) -> "RunReport":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def _ghost_ratio(dmesh) -> float:
    """Mean ghosts per rank over mean owned per rank (model input)."""
    ghosts = sum(rm.n_local - rm.n_owned for rm in dmesh.ranks)
    owned = sum(rm.n_owned for rm in dmesh.ranks)
    return float(ghosts / max(owned, 1))


def _derived_rate(name: str, n_edges: int, n_vertices: int, n_cycles: int,
                  wall_s: float) -> dict:
    """Whole-run achieved rate of a distributed executor (edge-cycles/s)."""
    if wall_s <= 0.0:
        return {}
    return {name: {"edges_per_s": n_edges * n_cycles / wall_s,
                   "vertices_per_s": n_vertices * n_cycles / wall_s}}


def sim_run_report(case: str, driver, tracer, n_cycles: int,
                   wall_s: float) -> RunReport:
    """Build a report from a finished sim-backend run.

    ``driver`` is the :class:`DistributedEulerSolver` after ``run()``
    with ``tracer`` installed; the machine log and ``rank_flops`` hold
    the whole-run accumulations.
    """
    struct = driver.struct
    rates = achieved_rates(tracer)
    rates.update(_derived_rate(f"dist-{driver.config.dist_mode}",
                               struct.n_edges, struct.n_vertices,
                               n_cycles, wall_s))
    return RunReport(
        case=case, backend="sim", dist_mode=driver.config.dist_mode,
        n_ranks=driver.n_ranks, n_cycles=n_cycles,
        n_vertices=struct.n_vertices, n_edges=struct.n_edges,
        wall_s=wall_s,
        comm_matrix=comm_matrix_from_log(driver.machine.log, n_cycles),
        load_balance=load_balance_from_rank_flops(driver.rank_flops),
        overlap=overlap_from_spans(tracer),
        rates=rates,
        model_rows=predicted_vs_measured(
            driver.machine.log, driver.rank_flops, driver.n_ranks,
            struct.n_vertices, struct.n_edges, struct.edges,
            _ghost_ratio(driver.dmesh), n_cycles, wall_s,
            measured_comm_seconds(tracer)),
        counters=tracer.counters(),
    )


def mp_run_report(case: str, sim_twin, tracer, n_cycles: int,
                  wall_s: float) -> RunReport:
    """Build a report from a finished mp-backend run.

    ``tracer`` is the driver tracer passed to ``run_distributed_mp``,
    now holding one remote payload per rank; ``sim_twin`` is a
    :class:`DistributedEulerSolver` of the *same partition* that has run
    the same number of cycles on the simulated machine, supplying the
    structural model inputs (traffic phases and flop counts do not
    depend on the backend).  The host-side measurements — wall time,
    busy times, overlap spans, the comm matrix — all come from the mp
    rank payloads, merged.
    """
    struct = sim_twin.struct
    n_ranks = sim_twin.n_ranks
    payloads = tracer.remote_payloads
    rates = achieved_rates(tracer)
    rates.update(_derived_rate(f"mp-{sim_twin.config.dist_mode}",
                               struct.n_edges, struct.n_vertices,
                               n_cycles, wall_s))
    merged_counters: dict = {}
    for p in payloads:
        for name, value in p.counters.items():
            merged_counters[name] = merged_counters.get(name, 0.0) + value
    return RunReport(
        case=case, backend="mp", dist_mode=sim_twin.config.dist_mode,
        n_ranks=n_ranks, n_cycles=n_cycles,
        n_vertices=struct.n_vertices, n_edges=struct.n_edges,
        wall_s=wall_s,
        comm_matrix=comm_matrix_from_payloads(payloads, n_ranks, n_cycles),
        load_balance=load_balance_from_payloads(payloads, n_ranks),
        overlap=overlap_from_spans(payloads),
        rates=rates,
        model_rows=predicted_vs_measured(
            sim_twin.machine.log, sim_twin.rank_flops, n_ranks,
            struct.n_vertices, struct.n_edges, struct.edges,
            _ghost_ratio(sim_twin.dmesh), n_cycles, wall_s,
            measured_comm_seconds(payloads),
            timeline_s=n_ranks * wall_s),
        counters=merged_counters,
    )


# ---------------------------------------------------------------------------
# Markdown renderer
# ---------------------------------------------------------------------------

def _fmt(value: float) -> str:
    if value == 0.0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.3g}"
    return f"{value:,.3f}".rstrip("0").rstrip(".")


def render_markdown(report: RunReport) -> str:
    """The human-readable form of a run report (GitHub-flavored tables)."""
    r = report
    lines = [
        f"# Run report: {r.case} ({r.backend} backend, "
        f"{r.n_ranks} ranks)",
        "",
        f"- mesh: {r.n_vertices:,} vertices, {r.n_edges:,} edges",
        f"- executor: `dist_mode={r.dist_mode}`, {r.n_cycles} cycles "
        f"in {r.wall_s:.3f} s wall",
        f"- load imbalance (max/mean {r.load_balance.basis}): "
        f"**{r.load_balance.imbalance:.3f}**",
        f"- overlap efficiency: **{r.overlap.efficiency:.3f}** "
        f"(hidden {r.overlap.hidden_s * 1e3:.1f} ms, exposed "
        f"{r.overlap.exposed_s * 1e3:.1f} ms)",
        "",
        "## Communication matrix (messages per cycle, src rank -> dst rank)",
        "",
    ]
    msgs = r.comm_matrix.msgs_per_cycle
    byts = r.comm_matrix.bytes_per_cycle
    header = "| src\\dst | " + " | ".join(str(d) for d in
                                          range(r.n_ranks)) + " |"
    lines.append(header)
    lines.append("|---" * (r.n_ranks + 1) + "|")
    for src in range(r.n_ranks):
        cells = " | ".join(_fmt(float(msgs[src, dst]))
                           for dst in range(r.n_ranks))
        lines.append(f"| {src} | {cells} |")
    lines += [
        "",
        f"Totals: {r.comm_matrix.total_msgs:,} messages, "
        f"{r.comm_matrix.total_bytes:,} bytes over "
        f"{r.comm_matrix.n_neighbor_pairs} neighbour pairs; "
        f"{_fmt(float(byts.sum()))} bytes/cycle.",
    ]
    if r.comm_matrix.total_shm_bytes:
        shm_per_cycle = (r.comm_matrix.total_shm_bytes
                         / max(r.comm_matrix.n_cycles, 1))
        lines.append(
            f"Shared-memory slabs carried "
            f"{r.comm_matrix.total_shm_bytes:,} payload bytes "
            f"({_fmt(shm_per_cycle)} bytes/cycle); the pipe bytes above "
            f"are control descriptors only (`transport=shm`).")
    lines += [
        "",
        "## Predicted vs measured (Touchstone Delta model at our scale)",
        "",
        "| metric | predicted | measured | ratio | unit |",
        "|---|---|---|---|---|",
    ]
    for row in r.model_rows:
        ratio = "-" if row.ratio is None else f"{row.ratio:.3g}"
        lines.append(f"| {row.metric} | {_fmt(row.predicted)} | "
                     f"{_fmt(row.measured)} | {ratio} | {row.unit} |")
    lines += ["", "## Achieved rates", "",
              "| executor | edges/s | vertices/s |", "|---|---|---|"]
    for kind in sorted(r.rates):
        metrics = r.rates[kind]
        lines.append(f"| {kind} | "
                     f"{_fmt(metrics.get('edges_per_s', 0.0))} | "
                     f"{_fmt(metrics.get('vertices_per_s', 0.0))} |")
    lines += ["", "## Per-rank load", "",
              "| rank | " + r.load_balance.basis + " |", "|---|---|"]
    for rank, value in enumerate(r.load_balance.per_rank):
        lines.append(f"| {rank} | {_fmt(float(value))} |")
    lines.append("")
    return "\n".join(lines)
