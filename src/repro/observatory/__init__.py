"""Performance observatory: derived metrics and run reports.

The layer between raw telemetry (:mod:`repro.telemetry`) and analysis:
it consumes recorded spans, counters and traffic logs *after* a run and
derives the paper's performance-analysis artifacts — per-neighbour
communication matrices, load-imbalance factors, overlap efficiency,
achieved per-edge rates, and a predicted-vs-measured table closing the
loop against the machine models in :mod:`repro.perfmodel`.

Nothing here executes during a solve: the only hot-path footprint is the
gated counter/gauge call sites the observatory consumes (one
``tracer.enabled`` attribute check each when tracing is off — covered by
the ``--check-telemetry-overhead`` benchmark gate).

Entry points: ``python -m repro.harness report --report DIR`` produces a
:class:`RunReport` (JSON + markdown) for a box27 4-rank run on either
distributed backend; ``benchmarks/track.py`` ingests the JSON form into
the regression trajectory.  See docs/observability.md.
"""

from .metrics import (CommMatrix, LoadBalance, OverlapStats, achieved_rates,
                      comm_matrix_from_log, comm_matrix_from_payloads,
                      load_balance_from_payloads, load_balance_from_rank_flops,
                      overlap_from_spans)
from .modelcheck import ModelRow, measured_comm_seconds, predicted_vs_measured
from .report import RunReport, mp_run_report, render_markdown, sim_run_report

__all__ = ["CommMatrix", "LoadBalance", "OverlapStats", "ModelRow",
           "RunReport", "achieved_rates", "comm_matrix_from_log",
           "comm_matrix_from_payloads", "load_balance_from_payloads",
           "load_balance_from_rank_flops", "measured_comm_seconds",
           "mp_run_report", "overlap_from_spans", "predicted_vs_measured",
           "render_markdown", "sim_run_report"]
