"""Predicted-vs-measured: price a live run on the Touchstone Delta model.

The paper's tables compare *achieved* rates against what the machine
model predicts.  This module does the reproduction's version of that
closure: it feeds the **measured** traffic and flop counts of a real
distributed run (the same inputs Tables 2a-2c consume) into the Delta
model of :mod:`repro.perfmodel.delta` at *our own* mesh size and rank
count — scale factor 1, no extrapolation — and sets the model's
predictions next to what the host actually measured.

The absolute-seconds rows therefore compare a 1992 Touchstone Delta
(predicted) against the machine running this code (measured); their
ratio is the host-vs-Delta speed factor, itself a reproduction artifact.
The dimensionless ``comm_fraction`` row is directly comparable: the
model's communication share of the cycle versus the measured share of
wall-clock spent in communication spans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perfmodel.cache import edge_loop_hit_rate
from ..perfmodel.delta import measure_traffic, model_delta_run
from ..telemetry.export import aggregate

__all__ = ["ModelRow", "predicted_vs_measured", "measured_comm_seconds"]

#: Span-name prefixes whose *exclusive* time counts as communication on
#: the host: the simulated machine's fabric plus the PARTI pack/unpack
#: layer (sim backend), and the pipe transport (mp backend).
COMM_SPAN_PREFIXES = ("comm.", "parti.", "mp.gather", "mp.scatter_add")


@dataclass
class ModelRow:
    """One line of the predicted-vs-measured table."""

    metric: str
    predicted: float
    measured: float
    unit: str

    @property
    def ratio(self) -> float | None:
        """measured / predicted (``None`` when the prediction is zero)."""
        if self.predicted == 0.0:
            return None
        return self.measured / self.predicted

    def to_dict(self) -> dict:
        return {"metric": self.metric, "predicted": self.predicted,
                "measured": self.measured, "unit": self.unit,
                "ratio": self.ratio}

    @classmethod
    def from_dict(cls, d: dict) -> "ModelRow":
        return cls(metric=d["metric"], predicted=float(d["predicted"]),
                   measured=float(d["measured"]), unit=d["unit"])


def measured_comm_seconds(source) -> float:
    """Host wall-clock spent in communication spans (exclusive time)."""
    stats = aggregate(source)
    return float(sum(row["self_s"] for name, row in stats.items()
                     if name.startswith(COMM_SPAN_PREFIXES)))


def predicted_vs_measured(machine_log, rank_flops: dict, n_ranks: int,
                          n_vertices: int, n_edges: int, edges: np.ndarray,
                          ghost_ratio: float, n_cycles: int, wall_s: float,
                          comm_s: float,
                          timeline_s: float | None = None) -> list[ModelRow]:
    """Build the predicted-vs-measured table for one distributed run.

    Parameters mirror what a :class:`DistributedEulerSolver` run leaves
    behind: the machine's traffic ``log``, the driver's per-phase
    ``rank_flops``, the mesh/partition shape, and the host-side
    measurements (``wall_s`` for the whole run, ``comm_s`` from
    :func:`measured_comm_seconds`).  The Delta model is evaluated at our
    own mesh and rank count (identity scaling), so the prediction prices
    exactly the run that was measured.

    ``timeline_s`` is the total recorded timeline extent the comm
    fraction is taken of: for the single-process sim backend it equals
    ``wall_s`` (all ranks' work runs serially in one process), for the
    mp backend it is ``n_ranks * wall_s`` (``comm_s`` sums waits across
    all concurrent rank timelines).
    """
    if wall_s <= 0.0 or n_cycles <= 0:
        return []
    if timeline_s is None:
        timeline_s = wall_s
    meas = measure_traffic(machine_log, [rank_flops], n_cycles,
                           [n_vertices], [n_edges], [ghost_ratio])
    hit_rate = edge_loop_hit_rate(edges, np.arange(n_edges))
    model = model_delta_run(meas, n_ranks, [n_vertices], [n_edges],
                            hit_rate, n_cycles=n_cycles)

    total_flops = float(sum(arr.sum() for arr in rank_flops.values()))
    measured_mflops = total_flops / wall_s / 1e6
    rows = [
        ModelRow("comm_fraction", model.comm_s / model.total_s
                 if model.total_s > 0 else 0.0,
                 comm_s / timeline_s, "fraction of run"),
        ModelRow("time_per_edge_cycle",
                 model.total_s / n_cycles / n_edges * 1e6,
                 wall_s / n_cycles / n_edges * 1e6, "us/edge/cycle"),
        ModelRow("aggregate_rate", model.mflops, measured_mflops, "MFLOPS"),
        ModelRow("comm_s", model.comm_s, comm_s, "s (Delta vs host)"),
    ]
    return rows
