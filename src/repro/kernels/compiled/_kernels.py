"""The numba-jitted kernel bodies (import only when numba is installed).

Every kernel is written once as a plain-Python implementation using
``numba.prange`` for its racy-free loop, then jitted twice:

* ``<name>_ser`` — ``@njit(cache=True)``: ``prange`` degrades to
  ``range``, giving the single-threaded variant that runs the
  RCM-reordered edge list in CSR-free order (one fused pass, no numpy
  dispatch per operator);
* ``<name>_par`` — ``@njit(parallel=True, cache=True)``: the colour
  segment loop parallelises across the numba thread pool.  The caller
  hands edge arrays *pre-permuted by colour* plus an ``offsets`` array
  (``n_colors + 1`` monotone int64); inside one segment no two edges
  share a vertex (the colouring invariant, verified by
  :class:`repro.analysis.sanitize.ColorRaceSanitizer`), so the
  concurrent ``out[i] += ...`` stores are race-free.  Colours are
  separated by an implicit join — the paper's fork/join structure,
  compiled.

``fastmath`` stays **False**: reassociating the per-edge arithmetic would
cost the ≤1e-12 agreement margin with the serial oracle for no measured
gain (the loops are load/store bound).  All kernels zero their own
output buffers (overwrite semantics, matching the executor protocol) and
allocate nothing — buffers come from the caller's
:class:`~repro.kernels.workspace.StageWorkspace` arena.

The scatter-protocol kernels take an extra ``order`` indirection array
(permuted position -> original edge id) because their per-edge *values*
arrive in the original edge order of the mesh; the fused residual
kernels need no indirection — they gather from vertex arrays only, so
their edge geometry is simply stored pre-permuted.
"""

from __future__ import annotations

from numba import njit, prange

# NVAR is 5 throughout (rho, rho*u, rho*v, rho*w, rho*E); the constant is
# hard-wired in the loop bounds so numba unrolls them.


# ----------------------------------------------------------------------
# Executor-protocol scatters (values in original edge order, ``order``
# maps the colour-permuted position back to the value row).
# ----------------------------------------------------------------------

def _scatter_signed_impl(offsets, order, e0, e1, values, out):
    nv, m = out.shape
    for v in range(nv):
        for k in range(m):
            out[v, k] = 0.0
    for c in range(offsets.shape[0] - 1):
        for t in prange(offsets[c], offsets[c + 1]):
            e = order[t]
            i = e0[t]
            j = e1[t]
            for k in range(m):
                val = values[e, k]
                out[i, k] += val
                out[j, k] -= val


def _scatter_unsigned_impl(offsets, order, e0, e1, values, out):
    nv, m = out.shape
    for v in range(nv):
        for k in range(m):
            out[v, k] = 0.0
    for c in range(offsets.shape[0] - 1):
        for t in prange(offsets[c], offsets[c + 1]):
            e = order[t]
            i = e0[t]
            j = e1[t]
            for k in range(m):
                val = values[e, k]
                out[i, k] += val
                out[j, k] += val


def _neighbor_sum_impl(offsets, e0, e1, values, out):
    nv, m = out.shape
    for v in range(nv):
        for k in range(m):
            out[v, k] = 0.0
    for c in range(offsets.shape[0] - 1):
        for t in prange(offsets[c], offsets[c + 1]):
            i = e0[t]
            j = e1[t]
            for k in range(m):
                out[i, k] += values[j, k]
                out[j, k] += values[i, k]


# ----------------------------------------------------------------------
# Fused residual kernels (gather + arithmetic + scatter in one loop).
# ----------------------------------------------------------------------

def _convective_impl(offsets, e0, e1, eta_half, rho, vel, p, epp, out):
    """Central convective flux by the projected-flux identity, scattered.

    Per edge: ``vn = u . eta/2`` per endpoint, mass/momentum/energy flux
    assembled from six gathered scalars per endpoint (the
    :class:`FusedResidual` formulation, compiled).
    """
    nv = out.shape[0]
    for v in range(nv):
        for k in range(5):
            out[v, k] = 0.0
    for c in range(offsets.shape[0] - 1):
        for t in prange(offsets[c], offsets[c + 1]):
            i = e0[t]
            j = e1[t]
            ex = eta_half[t, 0]
            ey = eta_half[t, 1]
            ez = eta_half[t, 2]
            vn0 = vel[i, 0] * ex + vel[i, 1] * ey + vel[i, 2] * ez
            vn1 = vel[j, 0] * ex + vel[j, 1] * ey + vel[j, 2] * ez
            m0 = rho[i] * vn0
            m1 = rho[j] * vn1
            ps = p[i] + p[j]
            f0 = m0 + m1
            f1 = m0 * vel[i, 0] + m1 * vel[j, 0] + ps * ex
            f2 = m0 * vel[i, 1] + m1 * vel[j, 1] + ps * ey
            f3 = m0 * vel[i, 2] + m1 * vel[j, 2] + ps * ez
            f4 = epp[i] * vn0 + epp[j] * vn1
            out[i, 0] += f0
            out[j, 0] -= f0
            out[i, 1] += f1
            out[j, 1] -= f1
            out[i, 2] += f2
            out[j, 2] -= f2
            out[i, 3] += f3
            out[j, 3] -= f3
            out[i, 4] += f4
            out[j, 4] -= f4


def _diss_pass1_impl(offsets, e0, e1, w, p, switch_floor, lap, nu, den):
    """Undivided Laplacian + pressure switch in one fused pass.

    Scatters ``w_j - w_i`` (signed, 5 vars), ``p_j - p_i`` (signed) and
    ``p_i + p_j`` (unsigned) per edge, then finalises the switch
    ``nu = |sum p-diff| / max(sum p-sum, floor)`` per vertex.
    """
    nv = lap.shape[0]
    for v in range(nv):
        for k in range(5):
            lap[v, k] = 0.0
        nu[v] = 0.0
        den[v] = 0.0
    for c in range(offsets.shape[0] - 1):
        for t in prange(offsets[c], offsets[c + 1]):
            i = e0[t]
            j = e1[t]
            for k in range(5):
                d = w[j, k] - w[i, k]
                lap[i, k] += d
                lap[j, k] -= d
            pd = p[j] - p[i]
            nu[i] += pd
            nu[j] -= pd
            ps = p[i] + p[j]
            den[i] += ps
            den[j] += ps
    for v in prange(nv):
        d = den[v]
        if d < switch_floor:
            d = switch_floor
        a = nu[v]
        if a < 0.0:
            a = -a
        nu[v] = a / d


def _edge_lam_impl(e0, e1, eta_half, eta_norm_half, vel, c, lam):
    """Edge convective spectral radius (pure map — no scatter, no races).

    ``lam = |(u_i + u_j) . eta/2| + (c_i + c_j) |eta|/2``, matching the
    fused pipeline's ``_EdgeStageState.lam`` exactly.
    """
    for t in prange(e0.shape[0]):
        i = e0[t]
        j = e1[t]
        ex = eta_half[t, 0]
        ey = eta_half[t, 1]
        ez = eta_half[t, 2]
        vn0 = vel[i, 0] * ex + vel[i, 1] * ey + vel[i, 2] * ez
        vn1 = vel[j, 0] * ex + vel[j, 1] * ey + vel[j, 2] * ez
        s = vn0 + vn1
        if s < 0.0:
            s = -s
        lam[t] = s + (c[i] + c[j]) * eta_norm_half[t]


def _diss_pass2_impl(offsets, e0, e1, w, lap, nu, lam, k2, k4, out):
    """Blended JST dissipation edge flux, gathered and scattered fused."""
    nv = out.shape[0]
    for v in range(nv):
        for k in range(5):
            out[v, k] = 0.0
    for c in range(offsets.shape[0] - 1):
        for t in prange(offsets[c], offsets[c + 1]):
            i = e0[t]
            j = e1[t]
            nue = nu[i]
            if nu[j] > nue:
                nue = nu[j]
            eps2 = k2 * nue
            eps4 = k4 - eps2
            if eps4 < 0.0:
                eps4 = 0.0
            la = lam[t]
            for k in range(5):
                d = la * (eps2 * (w[j, k] - w[i, k])
                          - eps4 * (lap[j, k] - lap[i, k]))
                out[i, k] += d
                out[j, k] -= d


def _sigma_impl(offsets, e0, e1, lam, out):
    """Unsigned scatter of the edge spectral radius (time-step sums)."""
    nv = out.shape[0]
    for v in range(nv):
        out[v] = 0.0
    for c in range(offsets.shape[0] - 1):
        for t in prange(offsets[c], offsets[c + 1]):
            la = lam[t]
            out[e0[t]] += la
            out[e1[t]] += la


# ----------------------------------------------------------------------
# Per-rank distributed kernels (serial: parallelism lives across ranks).
# ``zero`` selects overwrite vs accumulate semantics — the overlap
# executor's interior part overwrites while ghost messages are in
# flight, the boundary part accumulates on arrival.
# ----------------------------------------------------------------------

def _rank_convective_impl(e0, e1, f, eta, out, zero):
    """``0.5 * (F_i + F_j) . eta`` scattered signed, from flux tensors."""
    if zero:
        for v in range(out.shape[0]):
            for k in range(5):
                out[v, k] = 0.0
    for t in range(e0.shape[0]):
        i = e0[t]
        j = e1[t]
        for k in range(5):
            phi = 0.0
            for d in range(3):
                phi += (f[i, k, d] + f[j, k, d]) * eta[t, d]
            phi *= 0.5
            out[i, k] += phi
            out[j, k] -= phi


def _rank_partials6_impl(e0, e1, w, p, out6, zero):
    """Signed dissipation partials ``[w-diff(5) | p-diff]`` fused."""
    if zero:
        for v in range(out6.shape[0]):
            for k in range(6):
                out6[v, k] = 0.0
    for t in range(e0.shape[0]):
        i = e0[t]
        j = e1[t]
        for k in range(5):
            d = w[j, k] - w[i, k]
            out6[i, k] += d
            out6[j, k] -= d
        pd = p[j] - p[i]
        out6[i, 5] += pd
        out6[j, 5] -= pd


def _rank_pressure_den_impl(e0, e1, p, out, zero):
    """Unsigned pressure-sum partials (the switch denominator)."""
    if zero:
        for v in range(out.shape[0]):
            out[v] = 0.0
    for t in range(e0.shape[0]):
        i = e0[t]
        j = e1[t]
        ps = p[i] + p[j]
        out[i] += ps
        out[j] += ps


def _rank_dissipation_impl(e0, e1, w, lnu, lam, k2, k4, out, zero):
    """Blended dissipation from completed ``[L(5) | nu]`` partials."""
    if zero:
        for v in range(out.shape[0]):
            for k in range(5):
                out[v, k] = 0.0
    for t in range(e0.shape[0]):
        i = e0[t]
        j = e1[t]
        nue = lnu[i, 5]
        if lnu[j, 5] > nue:
            nue = lnu[j, 5]
        eps2 = k2 * nue
        eps4 = k4 - eps2
        if eps4 < 0.0:
            eps4 = 0.0
        la = lam[t]
        for k in range(5):
            d = la * (eps2 * (w[j, k] - w[i, k])
                      - eps4 * (lnu[j, k] - lnu[i, k]))
            out[i, k] += d
            out[j, k] -= d


def _rank_sigma_impl(e0, e1, lam, out, zero):
    """Unsigned scatter of the edge spectral radius, 1-D."""
    if zero:
        for v in range(out.shape[0]):
            out[v] = 0.0
    for t in range(e0.shape[0]):
        la = lam[t]
        out[e0[t]] += la
        out[e1[t]] += la


def _rank_neighbor_sum_impl(e0, e1, values, out, zero):
    """Jacobi neighbour sums over one rank's edge subset."""
    if zero:
        for v in range(out.shape[0]):
            for k in range(5):
                out[v, k] = 0.0
    for t in range(e0.shape[0]):
        i = e0[t]
        j = e1[t]
        for k in range(5):
            out[i, k] += values[j, k]
            out[j, k] += values[i, k]


# ----------------------------------------------------------------------
# Jit both variants of each shared-memory kernel; rank kernels are
# serial-only (distributed parallelism lives across rank processes).
# fastmath stays False (see module docstring).
# ----------------------------------------------------------------------

_SER = dict(cache=True, fastmath=False)
_PAR = dict(cache=True, fastmath=False, parallel=True)

scatter_signed_ser = njit(**_SER)(_scatter_signed_impl)
scatter_signed_par = njit(**_PAR)(_scatter_signed_impl)
scatter_unsigned_ser = njit(**_SER)(_scatter_unsigned_impl)
scatter_unsigned_par = njit(**_PAR)(_scatter_unsigned_impl)
neighbor_sum_ser = njit(**_SER)(_neighbor_sum_impl)
neighbor_sum_par = njit(**_PAR)(_neighbor_sum_impl)

convective_ser = njit(**_SER)(_convective_impl)
convective_par = njit(**_PAR)(_convective_impl)
diss_pass1_ser = njit(**_SER)(_diss_pass1_impl)
diss_pass1_par = njit(**_PAR)(_diss_pass1_impl)
edge_lam_ser = njit(**_SER)(_edge_lam_impl)
edge_lam_par = njit(**_PAR)(_edge_lam_impl)
diss_pass2_ser = njit(**_SER)(_diss_pass2_impl)
diss_pass2_par = njit(**_PAR)(_diss_pass2_impl)
sigma_ser = njit(**_SER)(_sigma_impl)
sigma_par = njit(**_PAR)(_sigma_impl)

rank_convective = njit(**_SER)(_rank_convective_impl)
rank_partials6 = njit(**_SER)(_rank_partials6_impl)
rank_pressure_den = njit(**_SER)(_rank_pressure_den_impl)
rank_dissipation = njit(**_SER)(_rank_dissipation_impl)
rank_sigma = njit(**_SER)(_rank_sigma_impl)
rank_neighbor_sum = njit(**_SER)(_rank_neighbor_sum_impl)
