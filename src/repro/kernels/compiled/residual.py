"""The fully fused compiled residual pipeline.

:class:`CompiledResidual` subclasses
:class:`~repro.kernels.fused.FusedResidual` and replaces the three
edge-loop operators (convective, dissipation, time step) with single
njit kernels that gather endpoint state, do the per-edge arithmetic and
scatter in one compiled pass — no ``_EdgeStageState`` gathers, no
per-operator NumPy dispatch.  Everything else (residual assembly, the
five-stage step, smoothing, boundary closures, flop accounting,
sanitizer hooks) is inherited unchanged, so the compiled pipeline stays
behaviourally identical to the fused one apart from summation order.

The executor must be one of the compiled executors: its colour-segment
layout (``ce0``/``ce1``/``offsets``, edges pre-permuted by colour) is
shared by these kernels, so the colouring is computed and verified once.
Edge geometry (``eta/2`` and ``|eta|/2``) is stored permuted to match.

Buffers come from the inherited :class:`StageWorkspace` arena under the
same names the fused pipeline uses — after warm-up the hot path
allocates nothing.  The edge spectral radius ``lam`` (shared by the
dissipation blend and the time step) is cached per stage generation,
mirroring the ``_gen``/``_es_gen`` protocol of the parent.
"""

from __future__ import annotations

import numpy as np

from ...solver.bc import (FLOPS_PER_FARFIELD_VERTEX, FLOPS_PER_WALL_VERTEX,
                          boundary_fluxes)
from ...solver.dissipation import (FLOPS_PER_EDGE_DISS_PASS1,
                                   FLOPS_PER_EDGE_DISS_PASS2,
                                   FLOPS_PER_VERTEX_DISS)
from ...solver.flux import FLOPS_PER_EDGE_CONVECTIVE, FLOPS_PER_VERTEX_FLUXVEC
from ...solver.timestep import (FLOPS_PER_EDGE_TIMESTEP,
                                FLOPS_PER_VERTEX_TIMESTEP)
from ...telemetry import traced
from ..fused import FusedResidual
from .executors import CompiledExecutor, make_compiled_executor

__all__ = ["CompiledResidual"]


class CompiledResidual(FusedResidual):
    """Fused residual with the edge loops replaced by njit kernels.

    Same constructor signature as :class:`FusedResidual`; ``executor``
    must be a :class:`CompiledExecutor` /
    :class:`CompiledParallelExecutor` (one is built when omitted).
    """

    def __init__(self, struct, bdata, config, w_inf, executor=None,
                 flops=None, tracer=None, sanitizer=None):
        if executor is None:
            executor = make_compiled_executor(struct.edges, struct.n_vertices,
                                              tracer=tracer,
                                              sanitizer=sanitizer)
        if not isinstance(executor, CompiledExecutor):
            raise TypeError(
                "CompiledResidual requires a compiled executor (it shares "
                f"the colour-segment layout); got {type(executor).__name__}")
        super().__init__(struct, bdata, config, w_inf, executor=executor,
                         flops=flops, tracer=tracer, sanitizer=sanitizer)
        ex = self.executor
        k = ex._k
        if ex.parallel:
            self._conv_k = k.convective_par
            self._diss1_k = k.diss_pass1_par
            self._diss2_k = k.diss_pass2_par
            self._lam_k = k.edge_lam_par
            self._sigma_k = k.sigma_par
        else:
            self._conv_k = k.convective_ser
            self._diss1_k = k.diss_pass1_ser
            self._diss2_k = k.diss_pass2_ser
            self._lam_k = k.edge_lam_ser
            self._sigma_k = k.sigma_ser
        # Geometry permuted into the executor's colour order, so the
        # fused kernels index edge arrays and vertex arrays with the
        # same ``t``-th edge.
        self._c_eta_half = np.ascontiguousarray(self.eta_half[ex.order])
        self._c_eta_norm_half = np.ascontiguousarray(
            self.eta_norm_half[ex.order])
        self._lam_gen = -1

    # ------------------------------------------------------------------
    def _ensure_lam(self) -> np.ndarray:
        """Edge spectral radius in colour order, cached per stage state."""
        lam = self.ws.edge_buf("compiled_lam")
        if self._lam_gen == self._gen:
            return lam
        ex = self.executor
        ws = self.ws
        self._lam_k(ex.ce0, ex.ce1, self._c_eta_half, self._c_eta_norm_half,
                    ws.vel, ws.c, lam)
        self._lam_gen = self._gen
        return lam

    # ------------------------------------------------------------------
    @traced("compiled.convective")
    def convective(self, w: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Q(w): one fused gather+flux+scatter kernel + boundary closure."""
        ws = self.ws
        ex = self.executor
        self._conv_k(ex.offsets, ex.ce0, ex.ce1, self._c_eta_half,
                     ws.rho, ws.vel, ws.p, ws.epp, out)
        boundary_fluxes(w, self.bdata, self.w_inf, out=out)
        self.flops.add("convective",
                       FLOPS_PER_EDGE_CONVECTIVE * self.n_edges
                       + FLOPS_PER_VERTEX_FLUXVEC * self.n_vertices)
        self.flops.add("boundary",
                       FLOPS_PER_WALL_VERTEX * self.bdata.wall_vertices.size
                       + FLOPS_PER_FARFIELD_VERTEX * self.bdata.far_vertices.size)
        return out

    # ------------------------------------------------------------------
    @traced("compiled.dissipation")
    def dissipation(self, w: np.ndarray, out: np.ndarray) -> np.ndarray:
        """D(w): two fused kernel passes (Laplacian+switch, then blend)."""
        ws = self.ws
        cfg = self.config
        ex = self.executor
        lap = ws.state_buf("diss_lap")
        nu = ws.vertex_buf("diss_nu")
        den = ws.vertex_buf("diss_den")
        self._diss1_k(ex.offsets, ex.ce0, ex.ce1, w, ws.p,
                      cfg.switch_floor, lap, nu, den)
        lam = self._ensure_lam()
        self._diss2_k(ex.offsets, ex.ce0, ex.ce1, w, lap, nu, lam,
                      cfg.k2, cfg.k4, out)
        self.flops.add("dissipation",
                       (FLOPS_PER_EDGE_DISS_PASS1 + FLOPS_PER_EDGE_DISS_PASS2)
                       * self.n_edges
                       + FLOPS_PER_VERTEX_DISS * self.n_vertices)
        return out

    # ------------------------------------------------------------------
    @traced("compiled.timestep")
    def timestep(self, w: np.ndarray, out: np.ndarray,
                 update_state: bool = False) -> np.ndarray:
        """Local time step from the compiled sigma scatter."""
        if update_state:
            self.update_state(w)
        ws = self.ws
        ex = self.executor
        lam = self._ensure_lam()
        sigma = ws.vertex_buf("dt_sigma")
        self._sigma_k(ex.offsets, ex.ce0, ex.ce1, lam, sigma)
        for verts, normals, nn in (
                (self.bdata.wall_vertices, self.bdata.wall_normals, self.wall_nn),
                (self.bdata.far_vertices, self.bdata.far_normals, self.far_nn)):
            if verts.size:
                un = np.abs(np.einsum("id,id->i", ws.vel[verts], normals))
                sigma[verts] += un + ws.c[verts] * nn
        np.maximum(sigma, 1e-300, out=sigma)
        np.divide(self.dual_volumes, sigma, out=out)
        np.multiply(out, self.config.cfl, out=out)
        self.flops.add("timestep",
                       FLOPS_PER_EDGE_TIMESTEP * self.n_edges
                       + FLOPS_PER_VERTEX_TIMESTEP * self.n_vertices)
        return out
