"""Compiled (numba-jitted) executor family: the threading that finally wins.

``BENCH_residual.json`` records the CPython trap the paper never had: the
colored and colored-threaded executors *lose* to the serial fused CSR path
(99 ms vs 41 ms residual on box27) because every colour pays a
Python-level dispatch, and the GIL throttles what little concurrency the
thread pool extracts.  The Cray autotasking compiler turned the colouring
invariant into machine code; this package does the same with numba:

* :mod:`~repro.kernels.compiled._kernels` — ``@njit(parallel=...,
  fastmath=False, cache=True)`` kernels that fuse gather + central flux +
  JST dissipation + scatter into single compiled loops over the
  RCM-reordered edge arrays (serial variants) or over conflict-free
  colour segments with an inner ``prange`` (parallel variants — the
  fork/join-per-colour structure of paper Section 3.1, compiled);
* :mod:`~repro.kernels.compiled.executors` — :class:`CompiledExecutor`
  and :class:`CompiledParallelExecutor`, implementing the scatter
  executor protocol (``signed``/``unsigned``/``neighbor_sum`` + ``out=``)
  so they drop into :class:`~repro.kernels.fused.FusedResidual`;
* :mod:`~repro.kernels.compiled.residual` — :class:`CompiledResidual`,
  the fully fused pipeline: convective, dissipation and time-step edge
  loops run as compiled kernels over the existing
  :class:`~repro.kernels.workspace.StageWorkspace` buffers, so no new
  allocations enter the hot path.

numba is an *optional* dependency (the ``compiled`` extra).  This module
imports cleanly without it: :func:`numba_available` probes once, explicit
``executor="compiled"`` requests raise :class:`ExecutorUnavailableError`
naming the pip extra, and ``executor="auto"`` silently falls back to the
pure-NumPy ``fused`` pipeline (see
:func:`repro.kernels.executors.resolve_auto_kind`).

Numerics stance: ``fastmath=False`` everywhere — the compiled kernels
reassociate sums exactly like the coloured executors do (different
accumulation order), but each individual operation stays IEEE-faithful,
so the ≤1e-12 relative agreement with the serial oracle holds with the
same margin the NumPy executors achieve.  ``cache=True`` persists the
compiled machine code on disk, so the one-time compile cost (~seconds)
is paid once per machine, not once per process.
"""

from __future__ import annotations

__all__ = [
    "NUMBA_AVAILABLE", "numba_available", "require_numba", "load_kernels",
    "ExecutorUnavailableError", "CompiledExecutor",
    "CompiledParallelExecutor", "CompiledResidual",
    "make_compiled_executor",
]

try:  # pragma: no cover - trivially True/False per environment
    import numba as _numba  # noqa: F401

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    NUMBA_AVAILABLE = False

#: The pip extra that provides the compiled backend.
PIP_EXTRA = "repro[compiled]"


class ExecutorUnavailableError(RuntimeError):
    """A compiled executor was requested but its backend is not importable.

    Raised by :func:`repro.kernels.executors.make_executor` (and the
    compiled classes themselves) when ``executor="compiled"`` or
    ``"compiled-parallel"`` is requested without numba installed.
    ``executor="auto"`` never raises this — it falls back to ``fused``.
    """


def numba_available() -> bool:
    """True when the numba JIT backend can be imported."""
    return NUMBA_AVAILABLE


def require_numba(what: str = "compiled executor") -> None:
    """Raise :class:`ExecutorUnavailableError` unless numba is importable."""
    if not NUMBA_AVAILABLE:
        raise ExecutorUnavailableError(
            f"{what} requires numba, which is not installed; "
            f"install the compiled extra with 'pip install {PIP_EXTRA}' "
            f"(or use executor='fused' / executor='auto', which fall back "
            f"to the pure-NumPy pipeline)")


_kernels_module = None


def load_kernels():
    """Import and return the jitted kernel module (compiles lazily).

    The first call in a fresh environment triggers numba compilation of
    whatever kernels are then invoked; with ``cache=True`` later
    processes load machine code from the on-disk cache instead.
    """
    global _kernels_module
    if _kernels_module is None:
        require_numba("the compiled kernel backend")
        from . import _kernels
        _kernels_module = _kernels
    return _kernels_module


# The classes import without numba (construction is what requires it), so
# tests and the registry can reference them unconditionally.
from .executors import (CompiledExecutor, CompiledParallelExecutor,  # noqa: E402
                        make_compiled_executor)
from .residual import CompiledResidual  # noqa: E402
