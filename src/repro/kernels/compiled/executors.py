"""Compiled scatter executors: the executor protocol, jitted.

Both classes implement the protocol the fused pipeline scatters through
(``signed``/``unsigned``/``neighbor_sum``, all with ``out=``, plus a
``degree`` array), so ``make_executor(kind="compiled")`` drops them into
:class:`~repro.kernels.fused.FusedResidual` unchanged.  They also expose
the colour-segment layout (``order``/``offsets`` and the permuted
endpoint arrays ``ce0``/``ce1``) that
:class:`~repro.kernels.compiled.residual.CompiledResidual` reuses for its
fully fused kernels — one colouring, computed once, shared by both
layers.

* :class:`CompiledExecutor` — single segment covering the whole edge
  list in its given (RCM-reordered) order; serial njit loops.
* :class:`CompiledParallelExecutor` — edges permuted into the
  conflict-free groups of :func:`repro.coloring.color_edges_balanced`;
  each segment runs under ``prange`` on the numba thread pool.  The
  colouring invariant is what makes the concurrent stores race-free, so
  it is (optionally) verified by the
  :class:`~repro.analysis.sanitize.ColorRaceSanitizer` before the first
  parallel call — both the group structure and the exact
  ``order``/``offsets`` arrays handed to the kernels.

Summation order matches neither the CSR scatter nor the coloured NumPy
executors bit for bit (each reassociates differently); all agree with
the reference to ≤1e-12 relative, pinned by ``tests/kernels``.
"""

from __future__ import annotations

import numpy as np

from ...coloring.balanced import color_edges_balanced
from ...coloring.greedy import EdgeColoring
from ...telemetry import get_tracer
from . import load_kernels

__all__ = ["CompiledExecutor", "CompiledParallelExecutor",
           "make_compiled_executor"]


class CompiledExecutor:
    """Serial njit edge scatter over the edge list's given order.

    Parameters
    ----------
    edges : (ne, 2) vertex index pairs (RCM-reordered upstream when the
        solver config enables ``edge_reorder``, which it does by default
        for every non-serial executor).
    n_vertices : target vertex count.
    """

    #: Parallel kernels in use (class attribute; the subclass flips it).
    parallel = False

    def __init__(self, edges: np.ndarray, n_vertices: int, tracer=None,
                 sanitizer=None):
        self._k = load_kernels()
        edges = np.asarray(edges)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (ne, 2), got {edges.shape}")
        self.edges = edges
        self.n_vertices = int(n_vertices)
        self.tracer = tracer if tracer is not None else get_tracer()
        if sanitizer is None:
            from ...analysis.sanitize import NULL_SANITIZER
            sanitizer = NULL_SANITIZER
        self.sanitizer = sanitizer
        self.degree = np.bincount(
            edges.ravel(), minlength=self.n_vertices).astype(np.float64)
        self._build_layout()
        k = self._k
        if self.parallel:
            self._signed_k = k.scatter_signed_par
            self._unsigned_k = k.scatter_unsigned_par
            self._neighbor_k = k.neighbor_sum_par
        else:
            self._signed_k = k.scatter_signed_ser
            self._unsigned_k = k.scatter_unsigned_ser
            self._neighbor_k = k.neighbor_sum_ser

    # ------------------------------------------------------------------
    def _build_layout(self) -> None:
        """One segment, identity order: the serial compiled loop."""
        ne = self.edges.shape[0]
        self.coloring = None
        self.order = np.arange(ne, dtype=np.int64)
        self.offsets = np.array([0, ne], dtype=np.int64)
        self.ce0 = np.ascontiguousarray(self.edges[:, 0], dtype=np.int64)
        self.ce1 = np.ascontiguousarray(self.edges[:, 1], dtype=np.int64)

    def close(self) -> None:
        """Protocol parity with :class:`ColoredExecutor` (no pool here)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    def _prepare_out(self, trailing_shape, dtype, out):
        """Allocate or shape-check ``out`` (kernels zero it themselves)."""
        shape = (self.n_vertices,) + trailing_shape
        if out is None:
            return np.empty(shape, dtype=dtype)
        if out.shape != shape:
            raise ValueError(f"out must have shape {shape}, got {out.shape}")
        return out

    @staticmethod
    def _as_2d(arr: np.ndarray) -> np.ndarray:
        """Contiguous float64 ``(n, m)`` view of a 1-D/N-D value array."""
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        n_vecs = int(np.prod(arr.shape[1:], dtype=np.int64)) if arr.ndim > 1 \
            else 1
        return arr.reshape(arr.shape[0], n_vecs)

    def _run(self, kernel, values, out, with_order: bool) -> np.ndarray:
        v2 = self._as_2d(values)
        out2 = out.reshape(out.shape[0], v2.shape[1])
        if with_order:
            kernel(self.offsets, self.order, self.ce0, self.ce1, v2, out2)
        else:
            kernel(self.offsets, self.ce0, self.ce1, v2, out2)
        return out

    # ------------------------------------------------------------------
    def signed(self, edge_values: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        """``sum_e (+v at i, -v at j)`` in one compiled pass."""
        with self.tracer.span("scatter.signed"):
            if self.tracer.enabled:
                self.tracer.count("kernel.edges_scattered",
                                  self.edges.shape[0])
            edge_values = np.asarray(edge_values)
            out = self._prepare_out(edge_values.shape[1:], np.float64, out)
            self._run(self._signed_k, edge_values, out, with_order=True)
        return out

    def unsigned(self, edge_values: np.ndarray,
                 out: np.ndarray | None = None) -> np.ndarray:
        """``sum_e (+v at i, +v at j)`` in one compiled pass."""
        with self.tracer.span("scatter.unsigned"):
            if self.tracer.enabled:
                self.tracer.count("kernel.edges_scattered",
                                  self.edges.shape[0])
            edge_values = np.asarray(edge_values)
            out = self._prepare_out(edge_values.shape[1:], np.float64, out)
            self._run(self._unsigned_k, edge_values, out, with_order=True)
        return out

    def neighbor_sum(self, vertex_values: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
        """``out_i = sum_{j ~ i} v_j`` in one compiled pass."""
        with self.tracer.span("scatter.neighbor_sum"):
            vertex_values = np.asarray(vertex_values)
            out = self._prepare_out(vertex_values.shape[1:], np.float64, out)
            self._run(self._neighbor_k, vertex_values, out, with_order=False)
        return out


class CompiledParallelExecutor(CompiledExecutor):
    """Colour-parallel njit edge scatter (``prange`` inside each colour).

    Parameters
    ----------
    edges, n_vertices : as :class:`CompiledExecutor`.
    coloring : optional precomputed :class:`EdgeColoring`; defaults to
        the balanced colouring (equal segments maximise prange width).
    n_threads : numba thread count for the parallel regions, clamped to
        the thread pool numba launched with (``NUMBA_NUM_THREADS``).
        Note numba's thread count is process-global.
    """

    parallel = True

    def __init__(self, edges: np.ndarray, n_vertices: int,
                 coloring: EdgeColoring | None = None, n_threads: int = 1,
                 tracer=None, sanitizer=None):
        self._coloring_in = coloring
        self.n_threads = max(1, int(n_threads))
        super().__init__(edges, n_vertices, tracer=tracer,
                         sanitizer=sanitizer)
        import numba
        numba.set_num_threads(
            max(1, min(self.n_threads, numba.config.NUMBA_NUM_THREADS)))
        if self.tracer.enabled:
            sizes = np.diff(self.offsets).astype(float)
            self.tracer.gauge("coloring.n_colors", sizes.size)
            if sizes.size and sizes.mean() > 0:
                self.tracer.gauge("coloring.imbalance",
                                  float(sizes.max() / sizes.mean()))

    def _build_layout(self) -> None:
        """Permute the edge list into conflict-free colour segments."""
        edges = self.edges
        coloring = self._coloring_in
        if coloring is None:
            coloring = color_edges_balanced(edges, self.n_vertices)
        self.coloring = coloring
        if self.sanitizer.enabled:
            # The prange stores are race-free exactly when the colouring
            # invariant holds; verify it before any parallel call runs.
            self.sanitizer.check_coloring(edges, coloring.groups,
                                          self.n_vertices,
                                          where="CompiledParallelExecutor")
        groups = [np.asarray(g, dtype=np.int64) for g in coloring.groups]
        if groups:
            self.order = np.concatenate(groups)
        else:
            self.order = np.zeros(0, dtype=np.int64)
        sizes = np.array([g.size for g in groups], dtype=np.int64)
        self.offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.offsets[1:])
        self.ce0 = np.ascontiguousarray(edges[self.order, 0], dtype=np.int64)
        self.ce1 = np.ascontiguousarray(edges[self.order, 1], dtype=np.int64)
        if self.sanitizer.enabled:
            # Validate the exact arrays handed to the kernels, not just
            # the group structure they were derived from.
            self.sanitizer.check_color_offsets(
                self.ce0, self.ce1, self.offsets, self.n_vertices,
                where="CompiledParallelExecutor")


def make_compiled_executor(edges: np.ndarray, n_vertices: int,
                           parallel: bool = False, n_threads: int = 1,
                           tracer=None, sanitizer=None):
    """Factory used by :func:`repro.kernels.executors.make_executor`."""
    if parallel:
        return CompiledParallelExecutor(edges, n_vertices,
                                        n_threads=n_threads, tracer=tracer,
                                        sanitizer=sanitizer)
    return CompiledExecutor(edges, n_vertices, tracer=tracer,
                            sanitizer=sanitizer)
