"""Per-stage thermodynamic workspace and preallocated buffer arena.

The seed solver evaluates pressure, primitive velocities and the speed of
sound independently inside the convective operator (via the flux tensor),
the dissipation operator (pressure switch + spectral radius) and the local
time step — three redundant passes over the vertex array per Runge-Kutta
stage, each allocating its temporaries.  :class:`StageWorkspace` computes
the shared thermodynamic state **once per stage** (:meth:`update`) into
buffers owned by the workspace, and hands out named preallocated scratch
arrays (:meth:`buf`) so the fused residual pipeline performs no per-stage
allocations in steady state.

All state arrays are individually C-contiguous: NumPy's ufunc inner loops
run ~3x faster on contiguous operands than on strided column views, which
dominates any cache benefit of an interleaved layout at these sizes.

This is the data-layout half of the multi-core kernel-fusion strategy
(Dai et al., PAPERS.md; Maier & Kronbichler arXiv:2007.00094): compute
shared sub-expressions once, keep them resident, and stream the edge loops
over preallocated buffers.
"""

from __future__ import annotations

import numpy as np

from ..constants import GAMMA, GAMMA_M1, NVAR

__all__ = ["StageWorkspace"]


class StageWorkspace:
    """Shared per-stage thermodynamic state for one mesh size.

    After :meth:`update` the following arrays describe the current stage
    state ``w``:

    ``rho``      (nv,)   density;
    ``inv_rho``  (nv,)   reciprocal density;
    ``vel``      (nv, 3) velocity;
    ``p``        (nv,)   static pressure;
    ``c``        (nv,)   speed of sound;
    ``epp``      (nv,)   ``rho*E + p`` (the energy-flux weight).

    All are preallocated once; :meth:`update` only writes into them.
    Scratch buffers for the edge loops are obtained with :meth:`buf`,
    which allocates on first request and reuses thereafter — after the
    first stage the pipeline is allocation-free.
    """

    def __init__(self, n_vertices: int, n_edges: int):
        self.n_vertices = int(n_vertices)
        self.n_edges = int(n_edges)
        nv = self.n_vertices
        self.rho = np.empty(nv)
        self.inv_rho = np.empty(nv)
        self.vel = np.empty((nv, 3))
        self.p = np.empty(nv)
        self.c = np.empty(nv)
        self.epp = np.empty(nv)
        self._q2 = np.empty(nv)          # internal: momentum . velocity
        self._arena: dict[str, np.ndarray] = {}
        #: Number of arena allocations performed (monitoring hook for the
        #: zero-allocation claim: stops growing after the first stage).
        self.n_arena_allocs = 0

    # ------------------------------------------------------------------
    def update(self, w: np.ndarray) -> None:
        """Recompute the shared thermodynamic state for stage state ``w``."""
        np.copyto(self.rho, w[:, 0])
        np.divide(1.0, self.rho, out=self.inv_rho)
        np.multiply(w[:, 1:4], self.inv_rho[:, None], out=self.vel)
        # p = (gamma-1) (rho E - 1/2 m . u)
        np.einsum("id,id->i", w[:, 1:4], self.vel, out=self._q2)
        np.multiply(self._q2, -0.5, out=self.p)
        np.add(self.p, w[:, 4], out=self.p)
        np.multiply(self.p, GAMMA_M1, out=self.p)
        # c = sqrt(gamma p / rho)
        np.multiply(self.p, GAMMA * self.inv_rho, out=self.c)
        np.sqrt(self.c, out=self.c)
        np.add(w[:, 4], self.p, out=self.epp)

    # ------------------------------------------------------------------
    def buf(self, name: str, shape: tuple[int, ...],
            dtype=np.float64) -> np.ndarray:
        """Named preallocated scratch buffer (contents are unspecified).

        The first request for ``name`` allocates; later requests return the
        same array.  Requesting an existing name with a different shape or
        dtype raises — buffer names are per-use-site, not general storage.
        """
        arr = self._arena.get(name)
        if arr is None:
            arr = np.empty(shape, dtype=dtype)
            self._arena[name] = arr
            self.n_arena_allocs += 1
            return arr
        if arr.shape != tuple(shape) or arr.dtype != np.dtype(dtype):
            raise ValueError(
                f"arena buffer {name!r} already exists with shape "
                f"{arr.shape}/{arr.dtype}, requested {tuple(shape)}/{dtype}")
        return arr

    def edge_buf(self, name: str, *trailing: int) -> np.ndarray:
        """Scratch buffer of shape ``(n_edges, *trailing)``."""
        return self.buf(name, (self.n_edges,) + trailing)

    def vertex_buf(self, name: str, *trailing: int) -> np.ndarray:
        """Scratch buffer of shape ``(n_vertices, *trailing)``."""
        return self.buf(name, (self.n_vertices,) + trailing)

    def state_buf(self, name: str) -> np.ndarray:
        """Scratch buffer of shape ``(n_vertices, NVAR)``."""
        return self.buf(name, (self.n_vertices, NVAR))
