"""Fused, allocation-free solver kernels (the shared-memory hot path).

This package owns the performance-critical residual evaluation end to end:

* :mod:`~repro.kernels.workspace` — per-stage thermodynamic state and the
  preallocated buffer arena (:class:`StageWorkspace`);
* :mod:`~repro.kernels.executors` — the scatter executors: serial CSR,
  colored (conflict-free groups), and colored-threaded
  (:class:`ColoredExecutor` over a thread pool);
* :mod:`~repro.kernels.reorder` — RCM-based cache-locality edge
  reordering applied at edge-structure build time;
* :mod:`~repro.kernels.fused` — :class:`FusedResidual`, the fused
  residual / time-step / five-stage-step pipeline;
* :mod:`~repro.kernels.compiled` — the optional numba-jitted executor
  family (``compiled`` / ``compiled-parallel``) and
  :class:`~repro.kernels.compiled.CompiledResidual`, the fully fused
  compiled pipeline (requires the ``compiled`` extra);
* :mod:`~repro.kernels.calibration` — the measured executor-crossover
  table consumed by ``executor="auto"``.

Select it through :class:`repro.solver.SolverConfig`
(``executor="serial" | "fused" | "colored" | "colored-threaded" |
"compiled" | "compiled-parallel" | "auto"``); the default ``"serial"``
keeps the seed solver path bit-identical.  See ``docs/performance.md``
and ``benchmarks/bench_residual.py``.
"""

from .executors import (ColoredExecutor, SerialExecutor, make_executor,
                        resolve_auto_kind)
from .fused import FusedResidual
from .reorder import locality_edge_order, rcm_vertex_order, reorder_edges
from .workspace import StageWorkspace

__all__ = [
    "StageWorkspace", "SerialExecutor", "ColoredExecutor", "make_executor",
    "resolve_auto_kind", "FusedResidual", "rcm_vertex_order",
    "locality_edge_order", "reorder_edges",
]
