"""The fused zero-allocation residual pipeline.

One :class:`FusedResidual` owns the hot path of the five-stage scheme for
one mesh: the shared :class:`~repro.kernels.workspace.StageWorkspace`
(pressure / velocity / sound speed / energy-flux weight computed **once
per Runge-Kutta stage**), the preallocated edge and vertex buffers, and a
pluggable scatter executor (serial CSR, colored, or colored-threaded).

Relative to the seed operators in :mod:`repro.solver` it fuses three
redundant thermodynamic passes into one, gathers the per-edge endpoint
state **once per stage** into a cached :class:`_EdgeStageState` shared by
the convective, dissipative and time-step operators, and replaces the
``(ne, 5, 3)`` flux-tensor gather of the convective operator with a direct
per-edge projection: for endpoint states with velocity ``u``, pressure
``p`` and ``epp = rho*E + p``, the central edge flux along dual face
``eta`` (the 1/2 folded into ``eta/2``) is

    ``phi_mass = rho_0 vn_0 + rho_1 vn_1``,        ``vn = u . eta/2``
    ``phi_mom  = (rho vn u)_0 + (rho vn u)_1 + (p_0 + p_1) eta/2``
    ``phi_ener = (epp vn)_0 + (epp vn)_1``

which gathers six scalars per endpoint instead of the 15-component flux
tensor and never materialises the tensor at all.  ``p_0 + p_1`` doubles as
the pressure-switch denominator of the dissipation operator, and the edge
spectral radius ``lam`` is shared by the dissipation blend and the local
time step.

Numerics: the serial *seed* path in :class:`repro.solver.EulerSolver` is
left bit-identical; the fused pipeline reassociates sums (different
summation order, one shared pressure formula) and therefore matches to
roundoff — the tests pin ≤1e-12 relative agreement.

Allocation discipline: after the first stage warms the arena, a
:meth:`step` performs exactly one allocation — the returned state array —
and the residual/timestep/smoothing kernels perform none (the boundary
closure allocates small boundary-sized temporaries; see
``docs/performance.md``).
"""

from __future__ import annotations

from time import perf_counter as _perf_counter

import numpy as np

from ..constants import NVAR, RK_ALPHAS, RK_DISSIPATION_STAGES
from ..solver.bc import (FLOPS_PER_FARFIELD_VERTEX, FLOPS_PER_WALL_VERTEX,
                         BoundaryData, boundary_fluxes)
from ..solver.dissipation import (FLOPS_PER_EDGE_DISS_PASS1,
                                  FLOPS_PER_EDGE_DISS_PASS2,
                                  FLOPS_PER_VERTEX_DISS)
from ..solver.flux import FLOPS_PER_EDGE_CONVECTIVE, FLOPS_PER_VERTEX_FLUXVEC
from ..solver.smoothing import FLOPS_PER_EDGE_SMOOTH, FLOPS_PER_VERTEX_SMOOTH
from ..solver.timestep import FLOPS_PER_EDGE_TIMESTEP, FLOPS_PER_VERTEX_TIMESTEP
from ..perfmodel.flops import NullFlopCounter
from ..telemetry import get_tracer, traced
from .executors import SerialExecutor
from .workspace import StageWorkspace

__all__ = ["FusedResidual"]


class _EdgeStageState:
    """Per-edge endpoint gathers and wave data, valid for one stage state.

    One contiguous buffer per field (strided column views are ~3x slower
    in NumPy's ufunc loops).  ``0``/``1`` suffixes are the edge tail/head
    endpoints; ``vn`` is the *half* projected velocity ``u . eta/2``.
    """

    __slots__ = ("vel0", "vel1", "rho0", "rho1", "p0", "p1", "epp0", "epp1",
                 "vn0", "vn1", "psum", "lam")

    def __init__(self, ne: int):
        self.vel0 = np.empty((ne, 3))
        self.vel1 = np.empty((ne, 3))
        self.rho0 = np.empty(ne)
        self.rho1 = np.empty(ne)
        self.p0 = np.empty(ne)
        self.p1 = np.empty(ne)
        self.epp0 = np.empty(ne)
        self.epp1 = np.empty(ne)
        self.vn0 = np.empty(ne)
        self.vn1 = np.empty(ne)
        self.psum = np.empty(ne)         # p0 + p1: flux + switch denominator
        self.lam = np.empty(ne)          # convective spectral radius


class FusedResidual:
    """Fused residual/timestep/step kernels over preallocated buffers.

    Parameters
    ----------
    struct : :class:`repro.mesh.edges.EdgeStructure` of the mesh.
    bdata : matching :class:`repro.solver.bc.BoundaryData`.
    config : :class:`repro.solver.SolverConfig` (k2/k4/CFL/smoothing).
    w_inf : (5,) freestream conserved state for the farfield closure.
    executor : scatter executor (``signed``/``unsigned``/``neighbor_sum``
        with ``out=`` plus ``degree``); defaults to the serial CSR scatter.
    flops : optional analytic flop counter (same charges as the seed path).
    sanitizer : optional :class:`repro.analysis.BufferSanitizer`; defaults
        to the null sanitizer (zero overhead — a single attribute check
        per step).
    """

    def __init__(self, struct, bdata: BoundaryData, config, w_inf: np.ndarray,
                 executor=None, flops=None, tracer=None, sanitizer=None):
        self.struct = struct
        self.config = config
        self.w_inf = np.asarray(w_inf, dtype=np.float64)
        self.edges = struct.edges
        self.eta = np.ascontiguousarray(struct.eta)
        self.dual_volumes = struct.dual_volumes
        self.bdata = bdata
        self.flops = flops if flops is not None else NullFlopCounter()
        self.tracer = tracer if tracer is not None else get_tracer()
        nv, ne = struct.n_vertices, struct.n_edges
        self.n_vertices, self.n_edges = nv, ne
        self.e0 = np.ascontiguousarray(struct.edges[:, 0])
        self.e1 = np.ascontiguousarray(struct.edges[:, 1])
        self.executor = executor if executor is not None else \
            SerialExecutor(struct.edges, nv, tracer=self.tracer)
        self.ws = StageWorkspace(nv, ne)
        self.es = _EdgeStageState(ne)

        # --- geometry-only precomputations (seed recomputes these each call)
        # The 1/2 of the central flux average and of the edge-average wave
        # speeds is folded into the geometry, saving one (ne, 5) scaling
        # pass per convective evaluation.
        self.eta_half = 0.5 * self.eta
        self.eta_norm_half = 0.5 * np.linalg.norm(self.eta, axis=1)
        self.wall_nn = np.linalg.norm(bdata.wall_normals, axis=1) \
            if bdata.wall_vertices.size else np.zeros(0)
        self.far_nn = np.linalg.norm(bdata.far_normals, axis=1) \
            if bdata.far_vertices.size else np.zeros(0)
        self.boundary_mask = np.zeros(nv, dtype=bool)
        self.boundary_mask[bdata.wall_vertices] = True
        self.boundary_mask[bdata.far_vertices] = True
        self.smooth_denom = 1.0 + config.smoothing_eps * \
            self.executor.degree[:, None]

        # Stage-state generation: the edge stage state is derived lazily
        # from the workspace and cached until the next update_state().
        self._gen = 0
        self._es_gen = -1

        if sanitizer is None:
            from ..analysis.sanitize import NULL_SANITIZER
            sanitizer = NULL_SANITIZER
        self.sanitizer = sanitizer
        if sanitizer.enabled:
            named = {"ws." + n: getattr(self.ws, n)
                     for n in ("rho", "inv_rho", "vel", "p", "c", "epp")}
            named.update({"es." + n: getattr(self.es, n)
                          for n in _EdgeStageState.__slots__})
            sanitizer.check_distinct(named, where="FusedResidual workspace")

    # ------------------------------------------------------------------
    def update_state(self, w: np.ndarray) -> None:
        """Refresh the shared thermodynamic state for stage state ``w``."""
        self.ws.update(w)
        self._gen += 1

    def _edge_state(self) -> _EdgeStageState:
        """Endpoint gathers + wave speeds for the current stage (cached)."""
        es = self.es
        if self._es_gen == self._gen:
            return es
        ws = self.ws
        tmp = self.ws.edge_buf("es_tmp")
        for idx, vel, rho, p, epp, vn in (
                (self.e0, es.vel0, es.rho0, es.p0, es.epp0, es.vn0),
                (self.e1, es.vel1, es.rho1, es.p1, es.epp1, es.vn1)):
            np.take(ws.vel, idx, axis=0, out=vel)
            np.take(ws.rho, idx, out=rho)
            np.take(ws.p, idx, out=p)
            np.take(ws.epp, idx, out=epp)
            np.einsum("ed,ed->e", vel, self.eta_half, out=vn)
        np.add(es.p0, es.p1, out=es.psum)
        # lam = |(u0 + u1) . eta/2| + (c0 + c1) * |eta|/2
        np.add(es.vn0, es.vn1, out=es.lam)
        np.abs(es.lam, out=es.lam)
        np.take(ws.c, self.e0, out=tmp)
        cg = self.ws.edge_buf("es_cg")
        np.take(ws.c, self.e1, out=cg)
        np.add(cg, tmp, out=cg)
        np.multiply(cg, self.eta_norm_half, out=cg)
        np.add(es.lam, cg, out=es.lam)
        self._es_gen = self._gen
        return es

    # ------------------------------------------------------------------
    @traced("fused.convective")
    def convective(self, w: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Q(w) for the *current* stage state, including boundary closure.

        Uses the projected-flux identity (module docstring): with the 1/2
        folded into ``vn`` and ``eta_half``, the central edge flux is
        assembled directly from the gathered endpoint states.
        """
        ws = self.ws
        es = self._edge_state()
        phi = ws.edge_buf("phi", NVAR)
        mflux0 = ws.edge_buf("conv_mflux0")
        mflux1 = ws.edge_buf("conv_mflux1")
        tmp = ws.edge_buf("conv_tmp")
        tmp3 = ws.edge_buf("conv_tmp3", 3)
        tmp3b = ws.edge_buf("conv_tmp3b", 3)
        np.multiply(es.rho0, es.vn0, out=mflux0)         # rho_i u_i.eta/2
        np.multiply(es.rho1, es.vn1, out=mflux1)
        # mass
        np.add(mflux0, mflux1, out=phi[:, 0])
        # momentum: (rho vn u)_0 + (rho vn u)_1 + (p0 + p1) eta/2
        np.multiply(mflux0[:, None], es.vel0, out=tmp3)
        np.multiply(mflux1[:, None], es.vel1, out=tmp3b)
        np.add(tmp3, tmp3b, out=tmp3)
        np.multiply(es.psum[:, None], self.eta_half, out=tmp3b)
        np.add(tmp3, tmp3b, out=phi[:, 1:4])
        # energy: (rho E + p) * u.eta/2
        np.multiply(es.epp0, es.vn0, out=tmp)
        np.multiply(es.epp1, es.vn1, out=phi[:, 4])
        np.add(phi[:, 4], tmp, out=phi[:, 4])
        self.executor.signed(phi, out=out)
        boundary_fluxes(w, self.bdata, self.w_inf, out=out)
        self.flops.add("convective",
                       FLOPS_PER_EDGE_CONVECTIVE * self.n_edges
                       + FLOPS_PER_VERTEX_FLUXVEC * self.n_vertices)
        self.flops.add("boundary",
                       FLOPS_PER_WALL_VERTEX * self.bdata.wall_vertices.size
                       + FLOPS_PER_FARFIELD_VERTEX * self.bdata.far_vertices.size)
        return out

    # ------------------------------------------------------------------
    @traced("fused.dissipation")
    def dissipation(self, w: np.ndarray, out: np.ndarray) -> np.ndarray:
        """D(w) for the *current* stage state (JST blend, two edge passes)."""
        ws = self.ws
        cfg = self.config
        es = self._edge_state()
        # ---- pass 1: undivided Laplacian and pressure switch ----------
        wg0 = ws.edge_buf("diss_wg0", NVAR)
        wdiff = ws.edge_buf("diss_wdiff", NVAR)
        np.take(w, self.e1, axis=0, out=wdiff)
        np.take(w, self.e0, axis=0, out=wg0)
        np.subtract(wdiff, wg0, out=wdiff)               # w_j - w_i
        lap = ws.state_buf("diss_lap")
        self.executor.signed(wdiff, out=lap)

        pdiff = ws.edge_buf("diss_pdiff")
        np.subtract(es.p1, es.p0, out=pdiff)
        nu = ws.vertex_buf("diss_nu")
        den = ws.vertex_buf("diss_den")
        self.executor.signed(pdiff, out=nu)
        self.executor.unsigned(es.psum, out=den)
        np.abs(nu, out=nu)
        np.maximum(den, cfg.switch_floor, out=den)
        np.divide(nu, den, out=nu)

        # ---- pass 2: blended edge fluxes ------------------------------
        eps2 = ws.edge_buf("diss_eps2")
        np.take(nu, self.e0, out=eps2)
        nug1 = ws.edge_buf("diss_nug1")
        np.take(nu, self.e1, out=nug1)
        np.maximum(eps2, nug1, out=eps2)
        np.multiply(eps2, cfg.k2, out=eps2)
        eps4 = ws.edge_buf("diss_eps4")
        np.subtract(cfg.k4, eps2, out=eps4)
        np.maximum(eps4, 0.0, out=eps4)

        lapdiff = ws.edge_buf("diss_lapdiff", NVAR)
        np.take(lap, self.e1, axis=0, out=lapdiff)
        np.take(lap, self.e0, axis=0, out=wg0)           # reuse wg0 buffer
        np.subtract(lapdiff, wg0, out=lapdiff)           # L_j - L_i
        # d_edge = lam * (eps2 * (w_j - w_i) - eps4 * (L_j - L_i))
        np.multiply(wdiff, eps2[:, None], out=wdiff)
        np.multiply(lapdiff, eps4[:, None], out=lapdiff)
        np.subtract(wdiff, lapdiff, out=wdiff)
        np.multiply(wdiff, es.lam[:, None], out=wdiff)
        self.executor.signed(wdiff, out=out)
        self.flops.add("dissipation",
                       (FLOPS_PER_EDGE_DISS_PASS1 + FLOPS_PER_EDGE_DISS_PASS2)
                       * self.n_edges
                       + FLOPS_PER_VERTEX_DISS * self.n_vertices)
        return out

    # ------------------------------------------------------------------
    def residual(self, w: np.ndarray, out: np.ndarray | None = None,
                 update_state: bool = True) -> np.ndarray:
        """Full residual ``R(w) = Q(w) - D(w)`` (one shared thermo pass)."""
        tracer = self.tracer
        t0 = _perf_counter() if tracer.enabled else 0.0
        if update_state:
            self.update_state(w)
        if out is None:
            out = np.empty((self.n_vertices, NVAR))
        diss = self.ws.state_buf("resid_diss")
        self.dissipation(w, out=diss)
        q = self.ws.state_buf("resid_q")
        self.convective(w, out=q)
        np.subtract(q, diss, out=out)
        if tracer.enabled:
            # Achieved per-executor throughput (observatory rate table).
            # One perf_counter pair + two gauges per residual evaluation;
            # nothing on the disabled path but the attribute check above.
            dt = _perf_counter() - t0
            if dt > 0.0:
                kind = getattr(self.executor, "kind", "fused")
                tracer.gauge(f"observatory.rate.{kind}.edges_per_s",
                             self.n_edges / dt)
                tracer.gauge(f"observatory.rate.{kind}.vertices_per_s",
                             self.n_vertices / dt)
        return out

    # ------------------------------------------------------------------
    @traced("fused.timestep")
    def timestep(self, w: np.ndarray, out: np.ndarray,
                 update_state: bool = False) -> np.ndarray:
        """Per-vertex local time step, sharing the stage wave speeds."""
        if update_state:
            self.update_state(w)
        ws = self.ws
        es = self._edge_state()
        sigma = ws.vertex_buf("dt_sigma")
        self.executor.unsigned(es.lam, out=sigma)
        for verts, normals, nn in (
                (self.bdata.wall_vertices, self.bdata.wall_normals, self.wall_nn),
                (self.bdata.far_vertices, self.bdata.far_normals, self.far_nn)):
            if verts.size:
                un = np.abs(np.einsum("id,id->i", ws.vel[verts], normals))
                sigma[verts] += un + ws.c[verts] * nn
        np.maximum(sigma, 1e-300, out=sigma)
        np.divide(self.dual_volumes, sigma, out=out)
        np.multiply(out, self.config.cfl, out=out)
        self.flops.add("timestep",
                       FLOPS_PER_EDGE_TIMESTEP * self.n_edges
                       + FLOPS_PER_VERTEX_TIMESTEP * self.n_vertices)
        return out

    # ------------------------------------------------------------------
    @traced("fused.smooth")
    def smooth(self, r: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Jacobi residual averaging with frozen boundary rows."""
        cfg = self.config
        if cfg.smoothing_sweeps <= 0 or cfg.smoothing_eps <= 0.0:
            np.copyto(out, r)
            return out
        ws = self.ws
        ns = ws.state_buf("smooth_ns")
        smoothed = r
        for _ in range(cfg.smoothing_sweeps):
            self.executor.neighbor_sum(smoothed, out=ns)
            np.multiply(ns, cfg.smoothing_eps, out=ns)
            np.add(ns, r, out=ns)
            np.divide(ns, self.smooth_denom, out=out)
            out[self.boundary_mask] = r[self.boundary_mask]
            smoothed = out
        self.flops.add("smoothing",
                       cfg.smoothing_sweeps
                       * (FLOPS_PER_EDGE_SMOOTH * self.n_edges
                          + FLOPS_PER_VERTEX_SMOOTH * self.n_vertices))
        return out

    # ------------------------------------------------------------------
    @traced("fused.step")
    def step(self, w: np.ndarray,
             forcing: np.ndarray | None = None) -> tuple[np.ndarray, float]:
        """One five-stage time step; returns ``(w_new, stage0_resnorm)``.

        ``stage0_resnorm`` is the density-residual RMS of the raw stage-0
        residual — exactly ``R(w)`` of the input state, captured for free
        so the driver need not re-evaluate it for monitoring.  The single
        allocation per call is the returned state array.
        """
        cfg = self.config
        ws = self.ws
        w0 = w
        self.update_state(w0)
        dtv = ws.vertex_buf("step_dtv")
        self.timestep(w0, out=dtv)
        np.divide(dtv, self.dual_volumes, out=dtv)
        dtv_col = dtv[:, None]

        diss = ws.state_buf("step_diss")
        q = ws.state_buf("step_q")
        r = ws.state_buf("step_r")
        rbar = ws.state_buf("step_rbar")
        resnorm_buf = ws.vertex_buf("step_resnorm")
        wk = np.empty_like(w0)  # noqa: RA001 - the one allocation: returned
        cur = w0
        resnorm = float("nan")
        san = self.sanitizer
        for stage, alpha in enumerate(RK_ALPHAS):
            if san.enabled:
                san.stage_begin()
            with self.tracer.span("rk.stage"):
                if stage > 0:
                    self.update_state(cur)
                if stage in RK_DISSIPATION_STAGES:
                    self.dissipation(cur, out=diss)
                self.convective(cur, out=q)
                np.subtract(q, diss, out=r)
                if stage == 0:
                    # Raw R(w0): reused by run() for convergence monitoring.
                    np.divide(r[:, 0], self.dual_volumes, out=resnorm_buf)
                    np.multiply(resnorm_buf, resnorm_buf, out=resnorm_buf)
                    resnorm = float(np.sqrt(np.mean(resnorm_buf)))
                if forcing is not None:
                    np.add(r, forcing, out=r)
                if cfg.residual_smoothing:
                    self.smooth(r, out=rbar)
                    upd = rbar
                else:
                    upd = r
                # wk = w0 - alpha * dt/V * r
                np.multiply(upd, dtv_col, out=upd)
                np.multiply(upd, -alpha, out=upd)
                np.add(w0, upd, out=wk)
                self.flops.add("update", 3 * NVAR * self.n_vertices)
                cur = wk
            if san.enabled:
                san.stage_end(stage)
        if san.enabled:
            san.step_end(ws)
        return wk, resnorm
