"""The batched ensemble residual pipeline: many flow conditions per sweep.

One :class:`EnsembleResidual` advances ``n_scenarios`` independent flow
states through the five-stage scheme **in a single pass over the edge
arrays**.  The mesh geometry, the RCM edge ordering, the CSR incidence
operators and every gather index are shared across the batch; only the
state carries a scenario axis.

Layout
------
The public ensemble API is scenario-major ``(n_scenarios, nv, 5)``; the
hot path stores the batch scenario-*minor*: ``wT`` has shape
``(nv, NVAR, S)``, vertex fields are ``(nv, S)``, edge buffers
``(ne, ..., S)``.  The trailing scenario axis is what makes batching pay
on an unstructured mesh: an indirect gather ``wT[e0]`` moves ``S``
contiguous doubles per index read (full cache lines instead of one
8-byte lane), and the CSR scatters run with ``n_vecs = NVAR * S`` so the
index traffic of the incidence matrix is amortised over the whole batch.

Two layout rules keep the *elementwise* ops at sequential speed (NumPy
runs a strided or broadcast ufunc as an outer loop over length-``S``
inner loops, which at small ``S`` costs more in loop setup than the
arithmetic itself):

* **small axes lead** — multi-component buffers that are consumed one
  component at a time (velocities, the expanded geometry) are stored
  component-major ``(3, n, S)`` so each component is a flat contiguous
  ``(n, S)`` array the ufunc can collapse to one long loop;
* **no column broadcasts against the batch** — per-edge geometric
  constants (``eta/2`` and ``|eta|/2``) are pre-expanded to contiguous
  ``(ne, S)`` copies at pipeline construction instead of broadcasting
  ``(ne, 1)`` columns in the hot loop.

Only the buffers fed to the executor's CSR scatters (``phi``, ``wdiff``
and friends) keep the ``(ne, NVAR, S)`` interleaved layout the
``n_vecs``-vector products require; their few strided column writes are
the price of the amortised scatter.

Numerics
--------
Every operation mirrors :class:`~repro.kernels.fused.FusedResidual`
element for element: all batched ops are either elementwise over the
scenario axis or fixed-order short reductions (the ``d``-contractions of
``einsum``, the per-slot CSR column accumulation), and the per-scenario
residual norms are taken as 1-D pairwise means over each scenario column
(NumPy's pairwise reduction order depends on element count, not stride).
Scenario ``s`` of a batched step is therefore **bit-identical** to the
same step of a sequential ``executor="fused"`` solver with that
scenario's ``w_inf``/CFL, and scenario slots never interact — dropping a
converged scenario from the batch does not perturb the others.  The
tests in ``tests/kernels/test_ensemble.py`` pin this down.

Per-scenario conditions
-----------------------
``w_inf`` is one conserved freestream row per scenario (the farfield
characteristic closure evaluates per-row freestream invariants; see
:func:`repro.solver.bc.characteristic_state`), and ``cfl`` is a
per-scenario vector broadcast over the local time step.  ``k2``/``k4``
and the smoothing parameters remain per-batch (they come from the shared
:class:`~repro.solver.SolverConfig`).

Allocation discipline matches the fused pipeline: after warmup a
:meth:`step` allocates only the returned state array (the boundary
closure allocates boundary-sized temporaries, exactly like the
sequential path).
"""

from __future__ import annotations

from time import perf_counter as _perf_counter

import numpy as np

from ..constants import GAMMA, GAMMA_M1, NVAR, RK_ALPHAS, RK_DISSIPATION_STAGES
from ..perfmodel.flops import NullFlopCounter
from ..solver.bc import (FLOPS_PER_FARFIELD_VERTEX, FLOPS_PER_WALL_VERTEX,
                         BoundaryData, characteristic_state)
from ..solver.dissipation import (FLOPS_PER_EDGE_DISS_PASS1,
                                  FLOPS_PER_EDGE_DISS_PASS2,
                                  FLOPS_PER_VERTEX_DISS)
from ..solver.flux import FLOPS_PER_EDGE_CONVECTIVE, FLOPS_PER_VERTEX_FLUXVEC
from ..solver.smoothing import FLOPS_PER_EDGE_SMOOTH, FLOPS_PER_VERTEX_SMOOTH
from ..solver.timestep import (FLOPS_PER_EDGE_TIMESTEP,
                               FLOPS_PER_VERTEX_TIMESTEP)
from ..state import flux_vectors, pressure
from ..telemetry import get_tracer, traced
from .executors import SerialExecutor

__all__ = ["EnsembleWorkspace", "EnsembleResidual",
           "batch_major", "scenario_major"]


def batch_major(w_scenarios: np.ndarray) -> np.ndarray:
    """``(S, nv, 5)`` scenario-major states -> contiguous ``(nv, 5, S)``."""
    w_scenarios = np.asarray(w_scenarios, dtype=np.float64)
    if w_scenarios.ndim != 3 or w_scenarios.shape[2] != NVAR:
        raise ValueError(
            f"expected (n_scenarios, nv, {NVAR}), got {w_scenarios.shape}")
    return np.ascontiguousarray(np.moveaxis(w_scenarios, 0, -1))


def scenario_major(wT: np.ndarray) -> np.ndarray:
    """``(nv, 5, S)`` batch layout -> contiguous ``(S, nv, 5)``."""
    return np.ascontiguousarray(np.moveaxis(wT, -1, 0))


def _dot3(a: np.ndarray, b: np.ndarray, out: np.ndarray,
          tmp: np.ndarray) -> np.ndarray:
    """Batched 3-vector dot product in the sequential einsum's sum order.

    NumPy's ``einsum("id,id->i", ...)`` on a stride-1 length-3 reduction
    axis runs a two-accumulator unrolled loop whose effective association
    is ``(a0*b0 + a2*b2) + a1*b1`` — *not* the naive forward order the
    strided batched contraction would use.  Replicating that association
    here keeps every batched scenario bit-identical to its sequential
    fused solve.  ``a`` and ``b`` are component-major — ``a[d]`` is the
    ``d``-th component, ``(n, S)`` (contiguous in the hot callers) —
    and ``b[d]`` broadcasts against ``a[d]``; ``out``/``tmp`` are
    ``(n, S)``.
    """
    np.multiply(a[0], b[0], out=out)
    np.multiply(a[2], b[2], out=tmp)
    np.add(out, tmp, out=out)
    np.multiply(a[1], b[1], out=tmp)
    np.add(out, tmp, out=out)
    return out


class EnsembleWorkspace:
    """Trailing-scenario-axis twin of :class:`StageWorkspace`.

    After :meth:`update` the thermodynamic fields describe all scenarios
    of the current stage state ``wT`` of shape ``(nv, NVAR, S)``:
    ``rho``/``inv_rho``/``p``/``c``/``epp`` are ``(nv, S)`` and ``vel``
    is component-major ``(3, nv, S)`` (each component a contiguous
    ``(nv, S)`` plane — see the module docstring's layout rules).  The
    arena hands out scratch buffers whose trailing axis is the scenario
    axis.
    """

    def __init__(self, n_vertices: int, n_edges: int, n_scenarios: int):
        self.n_vertices = int(n_vertices)
        self.n_edges = int(n_edges)
        self.n_scenarios = int(n_scenarios)
        nv, ns = self.n_vertices, self.n_scenarios
        self.rho = np.empty((nv, ns))
        self.inv_rho = np.empty((nv, ns))
        self.vel = np.empty((3, nv, ns))
        self.p = np.empty((nv, ns))
        self.c = np.empty((nv, ns))
        self.epp = np.empty((nv, ns))
        self._q2 = np.empty((nv, ns))
        self._q2tmp = np.empty((nv, ns))
        self._arena: dict[str, np.ndarray] = {}
        #: Arena allocation count — stops growing once the pipeline warms
        #: up (same zero-allocation contract as the sequential arena).
        self.n_arena_allocs = 0

    # ------------------------------------------------------------------
    def update(self, wT: np.ndarray) -> None:
        """Recompute the shared thermodynamic state for stage state ``wT``.

        Operation-for-operation the batched twin of
        :meth:`StageWorkspace.update` (same ufuncs, same order — the
        scenario axis rides along elementwise).
        """
        np.copyto(self.rho, wT[:, 0, :])
        np.divide(1.0, self.rho, out=self.inv_rho)
        for d in range(3):
            np.multiply(wT[:, 1 + d, :], self.inv_rho, out=self.vel[d])
        # p = (gamma-1) (rho E - 1/2 m . u)
        _dot3(wT[:, 1:4, :].transpose(1, 0, 2), self.vel,
              self._q2, self._q2tmp)
        np.multiply(self._q2, -0.5, out=self.p)
        np.add(self.p, wT[:, 4, :], out=self.p)
        np.multiply(self.p, GAMMA_M1, out=self.p)
        # c = sqrt(gamma p / rho)
        np.multiply(self.p, GAMMA * self.inv_rho, out=self.c)
        np.sqrt(self.c, out=self.c)
        np.add(wT[:, 4, :], self.p, out=self.epp)

    # ------------------------------------------------------------------
    def buf(self, name: str, shape: tuple[int, ...],
            dtype=np.float64) -> np.ndarray:
        """Named preallocated scratch buffer (contents unspecified)."""
        arr = self._arena.get(name)
        if arr is None:
            arr = np.empty(shape, dtype=dtype)
            self._arena[name] = arr
            self.n_arena_allocs += 1
            return arr
        if arr.shape != tuple(shape) or arr.dtype != np.dtype(dtype):
            raise ValueError(
                f"arena buffer {name!r} already exists with shape "
                f"{arr.shape}/{arr.dtype}, requested {tuple(shape)}/{dtype}")
        return arr

    def edge_buf(self, name: str, *mid: int) -> np.ndarray:
        """Scratch buffer of shape ``(n_edges, *mid, n_scenarios)``."""
        return self.buf(name, (self.n_edges,) + mid + (self.n_scenarios,))

    def vertex_buf(self, name: str, *mid: int) -> np.ndarray:
        """Scratch buffer of shape ``(n_vertices, *mid, n_scenarios)``."""
        return self.buf(name, (self.n_vertices,) + mid + (self.n_scenarios,))

    def state_buf(self, name: str) -> np.ndarray:
        """Scratch buffer of shape ``(n_vertices, NVAR, n_scenarios)``."""
        return self.buf(name, (self.n_vertices, NVAR, self.n_scenarios))


class _EnsembleEdgeState:
    """Per-edge endpoint gathers for one stage, all scenarios at once.

    The trailing axis is the scenario axis; each field is the batched
    twin of the corresponding :class:`_EdgeStageState` buffer.  The
    velocities are component-major ``(3, ne, S)`` so every elementwise
    consumer reads flat contiguous ``(ne, S)`` planes.
    """

    __slots__ = ("vel0", "vel1", "rho0", "rho1", "p0", "p1", "epp0", "epp1",
                 "vn0", "vn1", "psum", "lam")

    def __init__(self, ne: int, ns: int):
        self.vel0 = np.empty((3, ne, ns))
        self.vel1 = np.empty((3, ne, ns))
        self.rho0 = np.empty((ne, ns))
        self.rho1 = np.empty((ne, ns))
        self.p0 = np.empty((ne, ns))
        self.p1 = np.empty((ne, ns))
        self.epp0 = np.empty((ne, ns))
        self.epp1 = np.empty((ne, ns))
        self.vn0 = np.empty((ne, ns))
        self.vn1 = np.empty((ne, ns))
        self.psum = np.empty((ne, ns))
        self.lam = np.empty((ne, ns))


class EnsembleResidual:
    """Batched residual/timestep/step kernels over one mesh.

    Parameters
    ----------
    struct : :class:`repro.mesh.edges.EdgeStructure` (already reordered
        if the caller reorders — the batch shares whatever edge order the
        sequential pipeline uses, which is what makes the per-scenario
        bit-identity hold).
    bdata : matching :class:`repro.solver.bc.BoundaryData`.
    config : shared :class:`repro.solver.SolverConfig` (k2/k4/smoothing;
        ``config.cfl`` is the default when no per-scenario CFL is given).
    w_inf : ``(n_scenarios, 5)`` per-scenario freestream conserved rows.
    cfl : optional per-scenario CFL vector ``(n_scenarios,)``.
    executor : scatter executor (``signed``/``unsigned``/``neighbor_sum``
        with ``out=`` plus ``degree``); defaults to the serial CSR
        scatter.  Compiled executors are *not* supported here (their
        kernels are single-state); the caller falls back to CSR.
    """

    def __init__(self, struct, bdata: BoundaryData, config,
                 w_inf: np.ndarray, cfl=None, executor=None, flops=None,
                 tracer=None):
        self.struct = struct
        self.config = config
        self.edges = struct.edges
        self.eta = np.ascontiguousarray(struct.eta)
        self.dual_volumes = struct.dual_volumes
        self.bdata = bdata
        self.flops = flops if flops is not None else NullFlopCounter()
        self.tracer = tracer if tracer is not None else get_tracer()
        nv, ne = struct.n_vertices, struct.n_edges
        self.n_vertices, self.n_edges = nv, ne
        w_inf = np.asarray(w_inf, dtype=np.float64)
        if w_inf.ndim != 2 or w_inf.shape[1] != NVAR:
            raise ValueError(
                f"w_inf must be (n_scenarios, {NVAR}), got {w_inf.shape}")
        ns = w_inf.shape[0]
        self.n_scenarios = ns
        self.e0 = np.ascontiguousarray(struct.edges[:, 0])
        self.e1 = np.ascontiguousarray(struct.edges[:, 1])
        self.executor = executor if executor is not None else \
            SerialExecutor(struct.edges, nv, tracer=self.tracer)
        self.ws = EnsembleWorkspace(nv, ne, ns)
        self.es = _EnsembleEdgeState(ne, ns)

        # Geometry precomputations shared with the fused pipeline.
        self.eta_half = 0.5 * self.eta
        self.eta_norm_half = 0.5 * np.linalg.norm(self.eta, axis=1)
        # Expanded batch copies of the per-edge constants (module
        # docstring: broadcasting an (ne, 1) column against the batch
        # axis degrades every elementwise op to length-S inner loops).
        # ~4 MB per scenario column on the 144k-edge box27 — paid once
        # per pipeline width at construction.
        self.eta_half_x = np.ascontiguousarray(
            np.broadcast_to(self.eta_half.T[:, :, None], (3, ne, ns)))
        self.eta_norm_half_x = np.ascontiguousarray(
            np.broadcast_to(self.eta_norm_half[:, None], (ne, ns)))
        self.wall_nn = np.linalg.norm(bdata.wall_normals, axis=1) \
            if bdata.wall_vertices.size else np.zeros(0)
        self.far_nn = np.linalg.norm(bdata.far_normals, axis=1) \
            if bdata.far_vertices.size else np.zeros(0)
        self.boundary_mask = np.zeros(nv, dtype=bool)
        self.boundary_mask[bdata.wall_vertices] = True
        self.boundary_mask[bdata.far_vertices] = True
        self.smooth_denom = 1.0 + config.smoothing_eps * \
            self.executor.degree[:, None, None]

        self._gen = 0
        self._es_gen = -1
        self._resnorms = np.empty(ns)
        self.set_conditions(w_inf, cfl)
        if self.tracer.enabled:
            self.tracer.gauge("ensemble.batch", float(ns))

    # ------------------------------------------------------------------
    def set_conditions(self, w_inf: np.ndarray, cfl=None) -> None:
        """(Re)bind the per-scenario flow conditions of the batch.

        ``w_inf`` is ``(n_scenarios, 5)``; ``cfl`` a scalar or
        ``(n_scenarios,)`` vector (``None`` takes ``config.cfl`` for
        every scenario).  The farfield closure's flattened per-row
        constant arrays are rebuilt here — this is setup code, outside
        the hot path, so the tiled allocations are fine.
        """
        ns = self.n_scenarios
        w_inf = np.asarray(w_inf, dtype=np.float64)
        if w_inf.shape != (ns, NVAR):
            raise ValueError(
                f"w_inf must be ({ns}, {NVAR}), got {w_inf.shape}")
        self.w_inf = np.ascontiguousarray(w_inf)
        if cfl is None:
            cfl = self.config.cfl
        cfl = np.asarray(cfl, dtype=np.float64)
        self.cfl = np.ascontiguousarray(np.broadcast_to(cfl, (ns,)))
        # Flattened (n_far * S, ...) row constants for the characteristic
        # closure: row v*S + s pairs farfield vertex v with scenario s,
        # matching the (vertex, scenario) reshape of the gathered states.
        nf = self.bdata.far_vertices.size
        if nf:
            self._far_unit_rows = np.repeat(self.bdata.far_unit, ns, axis=0)
            self._far_normals_rows = np.repeat(self.bdata.far_normals, ns,
                                               axis=0)
            self._winf_rows = np.tile(self.w_inf, (nf, 1))
        else:
            self._far_unit_rows = np.zeros((0, 3))
            self._far_normals_rows = np.zeros((0, 3))
            self._winf_rows = np.zeros((0, NVAR))

    # ------------------------------------------------------------------
    def update_state(self, wT: np.ndarray) -> None:
        """Refresh the shared thermodynamic state for stage state ``wT``."""
        self.ws.update(wT)
        self._gen += 1

    def _edge_state(self) -> _EnsembleEdgeState:
        """Endpoint gathers + wave speeds for the current stage (cached).

        Batched twin of :meth:`FusedResidual._edge_state`: the same
        gathers move ``S`` contiguous doubles per index.
        """
        es = self.es
        if self._es_gen == self._gen:
            return es
        ws = self.ws
        tmp = ws.edge_buf("es_tmp")
        for idx, vel, rho, p, epp, vn in (
                (self.e0, es.vel0, es.rho0, es.p0, es.epp0, es.vn0),
                (self.e1, es.vel1, es.rho1, es.p1, es.epp1, es.vn1)):
            for d in range(3):
                np.take(ws.vel[d], idx, axis=0, out=vel[d])
            np.take(ws.rho, idx, axis=0, out=rho)
            np.take(ws.p, idx, axis=0, out=p)
            np.take(ws.epp, idx, axis=0, out=epp)
            _dot3(vel, self.eta_half_x, vn, tmp)
        np.add(es.p0, es.p1, out=es.psum)
        # lam = |(u0 + u1) . eta/2| + (c0 + c1) * |eta|/2
        np.add(es.vn0, es.vn1, out=es.lam)
        np.abs(es.lam, out=es.lam)
        np.take(ws.c, self.e0, axis=0, out=tmp)
        cg = ws.edge_buf("es_cg")
        np.take(ws.c, self.e1, axis=0, out=cg)
        np.add(cg, tmp, out=cg)
        np.multiply(cg, self.eta_norm_half_x, out=cg)
        np.add(es.lam, cg, out=es.lam)
        self._es_gen = self._gen
        return es

    # ------------------------------------------------------------------
    def _boundary_fluxes(self, wT: np.ndarray, out: np.ndarray) -> None:
        """Batched boundary closure of the convective operator.

        Boundary rows are flattened to ``(n_boundary * S, 5)`` so the
        shared :func:`pressure` / :func:`characteristic_state` /
        :func:`flux_vectors` row kernels evaluate every scenario in one
        call, then scattered back onto the batch layout.  Allocates
        boundary-sized temporaries only (matching the sequential
        closure's behaviour).
        """
        bdata = self.bdata
        ws = self.ws
        ns = self.n_scenarios
        nw = bdata.wall_vertices.size
        if nw:
            g = ws.buf("bc_wall_g", (nw, NVAR, ns))
            np.take(wT, bdata.wall_vertices, axis=0, out=g)
            flat = ws.buf("bc_wall_flat", (nw * ns, NVAR))
            np.copyto(flat.reshape(nw, ns, NVAR), g.transpose(0, 2, 1))
            p_wall = pressure(flat).reshape(nw, ns)
            out[bdata.wall_vertices, 1:4, :] += \
                p_wall[:, None, :] * bdata.wall_normals[:, :, None]
        nf = bdata.far_vertices.size
        if nf:
            g = ws.buf("bc_far_g", (nf, NVAR, ns))
            np.take(wT, bdata.far_vertices, axis=0, out=g)
            flat = ws.buf("bc_far_flat", (nf * ns, NVAR))
            np.copyto(flat.reshape(nf, ns, NVAR), g.transpose(0, 2, 1))
            w_b = characteristic_state(flat, self._far_unit_rows,
                                       self._winf_rows)
            f_b = flux_vectors(w_b)
            fl = np.einsum("ikd,id->ik", f_b, self._far_normals_rows)
            out[bdata.far_vertices] += \
                fl.reshape(nf, ns, NVAR).transpose(0, 2, 1)

    # ------------------------------------------------------------------
    @traced("ensemble.convective")
    def convective(self, wT: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Q(w) for every scenario of the current stage state."""
        ws = self.ws
        es = self._edge_state()
        phi = ws.edge_buf("phi", NVAR)
        mflux0 = ws.edge_buf("conv_mflux0")
        mflux1 = ws.edge_buf("conv_mflux1")
        tmp = ws.edge_buf("conv_tmp")
        tmpb = ws.edge_buf("conv_tmpb")
        np.multiply(es.rho0, es.vn0, out=mflux0)         # rho_i u_i.eta/2
        np.multiply(es.rho1, es.vn1, out=mflux1)
        # mass
        np.add(mflux0, mflux1, out=phi[:, 0, :])
        # momentum: (rho vn u)_0 + (rho vn u)_1 + (p0 + p1) eta/2,
        # assembled per component over contiguous (ne, S) planes in the
        # sequential association ((A_d + B_d) + C_d).
        for d in range(3):
            np.multiply(mflux0, es.vel0[d], out=tmp)
            np.multiply(mflux1, es.vel1[d], out=tmpb)
            np.add(tmp, tmpb, out=tmp)
            np.multiply(es.psum, self.eta_half_x[d], out=tmpb)
            np.add(tmp, tmpb, out=phi[:, 1 + d, :])
        # energy: (rho E + p) * u.eta/2
        np.multiply(es.epp0, es.vn0, out=tmp)
        np.multiply(es.epp1, es.vn1, out=phi[:, 4, :])
        np.add(phi[:, 4, :], tmp, out=phi[:, 4, :])
        self.executor.signed(phi, out=out)
        self._boundary_fluxes(wT, out)
        ns = self.n_scenarios
        self.flops.add("convective",
                       ns * (FLOPS_PER_EDGE_CONVECTIVE * self.n_edges
                             + FLOPS_PER_VERTEX_FLUXVEC * self.n_vertices))
        self.flops.add("boundary",
                       ns * (FLOPS_PER_WALL_VERTEX
                             * self.bdata.wall_vertices.size
                             + FLOPS_PER_FARFIELD_VERTEX
                             * self.bdata.far_vertices.size))
        return out

    # ------------------------------------------------------------------
    @traced("ensemble.dissipation")
    def dissipation(self, wT: np.ndarray, out: np.ndarray) -> np.ndarray:
        """D(w) for every scenario (JST blend, two edge passes)."""
        ws = self.ws
        cfg = self.config
        es = self._edge_state()
        # ---- pass 1: undivided Laplacian and pressure switch ----------
        wg0 = ws.edge_buf("diss_wg0", NVAR)
        wdiff = ws.edge_buf("diss_wdiff", NVAR)
        np.take(wT, self.e1, axis=0, out=wdiff)
        np.take(wT, self.e0, axis=0, out=wg0)
        np.subtract(wdiff, wg0, out=wdiff)               # w_j - w_i
        lap = ws.state_buf("diss_lap")
        self.executor.signed(wdiff, out=lap)

        pdiff = ws.edge_buf("diss_pdiff")
        np.subtract(es.p1, es.p0, out=pdiff)
        nu = ws.vertex_buf("diss_nu")
        den = ws.vertex_buf("diss_den")
        self.executor.signed(pdiff, out=nu)
        self.executor.unsigned(es.psum, out=den)
        np.abs(nu, out=nu)
        np.maximum(den, cfg.switch_floor, out=den)
        np.divide(nu, den, out=nu)

        # ---- pass 2: blended edge fluxes ------------------------------
        eps2 = ws.edge_buf("diss_eps2")
        np.take(nu, self.e0, axis=0, out=eps2)
        nug1 = ws.edge_buf("diss_nug1")
        np.take(nu, self.e1, axis=0, out=nug1)
        np.maximum(eps2, nug1, out=eps2)
        np.multiply(eps2, cfg.k2, out=eps2)
        eps4 = ws.edge_buf("diss_eps4")
        np.subtract(cfg.k4, eps2, out=eps4)
        np.maximum(eps4, 0.0, out=eps4)

        lapdiff = ws.edge_buf("diss_lapdiff", NVAR)
        np.take(lap, self.e1, axis=0, out=lapdiff)
        np.take(lap, self.e0, axis=0, out=wg0)           # reuse wg0 buffer
        np.subtract(lapdiff, wg0, out=lapdiff)           # L_j - L_i
        # d_edge = lam * (eps2 * (w_j - w_i) - eps4 * (L_j - L_i))
        np.multiply(wdiff, eps2[:, None, :], out=wdiff)
        np.multiply(lapdiff, eps4[:, None, :], out=lapdiff)
        np.subtract(wdiff, lapdiff, out=wdiff)
        np.multiply(wdiff, es.lam[:, None, :], out=wdiff)
        self.executor.signed(wdiff, out=out)
        self.flops.add("dissipation",
                       self.n_scenarios
                       * ((FLOPS_PER_EDGE_DISS_PASS1
                           + FLOPS_PER_EDGE_DISS_PASS2) * self.n_edges
                          + FLOPS_PER_VERTEX_DISS * self.n_vertices))
        return out

    # ------------------------------------------------------------------
    def residual(self, wT: np.ndarray, out: np.ndarray | None = None,
                 update_state: bool = True) -> np.ndarray:
        """Full residual ``R(w) = Q(w) - D(w)`` for every scenario."""
        tracer = self.tracer
        t0 = _perf_counter() if tracer.enabled else 0.0
        if update_state:
            self.update_state(wT)
        if out is None:
            out = np.empty((self.n_vertices, NVAR, self.n_scenarios))
        diss = self.ws.state_buf("resid_diss")
        self.dissipation(wT, out=diss)
        q = self.ws.state_buf("resid_q")
        self.convective(wT, out=q)
        np.subtract(q, diss, out=out)
        if tracer.enabled:
            dt = _perf_counter() - t0
            if dt > 0.0:
                # Per-scenario throughput of the batched evaluation (the
                # observatory rate table groups by the kind segment).
                kind = getattr(self.executor, "kind", "fused")
                ns = self.n_scenarios
                tracer.gauge(f"observatory.rate.ensemble-{kind}.edges_per_s",
                             self.n_edges * ns / dt)
                tracer.gauge(
                    f"observatory.rate.ensemble-{kind}.scenarios_per_s",
                    ns / dt)
        return out

    # ------------------------------------------------------------------
    @traced("ensemble.timestep")
    def timestep(self, wT: np.ndarray, out: np.ndarray,
                 update_state: bool = False) -> np.ndarray:
        """Per-vertex, per-scenario local time step (per-scenario CFL)."""
        if update_state:
            self.update_state(wT)
        ws = self.ws
        es = self._edge_state()
        sigma = ws.vertex_buf("dt_sigma")
        self.executor.unsigned(es.lam, out=sigma)
        for name, verts, normals, nn in (
                ("wall", self.bdata.wall_vertices, self.bdata.wall_normals,
                 self.wall_nn),
                ("far", self.bdata.far_vertices, self.bdata.far_normals,
                 self.far_nn)):
            if verts.size:
                un = ws.buf(f"dt_un_{name}",
                            (verts.size, self.n_scenarios))
                tmp = ws.buf(f"dt_untmp_{name}",
                             (verts.size, self.n_scenarios))
                vg = ws.buf(f"dt_vg_{name}",
                            (3, verts.size, self.n_scenarios))
                for d in range(3):
                    np.take(ws.vel[d], verts, axis=0, out=vg[d])
                _dot3(vg, normals.T[:, :, None], un, tmp)
                np.abs(un, out=un)
                sigma[verts] += un + ws.c[verts] * nn[:, None]
        np.maximum(sigma, 1e-300, out=sigma)
        np.divide(self.dual_volumes[:, None], sigma, out=out)
        np.multiply(out, self.cfl, out=out)
        self.flops.add("timestep",
                       self.n_scenarios
                       * (FLOPS_PER_EDGE_TIMESTEP * self.n_edges
                          + FLOPS_PER_VERTEX_TIMESTEP * self.n_vertices))
        return out

    # ------------------------------------------------------------------
    @traced("ensemble.smooth")
    def smooth(self, r: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Jacobi residual averaging, boundary rows frozen, all scenarios."""
        cfg = self.config
        if cfg.smoothing_sweeps <= 0 or cfg.smoothing_eps <= 0.0:
            np.copyto(out, r)
            return out
        ws = self.ws
        ns = ws.state_buf("smooth_ns")
        smoothed = r
        for _ in range(cfg.smoothing_sweeps):
            self.executor.neighbor_sum(smoothed, out=ns)
            np.multiply(ns, cfg.smoothing_eps, out=ns)
            np.add(ns, r, out=ns)
            np.divide(ns, self.smooth_denom, out=out)
            out[self.boundary_mask] = r[self.boundary_mask]
            smoothed = out
        self.flops.add("smoothing",
                       self.n_scenarios * cfg.smoothing_sweeps
                       * (FLOPS_PER_EDGE_SMOOTH * self.n_edges
                          + FLOPS_PER_VERTEX_SMOOTH * self.n_vertices))
        return out

    # ------------------------------------------------------------------
    @traced("ensemble.step")
    def step(self, wT: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One five-stage step of every scenario.

        Returns ``(wT_new, resnorms)`` where ``resnorms`` is the
        per-scenario density-residual RMS of the *input* states (stage-0
        capture, same contract as :meth:`FusedResidual.step`).  The
        returned norms array is an internal buffer reused by the next
        call — consume it before stepping again.
        """
        cfg = self.config
        ws = self.ws
        w0 = wT
        self.update_state(w0)
        dtv = ws.vertex_buf("step_dtv")
        self.timestep(w0, out=dtv)
        np.divide(dtv, self.dual_volumes[:, None], out=dtv)
        dtv_col = dtv[:, None, :]

        diss = ws.state_buf("step_diss")
        q = ws.state_buf("step_q")
        r = ws.state_buf("step_r")
        rbar = ws.state_buf("step_rbar")
        resnorm_buf = ws.vertex_buf("step_resnorm")
        resnorms = self._resnorms
        wk = np.empty_like(w0)  # noqa: RA001 - the one allocation: returned
        cur = w0
        for stage, alpha in enumerate(RK_ALPHAS):
            with self.tracer.span("rk.stage"):
                if stage > 0:
                    self.update_state(cur)
                if stage in RK_DISSIPATION_STAGES:
                    self.dissipation(cur, out=diss)
                self.convective(cur, out=q)
                np.subtract(q, diss, out=r)
                if stage == 0:
                    # Raw per-scenario R(w0) norms: each scenario column
                    # is reduced as a 1-D pairwise mean, the same
                    # summation order as the sequential monitor.
                    np.divide(r[:, 0, :], self.dual_volumes[:, None],
                              out=resnorm_buf)
                    np.multiply(resnorm_buf, resnorm_buf, out=resnorm_buf)
                    for s in range(self.n_scenarios):
                        resnorms[s] = np.sqrt(np.mean(resnorm_buf[:, s]))
                if cfg.residual_smoothing:
                    self.smooth(r, out=rbar)
                    upd = rbar
                else:
                    upd = r
                # wk = w0 - alpha * dt/V * r
                np.multiply(upd, dtv_col, out=upd)
                np.multiply(upd, -alpha, out=upd)
                np.add(w0, upd, out=wk)
                self.flops.add("update",
                               3 * NVAR * self.n_vertices * self.n_scenarios)
                cur = wk
        return wk, resnorms
