"""Edge-scatter executors: serial CSR, colored, and colored-threaded.

The fused residual pipeline talks to a small executor protocol —
``signed(v, out)``, ``unsigned(v, out)``, ``neighbor_sum(v, out)`` plus a
``degree`` array — and three implementations provide it:

* :class:`SerialExecutor` — the CSR incidence products of
  :class:`repro.scatter.EdgeScatter` (an alias; the default and fastest
  single-thread path in NumPy);
* :class:`ColoredExecutor` — executes the scatter colour by colour over
  the conflict-free groups of :func:`repro.coloring.color_edges_balanced`.
  Inside one colour no two edges share a vertex, so the accumulation is a
  plain indexed store with no read-modify-write hazard — exactly the
  invariant that lets the Cray autotasking compiler vectorise each colour
  (paper Section 3.1).  With ``n_threads > 1`` each colour is cut into
  per-thread subgroups (the paper's "subgroups that can be computed in
  parallel") dispatched on a shared :class:`ThreadPoolExecutor`; NumPy's
  indexed ufunc loops release the GIL, and subgroups of one colour touch
  disjoint vertices, so the concurrent stores are race-free.  Colours are
  separated by a join — the fork/join structure the C90 model prices.

Summation order differs between executors, so results agree with the
reference scatter to roundoff (≤1e-12 relative), not bitwise; the property
tests in ``tests/kernels`` pin this down.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from ..coloring.balanced import color_edges_balanced
from ..coloring.greedy import EdgeColoring
from ..scatter import EdgeScatter
from ..telemetry import get_tracer

__all__ = ["SerialExecutor", "ColoredExecutor", "make_executor",
           "resolve_auto_kind", "AUTO_COLOR_EDGE_THRESHOLD",
           "COMPILED_KINDS"]

#: The serial executor *is* the CSR scatter — one object, one protocol.
SerialExecutor = EdgeScatter


class ColoredExecutor:
    """Conflict-free colour-by-colour edge scatter, optionally threaded.

    Parameters
    ----------
    edges : (ne, 2) vertex index pairs.
    n_vertices : target vertex count.
    coloring : optional precomputed :class:`EdgeColoring`; defaults to the
        balanced colouring (equal group sizes maximise per-batch width).
    n_threads : >1 dispatches each colour's subgroups on a thread pool.
    """

    def __init__(self, edges: np.ndarray, n_vertices: int,
                 coloring: EdgeColoring | None = None, n_threads: int = 1,
                 tracer=None, sanitizer=None):
        edges = np.asarray(edges)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (ne, 2), got {edges.shape}")
        self.edges = edges
        self.n_vertices = int(n_vertices)
        self.n_threads = max(1, int(n_threads))
        self.tracer = tracer if tracer is not None else get_tracer()
        if sanitizer is None:
            from ..analysis.sanitize import NULL_SANITIZER
            sanitizer = NULL_SANITIZER
        self.sanitizer = sanitizer
        if coloring is None:
            coloring = color_edges_balanced(edges, self.n_vertices)
        self.coloring = coloring
        if sanitizer.enabled:
            # The executor's race freedom *is* the coloring invariant;
            # verify it before any concurrent indexed store runs.
            sanitizer.check_coloring(edges, coloring.groups, self.n_vertices,
                                     where="ColoredExecutor")
        self.degree = np.bincount(edges.ravel(),
                                  minlength=self.n_vertices).astype(np.float64)
        # Per-colour (and per-thread subgroup) gather/scatter index arrays,
        # precomputed so the hot loop only does indexed loads and stores.
        self._batches: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = []
        for group in coloring.groups:
            subs = np.array_split(group, self.n_threads)
            batch = [(s, edges[s, 0], edges[s, 1]) for s in subs if s.size]
            self._batches.append(batch)
        self._pool = (ThreadPoolExecutor(max_workers=self.n_threads,
                                         thread_name_prefix="edge-color")
                      if self.n_threads > 1 else None)
        if self.tracer.enabled:
            sizes = np.array([g.size for g in coloring.groups], dtype=float)
            self.tracer.gauge("coloring.n_colors", sizes.size)
            # Colour-group imbalance: widest colour over the mean; 1.0 is
            # perfectly balanced (what color_edges_balanced targets).
            if sizes.size and sizes.mean() > 0:
                self.tracer.gauge("coloring.imbalance",
                                  float(sizes.max() / sizes.mean()))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the thread pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    def _run(self, task, args_per_sub) -> None:
        """Run ``task`` over every colour, joining between colours."""
        if self._pool is None:
            for batch in self._batches:
                for sub in batch:
                    task(*sub, *args_per_sub)
            return
        observe_occupancy = self.tracer.enabled
        for batch in self._batches:
            if observe_occupancy:
                # Fraction of pool workers a colour's fork can keep busy;
                # < 1 means the trailing colours starve the pool.
                self.tracer.gauge("threadpool.occupancy",
                                  min(1.0, len(batch) / self.n_threads))
            if len(batch) == 1:
                task(*batch[0], *args_per_sub)
                continue
            if observe_occupancy:
                # Per-subgroup spans land on the worker threads' own
                # timelines (each thread keeps its own nesting stack).
                futures = [self._pool.submit(self._traced_task, task, sub,
                                             args_per_sub) for sub in batch]
            else:
                futures = [self._pool.submit(task, *sub, *args_per_sub)
                           for sub in batch]
            done, _ = wait(futures)
            for f in done:       # surface worker exceptions
                f.result()

    def _traced_task(self, task, sub, args_per_sub):
        with self.tracer.span("scatter.subgroup"):
            task(*sub, *args_per_sub)

    # ------------------------------------------------------------------
    @staticmethod
    def _signed_task(sub, i_idx, j_idx, values, out):
        out[i_idx] += values[sub]
        out[j_idx] -= values[sub]

    @staticmethod
    def _unsigned_task(sub, i_idx, j_idx, values, out):
        out[i_idx] += values[sub]
        out[j_idx] += values[sub]

    @staticmethod
    def _neighbor_task(sub, i_idx, j_idx, values, out):
        out[i_idx] += values[j_idx]
        out[j_idx] += values[i_idx]

    def _prepare_out(self, trailing_shape, dtype, out):
        shape = (self.n_vertices,) + trailing_shape
        if out is None:
            return np.zeros(shape, dtype=dtype)
        if out.shape != shape:
            raise ValueError(f"out must have shape {shape}, got {out.shape}")
        out[...] = 0.0
        return out

    def signed(self, edge_values: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        """``sum_e (+v at i, -v at j)`` colour by colour."""
        with self.tracer.span("scatter.signed"):
            if self.tracer.enabled:
                self.tracer.count("kernel.edges_scattered",
                                  self.edges.shape[0])
            edge_values = np.asarray(edge_values)
            out = self._prepare_out(edge_values.shape[1:], edge_values.dtype,
                                    out)
            self._run(self._signed_task, (edge_values, out))
        return out

    def unsigned(self, edge_values: np.ndarray,
                 out: np.ndarray | None = None) -> np.ndarray:
        """``sum_e (+v at i, +v at j)`` colour by colour."""
        with self.tracer.span("scatter.unsigned"):
            if self.tracer.enabled:
                self.tracer.count("kernel.edges_scattered",
                                  self.edges.shape[0])
            edge_values = np.asarray(edge_values)
            out = self._prepare_out(edge_values.shape[1:], edge_values.dtype,
                                    out)
            self._run(self._unsigned_task, (edge_values, out))
        return out

    def neighbor_sum(self, vertex_values: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
        """``out_i = sum_{j ~ i} v_j`` colour by colour."""
        with self.tracer.span("scatter.neighbor_sum"):
            vertex_values = np.asarray(vertex_values)
            out = self._prepare_out(vertex_values.shape[1:],
                                    vertex_values.dtype, out)
            self._run(self._neighbor_task, (vertex_values, out))
        return out


#: Minimum per-colour edge count below which the coloured executors lose
#: to the fused CSR pipeline.  Balanced colouring yields roughly
#: ``n_edges / max_degree`` edges per colour; each colour pays a Python
#: dispatch (plus a thread handoff for ``colored-threaded``), which on
#: the benchmark meshes (BENCH_residual.json: 99 ms coloured-threaded vs
#: 41 ms fused on box27, where colours hold ~3k edges) only amortises
#: once colours carry tens of thousands of edges.
AUTO_COLOR_EDGE_THRESHOLD = 50_000

#: Kinds served by the numba backend (optional dependency).
COMPILED_KINDS = ("compiled", "compiled-parallel")


def resolve_auto_kind(edges: np.ndarray, n_vertices: int,
                      n_threads: int) -> str:
    """The ``executor="auto"`` heuristic, driven by measured crossovers.

    With numba importable the compiled family wins once the mesh clears
    the measured ``compiled_min_edges`` crossover (``compiled-parallel``
    additionally needs threads and ``compiled_parallel_min_edges``; see
    ``benchmarks/bench_residual.py --calibrate``).  Without numba —
    silently, this is the degradation path — the choice falls to the
    NumPy executors: ``colored-threaded`` only when threads are
    available *and* the estimated per-colour edge count (``n_edges /
    max_degree``; the balanced colouring's colour count equals the max
    vertex degree) clears the ``colored_threaded_min_per_color``
    crossover, else the fused CSR pipeline (see docs/performance.md,
    "Choosing an executor").  Each crossover falls back to its
    hand-coded default when the calibration table records ``null``.
    """
    from .calibration import (DEFAULT_COMPILED_MIN_EDGES,
                              DEFAULT_COMPILED_PARALLEL_MIN_EDGES, crossover)
    from .compiled import numba_available
    edges = np.asarray(edges)
    ne = edges.shape[0]
    if ne == 0:
        return "fused"
    if numba_available():
        if ne >= crossover("compiled_min_edges", DEFAULT_COMPILED_MIN_EDGES):
            if n_threads > 1 and ne >= crossover(
                    "compiled_parallel_min_edges",
                    DEFAULT_COMPILED_PARALLEL_MIN_EDGES):
                return "compiled-parallel"
            return "compiled"
        return "fused"
    if n_threads <= 1:
        return "fused"
    if (os.cpu_count() or 1) <= 1:
        # A thread pool cannot beat the fused CSR pipeline without cores
        # to run on: BENCH_residual.json recorded colored-threaded 1.7x
        # *slower* than serial on a single-core container, where the
        # per-colour thread handoffs are pure overhead.  The crossover
        # fallback below is calibrated on multi-core hosts, so guard it.
        return "fused"
    max_degree = int(np.bincount(edges.ravel(),
                                 minlength=n_vertices).max())
    per_color = ne / max(max_degree, 1)
    threshold = crossover("colored_threaded_min_per_color",
                          AUTO_COLOR_EDGE_THRESHOLD)
    return "colored-threaded" if per_color >= threshold else "fused"


def make_executor(edges: np.ndarray, n_vertices: int, kind: str = "serial",
                  n_threads: int = 1, tracer=None, sanitizer=None):
    """Build the executor named by ``SolverConfig.executor``.

    ``serial`` and ``fused`` share the CSR scatter (the fused pipeline
    differs in *what* it computes, not how it scatters); ``colored`` runs
    the conflict-free groups sequentially; ``colored-threaded`` dispatches
    each colour across ``n_threads`` workers; ``compiled`` /
    ``compiled-parallel`` use the numba backend (raising
    :class:`repro.kernels.compiled.ExecutorUnavailableError` without it);
    ``auto`` resolves via :func:`resolve_auto_kind` and never raises for
    a missing backend.
    """
    if kind == "auto":
        kind = resolve_auto_kind(edges, n_vertices, n_threads)
    if kind in ("serial", "fused"):
        executor = SerialExecutor(edges, n_vertices, tracer=tracer)
    elif kind == "colored":
        executor = ColoredExecutor(edges, n_vertices, n_threads=1,
                                   tracer=tracer, sanitizer=sanitizer)
    elif kind == "colored-threaded":
        executor = ColoredExecutor(edges, n_vertices, n_threads=n_threads,
                                   tracer=tracer, sanitizer=sanitizer)
    elif kind in COMPILED_KINDS:
        from .compiled import make_compiled_executor, require_numba
        require_numba(f"executor={kind!r}")
        executor = make_compiled_executor(
            edges, n_vertices, parallel=(kind == "compiled-parallel"),
            n_threads=n_threads, tracer=tracer, sanitizer=sanitizer)
    else:
        raise ValueError(f"unknown executor kind {kind!r}")
    # The resolved kind string rides along so downstream consumers (the
    # observatory's per-executor rate gauges) can label measurements
    # without re-running the auto heuristic.
    executor.kind = kind
    return executor
