"""Measured executor-crossover table for ``executor="auto"``.

The auto heuristic used to hinge on one hand-coded constant
(:data:`repro.kernels.executors.AUTO_COLOR_EDGE_THRESHOLD`).  Crossover
points are machine properties — they move with core count, memory
bandwidth and the numba runtime — so they should be *measured*:
``python benchmarks/bench_residual.py --calibrate`` times the executor
family over a ladder of box meshes and records where each alternative
actually overtakes the fused CSR baseline.  The result is a small JSON
table that :func:`repro.kernels.executors.resolve_auto_kind` consults.

Resolution order for the table file:

1. the path in the ``REPRO_CALIBRATION`` environment variable,
2. the packaged ``calibration.json`` next to this module.

A crossover recorded as ``null`` means "never crossed on the calibration
machine" *or* "not measured"; either way the hand-coded constant serves
as the fallback, so an absent or stale table degrades to the original
heuristic rather than to an error.

Schema (all crossovers optional, null allowed)::

    {
      "generated_by": "benchmarks/bench_residual.py --calibrate",
      "crossovers": {
        "colored_threaded_min_per_color": 50000,   # per-colour edges
        "compiled_min_edges": 2000,                # total edges
        "compiled_parallel_min_edges": 10000       # total edges
      }
    }
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["CALIBRATION_ENV", "DEFAULT_COMPILED_MIN_EDGES",
           "DEFAULT_COMPILED_PARALLEL_MIN_EDGES", "load_calibration",
           "crossover", "calibration_path", "invalidate_cache"]

#: Environment variable naming an alternative calibration table.
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: Fallback crossovers when the table is absent or records ``null``.
#: The serial compiled kernel beats fused NumPy almost immediately (it
#: removes ~10 ufunc dispatches per operator), but below ~2k edges the
#: Python-side call overhead of either path dominates and the difference
#: is noise — prefer the dependency-free pipeline there.
DEFAULT_COMPILED_MIN_EDGES = 2_000
#: Parallel adds per-colour fork/join barriers on the numba pool; the
#: paper's fork/join cost model says those amortise only with enough
#: edges per colour, which at typical mesh degrees (~6-13) means a few
#: tens of thousands of edges total.
DEFAULT_COMPILED_PARALLEL_MIN_EDGES = 10_000

_cache: dict | None = None
_cache_key: str | None = None


def calibration_path() -> Path:
    """The calibration table in effect (env override or packaged file)."""
    env = os.environ.get(CALIBRATION_ENV)
    if env:
        return Path(env)
    return Path(__file__).with_name("calibration.json")


def invalidate_cache() -> None:
    """Drop the cached table (tests point ``REPRO_CALIBRATION`` around)."""
    global _cache, _cache_key
    _cache = None
    _cache_key = None


def load_calibration() -> dict:
    """Load and cache the crossover table; ``{}`` when absent/unreadable.

    Malformed tables are treated as absent rather than fatal: auto
    resolution must never fail because a calibration run was interrupted.
    """
    global _cache, _cache_key
    path = calibration_path()
    key = str(path)
    if _cache is not None and _cache_key == key:
        return _cache
    table: dict = {}
    try:
        with open(path, encoding="utf-8") as fh:
            loaded = json.load(fh)
        if isinstance(loaded, dict):
            table = loaded
    except (OSError, ValueError):
        table = {}
    _cache = table
    _cache_key = key
    return table


def crossover(name: str, fallback: float) -> float:
    """Measured crossover ``name``, or ``fallback`` when null/absent."""
    value = load_calibration().get("crossovers", {}).get(name)
    if value is None:
        return fallback
    try:
        return float(value)
    except (TypeError, ValueError):
        return fallback
