"""Cache-locality edge reordering: RCM vertex ranking + edge sort.

The paper renumbers mesh entities so that the gather/scatter streams of
the edge loops touch memory with small strides (Section 3's bandwidth-
reducing renumbering for the Cray, Section 4's locality-preserving
partition orderings for the Delta).  The same idea pays off on cache
hierarchies: we compute a reverse-Cuthill–McKee ordering of the *vertex*
graph (bringing each vertex's neighbourhood close in rank), then sort the
*edge list* by the RCM rank of its lower endpoint (ties by the higher
endpoint).  Consecutive edges then gather from nearby vertex rows, so the
per-edge loads hit warm cache lines instead of striding across the whole
vertex array.

Vertex arrays themselves are left untouched — only the edge traversal
order (and the matching ``eta`` rows) changes, which permutes summation
order but nothing else.  The fused-pipeline tests pin the ≤1e-12
agreement with the unsorted reference.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

__all__ = ["rcm_vertex_order", "locality_edge_order", "reorder_edges"]


def rcm_vertex_order(edges: np.ndarray, n_vertices: int) -> np.ndarray:
    """Reverse-Cuthill–McKee permutation of the mesh vertex graph.

    Returns ``order`` such that ``order[k]`` is the original index of the
    vertex placed at rank ``k``.
    """
    edges = np.asarray(edges)
    ne = edges.shape[0]
    adj = sp.csr_matrix(
        (np.ones(2 * ne, dtype=np.int8),
         (np.concatenate([edges[:, 0], edges[:, 1]]),
          np.concatenate([edges[:, 1], edges[:, 0]]))),
        shape=(n_vertices, n_vertices))
    return np.asarray(reverse_cuthill_mckee(adj, symmetric_mode=True),
                      dtype=np.int64)


def locality_edge_order(edges: np.ndarray, n_vertices: int) -> np.ndarray:
    """Edge permutation sorting by (min, max) RCM rank of the endpoints."""
    edges = np.asarray(edges)
    order = rcm_vertex_order(edges, n_vertices)
    rank = np.empty(n_vertices, dtype=np.int64)
    rank[order] = np.arange(n_vertices)
    r0 = rank[edges[:, 0]]
    r1 = rank[edges[:, 1]]
    key_min = np.minimum(r0, r1)
    key_max = np.maximum(r0, r1)
    return np.lexsort((key_max, key_min))


def reorder_edges(struct, perm: np.ndarray | None = None):
    """Locality-sorted copy of an :class:`~repro.mesh.edges.EdgeStructure`.

    Only ``edges`` and ``eta`` are permuted (in lockstep); vertex-indexed
    fields are shared with the input.  Pass a precomputed ``perm`` to
    reuse an ordering across multigrid levels built on the same graph.
    """
    from ..mesh.edges import EdgeStructure

    if perm is None:
        perm = locality_edge_order(struct.edges, struct.n_vertices)
    return EdgeStructure(
        edges=np.ascontiguousarray(struct.edges[perm]),
        eta=np.ascontiguousarray(struct.eta[perm]),
        dual_volumes=struct.dual_volumes,
        bfaces=struct.bfaces,
        bface_areas=struct.bface_areas,
        bface_tags=struct.bface_tags,
        vertex_bnormals=struct.vertex_bnormals,
        n_vertices=struct.n_vertices,
    )
