"""Tetrahedral mesh substrate: containers, edge-based preprocessing,
generators, adjacency, quality and I/O.

This package is the "mesh generation and preprocessing" half of the
paper's pipeline (Section 2.4): everything that happens before the flow
solver runs, and everything the shared-memory colouring and the
distributed-memory partitioning consume.
"""

from .tetra import TetMesh, PATCH_FARFIELD, PATCH_WALL, PATCH_SYMMETRY, PATCH_NAMES
from .edges import EdgeStructure, build_edge_structure, closure_residual
from .adjacency import vertex_graph, vertex_neighbors_csr, tet_face_adjacency
from .quality import mesh_quality, MeshQuality
from .io import save_mesh, load_mesh
from .generators import box_mesh, bump_channel, ellipsoid_shell

__all__ = [
    "TetMesh", "PATCH_FARFIELD", "PATCH_WALL", "PATCH_SYMMETRY", "PATCH_NAMES",
    "EdgeStructure", "build_edge_structure", "closure_residual",
    "vertex_graph", "vertex_neighbors_csr", "tet_face_adjacency",
    "mesh_quality", "MeshQuality", "save_mesh", "load_mesh",
    "box_mesh", "bump_channel", "ellipsoid_shell",
]

from .refine import refine_mesh, refine_tets

__all__ += ["refine_mesh", "refine_tets"]

from .validate import ValidationReport, validate_mesh

__all__ += ["ValidationReport", "validate_mesh"]
