"""Mesh adjacency structures: vertex graph and tet-tet face adjacency.

The vertex graph (CSR) drives the partitioners and the PARTI inspector;
the tet-tet adjacency drives the multigrid walking search that locates the
containing tetrahedron for inter-grid interpolation (Section 2.3: "an
efficient graph traversal search algorithm").
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["vertex_graph", "vertex_neighbors_csr", "tet_face_adjacency"]


def vertex_graph(edges: np.ndarray, n_vertices: int) -> sp.csr_matrix:
    """Symmetric 0/1 adjacency matrix of the mesh vertex graph."""
    ne = edges.shape[0]
    data = np.ones(2 * ne)
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    mat = sp.csr_matrix((data, (rows, cols)), shape=(n_vertices, n_vertices))
    mat.data[:] = 1.0   # collapse duplicates, keep unweighted
    return mat


def vertex_neighbors_csr(edges: np.ndarray, n_vertices: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style (indptr, indices) neighbour lists sorted per vertex."""
    mat = vertex_graph(edges, n_vertices)
    return mat.indptr.copy(), mat.indices.copy()


#: Local tet faces opposite each local vertex (matching repro.mesh.edges).
_LOCAL_FACES = np.array([
    (1, 2, 3),
    (0, 3, 2),
    (0, 1, 3),
    (0, 2, 1),
], dtype=np.int64)


def tet_face_adjacency(tets: np.ndarray) -> np.ndarray:
    """Neighbour tet across each local face; -1 at boundary faces.

    ``adj[t, k]`` is the tet sharing the face of ``t`` opposite local
    vertex ``k``.  Built by sorting the global face keys — O(nt log nt),
    no Python-level loop over elements.
    """
    nt = tets.shape[0]
    faces = np.sort(tets[:, _LOCAL_FACES].reshape(-1, 3), axis=1)   # (4 nt, 3)
    order = np.lexsort((faces[:, 2], faces[:, 1], faces[:, 0]))
    sorted_faces = faces[order]
    same_as_next = np.all(sorted_faces[:-1] == sorted_faces[1:], axis=1)

    adj = -np.ones(4 * nt, dtype=np.int64)
    owner = order // 4          # tet of each sorted face slot
    slot = order                # flattened (tet, local face) id
    matched = np.flatnonzero(same_as_next)
    # Each interior face appears exactly twice and consecutively after sort.
    first, second = slot[matched], slot[matched + 1]
    adj[first] = owner[matched + 1]
    adj[second] = owner[matched]
    return adj.reshape(nt, 4)
