"""Parametric tetrahedral mesh generators.

The paper uses an advancing-front generator (ref. 9) run sequentially on a
Cray Y-MP to produce an 804,056-node mesh around an aircraft.  We have no
such generator or geometry; these parametric generators produce meshes with
the same *structural* properties the solver and the parallel runtime care
about — tetrahedral elements, irregular vertex connectivity after edge
extraction, curved solid walls, farfield boundaries — at laptop scale:

* :func:`repro.mesh.generators.box.box_mesh` — all-farfield verification box;
* :func:`repro.mesh.generators.bump.bump_channel` — transonic channel with a
  sinusoidal bump (shock-forming at the paper's M = 0.768 condition);
* :func:`repro.mesh.generators.shell.ellipsoid_shell` — cube-sphere O-mesh
  around a 3-D ellipsoid body (the "aircraft configuration" analog of
  Figure 3).
"""

from .box import box_mesh
from .bump import bump_channel
from .shell import ellipsoid_shell

__all__ = ["box_mesh", "bump_channel", "ellipsoid_shell"]
