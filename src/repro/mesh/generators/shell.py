"""Cube-sphere O-mesh around an ellipsoid: the "aircraft configuration" analog.

The paper's showcase mesh (Figure 3) wraps an aircraft with a body-fitted
unstructured tet mesh.  Our analog wraps a tri-axial ellipsoid — a closed
3-D body with a curved solid wall and a spherical farfield — using a
cube-sphere construction:

1. take the surface lattice of an ``n x n x n`` cube and project every
   surface point radially onto the unit sphere (no polar degeneracy);
2. extrude the resulting watertight quad surface radially from the
   ellipsoid body to the farfield sphere with geometric stretching
   (clustered at the body, like the paper's meshes);
3. split every hexahedral cell into 24 tetrahedra using its centroid and
   face centroids — a decomposition that is conforming for *any* hex mesh
   because shared faces receive identical centroid points.

The result is a genuinely unstructured tet mesh (vertex degrees vary
widely) around a 3-D body, at any resolution — which is what the multigrid
sequence of independent coarse/fine meshes requires.
"""

from __future__ import annotations

import numpy as np

from ..tetra import TetMesh, PATCH_FARFIELD, PATCH_WALL

__all__ = ["ellipsoid_shell", "hexes_to_tets24", "cube_sphere_surface"]


def cube_sphere_surface(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Watertight quad mesh of the unit sphere via cube-surface projection.

    Returns
    -------
    points : (ns, 3) unit-sphere points (unique).
    quads : (nq, 4) indices of quad corners (cyclic order).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    # Lattice points of the cube [-1, 1]^3 with (n+1)^3 nodes; keep surface.
    lin = np.linspace(-1.0, 1.0, n + 1)
    ii, jj, kk = np.meshgrid(np.arange(n + 1), np.arange(n + 1), np.arange(n + 1),
                             indexing="ij")
    on_surface = (ii == 0) | (ii == n) | (jj == 0) | (jj == n) | (kk == 0) | (kk == n)
    surf_lattice = np.stack([ii[on_surface], jj[on_surface], kk[on_surface]], axis=1)
    # Map lattice triple -> surface point id.
    lattice_id = -np.ones((n + 1, n + 1, n + 1), dtype=np.int64)
    lattice_id[surf_lattice[:, 0], surf_lattice[:, 1], surf_lattice[:, 2]] = \
        np.arange(surf_lattice.shape[0])
    cube_pts = lin[surf_lattice]                       # (ns, 3)
    # Radial projection onto the sphere (gnomonic cube-sphere).
    points = cube_pts / np.linalg.norm(cube_pts, axis=1, keepdims=True)

    # Quads: on each of the 6 cube faces, the n x n cells of the lattice.
    quads = []
    rng = np.arange(n)
    for axis in range(3):
        for fixed in (0, n):
            u, v = np.meshgrid(rng, rng, indexing="ij")
            u, v = u.ravel(), v.ravel()

            def corner(du, dv):
                trip = np.empty((u.size, 3), dtype=np.int64)
                trip[:, axis] = fixed
                trip[:, (axis + 1) % 3] = u + du
                trip[:, (axis + 2) % 3] = v + dv
                return lattice_id[trip[:, 0], trip[:, 1], trip[:, 2]]

            q = np.stack([corner(0, 0), corner(1, 0), corner(1, 1), corner(0, 1)], axis=1)
            quads.append(q)
    quads = np.concatenate(quads, axis=0)
    if np.any(quads < 0):
        raise AssertionError("cube-sphere lattice bookkeeping produced an unmapped point")
    return points, quads


def hexes_to_tets24(vertices: np.ndarray, hexes: np.ndarray,
                    hex_faces: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split hexahedra into 24 tets each via cell and face centroids.

    Parameters
    ----------
    vertices : (nv, 3) existing vertex coordinates.
    hexes : (nh, 8) hex corner indices (any consistent corner numbering).
    hex_faces : (6, 4) local quad corner indices per hex face, cyclic order.

    Returns
    -------
    all_vertices : original vertices + one centroid per unique face + one
        centroid per hex.
    tets : (24 * nh, 4) tet connectivity (orientation repaired downstream).
    """
    nv = vertices.shape[0]
    nh = hexes.shape[0]
    # Global quad list, (nh * 6, 4).
    quads = hexes[:, hex_faces].reshape(-1, 4)
    key = np.sort(quads, axis=1)
    uniq, inverse = np.unique(key, axis=0, return_inverse=True)
    nfaces = uniq.shape[0]
    face_centroids = vertices[uniq].mean(axis=1)
    hex_centroids = vertices[hexes].mean(axis=1)
    all_vertices = np.concatenate([vertices, face_centroids, hex_centroids], axis=0)

    face_cid = nv + inverse                          # (nh * 6,) centroid ids
    hex_cid = nv + nfaces + np.arange(nh)
    hex_cid6 = np.repeat(hex_cid, 6)
    # Four tets per quad: (corner_a, corner_b, face_centroid, hex_centroid)
    # for each cyclic edge (a, b) of the quad.
    tets = []
    for a in range(4):
        b = (a + 1) % 4
        tets.append(np.stack([quads[:, a], quads[:, b], face_cid, hex_cid6], axis=1))
    return all_vertices, np.concatenate(tets, axis=0)


#: Local faces of a hex whose corners are ordered (bottom quad 0-3 cyclic,
#: top quad 4-7 cyclic, vertically aligned: corner 4 above corner 0, ...).
_HEX_FACES = np.array([
    (0, 1, 2, 3),  # bottom
    (4, 5, 6, 7),  # top
    (0, 1, 5, 4),
    (1, 2, 6, 5),
    (2, 3, 7, 6),
    (3, 0, 4, 7),
], dtype=np.int64)


def ellipsoid_shell(n_surface: int = 8, n_layers: int = 8,
                    semi_axes=(1.0, 0.4, 0.25), far_radius: float = 8.0,
                    stretch: float = 1.3, name: str | None = None) -> TetMesh:
    """Body-fitted O-mesh between an ellipsoid and a spherical farfield.

    Parameters
    ----------
    n_surface : cube-sphere resolution (each cube face carries n^2 quads).
    n_layers : number of radial cell layers.
    semi_axes : ellipsoid semi-axes (a, b, c); the default is a slender
        fuselage-like body (the aircraft analog).
    far_radius : radius of the spherical farfield boundary.
    stretch : geometric growth factor of the radial layer thickness
        (clusters cells at the body, as flow solvers require).
    """
    if far_radius <= max(semi_axes):
        raise ValueError("farfield radius must exceed the body")
    sphere_pts, quads = cube_sphere_surface(n_surface)
    ns = sphere_pts.shape[0]

    # Radial distribution: geometric spacing of the interpolation parameter.
    t = np.empty(n_layers + 1)
    weights = stretch ** np.arange(n_layers)
    t[0] = 0.0
    t[1:] = np.cumsum(weights) / weights.sum()

    # Layer l: blend between the ellipsoid surface point and the farfield
    # sphere point along the radial direction of the cube-sphere point.
    body = sphere_pts * np.asarray(semi_axes)        # ellipsoid surface
    far = sphere_pts * far_radius
    layers = body[None] * (1.0 - t[:, None, None]) + far[None] * t[:, None, None]
    vertices = layers.reshape(-1, 3)                 # layer-major indexing

    # Hexes: quad at layer l -> quad at layer l + 1.
    hex_list = []
    for layer in range(n_layers):
        lo = quads + layer * ns
        hi = quads + (layer + 1) * ns
        hex_list.append(np.concatenate([lo, hi], axis=1))
    hexes = np.concatenate(hex_list, axis=0)

    all_vertices, tets = hexes_to_tets24(vertices, hexes, _HEX_FACES)

    a, b, c = semi_axes

    def tagger(centroids: np.ndarray, normals: np.ndarray) -> np.ndarray:
        # Inner boundary (the body) is the only one near the ellipsoid;
        # classify by the ellipsoid level function at the face centroid.
        level = ((centroids[:, 0] / a) ** 2 + (centroids[:, 1] / b) ** 2
                 + (centroids[:, 2] / c) ** 2)
        tags = np.full(len(centroids), PATCH_FARFIELD, dtype=np.int32)
        tags[level < 2.0] = PATCH_WALL
        return tags

    return TetMesh(all_vertices, tets, boundary_tagger=tagger,
                   name=name or f"shell{n_surface}x{n_layers}")
