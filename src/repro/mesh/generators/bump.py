"""Transonic bump channel: the workhorse flow case of this reproduction.

A channel ``[0, length] x [0, width] x [0, height]`` whose bottom wall
carries a ``sin^2`` circular-arc-like bump.  At the paper's freestream
condition (M = 0.768, alpha = 1.116 deg) the flow accelerates over the bump
past Mach 1 and recompresses through a shock — the same transonic physics
as the aircraft case whose Mach contours the paper shows in Figure 4, on a
geometry we can generate parametrically at any resolution (which is exactly
what the multigrid sequence of "completely unrelated" meshes needs).

The default bump height is 4% of the channel height: at M = 0.768 the
one-dimensional choking area ratio is 0.950, so bumps taller than ~5%
choke the channel and admit no steady solution (an 8% bump produces a
slowly growing unsteadiness that eventually destroys the run — found the
hard way; see tests/solver/test_stability.py).

Boundary patches:

* bottom wall (bump): ``PATCH_WALL`` (flow tangency);
* side walls ``y = 0, width``: ``PATCH_SYMMETRY`` (tangency, reported
  separately);
* inflow/outflow/top: ``PATCH_FARFIELD`` (characteristic).
"""

from __future__ import annotations

import numpy as np

from ..tetra import TetMesh, PATCH_FARFIELD, PATCH_WALL, PATCH_SYMMETRY
from .box import structured_vertices, freudenthal_tets

__all__ = ["bump_channel", "bump_profile"]


def bump_profile(x: np.ndarray, x0: float, x1: float, height: float) -> np.ndarray:
    """``sin^2`` bump elevation: smooth, zero slope at both ends."""
    t = np.clip((x - x0) / (x1 - x0), 0.0, 1.0)
    return height * np.sin(np.pi * t) ** 2


def bump_channel(nx: int = 48, ny: int = 8, nz: int = 16,
                 length: float = 3.0, width: float = 0.5, height: float = 1.0,
                 bump_height: float = 0.04, bump_x0: float = 1.0,
                 bump_x1: float = 2.0, name: str | None = None) -> TetMesh:
    """Generate the bump channel tet mesh.

    The structured lattice is sheared vertically: ``z' = b(x) + z (1 - b(x)
    / height) `` so the bottom follows the bump while the top stays flat.
    Vertical spacing is mildly clustered toward the wall (tanh stretching)
    to resolve the shock foot, mimicking the clustering of the paper's
    aircraft meshes near the body.
    """
    if not (0.0 <= bump_x0 < bump_x1 <= length):
        raise ValueError("bump interval must lie inside the channel")
    if bump_height >= height:
        raise ValueError("bump may not fill the channel")
    vertices = structured_vertices(nx, ny, nz,
                                   bounds=((0.0, length), (0.0, width), (0.0, 1.0)))
    tets = freudenthal_tets(nx, ny, nz)

    # tanh clustering of the unit vertical coordinate toward the wall.
    zeta = vertices[:, 2]
    beta = 1.5
    clustered = np.tanh(beta * zeta) / np.tanh(beta)
    bottom = bump_profile(vertices[:, 0], bump_x0, bump_x1, bump_height)
    vertices = vertices.copy()
    vertices[:, 2] = bottom + clustered * (height - bottom)

    tol = 1e-9

    def tagger(centroids: np.ndarray, normals: np.ndarray) -> np.ndarray:
        # Identify the flat patches exactly, then tag the remaining faces
        # (which can only lie on the bumped floor) as wall.  This avoids
        # comparing triangle centroids against the curved profile.
        side = (np.abs(centroids[:, 1]) < tol) | (np.abs(centroids[:, 1] - width) < tol)
        inflow = np.abs(centroids[:, 0]) < tol
        outflow = np.abs(centroids[:, 0] - length) < tol
        top = np.abs(centroids[:, 2] - height) < tol
        tags = np.full(len(centroids), PATCH_WALL, dtype=np.int32)
        tags[inflow | outflow | top] = PATCH_FARFIELD
        tags[side] = PATCH_SYMMETRY
        return tags

    return TetMesh(vertices, tets, boundary_tagger=tagger,
                   name=name or f"bump{nx}x{ny}x{nz}")
