"""Structured box tetrahedralisation (Freudenthal/Kuhn 6-tet split).

Each hexahedral cell of a structured ``nx x ny x nz`` lattice is split into
six tetrahedra sharing the main diagonal.  Using the *same* diagonal
direction in every cell makes the decomposition conforming across cell
faces, so the result is a valid unstructured tet mesh whose edge structure
is genuinely irregular (vertex degrees range from 3 to 14).
"""

from __future__ import annotations

import numpy as np

from ..tetra import TetMesh, PATCH_FARFIELD

__all__ = ["box_mesh", "structured_vertices", "freudenthal_tets"]

#: The six Kuhn simplices of the unit cube, as corner offsets (di, dj, dk).
#: Each row lists the 4 corners of one tet along a monotone lattice path
#: from (0,0,0) to (1,1,1); the six rows are the six coordinate orderings.
_KUHN_PATHS = np.array([
    [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1)],
    [(0, 0, 0), (1, 0, 0), (1, 0, 1), (1, 1, 1)],
    [(0, 0, 0), (0, 1, 0), (1, 1, 0), (1, 1, 1)],
    [(0, 0, 0), (0, 1, 0), (0, 1, 1), (1, 1, 1)],
    [(0, 0, 0), (0, 0, 1), (1, 0, 1), (1, 1, 1)],
    [(0, 0, 0), (0, 0, 1), (0, 1, 1), (1, 1, 1)],
], dtype=np.int64)


def structured_vertices(nx: int, ny: int, nz: int,
                        bounds=((0.0, 1.0), (0.0, 1.0), (0.0, 1.0))) -> np.ndarray:
    """Lattice vertex coordinates, index order ``i * (ny+1)(nz+1) + j * (nz+1) + k``."""
    xs = np.linspace(bounds[0][0], bounds[0][1], nx + 1)
    ys = np.linspace(bounds[1][0], bounds[1][1], ny + 1)
    zs = np.linspace(bounds[2][0], bounds[2][1], nz + 1)
    grid = np.meshgrid(xs, ys, zs, indexing="ij")
    return np.stack([g.ravel() for g in grid], axis=1)


def freudenthal_tets(nx: int, ny: int, nz: int) -> np.ndarray:
    """Tet connectivity for the uniform Freudenthal split of the lattice."""
    def vid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    ci, cj, ck = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    ci, cj, ck = ci.ravel(), cj.ravel(), ck.ravel()
    ncell = ci.size
    tets = np.empty((ncell * 6, 4), dtype=np.int64)
    for t, path in enumerate(_KUHN_PATHS):
        for corner in range(4):
            di, dj, dk = path[corner]
            tets[t * ncell:(t + 1) * ncell, corner] = vid(ci + di, cj + dj, ck + dk)
    return tets


def box_mesh(nx: int = 8, ny: int = 8, nz: int = 8,
             bounds=((0.0, 1.0), (0.0, 1.0), (0.0, 1.0)),
             boundary_tagger=None, name: str | None = None) -> TetMesh:
    """Tet mesh of an axis-aligned box; all boundaries farfield by default.

    The all-farfield box is the canonical verification mesh: on it the
    discrete convective operator must preserve any uniform flow exactly
    (closure identity), which pins down the dual-mesh geometry.
    """
    vertices = structured_vertices(nx, ny, nz, bounds)
    tets = freudenthal_tets(nx, ny, nz)
    if boundary_tagger is None:
        def boundary_tagger(centroids, normals):
            return np.full(len(centroids), PATCH_FARFIELD)
    return TetMesh(vertices, tets, boundary_tagger=boundary_tagger,
                   name=name or f"box{nx}x{ny}x{nz}")
