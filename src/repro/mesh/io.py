"""Mesh persistence: a simple ``.npz`` container.

The paper's pipeline writes one preprocessed data file per processor after
partitioning (Section 4.1).  We keep the same idea at the mesh level: a
mesh (and optionally its partition assignment) round-trips through a
single compressed ``.npz`` file.  Boundary taggers are functions and
cannot be serialised, so the *resolved per-face tags* are stored instead
and replayed through a lookup tagger on load.
"""

from __future__ import annotations

import numpy as np

from .tetra import TetMesh
from .edges import build_edge_structure, extract_boundary_faces

__all__ = ["save_mesh", "load_mesh"]


def save_mesh(path, mesh: TetMesh, partition: np.ndarray | None = None) -> None:
    """Save mesh (vertices, tets, resolved boundary tags) to ``path``.

    ``partition`` optionally stores a per-vertex rank assignment alongside.
    """
    struct = build_edge_structure(mesh)
    payload = {
        "vertices": mesh.vertices,
        "tets": mesh.tets,
        "bfaces": struct.bfaces,
        "bface_tags": struct.bface_tags,
        "name": np.array(mesh.name),
    }
    if partition is not None:
        partition = np.asarray(partition)
        if partition.shape != (mesh.n_vertices,):
            raise ValueError("partition must assign one rank per vertex")
        payload["partition"] = partition
    np.savez_compressed(path, **payload)


def load_mesh(path) -> tuple[TetMesh, np.ndarray | None]:
    """Load a mesh saved by :func:`save_mesh`.

    Returns ``(mesh, partition_or_None)``.  The stored per-face tags are
    replayed via a lookup tagger keyed on the sorted face triple, so the
    reloaded mesh reproduces the original boundary patches exactly.
    """
    with np.load(path, allow_pickle=False) as data:
        vertices = data["vertices"]
        tets = data["tets"]
        bfaces = data["bfaces"]
        bface_tags = data["bface_tags"]
        name = str(data["name"])
        partition = data["partition"] if "partition" in data else None

    tag_by_face = {tuple(sorted(face)): int(tag)
                   for face, tag in zip(bfaces, bface_tags)}

    def tagger(centroids, normals):
        # The tagger is invoked with faces in extraction order; recover the
        # face triples by re-extracting (deterministic for a fixed mesh).
        faces = extract_boundary_faces(tets)
        if len(faces) != len(centroids):
            raise AssertionError("boundary face count changed across save/load")
        return np.array([tag_by_face[tuple(sorted(f))] for f in faces], dtype=np.int32)

    mesh = TetMesh(vertices, tets, boundary_tagger=tagger, name=name)
    return mesh, partition
