"""Core tetrahedral mesh container.

EUL3D stores the flow variables at mesh vertices and assembles residuals by
looping over edges (Section 2.1).  :class:`TetMesh` is the element-level
view of the mesh from which the edge-based data structure
(:mod:`repro.mesh.edges`) is derived in a preprocessing step, mirroring the
paper's pipeline: *generate mesh → transform into edge-based structure →
colour (shared memory) or partition (distributed memory)*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TetMesh", "tet_volumes", "orient_tets"]

#: Boundary patch tags used across generators and boundary conditions.
PATCH_FARFIELD = 1
PATCH_WALL = 2
PATCH_SYMMETRY = 3

PATCH_NAMES = {
    PATCH_FARFIELD: "farfield",
    PATCH_WALL: "wall",
    PATCH_SYMMETRY: "symmetry",
}


def tet_volumes(vertices: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Signed volumes of the tetrahedra (positive for right-handed ordering)."""
    a = vertices[tets[:, 0]]
    d1 = vertices[tets[:, 1]] - a
    d2 = vertices[tets[:, 2]] - a
    d3 = vertices[tets[:, 3]] - a
    return np.einsum("ij,ij->i", np.cross(d1, d2), d3) / 6.0


def orient_tets(vertices: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Return a copy of ``tets`` with negative-volume tets repaired.

    Flipping the last two vertices of a tetrahedron changes the sign of its
    volume; the edge set and face set are unchanged, so this is a safe
    canonicalisation.  Zero-volume (degenerate) tets raise ``ValueError``
    because the dual-mesh construction would produce a singular scheme.
    """
    vols = tet_volumes(vertices, tets)
    if np.any(vols == 0.0):
        bad = np.flatnonzero(vols == 0.0)
        raise ValueError(f"{bad.size} degenerate tetrahedra (zero volume), first: {bad[:5]}")
    fixed = tets.copy()
    flip = vols < 0.0
    fixed[flip, 2], fixed[flip, 3] = tets[flip, 3], tets[flip, 2]
    return fixed


@dataclass
class TetMesh:
    """Vertex + tetrahedra mesh with lazily computed geometric quantities.

    Parameters
    ----------
    vertices : (nv, 3) float64 vertex coordinates.
    tets : (nt, 4) int32/int64 vertex indices, right-handed (positive volume).
        Construction repairs orientation automatically.
    boundary_tagger : optional callable ``f(centroids, normals) -> tags``
        mapping boundary-face centroids ``(nf, 3)`` and outward unit normals
        ``(nf, 3)`` to integer patch tags (``PATCH_FARFIELD`` / ``PATCH_WALL``
        / ``PATCH_SYMMETRY``).  When absent, every boundary face is tagged
        farfield (valid for all-farfield verification boxes).
    name : human-readable identifier used in reports.
    """

    vertices: np.ndarray
    tets: np.ndarray
    boundary_tagger: object = None
    name: str = "mesh"
    _volumes: np.ndarray = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        self.vertices = np.ascontiguousarray(self.vertices, dtype=np.float64)
        self.tets = np.ascontiguousarray(self.tets, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError(f"vertices must be (nv, 3), got {self.vertices.shape}")
        if self.tets.ndim != 2 or self.tets.shape[1] != 4:
            raise ValueError(f"tets must be (nt, 4), got {self.tets.shape}")
        if self.tets.size and (self.tets.min() < 0 or self.tets.max() >= len(self.vertices)):
            raise ValueError("tet vertex index out of range")
        self.tets = orient_tets(self.vertices, self.tets)

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.vertices.shape[0]

    @property
    def n_tets(self) -> int:
        return self.tets.shape[0]

    @property
    def volumes(self) -> np.ndarray:
        """Per-tet volumes (cached; positive after orientation repair)."""
        if self._volumes is None:
            self._volumes = tet_volumes(self.vertices, self.tets)
        return self._volumes

    @property
    def total_volume(self) -> float:
        return float(self.volumes.sum())

    def dual_volumes(self) -> np.ndarray:
        """Median-dual control volume per vertex (``V_T / 4`` from each tet).

        These are the control volumes that normalise the residual in the
        time-stepping scheme; they sum exactly to the domain volume.
        """
        dual = np.zeros(self.n_vertices)
        np.add.at(dual, self.tets.ravel(), np.repeat(self.volumes / 4.0, 4))
        return dual

    def tet_centroids(self) -> np.ndarray:
        return self.vertices[self.tets].mean(axis=1)

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def describe(self) -> str:
        """One-line summary used by the harness (mirrors Figure 3's caption)."""
        return (f"{self.name}: {self.n_vertices} nodes, {self.n_tets} tetrahedra, "
                f"volume {self.total_volume:.6g}")
