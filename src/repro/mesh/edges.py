"""Edge-based data structure: the heart of EUL3D's discretisation.

The Galerkin scheme with piecewise-linear fluxes over tetrahedra is
algebraically equivalent to a vertex-centred finite-volume scheme on the
median-dual mesh.  The preprocessing step here computes, once per mesh:

* the unique edge list ``(i, j)`` with ``i < j``;
* the **directed dual-face area** ``eta_ij`` for each edge — the integral of
  the oriented normal over the median-dual face separating the control
  volumes of ``i`` and ``j``, pointing from ``i`` to ``j``;
* the boundary faces with outward area vectors and patch tags, plus the
  lumped per-vertex boundary normals ``b_i = sum_f A_f / 3``.

The construction satisfies the *closure identity*

    ``sum_j eta_ij  (signed away from i)  +  b_i  =  0``  for every vertex,

which is exactly the discrete statement that a constant flux produces zero
residual (freestream preservation).  ``closure_residual`` exposes the
identity for the test suite.

Geometry of the per-tet dual face
---------------------------------
For edge ``(a, b)`` of tet ``(t0, t1, t2, t3)`` (right-handed), let
``(c, d)`` be the remaining two vertices chosen so that ``(a, b, c, d)`` is
an *even* permutation of ``(t0, t1, t2, t3)``.  With ``m`` the edge
midpoint, ``g`` the tet centroid, ``f_c`` the centroid of face ``(a,b,c)``
and ``f_d`` the centroid of face ``(a,b,d)``, the dual face inside the tet
is the (generally non-planar) quadrilateral ``m - f_c - g - f_d`` and its
directed area, oriented from ``a`` towards ``b``, is

    ``n_ab = 1/2 (g - m) x (f_d - f_c)``.

The even-permutation rule fixes the orientation for any right-handed tet;
the property-based tests verify the closure identity on random meshes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tetra import TetMesh, PATCH_FARFIELD

__all__ = [
    "EdgeStructure",
    "build_edge_structure",
    "extract_edges",
    "extract_boundary_faces",
    "closure_residual",
]

#: Local tet edges as (a, b, c, d): edge (a, b), completing vertices (c, d)
#: such that (a, b, c, d) is an even permutation of (0, 1, 2, 3).
_LOCAL_EDGES = np.array([
    (0, 1, 2, 3),
    (0, 2, 3, 1),
    (0, 3, 1, 2),
    (1, 2, 0, 3),
    (1, 3, 2, 0),
    (2, 3, 0, 1),
], dtype=np.int64)

#: Local tet faces, ordered so the normal of (v0, v1, v2) by the right-hand
#: rule points *outward* for a right-handed tet.  Face k is opposite local
#: vertex k.
_LOCAL_FACES = np.array([
    (1, 2, 3),  # opposite 0
    (0, 3, 2),  # opposite 1
    (0, 1, 3),  # opposite 2
    (0, 2, 1),  # opposite 3
], dtype=np.int64)


@dataclass
class EdgeStructure:
    """Preprocessed edge-based view of a :class:`TetMesh`.

    Attributes
    ----------
    edges : (ne, 2) int64, unique vertex pairs with ``edges[:, 0] < edges[:, 1]``.
    eta : (ne, 3) float64, directed dual-face areas, oriented edge[0] -> edge[1].
    dual_volumes : (nv,) float64, median-dual control volumes.
    bfaces : (nf, 3) int64, boundary face vertex triples (outward-ordered).
    bface_areas : (nf, 3) float64, outward directed face areas.
    bface_tags : (nf,) int32 patch tags.
    vertex_bnormals : dict patch_tag -> (nv, 3) lumped per-vertex boundary
        normals ``sum_{f in patch, f ∋ i} A_f / 3`` (zero rows off-patch).
    """

    edges: np.ndarray
    eta: np.ndarray
    dual_volumes: np.ndarray
    bfaces: np.ndarray
    bface_areas: np.ndarray
    bface_tags: np.ndarray
    vertex_bnormals: dict
    n_vertices: int

    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]

    @property
    def n_bfaces(self) -> int:
        return self.bfaces.shape[0]

    def total_bnormal(self) -> np.ndarray:
        """Sum of lumped boundary normals over all patches, per vertex."""
        total = np.zeros((self.n_vertices, 3))
        for arr in self.vertex_bnormals.values():
            total += arr
        return total

    def patch_vertices(self, tag: int) -> np.ndarray:
        """Indices of vertices lying on boundary faces with patch ``tag``."""
        mask = self.bface_tags == tag
        return np.unique(self.bfaces[mask].ravel())


def extract_edges(tets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique edges of the tet mesh.

    Returns
    -------
    edges : (ne, 2) sorted unique vertex pairs.
    tet_edge_ids : (nt, 6) index of each local tet edge in ``edges``.
    """
    a = tets[:, _LOCAL_EDGES[:, 0]]
    b = tets[:, _LOCAL_EDGES[:, 1]]
    lo = np.minimum(a, b).ravel()
    hi = np.maximum(a, b).ravel()
    keys = np.stack([lo, hi], axis=1)
    edges, inverse = np.unique(keys, axis=0, return_inverse=True)
    return edges, inverse.reshape(tets.shape[0], 6)


def extract_boundary_faces(tets: np.ndarray) -> np.ndarray:
    """Faces belonging to exactly one tet, ordered outward.

    The local face table already orients every face outward for
    right-handed tets, so the returned triples carry the outward
    orientation directly.
    """
    faces = tets[:, _LOCAL_FACES]                      # (nt, 4, 3)
    flat = faces.reshape(-1, 3)
    key = np.sort(flat, axis=1)
    _, inverse, counts = np.unique(key, axis=0, return_inverse=True, return_counts=True)
    boundary_mask = counts[inverse] == 1
    return flat[boundary_mask]


def _face_area_vectors(vertices: np.ndarray, faces: np.ndarray) -> np.ndarray:
    """Directed areas ``1/2 (v1 - v0) x (v2 - v0)`` of oriented triangles."""
    p0 = vertices[faces[:, 0]]
    p1 = vertices[faces[:, 1]]
    p2 = vertices[faces[:, 2]]
    return 0.5 * np.cross(p1 - p0, p2 - p0)


def build_edge_structure(mesh: TetMesh) -> EdgeStructure:
    """Transform a tet mesh into the edge-based solver data structure.

    This is the paper's per-grid preprocessing step (Section 2.4): "Each
    grid must then be transformed into the appropriate edge based data
    structure ... a list of edges with the addresses of the two end
    vertices for each edge, and a set of coefficients associated with each
    edge."
    """
    vertices, tets = mesh.vertices, mesh.tets
    edges, tet_edge_ids = extract_edges(tets)
    ne = edges.shape[0]

    # --- per-tet dual-face directed areas, assembled to unique edges ------
    verts_t = vertices[tets]                            # (nt, 4, 3)
    centroid = verts_t.mean(axis=1)                     # (nt, 3)
    eta = np.zeros((ne, 3))
    for k, (la, lb, lc, ld) in enumerate(_LOCAL_EDGES):
        xa = verts_t[:, la]
        xb = verts_t[:, lb]
        xc = verts_t[:, lc]
        xd = verts_t[:, ld]
        m = 0.5 * (xa + xb)
        f_c = (xa + xb + xc) / 3.0
        f_d = (xa + xb + xd) / 3.0
        n_ab = 0.5 * np.cross(centroid - m, f_d - f_c)  # oriented a -> b
        # Unique edges are stored (min, max); flip contribution when the
        # local ordering runs from the larger to the smaller index.
        sign = np.where(tets[:, la] < tets[:, lb], 1.0, -1.0)
        np.add.at(eta, tet_edge_ids[:, k], sign[:, None] * n_ab)

    # --- boundary faces ----------------------------------------------------
    bfaces = extract_boundary_faces(tets)
    bface_areas = _face_area_vectors(vertices, bfaces)
    if bfaces.shape[0]:
        centroids = vertices[bfaces].mean(axis=1)
        norms = np.linalg.norm(bface_areas, axis=1, keepdims=True)
        unit = bface_areas / np.where(norms > 0, norms, 1.0)
        if mesh.boundary_tagger is not None:
            tags = np.asarray(mesh.boundary_tagger(centroids, unit), dtype=np.int32)
            if tags.shape != (bfaces.shape[0],):
                raise ValueError("boundary_tagger must return one tag per face")
        else:
            tags = np.full(bfaces.shape[0], PATCH_FARFIELD, dtype=np.int32)
    else:
        tags = np.zeros(0, dtype=np.int32)

    # --- lumped per-vertex boundary normals by patch -----------------------
    nv = mesh.n_vertices
    vertex_bnormals: dict[int, np.ndarray] = {}
    for tag in np.unique(tags):
        sel = tags == tag
        acc = np.zeros((nv, 3))
        contrib = np.repeat(bface_areas[sel] / 3.0, 3, axis=0)
        np.add.at(acc, bfaces[sel].ravel(), contrib)
        vertex_bnormals[int(tag)] = acc

    return EdgeStructure(
        edges=edges,
        eta=eta,
        dual_volumes=mesh.dual_volumes(),
        bfaces=bfaces,
        bface_areas=bface_areas,
        bface_tags=tags,
        vertex_bnormals=vertex_bnormals,
        n_vertices=nv,
    )


def closure_residual(struct: EdgeStructure) -> np.ndarray:
    """Per-vertex closure defect ``sum_j eta_ij + b_i`` (should be ~0).

    A constant flux field F produces the nodal residual ``closure . F``;
    machine-precision closure is therefore equivalent to exact freestream
    preservation of the convective operator.
    """
    nv = struct.n_vertices
    acc = np.zeros((nv, 3))
    np.add.at(acc, struct.edges[:, 0], struct.eta)
    np.subtract.at(acc, struct.edges[:, 1], struct.eta)
    return acc + struct.total_bnormal()
