"""Tet mesh quality metrics, used by Figure 3's mesh report and the tests."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tetra import TetMesh

__all__ = ["MeshQuality", "mesh_quality", "radius_ratios", "edge_lengths"]


def edge_lengths(vertices: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Euclidean lengths of mesh edges."""
    return np.linalg.norm(vertices[edges[:, 1]] - vertices[edges[:, 0]], axis=1)


def radius_ratios(mesh: TetMesh) -> np.ndarray:
    """Normalised inradius/circumradius ratio per tet (1 = regular, 0 = flat).

    Uses the standard formulas ``r = 3V / A_total`` and the circumradius
    from the Cayley–Menger-style determinant; ratio is scaled by 3 so a
    regular tetrahedron scores exactly 1.
    """
    v = mesh.vertices[mesh.tets]
    a, b, c, d = v[:, 0], v[:, 1], v[:, 2], v[:, 3]
    vol = mesh.volumes

    def tri_area(p, q, r):
        return 0.5 * np.linalg.norm(np.cross(q - p, r - p), axis=1)

    area = (tri_area(b, c, d) + tri_area(a, c, d)
            + tri_area(a, b, d) + tri_area(a, b, c))
    inradius = 3.0 * vol / area

    # Circumradius: |alpha| / (12 V) with alpha from the lengths formula.
    ab, ac, ad = b - a, c - a, d - a
    la, lb, lc = (np.einsum("ij,ij->i", ab, ab), np.einsum("ij,ij->i", ac, ac),
                  np.einsum("ij,ij->i", ad, ad))
    num = (la[:, None] * np.cross(ac, ad) + lb[:, None] * np.cross(ad, ab)
           + lc[:, None] * np.cross(ab, ac))
    circumradius = np.linalg.norm(num, axis=1) / (12.0 * vol)
    return 3.0 * inradius / circumradius


@dataclass
class MeshQuality:
    """Summary statistics reported alongside Figure 3's mesh description."""

    n_vertices: int
    n_tets: int
    n_edges: int
    n_bfaces: int
    min_volume: float
    max_volume: float
    min_quality: float
    mean_quality: float
    min_edge: float
    max_edge: float
    min_degree: int
    max_degree: int
    mean_degree: float

    def report(self) -> str:
        return "\n".join([
            f"nodes {self.n_vertices}, tets {self.n_tets}, edges {self.n_edges}, "
            f"boundary faces {self.n_bfaces}",
            f"tet volume [{self.min_volume:.3e}, {self.max_volume:.3e}]",
            f"radius-ratio quality min {self.min_quality:.3f} mean {self.mean_quality:.3f}",
            f"edge length [{self.min_edge:.3e}, {self.max_edge:.3e}]",
            f"vertex degree [{self.min_degree}, {self.max_degree}] "
            f"mean {self.mean_degree:.2f}",
        ])


def mesh_quality(mesh: TetMesh, struct=None) -> MeshQuality:
    """Compute the quality summary; builds the edge structure if not given."""
    if struct is None:
        from .edges import build_edge_structure
        struct = build_edge_structure(mesh)
    q = radius_ratios(mesh)
    lengths = edge_lengths(mesh.vertices, struct.edges)
    degree = np.zeros(mesh.n_vertices, dtype=np.int64)
    np.add.at(degree, struct.edges.ravel(), 1)
    return MeshQuality(
        n_vertices=mesh.n_vertices,
        n_tets=mesh.n_tets,
        n_edges=struct.n_edges,
        n_bfaces=struct.n_bfaces,
        min_volume=float(mesh.volumes.min()),
        max_volume=float(mesh.volumes.max()),
        min_quality=float(q.min()),
        mean_quality=float(q.mean()),
        min_edge=float(lengths.min()),
        max_edge=float(lengths.max()),
        min_degree=int(degree.min()),
        max_degree=int(degree.max()),
        mean_degree=float(degree.mean()),
    )
