"""Uniform (red) tetrahedral refinement: each tet splits into eight.

The paper's conclusions name "parallel adaptive mesh refinement" as the
missing piece of a complete solution package.  This module provides the
serial substrate for it: conforming 1-to-8 subdivision with edge-midpoint
vertices — four corner tets plus a central octahedron cut along its
shortest diagonal (the quality-preserving choice of Bey/Zhang).

Because the multigrid scheme accepts *completely unrelated* grids, a
refined mesh drops straight in as a new finest level
(``MultigridHierarchy([refine_mesh(m), m, ...])``), which is exactly how
the paper envisages adaptively refined levels entering the sequence:
"new finer meshes can be introduced by adaptive refinement" (Section 2.3).

Limitations (documented, not hidden): new boundary vertices are placed at
edge midpoints — chords of the true surface — since there is no CAD
geometry to project onto; and the refinement is uniform (the marking
machinery of true adaptation is out of scope for this reproduction).
"""

from __future__ import annotations

import numpy as np

from .tetra import TetMesh

__all__ = ["refine_mesh", "refine_tets"]

#: The six tet edges in local indices, fixed order.
_EDGE_LOCAL = np.array([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
                       dtype=np.int64)

#: Corner children: corner vertex + its three adjacent edge midpoints
#: (edge ids into _EDGE_LOCAL).
_CORNER_CHILDREN = [
    (0, (0, 1, 2)),     # v0 : m01 m02 m03
    (1, (0, 3, 4)),     # v1 : m01 m12 m13
    (2, (1, 3, 5)),     # v2 : m02 m12 m23
    (3, (2, 4, 5)),     # v3 : m03 m13 m23
]

#: The three octahedron diagonals as (edge id, edge id) midpoint pairs:
#: (m01, m23), (m02, m13), (m03, m12).
_DIAGONALS = [(0, 5), (1, 4), (2, 3)]

#: For each diagonal choice, the four octahedron tets: (diag_a, diag_b,
#: ring_k, ring_{k+1}) over the equatorial ring of the remaining four
#: midpoints in cyclic order.
_OCTA_RINGS = {
    (0, 5): (1, 2, 4, 3),     # ring m02 m03 m13 m12 around diagonal m01-m23
    (1, 4): (0, 2, 5, 3),     # ring m01 m03 m23 m12 around diagonal m02-m13
    (2, 3): (0, 1, 5, 4),     # ring m01 m02 m23 m13 around diagonal m03-m12
}


def refine_tets(vertices: np.ndarray,
                tets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Red-refine connectivity: returns ``(all_vertices, fine_tets)``.

    Midpoint vertices are appended after the originals, one per unique
    edge, so coarse vertex indices survive unchanged (useful for nested
    injection checks in the tests).
    """
    nv = vertices.shape[0]
    a = tets[:, _EDGE_LOCAL[:, 0]]
    b = tets[:, _EDGE_LOCAL[:, 1]]
    lo, hi = np.minimum(a, b), np.maximum(a, b)
    keys = np.stack([lo.ravel(), hi.ravel()], axis=1)
    uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
    mid_ids = (nv + inverse).reshape(tets.shape[0], 6)
    midpoints = 0.5 * (vertices[uniq[:, 0]] + vertices[uniq[:, 1]])
    all_vertices = np.concatenate([vertices, midpoints], axis=0)

    children = []
    # Four corner tets.
    for corner, (e1, e2, e3) in _CORNER_CHILDREN:
        children.append(np.stack([tets[:, corner], mid_ids[:, e1],
                                  mid_ids[:, e2], mid_ids[:, e3]], axis=1))

    # Central octahedron: cut along the shortest diagonal per tet.
    diag_lengths = np.stack([
        np.linalg.norm(all_vertices[mid_ids[:, d0]]
                       - all_vertices[mid_ids[:, d1]], axis=1)
        for d0, d1 in _DIAGONALS], axis=1)
    choice = diag_lengths.argmin(axis=1)

    octa = np.empty((tets.shape[0], 4, 4), dtype=np.int64)
    for c, (d0, d1) in enumerate(_DIAGONALS):
        sel = choice == c
        if not np.any(sel):
            continue
        ring = _OCTA_RINGS[(d0, d1)]
        for k in range(4):
            r0, r1 = ring[k], ring[(k + 1) % 4]
            octa[sel, k, 0] = mid_ids[sel, d0]
            octa[sel, k, 1] = mid_ids[sel, d1]
            octa[sel, k, 2] = mid_ids[sel, r0]
            octa[sel, k, 3] = mid_ids[sel, r1]
    for k in range(4):
        children.append(octa[:, k])

    return all_vertices, np.concatenate(children, axis=0)


def refine_mesh(mesh: TetMesh, name: str | None = None) -> TetMesh:
    """Conforming 8-fold refinement of a :class:`TetMesh`.

    The parent's ``boundary_tagger`` is reused: all our taggers classify
    by face-centroid geometry, which remains valid on the chord-midpoint
    boundary of the refined mesh.
    """
    all_vertices, fine_tets = refine_tets(mesh.vertices, mesh.tets)
    return TetMesh(all_vertices, fine_tets,
                   boundary_tagger=mesh.boundary_tagger,
                   name=name or f"{mesh.name}-refined")
