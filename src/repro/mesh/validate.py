"""Mesh validation: the checks a mesh must pass before the solver sees it.

Collects the invariants that the generators guarantee by construction and
that externally supplied meshes (the library's main extension point) must
be checked against: positive volumes, index sanity, conformity (every
interior face shared by exactly two tets), watertight boundary, no
duplicate vertices, and closure of the dual mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .edges import build_edge_structure, closure_residual
from .tetra import TetMesh

__all__ = ["ValidationReport", "validate_mesh"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_mesh`; falsy when any check failed."""

    checks: dict = field(default_factory=dict)   # name -> (ok, detail)

    def __bool__(self) -> bool:
        return all(ok for ok, _ in self.checks.values())

    @property
    def failures(self) -> list:
        return [name for name, (ok, _) in self.checks.items() if not ok]

    def report(self) -> str:
        lines = []
        for name, (ok, detail) in self.checks.items():
            status = "ok " if ok else "FAIL"
            lines.append(f"[{status}] {name}: {detail}")
        return "\n".join(lines)


def validate_mesh(mesh: TetMesh, closure_tol: float = 1e-10) -> ValidationReport:
    """Run all structural checks; cheap enough for interactive use."""
    rep = ValidationReport()

    vols = mesh.volumes
    rep.checks["positive volumes"] = (
        bool(np.all(vols > 0)),
        f"min volume {vols.min():.3e}")

    finite = bool(np.all(np.isfinite(mesh.vertices)))
    rep.checks["finite coordinates"] = (finite, "all coordinates finite"
                                        if finite else "non-finite found")

    # Duplicate vertices would create zero-length edges and singular duals.
    rounded = np.round(mesh.vertices, 12)
    n_unique = np.unique(rounded, axis=0).shape[0]
    rep.checks["no duplicate vertices"] = (
        n_unique == mesh.n_vertices,
        f"{mesh.n_vertices - n_unique} duplicates")

    # Degenerate tets referencing a vertex twice.
    sorted_tets = np.sort(mesh.tets, axis=1)
    has_repeats = bool(np.any(sorted_tets[:, :-1] == sorted_tets[:, 1:]))
    rep.checks["no repeated tet vertices"] = (
        not has_repeats, "tets reference 4 distinct vertices"
        if not has_repeats else "repeated vertex in a tet")

    # Conformity: every face appears once (boundary) or twice (interior).
    local_faces = np.array([(1, 2, 3), (0, 3, 2), (0, 1, 3), (0, 2, 1)])
    faces = np.sort(mesh.tets[:, local_faces].reshape(-1, 3), axis=1)
    _, counts = np.unique(faces, axis=0, return_counts=True)
    conforming = bool(np.all(counts <= 2))
    rep.checks["conforming faces"] = (
        conforming,
        f"max face multiplicity {counts.max()}")

    # Watertight boundary + dual closure via the edge structure.
    try:
        struct = build_edge_structure(mesh)
        net = np.linalg.norm(struct.bface_areas.sum(axis=0))
        scale = max(np.abs(struct.bface_areas).max(), 1e-300)
        rep.checks["watertight boundary"] = (
            net < 1e-9 * scale * struct.n_bfaces,
            f"net boundary area {net:.3e}")
        closure = np.abs(closure_residual(struct)).max()
        rep.checks["dual closure"] = (
            closure < closure_tol,
            f"max closure defect {closure:.3e}")
    except Exception as exc:       # pragma: no cover - defensive
        rep.checks["edge structure"] = (False, f"build failed: {exc}")

    # Isolated vertices (referenced by no tet).
    used = np.zeros(mesh.n_vertices, dtype=bool)
    used[mesh.tets.ravel()] = True
    n_isolated = int(np.count_nonzero(~used))
    rep.checks["no isolated vertices"] = (
        n_isolated == 0, f"{n_isolated} isolated vertices")

    return rep
