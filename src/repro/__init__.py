"""EUL3D-repro: a parallel unstructured Euler solver on shared and
distributed memory architectures.

Reproduction of Mavriplis, Das, Saltz & Vermeland (Supercomputing '92,
NASA CR-189742 / ICASE 92-68).  See README.md for the architecture tour,
DESIGN.md for the system inventory, EXPERIMENTS.md for the
paper-vs-reproduction record.

The commonly used entry points are re-exported here; the subpackages
(`repro.mesh`, `repro.solver`, `repro.multigrid`, `repro.coloring`,
`repro.partition`, `repro.parti`, `repro.distsolver`, `repro.perfmodel`,
`repro.harness`) carry the full API.
"""

from .mesh import (TetMesh, box_mesh, build_edge_structure, bump_channel,
                   ellipsoid_shell, refine_mesh, validate_mesh)
from .multigrid import MultigridHierarchy, run_fmg, run_multigrid
from .pipeline import preprocess
from .solver import EulerSolver, SolverConfig, mach_field
from .state import freestream_state

__version__ = "1.0.0"

__all__ = [
    "TetMesh", "box_mesh", "build_edge_structure", "bump_channel",
    "ellipsoid_shell", "refine_mesh", "validate_mesh",
    "MultigridHierarchy", "run_fmg", "run_multigrid", "preprocess",
    "EulerSolver", "SolverConfig", "mach_field", "freestream_state",
    "__version__",
]
