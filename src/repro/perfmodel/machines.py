"""Machine descriptions: Cray Y-MP C90 and Intel Touchstone Delta.

The hardware constants come from published sources (Cray UNICOS manuals,
Delta user documentation and contemporaneous literature); the few
*calibrated* parameters are marked as such and fitted once against the
paper's own tables, as documented in EXPERIMENTS.md.  Everything the
models multiply these constants with — flop counts, message counts, byte
volumes, colour structure, partition surface areas, multigrid visit
counts — is measured from the reproduction's own runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CrayC90", "TouchstoneDelta", "PAPER_FINE_MESH"]


@dataclass(frozen=True)
class CrayC90:
    """Cray Y-MP C90 shared-memory vector/parallel machine (16 CPUs).

    The C90 CPU has two vector pipes at a 4.167 ns clock; its practical
    peak is ~952 MFlops/CPU.  EUL3D's gather/scatter-heavy loops achieved
    252 MFlops/CPU (Table 1a) — the ``r_inf`` of the model, reached
    asymptotically for long vectors.
    """

    n_cpus_max: int = 16
    clock_ns: float = 4.167
    peak_mflops_per_cpu: float = 952.0
    #: asymptotic per-CPU rate of indirect-addressed edge loops (measured
    #: by the paper at 1 CPU; our model's r_inf).
    r_inf_mflops: float = 253.0
    #: vector half-performance length n_1/2 for gather/scatter loops.
    n_half: float = 60.0
    #: CALIBRATED: CPU-seconds of multitasking (slave start/join) overhead
    #: charged per parallel region per extra CPU.
    fork_overhead_s: float = 2.1e-4
    #: CALIBRATED: serial wall-clock seconds (grid file I/O, monitoring)
    #: per run of 100 cycles.
    serial_io_s: float = 20.0


@dataclass(frozen=True)
class TouchstoneDelta:
    """Intel Touchstone Delta: 16x32 mesh of i860 nodes, NX messaging.

    i860 XR at 40 MHz: 60 MFlops double-precision peak, 8 KB data cache,
    low memory bandwidth — the paper attributes the 5%-of-peak utilisation
    to exactly these.  NX message latency and per-link bandwidth are from
    contemporaneous measurements (Delta latency ~75 us small-message,
    ~10 MB/s large-message bandwidth per link).
    """

    n_nodes_max: int = 512
    clock_mhz: float = 40.0
    peak_mflops_per_node: float = 60.0
    #: 8 KB direct-mapped data cache.
    cache_bytes: int = 8192
    cache_line_bytes: int = 32
    #: NX small-message latency (per message, seconds).
    latency_s: float = 75e-6
    #: per-link large-message bandwidth (bytes/second).
    bandwidth_bps: float = 10e6
    #: CALIBRATED: mesh-network contention multiplier on the bandwidth
    #: term (many simultaneous irregular messages share links).
    contention: float = 2.2
    #: time per double-precision flop when operands are in cache (s).
    #: ~6 MFlops cached rate for this code's mix; the cache model degrades
    #: it with the measured miss rate.
    t_flop_cached_s: float = 1.0 / 6.5e6
    #: main-memory access penalty per missed vertex-data access (s).
    t_miss_s: float = 0.55e-6


#: The paper's finest mesh (Section 3.2): 804,056 nodes, ~4.5 M tets,
#: ~5.5 M edges; second mesh 106,064 nodes / 575,986 tets.  The
#: performance models scale our measured per-entity quantities up to
#: these sizes.
PAPER_FINE_MESH = {
    "nodes": 804_056,
    "tets": 4_500_000,
    "edges": 5_500_000,
    "mg_levels": 4,
    #: node counts of the paper's 4-level sequence; levels below the two
    #: documented ones follow the same ~7.6x coarsening ratio.
    "level_nodes": (804_056, 106_064, 13_992, 1_846),
    "level_edges": (5_500_000, 725_000, 95_600, 12_600),
}
