"""i860 cache model: prices the node/edge reordering of Section 4.2.

The i860's 8 KB data cache holds only a few dozen vertices' worth of flow
data, so the hit rate of the edge loops is governed entirely by access
locality — which is what the node renumbering and edge reordering change.

The model combines

* the **measured reuse-distance distribution** of the actual edge list
  ordering (:func:`repro.distsolver.reorder.reuse_distances`) — an access
  hits if its reuse distance is shorter than the cache's vertex capacity
  (the working-set approximation of LRU stack distance);
* the machine's cached flop time and miss penalty (machines.py).

Effective rate = 1 / (t_flop + miss_rate * accesses_per_flop * t_miss).

The paper reports the reordering "improved the single node computational
rate by a factor of two"; the ablation benchmark evaluates this model on
the BFS-renumbered/vertex-sorted ordering versus a shuffled ordering and
checks the same factor emerges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machines import TouchstoneDelta

__all__ = ["CacheModelResult", "edge_loop_hit_rate", "effective_node_mflops"]

#: Bytes of per-vertex solver data competing for cache in an edge loop:
#: conserved state (5), flux tensor row reuse, residual accumulator (5),
#: geometry — about 24 doubles.
BYTES_PER_VERTEX_DATA = 24 * 8

#: Vertex-data accesses per flop in the edge kernels (two endpoints per
#: edge, ~65 flops per edge in the convective loop -> ~0.25 accesses/flop
#: counting the 5-variable payloads).
ACCESSES_PER_FLOP = 0.25


@dataclass
class CacheModelResult:
    hit_rate: float
    mflops: float


def edge_loop_hit_rate(edges: np.ndarray, order: np.ndarray,
                       machine: TouchstoneDelta | None = None) -> float:
    """Cache hit rate of the vertex accesses of an ordered edge loop."""
    from ..distsolver.reorder import reuse_distances
    machine = machine or TouchstoneDelta()
    capacity_vertices = machine.cache_bytes / BYTES_PER_VERTEX_DATA
    stream = edges[order].ravel()
    dist = reuse_distances(stream)
    # Reuse distance is in stream positions; each position touches one
    # vertex, so it is also the number of distinct-vertex opportunities.
    hits = np.count_nonzero(dist <= 2.0 * capacity_vertices)
    return hits / dist.size


def effective_node_mflops(hit_rate: float,
                          machine: TouchstoneDelta | None = None) -> float:
    """Per-node rate (MFlops) at a given vertex-access hit rate."""
    machine = machine or TouchstoneDelta()
    t = (machine.t_flop_cached_s
         + (1.0 - hit_rate) * ACCESSES_PER_FLOP * machine.t_miss_s)
    return 1.0 / t / 1e6


def node_rate_for_ordering(edges: np.ndarray, order: np.ndarray,
                           machine: TouchstoneDelta | None = None) -> CacheModelResult:
    """Convenience: hit rate + modelled MFlops for one edge ordering."""
    machine = machine or TouchstoneDelta()
    hr = edge_loop_hit_rate(edges, order, machine)
    return CacheModelResult(hit_rate=hr, mflops=effective_node_mflops(hr, machine))
