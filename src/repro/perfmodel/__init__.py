"""Performance models for the two 1992 machines, driven by measured
workload quantities (flops, colours, partitions, traffic)."""

from .cache import (CacheModelResult, edge_loop_hit_rate,
                    effective_node_mflops, node_rate_for_ordering)
from .cray import CrayRunModel, CrayWorkload, model_cray_run, model_cray_table
from .delta import DeltaMeasurement, DeltaRunModel, measure_traffic, model_delta_run
from .flops import FlopCounter, NullFlopCounter
from .machines import PAPER_FINE_MESH, CrayC90, TouchstoneDelta

__all__ = [
    "CacheModelResult", "edge_loop_hit_rate", "effective_node_mflops",
    "node_rate_for_ordering", "CrayRunModel", "CrayWorkload",
    "model_cray_run", "model_cray_table", "DeltaMeasurement",
    "DeltaRunModel", "measure_traffic", "model_delta_run", "FlopCounter",
    "NullFlopCounter", "PAPER_FINE_MESH", "CrayC90", "TouchstoneDelta",
]
