"""Analytic floating-point operation accounting.

The paper reports Delta MFlops "obtained by counting the number of
operations in each loop" and notes these are ~10% more conservative than
the Cray hardware monitor.  We follow the same convention: every solver
kernel registers an analytic per-entity flop count, accumulated per named
phase.  The counts are a documented convention (adds, multiplies, divides
and square roots each count 1) — the performance models only ever use
*ratios and totals* of these counts, so the convention cancels out of all
speedup-shaped results.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["FlopCounter", "NullFlopCounter"]


@dataclass
class FlopCounter:
    """Accumulates flops per named phase (e.g. ``convective``, ``dissipation``)."""

    phases: dict = field(default_factory=lambda: defaultdict(float))

    def add(self, phase: str, flops: float) -> None:
        self.phases[phase] += flops

    @property
    def total(self) -> float:
        return float(sum(self.phases.values()))

    def reset(self) -> None:
        self.phases.clear()

    def snapshot(self) -> dict:
        return dict(self.phases)

    def merge(self, other: "FlopCounter") -> None:
        for phase, flops in other.phases.items():
            self.phases[phase] += flops

    def report(self) -> str:
        lines = [f"{phase:>16s}: {flops / 1e6:10.2f} MFlop"
                 for phase, flops in sorted(self.phases.items())]
        lines.append(f"{'total':>16s}: {self.total / 1e6:10.2f} MFlop")
        return "\n".join(lines)


class NullFlopCounter:
    """No-op counter used when instrumentation is disabled."""

    def add(self, phase: str, flops: float) -> None:
        pass

    @property
    def total(self) -> float:
        return 0.0

    def reset(self) -> None:
        pass

    def snapshot(self) -> dict:
        return {}
