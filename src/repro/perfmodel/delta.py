"""Intel Touchstone Delta performance model (Tables 2a-2c).

The model consumes **measurements** of an actual distributed run on the
simulated machine:

* per-phase, per-rank message and byte traffic (from the SimMachine
  traffic log — produced by the real PARTI schedules of the real
  partition of a real mesh), with each phase attributed to its multigrid
  level (phase names carry an ``L<l>-`` prefix);
* per-rank, per-level flop counts from the instrumented SPMD kernels.

Scaling to the paper's problem: our meshes are laptop-scale, the paper's
fine mesh has 804k nodes, so each level's per-rank **volume** quantities
(flops) scale with that level's per-rank vertex ratio ``rho_v(l)`` and
its per-rank **surface** quantities (ghost bytes) scale with
``rho_v(l)^(2/3)``.  Message counts per rank follow the partition
neighbour structure, which is scale-invariant at fixed rank count, and are
left unscaled.

Machine constants: the i860 node rate comes from the cache model; the
message cost uses *effective* per-message and per-byte times.  Nominal NX
numbers (75 us, 10 MB/s) under-predict the paper's communication column by
several-fold because the paper's "communication" bucket — measured as
wall-clock minus compute — also contains synchronisation and load-wait
time.  We therefore fit the two effective constants **once, against Table
2a only** (two equations, two unknowns); Tables 2b and 2c are then
out-of-sample predictions of the fitted model.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from .cache import effective_node_mflops
from .machines import TouchstoneDelta

__all__ = ["DeltaMeasurement", "DeltaRunModel", "measure_traffic",
           "model_delta_run", "fit_effective_message_costs", "phase_level"]

_PREFIX_RE = re.compile(r"^L(\d+)-")
_TRANSFER_RE = re.compile(r"^transfer-\w+-L(\d+)")


def phase_level(name: str) -> int:
    """Multigrid level a communication phase belongs to (0 = finest).

    Inter-grid transfer phases are attributed to their finer level, whose
    surface dominates the schedule size.
    """
    m = _PREFIX_RE.match(name)
    if m:
        return int(m.group(1))
    m = _TRANSFER_RE.match(name)
    if m:
        return int(m.group(1))
    return 0


@dataclass
class DeltaMeasurement:
    """Per-cycle normalised measurements of one distributed run."""

    n_ranks: int
    n_cycles: int
    #: per phase name: (max-rank messages/cycle, max-rank bytes/cycle,
    #: occurrences/cycle, level)
    comm_phases: dict = field(default_factory=dict)
    #: per level: max-over-ranks flops per cycle
    level_flops_max: list = field(default_factory=list)
    #: per level: total flops per cycle (all ranks)
    level_flops_total: list = field(default_factory=list)
    #: per level: our mesh vertex / edge counts
    level_vertices: list = field(default_factory=list)
    level_edges: list = field(default_factory=list)
    #: per level: mean ghosts per rank / mean owned per rank.  > 1 means
    #: the level is ghost-dominated (tiny grids on many processors, the
    #: paper's coarse-grid regime) where traffic scales with volume rather
    #: than surface.
    level_ghost_ratio: list = field(default_factory=list)

    def comm_components(self, rho_s_levels) -> tuple[float, float, float]:
        """(messages, surface-scaled bytes, phase occurrences) per cycle."""
        msgs = sum(m for m, _, _, _ in self.comm_phases.values())
        bytes_scaled = sum(b * rho_s_levels[min(l, len(rho_s_levels) - 1)]
                           for _, b, _, l in self.comm_phases.values())
        occs = sum(o for _, _, o, _ in self.comm_phases.values())
        return msgs, bytes_scaled, occs


def measure_traffic(machine_log, level_rank_flops: list, n_cycles: int,
                    level_vertices: list, level_edges: list,
                    level_ghost_ratio: list | None = None) -> DeltaMeasurement:
    """Normalise a run's traffic log + per-level flop counters.

    ``level_rank_flops[l]`` is the ``{phase: per-rank array}`` dict of the
    level-l solver (a single-grid run passes a one-element list).
    """
    n_ranks = machine_log.n_ranks
    comm = {}
    for name, p in machine_log.phases.items():
        comm[name] = (float(np.maximum(p.msgs_sent, p.msgs_recv).max()) / n_cycles,
                      float(np.maximum(p.bytes_sent, p.bytes_recv).max()) / n_cycles,
                      p.occurrences / n_cycles,
                      phase_level(name))
    flops_max, flops_total = [], []
    for d in level_rank_flops:
        per_rank = np.zeros(n_ranks)
        for arr in d.values():
            per_rank += arr
        flops_max.append(float(per_rank.max()) / n_cycles)
        flops_total.append(float(per_rank.sum()) / n_cycles)
    if level_ghost_ratio is None:
        level_ghost_ratio = [0.0] * len(level_vertices)
    return DeltaMeasurement(
        n_ranks=n_ranks,
        n_cycles=n_cycles,
        comm_phases=comm,
        level_flops_max=flops_max,
        level_flops_total=flops_total,
        level_vertices=list(level_vertices),
        level_edges=list(level_edges),
        level_ghost_ratio=list(level_ghost_ratio),
    )


@dataclass
class DeltaRunModel:
    """One row of a Table 2 variant (per 100 cycles, paper's convention)."""

    n_nodes: int
    comm_s: float
    comp_s: float
    mflops: float

    @property
    def total_s(self) -> float:
        return self.comm_s + self.comp_s

    def row(self) -> tuple:
        return (self.n_nodes, round(self.comm_s), round(self.comp_s),
                round(self.total_s), round(self.mflops))


def _scales(meas: DeltaMeasurement, paper_nodes: int,
            paper_level_nodes, paper_level_edges):
    """Per-level volume/surface/per-rank-flop scale factors."""
    n_levels = len(meas.level_vertices)
    rho_v, rho_s, rho_f_rank, rho_f_total = [], [], [], []
    for l in range(n_levels):
        v_ours_rank = meas.level_vertices[l] / meas.n_ranks
        v_paper_rank = paper_level_nodes[l] / paper_nodes
        rv = v_paper_rank / v_ours_rank
        rho_v.append(rv)
        # Surface scaling exponent: 2/3 in the surface-dominated regime,
        # sliding to 1 (volume) as the level saturates with ghosts (the
        # paper's coarse-grid regime: "smaller data sets spread over an
        # equally large number of processors").  Saturation is judged at
        # both ends of the extrapolation: our measured ghost/owned ratio,
        # and its surface-law projection to the paper's per-rank size.
        if meas.level_ghost_ratio:
            sat_ours = meas.level_ghost_ratio[l]
            sat_target = sat_ours * rv ** (-1.0 / 3.0)
            sat = min(1.0, float(np.sqrt(max(sat_ours * sat_target, 0.0))))
        else:
            sat = 0.0
        exponent = 2.0 / 3.0 + sat / 3.0
        rho_s.append(rv ** exponent)
        e_ratio_rank = (paper_level_edges[l] / paper_nodes) \
            / (meas.level_edges[l] / meas.n_ranks)
        rho_f_rank.append(e_ratio_rank)
        rho_f_total.append(paper_level_edges[l] / meas.level_edges[l])
    return rho_v, rho_s, rho_f_rank, rho_f_total


def model_delta_run(meas: DeltaMeasurement, paper_nodes: int,
                    paper_level_nodes, paper_level_edges,
                    node_hit_rate: float,
                    machine: TouchstoneDelta | None = None,
                    t_sync_s: float | None = None,
                    t_byte_s: float | None = None,
                    n_cycles: int = 100) -> DeltaRunModel:
    """Extrapolate a measurement to the paper's mesh and node count.

    The communication time per cycle has three parts: nominal NX latency
    per message, a per-exchange-phase synchronisation cost ``t_sync_s``
    (bulk-synchronous loose ends: barrier skew, load wait), and a per-byte
    cost ``t_byte_s``.  The latter two default to zero / nominal values;
    pass the values from :func:`fit_effective_message_costs` for
    calibrated runs.
    """
    machine = machine or TouchstoneDelta()
    if t_sync_s is None:
        t_sync_s = 0.0
    if t_byte_s is None:
        t_byte_s = machine.contention / machine.bandwidth_bps

    _, rho_s, rho_f_rank, rho_f_total = _scales(
        meas, paper_nodes, paper_level_nodes, paper_level_edges)

    msgs, bytes_scaled, occs = meas.comm_components(rho_s)
    comm_per_cycle = (machine.latency_s * msgs + t_sync_s * occs
                      + t_byte_s * bytes_scaled)

    rate = effective_node_mflops(node_hit_rate, machine) * 1e6
    comp_per_cycle = sum(f * r for f, r in zip(meas.level_flops_max,
                                               rho_f_rank)) / rate
    flops_total_cycle = sum(f * r for f, r in zip(meas.level_flops_total,
                                                  rho_f_total))

    comm_s = comm_per_cycle * n_cycles
    comp_s = comp_per_cycle * n_cycles
    return DeltaRunModel(
        n_nodes=paper_nodes,
        comm_s=comm_s,
        comp_s=comp_s,
        mflops=flops_total_cycle * n_cycles / (comm_s + comp_s) / 1e6,
    )


def fit_effective_message_costs(measurements: list, paper_nodes: list,
                                paper_level_sets: list,
                                paper_comm_s: list,
                                n_cycles: int = 100) -> tuple[float, float]:
    """Fit (t_sync, t_byte) to the paper's communication columns.

    ``measurements``/``paper_comm_s`` supply one point per (strategy, node
    count) pair; passing all six Table 2 comm values is recommended — no
    two-parameter linear model reproduces all six exactly (the paper's
    Table 2c is itself an author estimate), so the calibration minimises
    *relative* squared error across the set and the per-row residuals are
    reported in EXPERIMENTS.md.  The fitted constants fold in everything
    the paper's comm bucket contains beyond pure messaging
    (synchronisation, load wait, NX protocol overheads) and sit next to
    the nominal hardware numbers in the write-up.
    """
    machine = TouchstoneDelta()
    rows, rhs = [], []
    for meas, nodes, levels, comm_s in zip(measurements, paper_nodes,
                                           paper_level_sets, paper_comm_s):
        paper_level_nodes, paper_level_edges = levels
        _, rho_s, _, _ = _scales(meas, nodes, paper_level_nodes,
                                 paper_level_edges)
        msgs, bytes_scaled, occs = meas.comm_components(rho_s)
        target = comm_s - machine.latency_s * msgs * n_cycles
        if target <= 0.0:
            # Nominal latency alone already covers (or exceeds) this comm
            # value — nothing left for the fitted terms to explain.
            continue
        # Relative-error weighting: divide the row through by the target.
        rows.append([occs * n_cycles / target, bytes_scaled * n_cycles / target])
        rhs.append(1.0)
    if not rows:
        raise ValueError("degenerate fit: no usable calibration points")
    a = np.asarray(rows)
    b = np.asarray(rhs)
    sol, *_ = np.linalg.lstsq(a, b, rcond=None)
    t_sync, t_byte = float(sol[0]), float(sol[1])
    # Non-negative refit: when the unconstrained solution turns one
    # component negative, the NNLS optimum lies on a boundary — refit the
    # other component alone.
    if t_sync < 0.0 or t_byte < 0.0:
        fits = []
        for col in (0, 1):
            denom = float(a[:, col] @ a[:, col])
            coef = float(a[:, col] @ b) / denom if denom > 0 else 0.0
            resid = float(np.sum((a[:, col] * coef - b) ** 2))
            fits.append((resid, col, max(coef, 0.0)))
        _, col, coef = min(fits)
        t_sync, t_byte = (coef, 0.0) if col == 0 else (0.0, coef)
    if t_sync == 0.0 and t_byte == 0.0:
        raise ValueError("degenerate fit: no positive message costs")
    return t_sync, t_byte
