"""Cray Y-MP C90 vector/autotasking performance model (Tables 1a-1c).

What is measured from the reproduction (not assumed):

* flops per cycle per edge/vertex — from the instrumented solver kernels;
* the colour-group structure — from the actual greedy edge colouring
  (number of colours and group sizes set the vector lengths and the
  number of fork/join regions);
* the multigrid visit pattern — from the actual V/W recursion
  (``cycle_structure``), giving per-level work and region counts.

What the machine contributes: the vector rate curve
``r(l) = r_inf * l / (l + n_half)`` (Hockney's model, with the paper's own
measured single-CPU rate as ``r_inf``), a per-region fork overhead and a
serial I/O allowance (both calibrated once, see machines.py).

Model structure, per 100 cycles at ``P`` CPUs:

* every colour sweep is one autotasked region: the colour's edges are
  split into ``P`` subgroups, so the vector length drops to ``len/P``
  and each region charges ``(P - 1) * fork_overhead`` CPU-seconds;
* CPU time = sum of region work at the vector rate + fork overheads
  (this produces the paper's observed "total CPU time increases ...
  approximately 20% for 16 CPUs");
* wall time = CPU time / P + serial I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machines import CrayC90

__all__ = ["CrayRunModel", "CrayWorkload", "model_cray_table"]


@dataclass
class CrayWorkload:
    """Measured workload description for one solution strategy.

    ``level_flops_per_cycle[l]`` — flops of one time step on level ``l``
    (level 0 = finest; single grid has one level).
    ``level_visits_per_cycle[l]`` — time steps taken on level ``l`` per
    multigrid cycle (from ``cycle_structure``; all 1 for single grid).
    ``level_group_sizes[l]`` — edge-colour group sizes of level ``l``.
    ``sweeps_per_step`` — edge sweeps per time step (RK stages x kernels),
    used to count fork/join regions: regions = sweeps x colours.
    """

    level_flops_per_cycle: list
    level_visits_per_cycle: list
    level_group_sizes: list
    sweeps_per_step: float
    n_cycles: int = 100


@dataclass
class CrayRunModel:
    """One row of a Table 1 variant: performance at ``n_cpus``."""

    n_cpus: int
    wall_s: float
    cpu_s: float
    mflops: float

    def row(self) -> tuple:
        return (self.n_cpus, round(self.wall_s), round(self.cpu_s),
                round(self.mflops))


def _vector_rate(length: np.ndarray, machine: CrayC90) -> np.ndarray:
    """Hockney rate curve in flops/second for given vector lengths."""
    length = np.maximum(np.asarray(length, dtype=float), 1.0)
    return machine.r_inf_mflops * 1e6 * length / (length + machine.n_half)


def model_cray_run(workload: CrayWorkload, n_cpus: int,
                   machine: CrayC90 | None = None) -> CrayRunModel:
    """Model one run (e.g. 100 cycles of one strategy) at ``n_cpus``."""
    machine = machine or CrayC90()
    total_cpu = 0.0
    total_flops = 0.0
    total_regions = 0.0
    for flops, visits, groups in zip(workload.level_flops_per_cycle,
                                     workload.level_visits_per_cycle,
                                     workload.level_group_sizes):
        groups = np.asarray(groups, dtype=float)
        level_edges = groups.sum()
        # Distribute the level's flops over colours in proportion to size;
        # each colour runs at the vector rate of its per-CPU subgroup.
        flops_per_group = flops * groups / level_edges
        rate = _vector_rate(groups / n_cpus, machine)
        work_cpu = float((flops_per_group / rate).sum())
        level_cycles = visits * workload.n_cycles
        total_cpu += work_cpu * level_cycles
        total_flops += flops * level_cycles
        total_regions += workload.sweeps_per_step * len(groups) * level_cycles

    fork_cpu = total_regions * machine.fork_overhead_s * max(n_cpus - 1, 0)
    cpu_s = total_cpu + fork_cpu
    wall_s = cpu_s / n_cpus + machine.serial_io_s
    return CrayRunModel(n_cpus=n_cpus, wall_s=wall_s, cpu_s=cpu_s,
                        mflops=total_flops / wall_s / 1e6)


def model_cray_table(workload: CrayWorkload,
                     cpu_counts=(1, 2, 4, 8, 16),
                     machine: CrayC90 | None = None) -> list:
    """All rows of one Table 1 variant."""
    return [model_cray_run(workload, p, machine) for p in cpu_counts]
