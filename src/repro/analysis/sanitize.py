"""Runtime invariant sanitizers for colorings, schedules and buffers.

The paper's parallel correctness rests on three invariants that the code
otherwise only *relies* on:

* **coloring** — inside one colour group no two edges touch the same
  vertex (Section 3.1: the property that lets the autotasking compiler
  vectorise each colour and that makes the threaded executor's concurrent
  indexed stores race-free);
* **schedule** — a PARTI gather schedule covers every off-processor
  reference exactly once, its send/recv sides agree, and in the overlap
  executor every posted exchange is completed before the step ends
  (otherwise the interior/boundary split silently diverges, or the
  blocking mp backend deadlocks);
* **buffer** — the fused pipeline's workspace arrays are pairwise
  distinct, ``out=`` targets never alias their inputs, and steady-state
  stages allocate nothing (the zero-allocation contract of
  ``docs/performance.md``).

Each sanitizer checks one invariant mechanically.  They are **off by
default**: hot paths hold a :data:`NULL_SANITIZER` whose ``enabled``
attribute gates every hook behind a single attribute load — the same
zero-overhead pattern as :data:`repro.telemetry.NULL_TRACER`.  Enable
them with ``SolverConfig(sanitize="all")`` (or a comma-separated subset
of :data:`SANITIZER_NAMES`).  Findings are counted through
:func:`repro.telemetry.count_event` under ``sanitize.<code>`` and, in
strict mode (the default), raise :class:`SanitizerError` at the exact
operation that violated the invariant.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass

import numpy as np

from ..telemetry import count_event

__all__ = [
    "SANITIZER_NAMES", "SanitizerError", "Finding", "NullSanitizer",
    "NULL_SANITIZER", "ColorRaceSanitizer", "ScheduleSanitizer",
    "BufferSanitizer", "build_sanitizers",
]

#: Valid tokens of ``SolverConfig.sanitize`` (besides ``"off"``/``"all"``).
SANITIZER_NAMES = ("color", "schedule", "buffer")


class SanitizerError(RuntimeError):
    """An invariant checked by a strict sanitizer does not hold."""


@dataclass(frozen=True)
class Finding:
    """One recorded invariant violation."""

    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.code}: {self.message}"


class NullSanitizer:
    """No-op stand-in: every hook exists, nothing is ever checked.

    ``enabled`` is a class attribute so the hot-path gate
    (``if sanitizer.enabled: ...``) costs one attribute load — identical
    to the :data:`~repro.telemetry.NULL_TRACER` discipline.
    """

    enabled = False
    findings: tuple = ()

    # -- color ----------------------------------------------------------
    def check_coloring(self, *a, **k) -> None: pass
    def check_color_offsets(self, *a, **k) -> None: pass

    # -- schedule -------------------------------------------------------
    def check_schedule(self, *a, **k) -> None: pass
    def check_incremental(self, *a, **k) -> None: pass
    def on_exchange(self, *a, **k) -> None: pass
    def on_post(self, *a, **k) -> None: pass
    def on_complete(self, *a, **k) -> None: pass
    def on_post_op(self, *a, **k) -> None: pass
    def on_complete_op(self, *a, **k) -> None: pass
    def assert_drained(self, *a, **k) -> None: pass

    # -- buffer ---------------------------------------------------------
    def check_distinct(self, *a, **k) -> None: pass
    def check_out(self, *a, **k) -> None: pass
    def stage_begin(self, *a, **k) -> None: pass
    def stage_end(self, *a, **k) -> None: pass
    def step_end(self, *a, **k) -> None: pass
    def close(self) -> None: pass


#: Shared singleton held by every instrumented object when sanitizing is off.
NULL_SANITIZER = NullSanitizer()


class _Sanitizer:
    """Common finding bookkeeping: count, record, raise when strict."""

    enabled = True

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.findings: list[Finding] = []

    def _record(self, code: str, message: str) -> None:
        count_event("sanitize." + code)
        finding = Finding(code, message)
        self.findings.append(finding)
        if self.strict:
            raise SanitizerError(str(finding))

    def close(self) -> None:
        pass


class ColorRaceSanitizer(_Sanitizer):
    """Write-write conflict detection for colour groups.

    :meth:`check_coloring` builds, per colour, the touch bitmap of the
    group's edges (``np.bincount`` over both endpoints).  Any vertex
    touched more than once means two edges of one colour would race in
    the threaded executor's concurrent indexed stores.
    """

    def check_coloring(self, edges: np.ndarray, groups, n_vertices: int,
                       where: str = "coloring") -> None:
        edges = np.asarray(edges)
        for color, group in enumerate(groups):
            group = np.asarray(group)
            if group.size == 0:
                continue
            touched = np.bincount(edges[group].ravel(),
                                  minlength=int(n_vertices))
            conflicts = np.flatnonzero(touched > 1)
            if conflicts.size:
                self._record(
                    "color.race",
                    f"{where}: colour {color} touches vertex "
                    f"{int(conflicts[0])} through {int(touched[conflicts[0]])}"
                    f" edges ({conflicts.size} conflicted vertices total)")

    def check_color_offsets(self, e0: np.ndarray, e1: np.ndarray,
                            offsets: np.ndarray, n_vertices: int,
                            where: str = "compiled") -> None:
        """Validate the colour-segment layout handed to a parallel kernel.

        The compiled executors pass pre-permuted endpoint arrays plus an
        ``offsets`` segmentation instead of index groups; this checks the
        *exact* arrays the ``prange`` loops will iterate — segment bounds
        monotone and covering, and the race-freedom bitmap per segment.
        """
        e0 = np.asarray(e0)
        e1 = np.asarray(e1)
        offsets = np.asarray(offsets)
        ne = e0.shape[0]
        if (offsets.size < 1 or offsets[0] != 0 or offsets[-1] != ne
                or np.any(np.diff(offsets) < 0)):
            self._record(
                "color.offsets",
                f"{where}: offsets must rise monotonically from 0 to "
                f"{ne}, got {offsets!r}")
            return
        for color in range(offsets.size - 1):
            lo, hi = int(offsets[color]), int(offsets[color + 1])
            if hi == lo:
                continue
            touched = np.bincount(e0[lo:hi], minlength=int(n_vertices))
            touched += np.bincount(e1[lo:hi], minlength=int(n_vertices))
            conflicts = np.flatnonzero(touched > 1)
            if conflicts.size:
                self._record(
                    "color.race",
                    f"{where}: colour segment {color} touches vertex "
                    f"{int(conflicts[0])} through {int(touched[conflicts[0]])}"
                    f" edges ({conflicts.size} conflicted vertices total)")


class ScheduleSanitizer(_Sanitizer):
    """PARTI schedule completeness, dedup soundness and post/complete pairing.

    Static checks (:meth:`check_schedule`, :meth:`check_incremental`) run
    once at construction; the ``on_*`` hooks track every overlapped
    exchange at runtime and :meth:`assert_drained` (called by the drivers
    after each step) flags posts that were never completed — the
    signature of a latent deadlock or message mismatch.
    """

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        #: Outstanding posted-but-not-completed exchanges.
        self._outstanding: dict = {}

    # -- static verification --------------------------------------------
    def check_schedule(self, schedule) -> None:
        """Verify one :class:`~repro.parti.schedule.GatherSchedule`."""
        table = schedule.table
        name = getattr(schedule, "name", "schedule")
        if set(schedule.send_indices) != set(schedule.recv_slices):
            self._record("schedule.pair-mismatch",
                         f"{name}: send_indices and recv_slices disagree "
                         f"on the set of (owner, requester) pairs")
        for r in range(schedule.n_ranks):
            ghosts = np.asarray(schedule.ghost_globals[r])
            if ghosts.size != np.unique(ghosts).size:
                self._record("schedule.duplicate-ghost",
                             f"{name}: rank {r} ghost ids contain "
                             f"duplicates (dedup unsound)")
            if ghosts.size and np.any(table.owner_of(ghosts) == r):
                self._record("schedule.owned-ghost",
                             f"{name}: rank {r} lists locally owned ids "
                             f"as ghosts")
            # The recv slices of rank r must partition [0, n_ghost_r)
            # exactly once: every ghost slot filled by exactly one message.
            slices = sorted(sl for (owner, req), sl
                            in schedule.recv_slices.items() if req == r)
            pos = 0
            for start, stop in slices:
                if start != pos:
                    self._record(
                        "schedule.slice-coverage",
                        f"{name}: rank {r} recv slices "
                        f"{'overlap' if start < pos else 'leave a gap'} at "
                        f"slot {min(start, pos)}")
                pos = max(pos, stop)
            if pos != ghosts.size:
                self._record("schedule.slice-coverage",
                             f"{name}: rank {r} recv slices cover {pos} of "
                             f"{ghosts.size} ghost slots")
        for (owner, req), idx in schedule.send_indices.items():
            start, stop = schedule.recv_slices[(owner, req)]
            idx = np.asarray(idx)
            if idx.size != stop - start:
                self._record(
                    "schedule.length-mismatch",
                    f"{name}: pair ({owner}, {req}) sends {idx.size} "
                    f"values into a slice of {stop - start}")
                continue
            # Translation soundness: what the owner packs must be exactly
            # the globals the requester expects in that slice.
            sent = np.asarray(table.owned_globals[owner])[idx]
            expected = np.asarray(schedule.ghost_globals[req])[start:stop]
            if not np.array_equal(sent, expected):
                self._record(
                    "schedule.translation",
                    f"{name}: pair ({owner}, {req}) packs globals that do "
                    f"not match the requester's ghost slice")

    def check_incremental(self, builder) -> None:
        """Verify an :class:`~repro.parti.incremental.IncrementalScheduleBuilder`."""
        for r in range(builder.n_ranks):
            slots = sorted(builder._slot_of[r].values())
            n = builder.ghost_count(r)
            if slots != list(range(n)):
                self._record("schedule.incr-slots",
                             f"incremental: rank {r} ghost slots are not a "
                             f"dense bijection onto [0, {n})")
        # Dedup soundness: a global id is fetched by at most one increment.
        seen: list[set] = [set() for _ in range(builder.n_ranks)]
        for k, incr in enumerate(builder.increments):
            for r in range(builder.n_ranks):
                ids = set(np.asarray(incr.schedule.ghost_globals[r]).tolist())
                dup = ids & seen[r]
                if dup:
                    self._record(
                        "schedule.incr-refetch",
                        f"incremental: rank {r} re-fetches id "
                        f"{next(iter(dup))} in increment {k} (dedup missed)")
                seen[r] |= ids

    # -- runtime post/complete pairing ----------------------------------
    def on_exchange(self, phase: str, n_dropped: int) -> None:
        """A blocking exchange delivered; flag in-transit message loss."""
        if n_dropped:
            self._record("schedule.dropped-message",
                         f"phase {phase!r}: {n_dropped} message(s) lost in "
                         f"transit (delivery incomplete)")

    def on_post(self, phase: str, pending: dict, n_dropped: int = 0) -> None:
        if n_dropped:
            self._record("schedule.dropped-message",
                         f"phase {phase!r}: {n_dropped} message(s) lost in "
                         f"transit (delivery incomplete)")
        self._outstanding[id(pending)] = phase

    def on_complete(self, pending: dict) -> None:
        if self._outstanding.pop(id(pending), None) is None:
            self._record("schedule.unmatched-complete",
                         "complete() called with no matching post()")

    def on_post_op(self, rank: int, op: int) -> None:
        """Overlapped mp exchange posted (op-index addressed)."""
        self._outstanding[(rank, op)] = f"op{op}"

    def on_complete_op(self, rank: int, op: int) -> None:
        if self._outstanding.pop((rank, op), None) is None:
            self._record("schedule.unmatched-complete",
                         f"rank {rank}: finish of op {op} has no matching "
                         f"begin")

    def assert_drained(self, where: str = "") -> None:
        """Flag posted exchanges never completed (deadlock signature)."""
        if self._outstanding:
            phases = sorted(set(map(str, self._outstanding.values())))
            self._outstanding.clear()
            self._record("schedule.unmatched-post",
                         f"{where or 'step'}: posted exchange(s) never "
                         f"completed: {', '.join(phases)}")


class BufferSanitizer(_Sanitizer):
    """Workspace fingerprinting + per-stage allocation audit.

    * :meth:`check_distinct` — pairwise ``np.shares_memory`` over the
      named workspace/edge-state arrays (run once at construction);
    * :meth:`check_out` — an ``out=`` target must not alias any input;
    * :meth:`step_end` — the workspace arena must stop growing after the
      warmup step (``StageWorkspace.n_arena_allocs`` frozen);
    * :meth:`stage_begin`/:meth:`stage_end` — tracemalloc snapshot diff
      per Runge-Kutta stage, filtered to the hot-pipeline files; any
      retained allocation above ``stage_alloc_threshold`` bytes after
      warmup is a zero-allocation-contract violation.
    """

    #: Files whose post-warmup per-stage retained allocations are audited.
    WATCH_FILES = ("*fused.py", "*workspace.py", "*executors.py",
                   "*scatter.py")

    def __init__(self, strict: bool = True,
                 stage_alloc_threshold: int = 1 << 14,
                 watch_files: tuple = WATCH_FILES):
        super().__init__(strict)
        self.stage_alloc_threshold = int(stage_alloc_threshold)
        self.watch_files = tuple(watch_files)
        self._steps = 0
        self._frozen_allocs: int | None = None
        self._snap = None
        self._started_tracing = False

    # -- aliasing -------------------------------------------------------
    def check_distinct(self, named: dict, where: str = "workspace") -> None:
        """No two named workspace arrays may share memory."""
        items = [(k, v) for k, v in named.items()
                 if isinstance(v, np.ndarray) and v.size]
        for i, (name_a, a) in enumerate(items):
            for name_b, b in items[i + 1:]:
                if np.shares_memory(a, b):
                    self._record("buffer.alias",
                                 f"{where}: arrays {name_a!r} and "
                                 f"{name_b!r} share memory")

    def check_out(self, out: np.ndarray, inputs: dict,
                  where: str = "kernel") -> None:
        """An ``out=`` target aliasing an input corrupts the kernel."""
        if out is None:
            return
        for name, arr in inputs.items():
            if isinstance(arr, np.ndarray) and arr.size \
                    and np.shares_memory(out, arr):
                self._record("buffer.out-alias",
                             f"{where}: out= target aliases input {name!r}")

    # -- allocation audit -----------------------------------------------
    def stage_begin(self) -> None:
        """Open a per-stage tracemalloc window (skipped during warmup)."""
        if self._steps < 1:
            return
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._snap = tracemalloc.take_snapshot()

    def stage_end(self, stage: int) -> None:
        """Close the window; flag retained hot-file allocations."""
        if self._snap is None:
            return
        snap0, self._snap = self._snap, None
        filters = [tracemalloc.Filter(True, pat) for pat in self.watch_files]
        diff = tracemalloc.take_snapshot().filter_traces(filters) \
            .compare_to(snap0.filter_traces(filters), "lineno")
        grown = [d for d in diff if d.size_diff > 0 and d.count_diff > 0]
        total = sum(d.size_diff for d in grown)
        if total > self.stage_alloc_threshold:
            top = max(grown, key=lambda d: d.size_diff)
            frame = top.traceback[0]
            self._record(
                "buffer.stage-alloc",
                f"stage {stage}: {total} bytes retained by hot-pipeline "
                f"files after warmup (largest: {frame.filename}:"
                f"{frame.lineno}, +{top.size_diff} bytes)")

    def step_end(self, ws) -> None:
        """Freeze the arena after step 1; flag any later growth."""
        self._steps += 1
        if self._frozen_allocs is None:
            self._frozen_allocs = ws.n_arena_allocs
        elif ws.n_arena_allocs > self._frozen_allocs:
            grew = ws.n_arena_allocs - self._frozen_allocs
            self._frozen_allocs = ws.n_arena_allocs
            self._record("buffer.arena-grew",
                         f"workspace arena grew by {grew} allocation(s) "
                         f"after the warmup step")

    def close(self) -> None:
        """Stop tracemalloc if this sanitizer started it."""
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracing = False


def build_sanitizers(names, strict: bool = True) -> dict:
    """Map every sanitizer name to a live instance or the null singleton.

    ``names`` is an iterable of tokens from :data:`SANITIZER_NAMES`
    (typically ``SolverConfig.sanitize_set``); unknown names raise.
    """
    names = frozenset(names)
    unknown = names - frozenset(SANITIZER_NAMES)
    if unknown:
        raise ValueError(
            f"unknown sanitizer(s) {sorted(unknown)}; valid names are "
            f"{SANITIZER_NAMES}")
    return {
        "color": (ColorRaceSanitizer(strict) if "color" in names
                  else NULL_SANITIZER),
        "schedule": (ScheduleSanitizer(strict) if "schedule" in names
                     else NULL_SANITIZER),
        "buffer": (BufferSanitizer(strict) if "buffer" in names
                   else NULL_SANITIZER),
    }
