"""Repo-specific AST lint pass (run as ``python -m repro.analysis``).

Generic linters cannot know that ``np.empty`` inside the fused stage loop
breaks the zero-allocation contract, or that ``np.add.at`` in a kernel
module reintroduces the scalar accumulation the whole CSR redesign exists
to avoid.  This pass encodes those contracts as mechanical rules:

========  =========  ====================================================
code      severity   rule
========  =========  ====================================================
RA001     error      array-creating ``np.*`` call on a hot path — inside
                     a function decorated with :func:`hot_kernel` or
                     listed in :data:`HOT_FUNCTIONS` — outside an
                     ``is None`` fallback branch
RA002     error      ``np.<ufunc>.at`` outside the whitelisted
                     setup/reference modules (:data:`ADD_AT_ALLOWED`)
RA003     error      public kernel entry point listed in
                     :data:`OUT_REQUIRED` does not accept ``out=``
RA101     warning    mutable default argument
RA102     warning    bare ``except:``
RA103     warning    function argument or assignment shadows a builtin
RA104     warning    lambda bound to a name (use ``def``)
========  =========  ====================================================

Allocation under an ``out is None`` / ``buf is None`` guard (including
``x = out if out is not None else np.zeros(...)`` and ``if buf is None or
buf.shape != ...``) is the sanctioned fallback idiom and is never
flagged.  Individual lines opt out with ``# noqa`` or ``# noqa: RA001``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["LintFinding", "hot_kernel", "lint_file", "lint_paths",
           "iter_python_files", "module_key_for", "HOT_FUNCTIONS",
           "OUT_REQUIRED", "ADD_AT_ALLOWED", "CREATION_FUNCS"]


def hot_kernel(func):
    """Mark a function as hot-path: the lint forbids allocations inside.

    Identity decorator — it exists purely so the AST pass (and readers)
    can see the contract.  Code under ``src/repro`` is registered in
    :data:`HOT_FUNCTIONS` instead, keeping the runtime import-clean; the
    decorator is for out-of-tree code and test fixtures.
    """
    return func


#: np.* calls that materialise a new array (asarray/einsum excluded:
#: asarray is a no-copy view on the hot paths, einsum writes ``out=``).
CREATION_FUNCS = frozenset({
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "array", "copy", "concatenate", "stack",
    "vstack", "hstack", "column_stack", "tile", "repeat", "arange",
})

#: ufunc attributes whose ``.at`` form is the forbidden scalar scatter.
_UFUNC_AT = frozenset({"add", "subtract", "maximum", "minimum", "multiply"})

#: Module-key prefixes where ``np.<ufunc>.at`` stays legitimate: one-time
#: mesh/partition setup, and the reference kernels in scatter.py that the
#: CSR paths are validated against.
ADD_AT_ALLOWED = (
    "repro/mesh/",
    "repro/scatter.py",
    "repro/distsolver/partitioned_mesh.py",
)

#: Registered hot functions per module key: allocation-free steady state.
#: (Source code stays decorator-free; see :func:`hot_kernel`.)
HOT_FUNCTIONS: dict[str, frozenset] = {
    "repro/scatter.py": frozenset({
        "scatter_add_edges", "scatter_add_unsigned", "scatter_neighbor_sum",
        "EdgeScatter.signed", "EdgeScatter.unsigned",
        "EdgeScatter.neighbor_sum", "EdgeScatter._apply",
    }),
    "repro/kernels/workspace.py": frozenset({
        "StageWorkspace.update", "StageWorkspace.buf",
    }),
    "repro/kernels/executors.py": frozenset({
        "ColoredExecutor._run", "ColoredExecutor._traced_task",
        "ColoredExecutor._signed_task", "ColoredExecutor._unsigned_task",
        "ColoredExecutor._neighbor_task", "ColoredExecutor._prepare_out",
        "ColoredExecutor.signed", "ColoredExecutor.unsigned",
        "ColoredExecutor.neighbor_sum",
    }),
    "repro/kernels/fused.py": frozenset({
        "FusedResidual.update_state", "FusedResidual._edge_state",
        "FusedResidual.convective", "FusedResidual.dissipation",
        "FusedResidual.residual", "FusedResidual.timestep",
        "FusedResidual.smooth", "FusedResidual.step",
    }),
    "repro/kernels/ensemble.py": frozenset({
        "_dot3", "EnsembleWorkspace.update", "EnsembleWorkspace.buf",
        "EnsembleWorkspace.edge_buf", "EnsembleWorkspace.vertex_buf",
        "EnsembleWorkspace.state_buf",
        "EnsembleResidual.update_state", "EnsembleResidual._edge_state",
        "EnsembleResidual._boundary_fluxes", "EnsembleResidual.convective",
        "EnsembleResidual.dissipation", "EnsembleResidual.residual",
        "EnsembleResidual.timestep", "EnsembleResidual.smooth",
        "EnsembleResidual.step",
    }),
    "repro/parti/schedule.py": frozenset({
        "GatherSchedule._pack", "GatherSchedule._pack_gather",
        "GatherSchedule._place_ghosts", "GatherSchedule.gather_begin",
        "GatherSchedule.gather_finish", "GatherSchedule.scatter_add",
        "GatherSchedule.scatter_add_multi_begin",
        "GatherSchedule.scatter_add_multi_finish",
    }),
    "repro/solver/ensemble.py": frozenset({
        "_is_converged", "_batched_trailing_norms",
    }),
    "repro/distsolver/rank_kernels.py": frozenset({
        "_PartOps.scratch", "RankOps.stage_begin", "RankOps.stage_complete",
        "RankOps._lam", "RankOps.convective", "RankOps.sigma",
        "RankOps.partials6", "RankOps.pressure_den", "RankOps.finalize_lnu",
        "RankOps.dissipation", "RankOps.neighbor_sum",
        "RankOps.smoothing_update",
    }),
    "repro/kernels/compiled/executors.py": frozenset({
        "CompiledExecutor._prepare_out", "CompiledExecutor._as_2d",
        "CompiledExecutor._run", "CompiledExecutor.signed",
        "CompiledExecutor.unsigned", "CompiledExecutor.neighbor_sum",
    }),
    "repro/kernels/compiled/residual.py": frozenset({
        "CompiledResidual._ensure_lam", "CompiledResidual.convective",
        "CompiledResidual.dissipation", "CompiledResidual.timestep",
    }),
    # The jit sources: pure loops over caller buffers — any np.* creation
    # or ufunc.at sneaking in would break the nopython compile *and* the
    # allocation discipline, so the lint guards them like the rest.
    "repro/kernels/compiled/_kernels.py": frozenset({
        "_scatter_signed_impl", "_scatter_unsigned_impl",
        "_neighbor_sum_impl", "_convective_impl", "_diss_pass1_impl",
        "_edge_lam_impl", "_diss_pass2_impl", "_sigma_impl",
        "_rank_convective_impl", "_rank_partials6_impl",
        "_rank_pressure_den_impl", "_rank_dissipation_impl",
        "_rank_sigma_impl", "_rank_neighbor_sum_impl",
    }),
}

#: Public kernel entry points that must accept a preallocated ``out=``.
OUT_REQUIRED: dict[str, frozenset] = {
    "repro/scatter.py": frozenset({
        "scatter_add_edges", "scatter_add_unsigned", "scatter_neighbor_sum",
        "EdgeScatter.signed", "EdgeScatter.unsigned",
        "EdgeScatter.neighbor_sum",
    }),
    "repro/kernels/executors.py": frozenset({
        "ColoredExecutor.signed", "ColoredExecutor.unsigned",
        "ColoredExecutor.neighbor_sum",
    }),
    "repro/kernels/fused.py": frozenset({
        "FusedResidual.convective", "FusedResidual.dissipation",
        "FusedResidual.residual", "FusedResidual.timestep",
        "FusedResidual.smooth",
    }),
    "repro/kernels/ensemble.py": frozenset({
        "EnsembleResidual.convective", "EnsembleResidual.dissipation",
        "EnsembleResidual.residual", "EnsembleResidual.timestep",
        "EnsembleResidual.smooth",
    }),
    "repro/solver/ensemble.py": frozenset({"_batched_trailing_norms"}),
    "repro/solver/flux.py": frozenset({"edge_flux", "convective_operator"}),
    "repro/solver/dissipation.py": frozenset({"dissipation_operator"}),
    "repro/solver/timestep.py": frozenset({"local_timestep"}),
    "repro/solver/smoothing.py": frozenset({"smooth_residual"}),
    "repro/distsolver/rank_kernels.py": frozenset({
        "convective_local", "dissipation_partials", "dissipation_edges",
        "spectral_sigma", "neighbor_sum_partial", "stage_update",
    }),
    "repro/kernels/compiled/executors.py": frozenset({
        "CompiledExecutor.signed", "CompiledExecutor.unsigned",
        "CompiledExecutor.neighbor_sum",
    }),
    "repro/kernels/compiled/residual.py": frozenset({
        "CompiledResidual.convective", "CompiledResidual.dissipation",
        "CompiledResidual.timestep",
    }),
}

#: Builtins worth protecting from shadowing in numerical code.
_SHADOWABLE = frozenset({
    "list", "dict", "set", "type", "id", "input", "sum", "min", "max",
    "map", "filter", "next", "str", "int", "float", "bool", "bytes",
    "len", "hash", "all", "any", "iter", "zip", "format", "open", "vars",
    "object", "print", "sorted", "reversed", "round",
})

_ERROR_CODES = frozenset({"RA000", "RA001", "RA002", "RA003"})

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.I)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def severity(self) -> str:
        # RA1xx are hygiene warnings; everything else (RA0xx lint
        # errors, RA2xx protocol, RA3xx schedule-model) is an error.
        return "warning" if self.code.startswith("RA1") else "error"

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message}")


def module_key_for(path) -> str:
    """Map a file path to its registry key (``repro/...`` relative path).

    Files outside any ``repro`` package root key on their bare filename,
    so whitelists never match them and only the :func:`hot_kernel`
    decorator marks their hot paths — which is what test fixtures use.
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1]


def _is_none_compare(test: ast.AST) -> tuple[bool, bool]:
    """Does ``test`` contain ``x is None`` / ``x is not None``?"""
    has_is = has_isnot = False
    for node in ast.walk(test):
        if isinstance(node, ast.Compare):
            for op, comp in zip(node.ops, node.comparators):
                if isinstance(comp, ast.Constant) and comp.value is None:
                    if isinstance(op, ast.Is):
                        has_is = True
                    elif isinstance(op, ast.IsNot):
                        has_isnot = True
    return has_is, has_isnot


def _none_guard_allowed(func: ast.AST) -> set:
    """Node ids inside ``is None`` fallback branches (allocation is OK)."""
    allowed: set = set()
    for node in ast.walk(func):
        if not isinstance(node, (ast.If, ast.IfExp)):
            continue
        has_is, has_isnot = _is_none_compare(node.test)
        branches = []
        if has_is:
            branches.append(node.body)
        if has_isnot:
            branches.append(node.orelse)
        for branch in branches:
            stmts = branch if isinstance(branch, list) else [branch]
            for stmt in stmts:
                for sub in ast.walk(stmt):
                    allowed.add(id(sub))
    return allowed


def _is_np_creation(call: ast.Call) -> bool:
    f = call.func
    return (isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in ("np", "numpy")
            and f.attr in CREATION_FUNCS)


def _is_ufunc_at(call: ast.Call) -> bool:
    f = call.func
    return (isinstance(f, ast.Attribute) and f.attr == "at"
            and isinstance(f.value, ast.Attribute)
            and f.value.attr in _UFUNC_AT
            and isinstance(f.value.value, ast.Name)
            and f.value.value.id in ("np", "numpy"))


def _has_hot_decorator(func) -> bool:
    for dec in func.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "hot_kernel":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hot_kernel":
            return True
    return False


def _all_args(func) -> list:
    a = func.args
    return [*a.posonlyargs, *a.args, *a.kwonlyargs,
            *([a.vararg] if a.vararg else []),
            *([a.kwarg] if a.kwarg else [])]


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, module_key: str, lines: list[str]):
        self.path = path
        self.module_key = module_key
        self.lines = lines
        self.findings: list[LintFinding] = []
        self._scope: list[str] = []      # enclosing class/function names
        self._hot_depth = 0              # > 0 while inside a hot function
        self._allowed_alloc: list[set] = []   # per-hot-scope None-guard ids
        self.seen_functions: set = set()

    # -- plumbing -------------------------------------------------------
    def _suppressed(self, line: int, code: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        m = _NOQA_RE.search(self.lines[line - 1])
        if not m:
            return False
        codes = m.group("codes")
        if not codes:
            return True              # bare ``# noqa`` suppresses all
        return code in {c.strip().upper() for c in codes.split(",")}

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self._suppressed(line, code):
            return
        self.findings.append(LintFinding(self.path, line,
                                         getattr(node, "col_offset", 0) + 1,
                                         code, message))

    # -- scope tracking -------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def _visit_function(self, node) -> None:
        qualname = ".".join([*self._scope, node.name])
        self.seen_functions.add(qualname)
        registered = qualname in HOT_FUNCTIONS.get(self.module_key, ())
        hot = registered or _has_hot_decorator(node)

        self._check_mutable_defaults(node, qualname)
        self._check_shadowed_args(node, qualname)
        if qualname in OUT_REQUIRED.get(self.module_key, ()):
            names = {a.arg for a in _all_args(node)}
            if not names & {"out", "zero_out"}:
                self._report(node, "RA003",
                             f"kernel entry point {qualname!r} must accept "
                             f"a preallocated out= (or zero_out=) argument")

        self._scope.append(node.name)
        if hot:
            self._hot_depth += 1
            self._allowed_alloc.append(_none_guard_allowed(node))
        self.generic_visit(node)
        if hot:
            self._hot_depth -= 1
            self._allowed_alloc.pop()
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- rules ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if _is_ufunc_at(node):
            allowed = any(self.module_key.startswith(p)
                          for p in ADD_AT_ALLOWED)
            if not allowed:
                self._report(
                    node, "RA002",
                    f"np.{node.func.value.attr}.at is the scalar scatter "
                    f"the CSR/EdgeScatter paths replace; only setup/mesh "
                    f"modules ({', '.join(ADD_AT_ALLOWED)}) may use it")
        elif self._hot_depth and _is_np_creation(node):
            if not any(id(node) in s for s in self._allowed_alloc):
                self._report(
                    node, "RA001",
                    f"np.{node.func.attr} allocates on a hot path; reuse "
                    f"a workspace buffer or guard with 'if out is None'")
        self.generic_visit(node)

    def _check_mutable_defaults(self, node, qualname: str) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")):
                bad = True
            if bad:
                self._report(default, "RA101",
                             f"mutable default argument in {qualname!r}; "
                             f"use None and allocate inside")

    def _check_shadowed_args(self, node, qualname: str) -> None:
        for arg in _all_args(node):
            if arg.arg in _SHADOWABLE:
                self._report(arg, "RA103",
                             f"argument {arg.arg!r} of {qualname!r} "
                             f"shadows a builtin")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(node, "RA102",
                         "bare 'except:' also swallows KeyboardInterrupt/"
                         "SystemExit; catch Exception or narrower")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in _SHADOWABLE:
                self._report(target, "RA103",
                             f"assignment to {target.id!r} shadows a "
                             f"builtin")
            if (isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Lambda)):
                self._report(node, "RA104",
                             f"lambda assigned to {target.id!r}; use def "
                             f"for a named function")
        self.generic_visit(node)


def lint_file(path) -> list[LintFinding]:
    """Lint one Python source file; returns findings sorted by location."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [LintFinding(str(path), exc.lineno or 1,
                            (exc.offset or 0) + 1, "RA000",
                            f"syntax error: {exc.msg}")]
    key = module_key_for(path)
    linter = _Linter(str(path), key, source.splitlines())
    linter.visit(tree)
    # A registry entry naming a function that no longer exists is a rot
    # signal: the contract it enforced silently stopped being checked.
    for registry, what in ((HOT_FUNCTIONS, "HOT_FUNCTIONS"),
                           (OUT_REQUIRED, "OUT_REQUIRED")):
        stale = registry.get(key, frozenset()) - linter.seen_functions
        for qualname in sorted(stale):
            linter.findings.append(LintFinding(
                str(path), 1, 1, "RA003",
                f"{what} registers {qualname!r} but no such function "
                f"exists in this module (stale registry entry)"))
    return sorted(linter.findings, key=lambda f: (f.line, f.col, f.code))


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.update(p.rglob("*.py"))
        else:
            files.add(p)
    return sorted(files)


def lint_paths(paths) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths``."""
    findings: list[LintFinding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f))
    return findings
