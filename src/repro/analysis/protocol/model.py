"""Level 2 of the protocol verifier: the schedule model checker (RA3xx).

Where Level 1 proves *code shape* (every begin reaches a finish), this
module proves *schedule shape*: given a concrete
:class:`~repro.parti.schedule.GatherSchedule` from the inspector, it
builds the per-rank exchange programs of one solver cycle and model
checks them under the repo's two transport capacity semantics —

``pipe``
    the mp backend's OS pipes: a bounded byte buffer per inbox, reads
    drain out-of-order arrivals into a stash (``mp_exchange``'s idiom),
    sends block when the destination inbox is full;
``shm``
    the shared-memory slab transport: per directed pair,
    ``N_SLOTS``-deep double buffering where a sender blocks until the
    receiver's lease release returns a slot (``shm_channel``'s
    seq/consumed handshake).

========  ==========================================================
code      rule
========  ==========================================================
RA301     deadlock: the greedy executor wedges; the finding carries
          the wait-for cycle (or the orphan wait when a sought
          message is never sent)
RA302     slab-slot insufficiency: an exchange's per-pair message
          exceeds the (rows, cols) extent reserved by
          :func:`~repro.distsolver.shm_channel.pair_extents`
RA303     exchange conservation: per directed pair, sends and
          receives must balance over the cycle, and the cycle must
          carry exactly the closed-form exchange count (the
          34-exchange overlap invariant)
========  ==========================================================

Library entry point: :func:`verify_schedule`.  The future task-graph
scheduler must call it on any new DAG before executing it; the CLI
(``python -m repro.analysis --protocol --sweep``) drives it over
box-mesh partitions at 2–16 ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ...constants import (RESIDUAL_SMOOTHING_SWEEPS, RK_ALPHAS,
                          RK_DISSIPATION_STAGES)
from ...distsolver.shm_channel import DEFAULT_MAX_COLS, N_SLOTS, pair_extents

__all__ = ["ExchangeOp", "ModelFinding", "Findings",
           "ProtocolVerificationError", "cycle_exchange_ops",
           "expected_exchange_count", "build_programs", "verify_schedule"]

#: Default pipe inbox capacity modelled, matching ``mp_solver.PIPE_CAPACITY``.
PIPE_CAPACITY: int = 1 << 20

#: Modelled per-message framing overhead (pickle header + lengths).
_MSG_OVERHEAD: int = 200


class ProtocolVerificationError(RuntimeError):
    """Raised by :meth:`Findings.raise_if_failed` on any RA3xx finding."""


@dataclass(frozen=True)
class ExchangeOp:
    """One aggregated neighbour exchange of the solver cycle."""

    index: int
    phase: str               # "w-gather", "qd-scatter", "smooth-gather", ...
    kind: str                # "gather" (owner -> requester) or "scatter"
    cols: int                # packed component columns per vertex row


@dataclass(frozen=True)
class ModelFinding:
    """One RA3xx verdict from the model checker."""

    code: str
    semantics: str           # "pipe", "shm", or "schedule"
    message: str

    def __str__(self) -> str:
        return f"{self.code} [{self.semantics}] {self.message}"


@dataclass
class Findings:
    """Result of :func:`verify_schedule`."""

    findings: list[ModelFinding] = field(default_factory=list)
    n_ranks: int = 0
    n_ops: int = 0
    semantics_checked: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def raise_if_failed(self) -> None:
        if self.findings:
            lines = "\n".join(f"  {f}" for f in self.findings)
            raise ProtocolVerificationError(
                f"schedule failed protocol verification "
                f"({len(self.findings)} finding(s)):\n{lines}")


def cycle_exchange_ops(mode: str = "overlap",
                       n_stages: int = len(RK_ALPHAS),
                       diss_stages: Sequence[int] = RK_DISSIPATION_STAGES,
                       smoothing: bool = True,
                       sweeps: int = RESIDUAL_SMOOTHING_SWEEPS,
                       ) -> tuple[ExchangeOp, ...]:
    """The aggregated exchange sequence of one multistage cycle.

    Mirrors the distributed driver: the ``overlap`` executor packs the
    dissipation stages' traffic into multi-component messages (34
    exchanges per cycle with the default 5-stage scheme), the
    ``blocking`` executor keeps every array's exchange separate (37).
    """
    if mode not in ("overlap", "blocking"):
        raise ValueError(f"unknown exchange mode {mode!r}")
    ops: list[ExchangeOp] = []

    def add(phase: str, kind: str, cols: int) -> None:
        ops.append(ExchangeOp(len(ops), phase, kind, cols))

    if mode == "blocking":
        add("dt-scatter", "scatter", 1)
    for stage in range(n_stages):
        add(f"s{stage}:w-gather", "gather", 5)
        if stage in diss_stages:
            if mode == "overlap":
                # Multi-component packing: laplacian partials ride with
                # the stage-0 pressure switch, q and d return together.
                add(f"s{stage}:partials-scatter", "scatter",
                    8 if stage == min(diss_stages) else 7)
                add(f"s{stage}:diss-gather", "gather", 6)
                add(f"s{stage}:qd-scatter", "scatter", 10)
            else:
                add(f"s{stage}:partials-scatter", "scatter", 7)
                add(f"s{stage}:diss-gather", "gather", 6)
                add(f"s{stage}:q-scatter", "scatter", 5)
                add(f"s{stage}:d-scatter", "scatter", 5)
        else:
            add(f"s{stage}:q-scatter", "scatter", 5)
        if smoothing:
            for sweep in range(sweeps):
                add(f"s{stage}:smooth{sweep}-gather", "gather", 5)
                add(f"s{stage}:smooth{sweep}-scatter", "scatter", 5)
    return tuple(ops)


def expected_exchange_count(mode: str = "overlap",
                            n_stages: int = len(RK_ALPHAS),
                            diss_stages: Sequence[int] = RK_DISSIPATION_STAGES,
                            smoothing: bool = True,
                            sweeps: int = RESIDUAL_SMOOTHING_SWEEPS) -> int:
    """Closed-form exchange count per cycle (34 overlap / 37 blocking)."""
    n_diss = len(tuple(diss_stages))
    smooth = (2 * sweeps if smoothing else 0)
    if mode == "overlap":
        return (n_diss * (1 + 3 + smooth)
                + (n_stages - n_diss) * (1 + 1 + smooth))
    if mode == "blocking":
        return (1 + n_diss * (1 + 4 + smooth)
                + (n_stages - n_diss) * (1 + 1 + smooth))
    raise ValueError(f"unknown exchange mode {mode!r}")


# One program instruction: (action, op_index, peer, rows, cols) with
# action "send" or "recv".
_Instr = tuple[str, int, int, int, int]


def _schedule_n_ranks(schedule) -> int:
    ranks: set[int] = set()
    for a, b in schedule.send_indices:
        ranks.add(int(a))
        ranks.add(int(b))
    return (max(ranks) + 1) if ranks else 1


def build_programs(schedule, ops: Sequence[ExchangeOp],
                   n_ranks: int | None = None) -> list[list[_Instr]]:
    """Per-rank instruction streams for one cycle of ``ops``.

    For a gather op, schedule pair ``(owner, requester)`` sends
    ``len(indices)`` packed rows owner -> requester; a scatter op runs
    the identical pattern backwards.  Within an op every rank posts all
    its sends before it receives — exactly the split-phase executors'
    order (``gather_begin`` posts, ``gather_finish`` drains).
    """
    if n_ranks is None:
        n_ranks = _schedule_n_ranks(schedule)
    counts = {(int(a), int(b)): len(idx)
              for (a, b), idx in schedule.send_indices.items()}
    programs: list[list[_Instr]] = [[] for _ in range(n_ranks)]
    for op in ops:
        sends: dict[int, list[_Instr]] = {r: [] for r in range(n_ranks)}
        recvs: dict[int, list[_Instr]] = {r: [] for r in range(n_ranks)}
        for (owner, requester), rows in sorted(counts.items()):
            if rows == 0:
                continue
            if op.kind == "gather":
                src, dst = owner, requester
            else:
                src, dst = requester, owner
            sends[src].append(("send", op.index, dst, rows, op.cols))
            recvs[dst].append(("recv", op.index, src, rows, op.cols))
        for r in range(n_ranks):
            programs[r].extend(sends[r])
            programs[r].extend(recvs[r])
    return programs


def _message_bytes(rows: int, cols: int) -> int:
    return rows * cols * 8 + _MSG_OVERHEAD


def _wait_cycle(waiting_on: dict[int, int]) -> list[int] | None:
    """A cycle in the wait-for graph ``rank -> rank``, if any."""
    for start in sorted(waiting_on):
        seen: dict[int, int] = {}
        node, pos = start, 0
        while node in waiting_on and node not in seen:
            seen[node] = pos
            node, pos = waiting_on[node], pos + 1
        if node in seen:
            cycle = [r for r, p in sorted(seen.items(), key=lambda kv: kv[1])
                     if p >= seen[node]]
            return cycle + [node]
    return None


def _simulate(programs: list[list[_Instr]], semantics: str,
              pipe_capacity: int, n_slots: int,
              ops: Sequence[ExchangeOp]) -> list[ModelFinding]:
    """Greedy round-robin execution under one capacity semantics."""
    n_ranks = len(programs)
    pc = [0] * n_ranks
    # pipe state: per-inbox byte count and FIFO, per-rank stash.
    inbox_bytes = [0] * n_ranks
    inbox_fifo: list[list[tuple[int, int, int]]] = [[] for _ in range(n_ranks)]
    stash: list[set[tuple[int, int]]] = [set() for _ in range(n_ranks)]
    # shm state: per directed pair, sender's op FIFO and consumed count.
    pair_fifo: dict[tuple[int, int], list[int]] = {}
    consumed: dict[tuple[int, int], int] = {}
    sent_count: dict[tuple[int, int], int] = {}
    recv_count: dict[tuple[int, int], int] = {}
    # Last-recv positions per (rank, op) for shm lease release.
    last_recv_pos: dict[int, dict[int, int]] = {}
    for r, prog in enumerate(programs):
        last_recv_pos[r] = {}
        for i, (action, op_index, _peer, _rows, _cols) in enumerate(prog):
            if action == "recv":
                last_recv_pos[r][op_index] = i

    def try_step(rank: int) -> tuple[bool, int | None, str]:
        """(progressed, blocked-on-rank, why)."""
        prog = programs[rank]
        if pc[rank] >= len(prog):
            return False, None, "done"
        action, op_index, peer, rows, cols = prog[pc[rank]]
        if action == "send":
            if semantics == "pipe":
                size = _message_bytes(rows, cols)
                if inbox_bytes[peer] + size > pipe_capacity:
                    return False, peer, (
                        f"send of {size}B op {op_index} would overflow "
                        f"rank {peer}'s {pipe_capacity}B pipe inbox")
                inbox_bytes[peer] += size
                inbox_fifo[peer].append((rank, op_index, size))
            else:
                pair = (rank, peer)
                if (sent_count.get(pair, 0) - consumed.get(pair, 0)
                        >= n_slots):
                    return False, peer, (
                        f"all {n_slots} slab slots of pair "
                        f"{pair} are leased (awaiting release by rank "
                        f"{peer})")
                sent_count[pair] = sent_count.get(pair, 0) + 1
                pair_fifo.setdefault(pair, []).append(op_index)
        else:
            if semantics == "pipe":
                sought = (peer, op_index)
                if sought not in stash[rank]:
                    # Drain the inbox (freeing pipe bytes) into the
                    # stash until the sought message arrives.
                    while inbox_fifo[rank]:
                        src, op, size = inbox_fifo[rank].pop(0)
                        inbox_bytes[rank] -= size
                        stash[rank].add((src, op))
                        if (src, op) == sought:
                            break
                if sought not in stash[rank]:
                    return False, peer, (
                        f"rank {rank} awaits op {op_index} "
                        f"({ops[op_index].phase}) from rank {peer}, "
                        f"which has not sent it")
                stash[rank].remove(sought)
            else:
                pair = (peer, rank)
                fifo = pair_fifo.get(pair, [])
                if op_index not in fifo:
                    return False, peer, (
                        f"rank {rank} awaits op {op_index} "
                        f"({ops[op_index].phase}) in slab pair {pair}, "
                        f"which rank {peer} has not filled")
                # Drain slots up to the sought seq; earlier entries are
                # stashed views holding their leases until release_all.
                while fifo:
                    op = fifo.pop(0)
                    recv_count[pair] = recv_count.get(pair, 0) + 1
                    if op == op_index:
                        break
                if pc[rank] == last_recv_pos[rank].get(op_index, -1):
                    # Op complete on this rank: the transport releases
                    # every inbound lease (ShmInlet.release_all).
                    for src in range(len(programs)):
                        p = (src, rank)
                        if p in recv_count:
                            consumed[p] = recv_count[p]
        pc[rank] += 1
        return True, None, "ok"

    findings: list[ModelFinding] = []
    while True:
        progressed = False
        blocked: dict[int, tuple[int | None, str]] = {}
        for rank in range(n_ranks):
            moved = True
            while moved and pc[rank] < len(programs[rank]):
                moved, on, why = try_step(rank)
                if moved:
                    progressed = True
                elif pc[rank] < len(programs[rank]):
                    blocked[rank] = (on, why)
        if all(pc[r] >= len(programs[r]) for r in range(n_ranks)):
            return findings
        if not progressed:
            waiting_on = {r: on for r, (on, _why) in blocked.items()
                          if on is not None}
            cycle = _wait_cycle(waiting_on)
            if cycle is not None:
                chain = " -> ".join(
                    f"rank {r}" for r in cycle)
                detail = "; ".join(
                    f"rank {r}: {blocked[r][1]}" for r in cycle[:-1])
                findings.append(ModelFinding(
                    "RA301", semantics,
                    f"deadlock: wait-for cycle {chain} ({detail})"))
            else:
                detail = "; ".join(
                    f"rank {r}: {why}"
                    for r, (_on, why) in sorted(blocked.items()))
                findings.append(ModelFinding(
                    "RA301", semantics,
                    f"wedged without a wait cycle (orphan wait): "
                    f"{detail}"))
            return findings


def _conservation_findings(programs: list[list[_Instr]],
                           ops: Sequence[ExchangeOp],
                           expected_ops: int | None) -> list[ModelFinding]:
    findings: list[ModelFinding] = []
    if expected_ops is not None and len(ops) != expected_ops:
        findings.append(ModelFinding(
            "RA303", "schedule",
            f"cycle carries {len(ops)} exchanges, closed-form invariant "
            f"expects {expected_ops}"))
    sends: dict[tuple[int, int, int], int] = {}
    recvs: dict[tuple[int, int, int], int] = {}
    for rank, prog in enumerate(programs):
        for action, op_index, peer, rows, _cols in prog:
            if action == "send":
                key = (op_index, rank, peer)
                sends[key] = sends.get(key, 0) + 1
            else:
                key = (op_index, peer, rank)
                recvs[key] = recvs.get(key, 0) + 1
    for key in sorted(set(sends) | set(recvs)):
        ns, nr = sends.get(key, 0), recvs.get(key, 0)
        if ns != nr:
            op_index, src, dst = key
            findings.append(ModelFinding(
                "RA303", "schedule",
                f"op {op_index} ({ops[op_index].phase}) pair "
                f"({src}, {dst}): {ns} send(s) vs {nr} recv(s) — "
                f"exchange conservation violated"))
    return findings


def _extent_findings(schedule, ops: Sequence[ExchangeOp],
                     extents: dict, max_cols: int) -> list[ModelFinding]:
    findings: list[ModelFinding] = []
    counts = {(int(a), int(b)): len(idx)
              for (a, b), idx in schedule.send_indices.items()}
    for op in ops:
        for (owner, requester), rows in sorted(counts.items()):
            if rows == 0:
                continue
            pair = ((owner, requester) if op.kind == "gather"
                    else (requester, owner))
            ext = extents.get(pair)
            if ext is None:
                findings.append(ModelFinding(
                    "RA302", "shm",
                    f"op {op.index} ({op.phase}) needs slab pair {pair} "
                    f"but no extent is reserved for it"))
                continue
            ext_rows, ext_cols = int(ext[0]), int(ext[1])
            if rows > ext_rows or op.cols > ext_cols:
                findings.append(ModelFinding(
                    "RA302", "shm",
                    f"op {op.index} ({op.phase}) message on pair {pair} "
                    f"is ({rows}, {op.cols}), slab extent is only "
                    f"({ext_rows}, {ext_cols}) — the transport would "
                    f"fault or truncate"))
    if findings and max_cols < DEFAULT_MAX_COLS:
        findings.append(ModelFinding(
            "RA302", "shm",
            f"slab max_cols={max_cols} is below the transport default "
            f"{DEFAULT_MAX_COLS}"))
    return findings


def verify_schedule(schedule, *,
                    ops: Sequence[ExchangeOp] | None = None,
                    mode: str = "overlap",
                    semantics: Iterable[str] = ("pipe", "shm"),
                    extents: dict | None = None,
                    max_cols: int = DEFAULT_MAX_COLS,
                    n_slots: int = N_SLOTS,
                    pipe_capacity: int = PIPE_CAPACITY,
                    programs: list[list[_Instr]] | None = None,
                    expected_ops: int | None = None) -> Findings:
    """Model check one cycle of ``schedule``'s exchanges.

    Parameters beyond ``schedule`` exist for the mutation self-test and
    for the future task-graph scheduler: pass explicit ``ops`` or
    ``programs`` to verify a custom DAG's exchange sequence, shrink
    ``extents``/``n_slots``/``pipe_capacity`` to model a mis-sized
    transport.  Returns :class:`Findings`; ``raise_if_failed()`` is the
    scheduler-facing contract.
    """
    if ops is None:
        ops = cycle_exchange_ops(mode)
        if expected_ops is None:
            expected_ops = expected_exchange_count(mode)
    n_ranks = _schedule_n_ranks(schedule)
    if programs is None:
        programs = build_programs(schedule, ops, n_ranks)
    if extents is None:
        extents = pair_extents(schedule, max_cols)
    semantics_tuple = tuple(semantics)
    result = Findings(n_ranks=n_ranks, n_ops=len(ops),
                      semantics_checked=semantics_tuple)
    result.findings.extend(
        _conservation_findings(programs, ops, expected_ops))
    result.findings.extend(
        _extent_findings(schedule, ops, extents, max_cols))
    for sem in semantics_tuple:
        if sem not in ("pipe", "shm"):
            raise ValueError(f"unknown capacity semantics {sem!r}")
        result.findings.extend(
            _simulate([list(p) for p in programs], sem,
                      pipe_capacity, n_slots, ops))
    return result
