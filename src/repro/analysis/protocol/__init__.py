"""Static protocol verifier for the parallel layers.

Two levels, one CLI (``python -m repro.analysis --protocol``):

* **Level 1 (RA2xx)** — :mod:`.ast_check`: path-sensitive AST pass
  proving split-phase begin/finish discipline, lock-order consistency,
  and lease balance over ``distsolver/`` and ``parti/``, driven by the
  declarative :data:`~.pairs.PROTOCOL_PAIRS` registry.
* **Level 2 (RA3xx)** — :mod:`.model`: schedule model checker proving a
  concrete ``GatherSchedule``'s exchange cycle deadlock-free under both
  pipe and shm capacity semantics, slot-sufficient, and conservation-
  exact.  :func:`~.model.verify_schedule` is the library contract the
  task-graph scheduler must call before executing a new DAG.

:mod:`.fixtures` seeds deliberate violations of every rule and
:func:`~.fixtures.run_selftest` asserts they are all still caught.
"""

from .ast_check import (check_protocol_file, check_protocol_paths,
                        check_protocol_source, registry_rot_findings)
from .fixtures import MODEL_MUTATIONS, SEEDED_VIOLATIONS, run_selftest
from .model import (ExchangeOp, Findings, ModelFinding,
                    ProtocolVerificationError, build_programs,
                    cycle_exchange_ops, expected_exchange_count,
                    verify_schedule)
from .pairs import PROTOCOL_PAIRS, ProtocolPair

__all__ = [
    "PROTOCOL_PAIRS", "ProtocolPair",
    "check_protocol_paths", "check_protocol_file", "check_protocol_source",
    "registry_rot_findings",
    "ExchangeOp", "ModelFinding", "Findings", "ProtocolVerificationError",
    "cycle_exchange_ops", "expected_exchange_count", "build_programs",
    "verify_schedule",
    "SEEDED_VIOLATIONS", "MODEL_MUTATIONS", "run_selftest",
]
