"""Declarative registry of the repo's split-phase protocol pairs.

The AST checker (:mod:`repro.analysis.protocol.ast_check`) is driven
entirely by this table, the same way the allocation lint is driven by
``HOT_FUNCTIONS``: adding a new begin/finish discipline to the codebase
means adding one :class:`ProtocolPair` here, not teaching the checker
new syntax.  Each entry names the *begin* attribute(s), the *finish*
attribute(s) that discharge them, and optionally a receiver hint that
keeps generic method names (``post``, ``open``) from matching unrelated
objects.

Two pairing styles exist:

``token``
    ``begin`` returns a pending-op token that must reach a ``finish``
    call (or escape to a caller that will finish it) on every control
    path.  This is the ``SimMachine.post``/``complete`` and
    ``gather_begin``/``gather_finish`` discipline.
``presence``
    ``begin`` and ``finish`` are paired by scope, not by a token value:
    a scope that begins must also finish (``RankOps.stage_begin`` /
    ``stage_complete``, the :class:`~repro.distsolver.shm_channel
    .ShmInlet` lease protocol).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["ProtocolPair", "PROTOCOL_PAIRS", "LOCK_NAME_RE",
           "begin_pairs", "finish_pairs"]

#: Identifiers that denote a mutual-exclusion lock for the RA204
#: acquisition-order check ("outbox_locks", "_lock", "pipe_lock", ...).
LOCK_NAME_RE = re.compile(r"lock", re.IGNORECASE)


@dataclass(frozen=True)
class ProtocolPair:
    """One split-phase discipline: begin names, finish names, matching."""

    #: registry key, used in findings ("gather", "post", ...)
    name: str
    #: attribute (or bare function) names that open the phase
    begin_names: frozenset[str]
    #: attribute names that discharge it
    finish_names: frozenset[str]
    #: "token" or "presence" (see module docstring)
    style: str = "token"
    #: receiver-name fragments required for a match; empty = any receiver.
    #: Matched against the terminal identifier of the receiver expression
    #: with leading underscores stripped ("self._inlet.open" -> "inlet").
    receiver_hints: frozenset[str] = field(default_factory=frozenset)
    #: scope granularity for presence pairs: "function" or "class"
    #: (class-level lets the lease be released by a sibling method, the
    #: way ``_ShmTransport`` opens in its recv hook and releases on op
    #: completion).
    scope: str = "function"
    description: str = ""

    def matches_receiver(self, terminal: str | None) -> bool:
        if not self.receiver_hints:
            return True
        if terminal is None:
            return False
        return terminal.lstrip("_") in self.receiver_hints


#: The split-phase disciplines of the parallel layers, in checking order.
PROTOCOL_PAIRS: tuple[ProtocolPair, ...] = (
    ProtocolPair(
        name="post",
        begin_names=frozenset({"post"}),
        finish_names=frozenset({"complete"}),
        style="token",
        receiver_hints=frozenset({"machine"}),
        description="SimMachine.post returns a pending-delivery token "
                    "that machine.complete must consume",
    ),
    ProtocolPair(
        name="gather",
        begin_names=frozenset({"gather_begin", "_gather_begin"}),
        finish_names=frozenset({"gather_finish", "_gather_finish"}),
        style="token",
        description="split-phase ghost gather: begin posts the packed "
                    "owned rows, finish places the delivered ghosts",
    ),
    ProtocolPair(
        name="scatter",
        begin_names=frozenset({"scatter_add_multi_begin"}),
        finish_names=frozenset({"scatter_add_multi_finish"}),
        style="token",
        description="split-phase scatter-add return of ghost "
                    "contributions to their owners",
    ),
    ProtocolPair(
        name="stage",
        begin_names=frozenset({"stage_begin"}),
        finish_names=frozenset({"stage_complete", "stage_end"}),
        style="presence",
        scope="function",
        description="RankOps per-stage interior/boundary split: a "
                    "function that begins a stage must complete it",
    ),
    ProtocolPair(
        name="lease",
        begin_names=frozenset({"open"}),
        finish_names=frozenset({"release_all", "release"}),
        style="presence",
        receiver_hints=frozenset({"inlet", "channels", "channel"}),
        scope="class",
        description="ShmInlet slab leases: every open()ed slab view "
                    "must be released (release_all / release) before "
                    "the slot can return to the sender",
    ),
)


def begin_pairs() -> dict[str, ProtocolPair]:
    """``{begin attr name: pair}`` lookup table."""
    out: dict[str, ProtocolPair] = {}
    for pair in PROTOCOL_PAIRS:
        for name in pair.begin_names:
            out[name] = pair
    return out


def finish_pairs() -> dict[str, ProtocolPair]:
    """``{finish attr name: pair}`` lookup table."""
    out: dict[str, ProtocolPair] = {}
    for pair in PROTOCOL_PAIRS:
        for name in pair.finish_names:
            out[name] = pair
    return out
