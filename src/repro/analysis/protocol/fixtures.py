"""Seeded protocol violations: the verifier's self-test corpus.

A checker nobody has seen fail is indistinguishable from a checker that
checks nothing, so every RA2xx/RA3xx rule ships with a deliberate
violation here.  :func:`run_selftest` (CLI: ``--protocol --selftest``)
asserts each seed is caught with exactly the expected code — the same
rot-detection posture as the RA003 stale-registry rule: if a refactor
of the checker silently stops flagging one of these, the self-test
fails, not a future debugging session.

Level-1 seeds are source snippets checked with
:func:`~repro.analysis.protocol.ast_check.check_protocol_source`;
Level-2 seeds are *mutators* that corrupt a verified-clean schedule's
programs/extents before re-running :func:`verify_schedule`.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from .ast_check import check_protocol_source
from .model import (PIPE_CAPACITY, ExchangeOp, build_programs,
                    cycle_exchange_ops, verify_schedule)

__all__ = ["SEEDED_VIOLATIONS", "MODEL_MUTATIONS", "fake_ring_schedule",
           "shrink_slab_extents", "swap_op_order", "drop_rank_recvs",
           "choke_pipe_capacity", "run_selftest"]

#: ``{seed name: (expected RA code, source)}`` for the Level-1 checker.
SEEDED_VIOLATIONS: dict[str, tuple[str, str]] = {
    "missing_finish": ("RA201", """\
def exchange(machine, messages):
    pending = machine.post(messages, "w-gather")
    return None
"""),
    "conditional_drop": ("RA201", """\
def exchange(machine, messages, flag):
    pending = machine.post(messages, "w-gather")
    if flag:
        return machine.complete(pending)
    return None
"""),
    "early_return_drop": ("RA201", """\
def exchange(schedule, machine, w, ghosts, skip):
    pending = schedule.gather_begin(machine, w)
    if skip:
        return ghosts
    schedule.gather_finish(machine, pending, ghosts)
    return ghosts
"""),
    "discarded_begin": ("RA201", """\
def exchange(schedule, machine, q):
    schedule.scatter_add_multi_begin(machine, [q])
"""),
    "begin_over_begin": ("RA202", """\
def exchange(schedule, machine, w, ghosts):
    pending = schedule.gather_begin(machine, w)
    pending = schedule.gather_begin(machine, w)
    schedule.gather_finish(machine, pending, ghosts)
"""),
    "finish_without_begin": ("RA203", """\
def exchange(machine, ghosts):
    pending = None
    return machine.complete(pending)
"""),
    "double_finish": ("RA203", """\
def exchange(schedule, machine, w, ghosts):
    pending = schedule.gather_begin(machine, w)
    schedule.gather_finish(machine, pending, ghosts)
    schedule.gather_finish(machine, pending, ghosts)
"""),
    "swapped_lock_order": ("RA204", """\
def writer(outbox_lock, stats_lock, payload):
    with outbox_lock:
        with stats_lock:
            payload.flush()

def reader(outbox_lock, stats_lock, payload):
    with stats_lock:
        with outbox_lock:
            payload.drain()
"""),
    "self_nested_lock": ("RA204", """\
def writer(outbox_locks, a, b, payload):
    with outbox_locks[a]:
        with outbox_locks[b]:
            payload.flush()
"""),
    "leaky_lease": ("RA205", """\
class LeakyTransport:
    def pull(self, src, ctrl):
        view = self.inlet.open(src, ctrl)
        return np.array(view)
"""),
    "unbalanced_stage": ("RA201", """\
def run_stage(san, stage, w):
    san.stage_begin()
    return w[stage]
"""),
}

#: Level-1 seeds that must stay CLEAN — the idioms the real drivers use.
CLEAN_IDIOMS: dict[str, str] = {
    "conditional_rearm": """\
def smooth(schedule, machine, w, ghosts, sweeps):
    pending = schedule.gather_begin(machine, w)
    for sweep in range(sweeps):
        if pending is not None:
            schedule.gather_finish(machine, pending, ghosts)
            pending = None
        if sweep + 1 < sweeps:
            pending = schedule.gather_begin(machine, w)
""",
    "escape_by_return": """\
def begin(schedule, machine, w):
    return schedule.gather_begin(machine, w)
""",
    "param_token": """\
def finish(schedule, machine, pending, ghosts):
    schedule.gather_finish(machine, pending, ghosts)
""",
    "finally_finish": """\
def exchange(machine, messages, work):
    pending = machine.post(messages, "w-gather")
    try:
        work()
    finally:
        machine.complete(pending)
""",
    "released_lease": """\
class Transport:
    def pull(self, src, ctrl):
        return self.inlet.open(src, ctrl)

    def op_done(self):
        self.inlet.release_all()
""",
}


def fake_ring_schedule(n_ranks: int = 4, rows: int = 8) -> SimpleNamespace:
    """A minimal schedule stand-in: a bidirectional neighbour ring.

    ``verify_schedule`` only reads ``send_indices``, so the self-test
    can run without building a mesh.
    """
    send_indices: dict = {}
    for r in range(n_ranks):
        nxt = (r + 1) % n_ranks
        send_indices[(r, nxt)] = np.arange(rows)
        send_indices[(nxt, r)] = np.arange(rows)
    return SimpleNamespace(send_indices=send_indices)


# ---------------------------------------------------------------------------
# Level-2 mutators: each takes verify_schedule keyword overrides and
# corrupts one of them; the expected RA3xx code rides along.
# ---------------------------------------------------------------------------

def shrink_slab_extents(schedule, ops: tuple[ExchangeOp, ...]) -> dict:
    """Undersize one slab slot: first pair's row extent cut to zero."""
    from ...distsolver.shm_channel import pair_extents
    extents = pair_extents(schedule)
    pair = sorted(extents)[0]
    extents[pair] = (0, extents[pair][1])
    return {"extents": extents}


def swap_op_order(schedule, ops: tuple[ExchangeOp, ...]) -> dict:
    """Reorder one rank: its first send op is moved after a later recv
    op, creating a circular recv wait (deadlock under both semantics)."""
    programs = build_programs(schedule, ops)
    prog = list(programs[0])
    send_op = next(op for (a, op, *_r) in prog if a == "send")
    recv_op = next(op for (a, op, *_r) in prog
                   if a == "recv" and op > send_op)
    moved = [i for i in prog if i[1] == send_op]
    rest = [i for i in prog if i[1] != send_op]
    cut = max(i for i, instr in enumerate(rest) if instr[1] == recv_op) + 1
    programs[0] = rest[:cut] + moved + rest[cut:]
    return {"programs": programs, "ops": ops}


def drop_rank_recvs(schedule, ops: tuple[ExchangeOp, ...]) -> dict:
    """Strip every recv from one rank's program: conservation breaks."""
    programs = build_programs(schedule, ops)
    programs[1] = [i for i in programs[1] if i[0] == "send"]
    return {"programs": programs, "ops": ops}


def choke_pipe_capacity(schedule, ops: tuple[ExchangeOp, ...]) -> dict:
    """Pipe inbox far below one message: every send blocks forever."""
    return {"pipe_capacity": 64, "semantics": ("pipe",)}


#: ``{mutation name: (expected RA code, mutator)}`` for the model checker.
MODEL_MUTATIONS: dict = {
    "shrink_slab_extents": ("RA302", shrink_slab_extents),
    "swap_op_order": ("RA301", swap_op_order),
    "drop_rank_recvs": ("RA303", drop_rank_recvs),
    "choke_pipe_capacity": ("RA301", choke_pipe_capacity),
}


def run_selftest(verbose: bool = False) -> list[str]:
    """Run every seed through the verifier; returns failure messages.

    An empty list means the verifier still catches everything it is
    supposed to catch and still passes everything it must pass.
    """
    failures: list[str] = []

    for name, (code, source) in SEEDED_VIOLATIONS.items():
        found = {f.code for f in check_protocol_source(source, name)}
        if code not in found:
            failures.append(
                f"seed {name!r}: expected {code}, checker reported "
                f"{sorted(found) or 'nothing'}")
        elif verbose:
            print(f"  seed {name}: caught ({code})")

    for name, source in CLEAN_IDIOMS.items():
        found = check_protocol_source(source, name)
        if found:
            failures.append(
                f"clean idiom {name!r}: false positive "
                f"{[(f.code, f.line) for f in found]}")
        elif verbose:
            print(f"  idiom {name}: clean")

    schedule = fake_ring_schedule()
    ops = cycle_exchange_ops("overlap")
    base = verify_schedule(schedule, ops=ops)
    if not base.ok:
        failures.append(
            f"ring schedule: expected clean, got "
            f"{[str(f) for f in base.findings]}")
    for name, (code, mutator) in MODEL_MUTATIONS.items():
        overrides = mutator(schedule, ops)
        result = verify_schedule(schedule, **overrides)
        found = {f.code for f in result.findings}
        if code not in found:
            failures.append(
                f"mutation {name!r}: expected {code}, model reported "
                f"{sorted(found) or 'nothing'}")
        elif verbose:
            print(f"  mutation {name}: caught ({code})")

    # The exchange-count invariants of PR 4's overlap executor.
    if len(cycle_exchange_ops("overlap")) != 34:
        failures.append("overlap cycle must carry 34 exchanges")
    if len(cycle_exchange_ops("blocking")) != 37:
        failures.append("blocking cycle must carry 37 exchanges")
    assert PIPE_CAPACITY == 1 << 20
    return failures
