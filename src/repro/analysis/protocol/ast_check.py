"""Level 1 of the protocol verifier: path-sensitive split-phase checking.

An intraprocedural abstract interpretation over the AST of the parallel
layers (``distsolver/``, ``parti/``): every *begin* of a registered
:data:`~repro.analysis.protocol.pairs.PROTOCOL_PAIRS` discipline must be
discharged — by its *finish*, or by escaping to a caller that owns the
finish — on every control path, including early returns and exception
joins.

========  ==========================================================
code      rule
========  ==========================================================
RA201     a begin's pending token is definitely live at a ``return``
          or at function exit (missing/dropped ``finish``), or a
          presence-style begin (``stage_begin``, slab lease ``open``)
          has no finish anywhere in its scope
RA202     a begin overwrites a name whose previous begin is still
          definitely pending (begin/begin without finish)
RA203     a finish consumes a value that definitely carries no
          pending token (never begun, already finished, or ``None``)
RA204     lock-acquisition order is inconsistent across call sites
          (two lock families acquired nested in both orders, or the
          same family acquired nested within itself)
RA205     a scope opens shared-memory slab leases but never releases
          them (``ShmInlet.open`` without ``release_all``/``release``)
RA206     a ``PROTOCOL_PAIRS`` entry matches no call site in the
          scanned tree (stale registry — the contract it enforced
          silently stopped being checked)
========  ==========================================================

Token lattice: a bound begin result is **OPEN** (definitely pending),
**MAYBE** (pending on some paths — e.g. the smoothing loop's
conditional re-arm, or ``begin() if distributed else None``), or
**CLOSED** (finished).  Only *definite* violations are reported: a
MAYBE token at exit is legal (the conditional re-arm idiom), a MAYBE
token consumed twice is not flagged.  Passing a token to any
non-finish call, returning it, yielding it, or storing it into a
container/attribute *escapes* it — responsibility transfers to the
consumer, which is checked where it finishes (the driver's
``pending_w`` parameter-token idiom).

Lines opt out with the same ``# noqa`` / ``# noqa: RA201`` comments the
RA0xx lint honours.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from ..lint import LintFinding, iter_python_files
from .pairs import (LOCK_NAME_RE, PROTOCOL_PAIRS, ProtocolPair, begin_pairs,
                    finish_pairs)

__all__ = ["check_protocol_paths", "check_protocol_file",
           "check_protocol_source", "registry_rot_findings"]

# Token statuses.
_OPEN = "open"
_MAYBE = "maybe"
_CLOSED = "closed"
_NONTOKEN = "nontoken"

_BEGIN_TABLE = begin_pairs()
_FINISH_TABLE = finish_pairs()


@dataclass
class _Token:
    pair: str
    status: str
    line: int


_State = dict[str, _Token]


def _copy_state(state: _State) -> _State:
    return {k: _Token(v.pair, v.status, v.line) for k, v in state.items()}


def _join(*states: _State) -> _State:
    """Lattice join: agreement keeps the status, disagreement is MAYBE
    for anything possibly-open and drops otherwise."""
    out: _State = {}
    names: set[str] = set()
    for s in states:
        names.update(s)
    for name in names:
        toks = [s.get(name) for s in states]
        present = [t for t in toks if t is not None]
        statuses = {t.status for t in present}
        missing = len(present) < len(toks)
        ref = present[0]
        if not missing and len(statuses) == 1:
            out[name] = _Token(ref.pair, ref.status, ref.line)
        elif statuses & {_OPEN, _MAYBE}:
            opener = next(t for t in present if t.status in (_OPEN, _MAYBE))
            out[name] = _Token(opener.pair, _MAYBE, opener.line)
        # disagreeing CLOSED/NONTOKEN/absent: drop — no definite claim.
    return out


def _maybeify(state: _State) -> _State:
    out = _copy_state(state)
    for tok in out.values():
        if tok.status == _OPEN:
            tok.status = _MAYBE
    return out


def _receiver_terminal(expr: ast.AST) -> str | None:
    """Terminal identifier of a receiver expression chain."""
    node = expr
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def _classify_call(call: ast.Call) -> tuple[str, ProtocolPair] | None:
    """Is this call a registered begin or finish?  -> (kind, pair)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        name = func.attr
        terminal = _receiver_terminal(func.value)
    elif isinstance(func, ast.Name):
        name = func.id
        terminal = None
    else:
        return None
    for table, kind in ((_BEGIN_TABLE, "begin"), (_FINISH_TABLE, "finish")):
        pair = table.get(name)
        if pair is None:
            continue
        if isinstance(func, ast.Name) and pair.receiver_hints:
            continue          # hinted pairs need a receiver to match
        if pair.matches_receiver(terminal):
            return kind, pair
    return None


class _LoopFrame:
    """Break/continue state collection for one loop nesting level."""

    def __init__(self) -> None:
        self.breaks: list[_State] = []
        self.continues: list[_State] = []


class _FunctionInterp:
    """Abstract interpreter for token pairs over one function body."""

    def __init__(self, checker: "_ModuleChecker",
                 func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.checker = checker
        self.func = func
        self.loop_stack: list[_LoopFrame] = []
        self.reported: set[tuple[str, int, int]] = set()

    # -- reporting ------------------------------------------------------
    def _report(self, code: str, line: int, at_line: int, msg: str) -> None:
        key = (code, line, at_line)
        if key in self.reported:
            return
        self.reported.add(key)
        self.checker.report(code, line, msg)

    def _report_open(self, state: _State, at_line: int, where: str) -> None:
        for name, tok in state.items():
            if tok.status == _OPEN:
                self._report(
                    "RA201", tok.line, at_line,
                    f"split-phase '{tok.pair}' begun here (bound to "
                    f"{name!r}) is not finished on the path reaching "
                    f"{where} at line {at_line}")

    # -- entry ----------------------------------------------------------
    def run(self) -> None:
        state: _State = {}
        fall = self._exec_block(self.func.body, state)
        if fall is not None:
            end = max(getattr(self.func, "end_lineno", None)
                      or self.func.lineno, self.func.lineno)
            self._report_open(fall, end, "function exit")

    # -- statements -----------------------------------------------------
    def _exec_block(self, stmts: list[ast.stmt],
                    state: _State) -> _State | None:
        """Execute statements; returns the fall-through state or None
        when every path through the block terminated."""
        current: _State | None = state
        for stmt in stmts:
            if current is None:
                break
            current = self._exec_stmt(stmt, current)
        return current

    def _exec_stmt(self, stmt: ast.stmt, state: _State) -> _State | None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return state          # nested defs are analyzed separately
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt, state)
            return state
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, state, root="discard")
            return state
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, state, root="escape")
            self._report_open(state, stmt.lineno, "a return")
            return None
        if isinstance(stmt, ast.Raise):
            for sub in (stmt.exc, stmt.cause):
                if sub is not None:
                    self._eval(sub, state, root="escape")
            return None           # error paths are abandoned, not checked
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, state)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._exec_loop(stmt.body, stmt.orelse, state,
                                   iter_expr=stmt.iter)
        if isinstance(stmt, ast.While):
            return self._exec_loop(stmt.body, stmt.orelse, state,
                                   test_expr=stmt.test)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, state, root="nested")
            return self._exec_block(stmt.body, state)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, state)
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.loop_stack[-1].breaks.append(_copy_state(state))
            return None
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self.loop_stack[-1].continues.append(_copy_state(state))
            return None
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
            return state
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, state, root="test")
            return state
        # Import / Global / Nonlocal / Pass / match-statements etc.:
        # conservatively evaluate any embedded expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, state, root="nested")
        return state

    def _exec_if(self, stmt: ast.If, state: _State) -> _State | None:
        self._eval(stmt.test, state, root="test")
        then_state = self._exec_block(stmt.body, _copy_state(state))
        else_state = self._exec_block(stmt.orelse, _copy_state(state))
        live = [s for s in (then_state, else_state) if s is not None]
        if not live:
            return None
        return _join(*live) if len(live) > 1 else live[0]

    def _exec_loop(self, body: list[ast.stmt], orelse: list[ast.stmt],
                   state: _State, iter_expr: ast.expr | None = None,
                   test_expr: ast.expr | None = None) -> _State | None:
        for expr in (iter_expr, test_expr):
            if expr is not None:
                self._eval(expr, state, root="test")
        frame = _LoopFrame()
        self.loop_stack.append(frame)
        try:
            pass1 = self._exec_block(body, _copy_state(state))
            tops = [state] + frame.continues
            if pass1 is not None:
                tops.append(pass1)
            top2 = _join(*tops) if len(tops) > 1 else _copy_state(tops[0])
            pass2 = self._exec_block(body, _copy_state(top2))
            exits = [state] + frame.breaks + frame.continues
            if pass2 is not None:
                exits.append(pass2)
        finally:
            self.loop_stack.pop()
        out = _join(*exits) if len(exits) > 1 else _copy_state(exits[0])
        if orelse:
            return self._exec_block(orelse, out)
        return out

    def _exec_try(self, stmt: ast.Try, state: _State) -> _State | None:
        entry = _copy_state(state)
        body_fall = self._exec_block(stmt.body, state)
        # Any statement of the try body may have raised: the handler
        # sees the join of the entry state and a weakened body state.
        weakened = (_maybeify(_join(entry, body_fall))
                    if body_fall is not None else _maybeify(entry))
        outs: list[_State] = []
        for handler in stmt.handlers:
            h_fall = self._exec_block(handler.body, _copy_state(weakened))
            if h_fall is not None:
                outs.append(h_fall)
        if body_fall is not None:
            if stmt.orelse:
                else_fall = self._exec_block(stmt.orelse, body_fall)
                if else_fall is not None:
                    outs.append(else_fall)
            else:
                outs.append(body_fall)
        out: _State | None
        if outs:
            out = _join(*outs) if len(outs) > 1 else outs[0]
        else:
            out = None
        if stmt.finalbody:
            final_in = out if out is not None else _maybeify(weakened)
            final_out = self._exec_block(stmt.finalbody, final_in)
            if out is not None:
                out = final_out
        return out

    # -- assignment -----------------------------------------------------
    def _exec_assign(self, stmt: ast.stmt, state: _State) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            value = stmt.value
            if value is None:
                return
        else:                                     # AugAssign
            assert isinstance(stmt, ast.AugAssign)
            self._eval(stmt.value, state, root="nested")
            return
        simple = (len(targets) == 1 and isinstance(targets[0], ast.Name))
        target_name = targets[0].id if simple else None
        status = self._eval(value, state,
                            root="bind" if simple else "nested")
        if not simple:
            return
        assert target_name is not None
        old = state.get(target_name)
        if status == _OPEN:
            pair = self._value_pair(value)
            if old is not None and old.status == _OPEN:
                self._report(
                    "RA202", value.lineno, old.line,
                    f"'{pair}' begin overwrites {target_name!r} whose "
                    f"begin at line {old.line} is still pending "
                    f"(begin/begin without finish)")
            state[target_name] = _Token(pair, _OPEN, value.lineno)
        elif status == _MAYBE:
            pair = self._value_pair(value)
            state[target_name] = _Token(pair, _MAYBE, value.lineno)
        elif (isinstance(value, ast.Constant) and value.value is None):
            if old is not None and old.status == _OPEN:
                self._report(
                    "RA201", old.line, stmt.lineno,
                    f"split-phase '{old.pair}' begun here (bound to "
                    f"{target_name!r}) is overwritten with None at line "
                    f"{stmt.lineno} before being finished")
            state[target_name] = _Token("", _NONTOKEN, stmt.lineno)
        else:
            if old is not None and old.status == _OPEN:
                self._report(
                    "RA201", old.line, stmt.lineno,
                    f"split-phase '{old.pair}' begun here (bound to "
                    f"{target_name!r}) is overwritten at line "
                    f"{stmt.lineno} before being finished")
            state.pop(target_name, None)

    def _value_pair(self, value: ast.expr) -> str:
        """Pair name of the begin call (or nested begin) in ``value``."""
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                cls = _classify_call(node)
                if cls is not None and cls[0] == "begin":
                    return cls[1].name
        return "?"

    # -- expressions ----------------------------------------------------
    def _eval(self, expr: ast.expr, state: _State,
              root: str = "nested", escape: bool = True) -> str | None:
        """Evaluate ``expr`` for protocol effects.

        ``root`` describes how a begin result at this position would be
        used: "bind" (assigned to a simple name), "escape" (returned or
        yielded), "discard" (bare expression statement), "test" (a
        branch condition — identity tests do not escape tokens),
        "nested" (inside a larger expression — the token escapes into
        the enclosing value).  Returns "open"/"maybe" when the
        expression may produce a live token for binding.
        """
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state, root, escape)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, state, root="test")
            a = self._eval(expr.body, state, root=root, escape=escape)
            b = self._eval(expr.orelse, state, root=root, escape=escape)
            if a == _OPEN and b == _OPEN:
                return _OPEN
            if a in (_OPEN, _MAYBE) or b in (_OPEN, _MAYBE):
                return _MAYBE
            return None
        if isinstance(expr, ast.BoolOp):
            got = None
            for value in expr.values:
                sub = self._eval(value, state, root=root, escape=escape)
                if sub in (_OPEN, _MAYBE):
                    got = _MAYBE
            return got
        if isinstance(expr, ast.Compare):
            # Identity/membership tests read tokens without consuming
            # them: 'if pending is not None' must not discharge pending.
            self._eval(expr.left, state, root="test", escape=False)
            for comp in expr.comparators:
                self._eval(comp, state, root="test", escape=False)
            return None
        if isinstance(expr, ast.Name):
            tok = state.get(expr.id)
            if (escape and root != "test" and tok is not None
                    and tok.status in (_OPEN, _MAYBE)):
                # Handed to another owner: returned, stored, passed on.
                state.pop(expr.id, None)
            return None
        if isinstance(expr, (ast.Await, ast.Starred)):
            return self._eval(expr.value, state, root=root, escape=escape)
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            if expr.value is not None:
                self._eval(expr.value, state, root="escape")
            return None
        if isinstance(expr, ast.Lambda):
            for node in ast.walk(expr.body):
                if isinstance(node, ast.Name):
                    tok = state.get(node.id)
                    if tok is not None and tok.status in (_OPEN, _MAYBE):
                        state.pop(node.id, None)
            return None
        # Containers, operators, subscripts, comprehensions, fstrings...
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child, state, root="nested", escape=escape)
            elif isinstance(child, ast.comprehension):
                self._eval(child.iter, state, root="nested", escape=escape)
                for cond in child.ifs:
                    self._eval(cond, state, root="test")
        return None

    def _eval_call(self, call: ast.Call, state: _State, root: str,
                   escape: bool) -> str | None:
        cls = _classify_call(call)
        consumed: str | None = None
        if cls is not None and cls[0] == "finish" and cls[1].style == "token":
            consumed = self._consume_finish(call, cls[1], state)
        # Receiver chain of the call target may itself contain calls.
        if isinstance(call.func, ast.Attribute):
            self._eval(call.func.value, state, root="nested", escape=False)
        for arg in call.args:
            if (consumed is not None and isinstance(arg, ast.Name)
                    and arg.id == consumed):
                continue
            self._eval(arg, state, root="nested", escape=escape)
        for kw in call.keywords:
            self._eval(kw.value, state, root="nested", escape=escape)
        if cls is not None and cls[0] == "begin" and cls[1].style == "token":
            if root == "bind":
                return _OPEN
            if root == "discard":
                self._report(
                    "RA201", call.lineno, call.lineno,
                    f"result of split-phase '{cls[1].name}' begin is "
                    f"discarded — the pending op can never be finished")
            # escape/nested: the token is handed off at birth.
        return None

    def _consume_finish(self, call: ast.Call, pair: ProtocolPair,
                        state: _State) -> str | None:
        """Consume the token argument of a finish call; returns its name."""
        name_args = [arg for arg in call.args
                     if isinstance(arg, ast.Name) and arg.id != "self"]
        name_args += [kw.value for kw in call.keywords
                      if isinstance(kw.value, ast.Name)]
        # Prefer an argument we are already tracking as a token (so
        # `finish(machine, pending)` consumes `pending`, not `machine`);
        # otherwise assume the first plain name carries the token.
        token_arg: ast.Name | None = None
        for arg in name_args:
            if arg.id in state:
                token_arg = arg
                break
        if token_arg is None and name_args:
            token_arg = name_args[0]
        if token_arg is None:
            return None
        tok = state.get(token_arg.id)
        if tok is None:
            return token_arg.id       # parameter / unknown: trust caller
        if tok.status in (_OPEN, _MAYBE):
            state[token_arg.id] = _Token(tok.pair, _CLOSED, call.lineno)
        elif tok.status == _CLOSED:
            self._report(
                "RA203", call.lineno, tok.line,
                f"'{pair.name}' finish consumes {token_arg.id!r} which "
                f"was already finished at line {tok.line} (double finish)")
        elif tok.status == _NONTOKEN:
            self._report(
                "RA203", call.lineno, tok.line,
                f"'{pair.name}' finish consumes {token_arg.id!r} which "
                f"definitely carries no pending begin (assigned a "
                f"non-token value at line {tok.line})")
        return token_arg.id


# ---------------------------------------------------------------------------
# Lock-acquisition order (RA204)
# ---------------------------------------------------------------------------

class LockOrderGraph:
    """Cross-file record of nested lock-family acquisitions."""

    def __init__(self) -> None:
        #: (held family, acquired family) -> first witness (path, line)
        self.edges: dict[tuple[str, str], tuple[str, int]] = {}
        self.findings: list[LintFinding] = []

    def acquire(self, held: list[str], family: str, path: str, line: int,
                suppressed: bool) -> None:
        if family in held and not suppressed:
            self.findings.append(LintFinding(
                path, line, 1, "RA204",
                f"lock family {family!r} acquired while already held "
                f"(self-deadlock on non-reentrant locks)"))
        for outer in held:
            if outer != family:
                self.edges.setdefault((outer, family),
                                      (path, line))

    def order_findings(self) -> list[LintFinding]:
        """RA204 for every acquisition edge that closes a cycle."""
        adj: dict[str, set[str]] = {}
        for a, b in self.edges:
            adj.setdefault(a, set()).add(b)
        out = list(self.findings)
        for (a, b), (path, line) in sorted(self.edges.items()):
            # Edge a->b is inconsistent if b can reach a.
            stack, seen = [b], set()
            cyclic = False
            while stack:
                node = stack.pop()
                if node == a:
                    cyclic = True
                    break
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adj.get(node, ()))
            if cyclic:
                other = self.edges.get((b, a))
                hint = (f"; the opposite order is taken at "
                        f"{other[0]}:{other[1]}" if other is not None else
                        " (via intermediate lock families)")
                out.append(LintFinding(
                    path, line, 1, "RA204",
                    f"inconsistent lock order: {a!r} held while "
                    f"acquiring {b!r}{hint} — concurrent call sites can "
                    f"deadlock"))
        return out


def _lock_family(expr: ast.expr, aliases: dict[str, str]) -> str | None:
    if isinstance(expr, ast.Name):
        fam = aliases.get(expr.id)
        if fam is not None:
            return fam
        return expr.id if LOCK_NAME_RE.search(expr.id) else None
    if isinstance(expr, ast.Attribute):
        if LOCK_NAME_RE.search(expr.attr):
            return expr.attr
        return _lock_family(expr.value, aliases)
    if isinstance(expr, ast.Subscript):
        return _lock_family(expr.value, aliases)
    if isinstance(expr, ast.Call):
        return _lock_family(expr.func, aliases)
    return None


class _LockScanner:
    """Per-function scan of ``with``-statement lock nesting."""

    def __init__(self, checker: "_ModuleChecker") -> None:
        self.checker = checker

    def scan(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        aliases: dict[str, str] = {}
        for node in ast.walk(func):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                fam = _lock_family(node.value, {})
                if fam is not None:
                    aliases[node.targets[0].id] = fam
        self._walk_block(func.body, [], aliases)

    def _walk_block(self, stmts: list[ast.stmt], held: list[str],
                    aliases: dict[str, str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[str] = []
                for item in stmt.items:
                    fam = _lock_family(item.context_expr, aliases)
                    if fam is None:
                        continue
                    self.checker.lock_graph.acquire(
                        held + acquired, fam, self.checker.path,
                        item.context_expr.lineno,
                        self.checker.suppressed(item.context_expr.lineno,
                                                "RA204"))
                    acquired.append(fam)
                self._walk_block(stmt.body, held + acquired, aliases)
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    continue
            # Recurse into compound statements' nested blocks.
            for name in ("body", "orelse", "finalbody"):
                block = getattr(stmt, name, None)
                if isinstance(block, list) and block \
                        and isinstance(block[0], ast.stmt):
                    self._walk_block(block, held, aliases)
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for handler in handlers:
                    self._walk_block(handler.body, held, aliases)


# ---------------------------------------------------------------------------
# Module checker and entry points
# ---------------------------------------------------------------------------

class _ModuleChecker:
    """Runs all Level-1 passes over one parsed module."""

    def __init__(self, path: str, lines: list[str],
                 lock_graph: LockOrderGraph,
                 seen_names: set[str]) -> None:
        self.path = path
        self.lines = lines
        self.lock_graph = lock_graph
        self.seen_names = seen_names
        self.findings: list[LintFinding] = []

    def suppressed(self, line: int, code: str) -> bool:
        from ..lint import _NOQA_RE
        if not 1 <= line <= len(self.lines):
            return False
        m = _NOQA_RE.search(self.lines[line - 1])
        if not m:
            return False
        codes = m.group("codes")
        if not codes:
            return True
        return code in {c.strip().upper() for c in codes.split(",")}

    def report(self, code: str, line: int, message: str) -> None:
        if self.suppressed(line, code):
            return
        self.findings.append(LintFinding(self.path, line, 1, code, message))

    def run(self, tree: ast.Module) -> list[LintFinding]:
        presence: dict[tuple[str, str], dict[str, list[int]]] = {}
        scope: list[str] = []
        lock_scanner = _LockScanner(self)

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.ClassDef):
                scope.append(node.name)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                scope.pop()
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionInterp(self, node).run()
                lock_scanner.scan(node)
                scope.append(node.name)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                scope.pop()
                return
            if isinstance(node, ast.Call):
                self._record_presence(node, scope, presence)
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(tree)
        self._presence_findings(presence)
        return sorted(self.findings, key=lambda f: (f.line, f.col, f.code))

    def _scope_key(self, pair: ProtocolPair,
                   scope: list[str]) -> tuple[str, str]:
        if pair.scope == "class":
            # Outermost enclosing class/function — lets a lease be
            # released by a sibling method of the same class.
            unit = scope[0] if scope else "<module>"
        else:
            unit = ".".join(scope) if scope else "<module>"
        return (pair.name, unit)

    def _record_presence(self, call: ast.Call, scope: list[str],
                         presence: dict[tuple[str, str],
                                        dict[str, list[int]]]) -> None:
        if isinstance(call.func, ast.Attribute):
            name = call.func.attr
            terminal = _receiver_terminal(call.func.value)
        elif isinstance(call.func, ast.Name):
            name = call.func.id
            terminal = None
        else:
            return
        self.seen_names.add(name)
        for table, kind in ((_BEGIN_TABLE, "begin"),
                            (_FINISH_TABLE, "finish")):
            pair = table.get(name)
            if pair is None or pair.style != "presence":
                continue
            if isinstance(call.func, ast.Name) and pair.receiver_hints:
                continue
            if kind == "begin" and not pair.matches_receiver(terminal):
                continue
            unit = presence.setdefault(self._scope_key(pair, scope),
                                       {"begin": [], "finish": []})
            unit[kind].append(call.lineno)

    def _presence_findings(
            self, presence: dict[tuple[str, str],
                                 dict[str, list[int]]]) -> None:
        for (pair_name, unit), sites in sorted(presence.items()):
            if sites["begin"] and not sites["finish"]:
                line = min(sites["begin"])
                self.report(
                    "RA205" if pair_name == "lease" else "RA201", line,
                    f"scope {unit!r} begins '{pair_name}' "
                    f"({len(sites['begin'])} site(s)) but never calls "
                    f"its finish — the phase can never complete")


def registry_rot_findings(seen_names: set[str]) -> list[LintFinding]:
    """RA206: registry entries whose names match nothing scanned."""
    from . import pairs as pairs_module
    path = str(Path(pairs_module.__file__))
    out: list[LintFinding] = []
    for pair in PROTOCOL_PAIRS:
        for kind, names in (("begin", pair.begin_names),
                            ("finish", pair.finish_names)):
            if not names & seen_names:
                out.append(LintFinding(
                    path, 1, 1, "RA206",
                    f"PROTOCOL_PAIRS entry {pair.name!r} registers "
                    f"{kind} names {sorted(names)} but no call site in "
                    f"the scanned tree matches (stale registry entry)"))
    return out


def check_protocol_source(source: str, filename: str = "<string>",
                          lock_graph: LockOrderGraph | None = None,
                          seen_names: set[str] | None = None,
                          ) -> list[LintFinding]:
    """Run the Level-1 checker over one source string."""
    own_graph = lock_graph is None
    graph = lock_graph if lock_graph is not None else LockOrderGraph()
    names = seen_names if seen_names is not None else set()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [LintFinding(filename, exc.lineno or 1,
                            (exc.offset or 0) + 1, "RA000",
                            f"syntax error: {exc.msg}")]
    checker = _ModuleChecker(filename, source.splitlines(), graph, names)
    findings = checker.run(tree)
    if own_graph:
        findings.extend(graph.order_findings())
    return findings


def check_protocol_file(path: str | Path,
                        lock_graph: LockOrderGraph | None = None,
                        seen_names: set[str] | None = None,
                        ) -> list[LintFinding]:
    """Run the Level-1 checker over one file."""
    p = Path(path)
    return check_protocol_source(p.read_text(encoding="utf-8"), str(p),
                                 lock_graph, seen_names)


def check_protocol_paths(paths, check_rot: bool = False,
                         ) -> list[LintFinding]:
    """Run the Level-1 checker over files/directories.

    The lock-order graph is global across all scanned files (the RA204
    contract is *cross-call-site* consistency).  ``check_rot`` adds the
    RA206 stale-registry pass, meaningful only when scanning the whole
    parallel-layer tree.
    """
    graph = LockOrderGraph()
    seen: set[str] = set()
    findings: list[LintFinding] = []
    for f in iter_python_files(paths):
        findings.extend(check_protocol_file(f, graph, seen))
    findings.extend(graph.order_findings())
    if check_rot:
        findings.extend(registry_rot_findings(seen))
    return findings
