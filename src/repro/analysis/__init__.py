"""Static verification and runtime invariant sanitizers.

Two halves, one goal — turning the repo's correctness folklore
(conflict-free colourings, exactly-once PARTI schedules, the fused
pipeline's zero-allocation contract) into mechanically checked
invariants:

* :mod:`repro.analysis.lint` — AST lint pass with repo-specific rules,
  runnable as ``python -m repro.analysis``;
* :mod:`repro.analysis.protocol` — the split-phase protocol verifier:
  RA2xx path-sensitive begin/finish checking over the parallel layers
  and the RA3xx schedule model checker
  (``python -m repro.analysis --protocol``);
* :mod:`repro.analysis.sanitize` — opt-in runtime sanitizers wired
  through ``SolverConfig(sanitize=...)``.

See ``docs/static-analysis.md``.
"""

from .lint import LintFinding, hot_kernel, lint_file, lint_paths
from .protocol import (Findings, ProtocolVerificationError,
                       check_protocol_paths, verify_schedule)
from .sanitize import (NULL_SANITIZER, SANITIZER_NAMES, BufferSanitizer,
                       ColorRaceSanitizer, Finding, NullSanitizer,
                       SanitizerError, ScheduleSanitizer, build_sanitizers)

__all__ = [
    "LintFinding", "hot_kernel", "lint_file", "lint_paths",
    "check_protocol_paths", "verify_schedule", "Findings",
    "ProtocolVerificationError",
    "SANITIZER_NAMES", "SanitizerError", "Finding", "NullSanitizer",
    "NULL_SANITIZER", "ColorRaceSanitizer", "ScheduleSanitizer",
    "BufferSanitizer", "build_sanitizers",
]
