"""CLI for the repo lint pass: ``python -m repro.analysis [paths...]``.

With no paths, lints the installed ``repro`` package sources.  Exits
nonzero when any *error*-severity finding (RA0xx) is present; with
``--strict``, warnings (RA1xx hygiene rules) also fail the run — the
mode CI uses as a hard gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .lint import lint_paths


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static verification pass "
                    "(hot-path allocations, np.add.at, out= discipline, "
                    "hygiene).")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not just errors")
    args = parser.parse_args(argv)

    paths = args.paths or [Path(__file__).resolve().parents[1]]
    findings = lint_paths(paths)
    for finding in findings:
        print(f"{finding} [{finding.severity}]")

    n_err = sum(1 for f in findings if f.severity == "error")
    n_warn = len(findings) - n_err
    print(f"repro.analysis: {n_err} error(s), {n_warn} warning(s)")
    if n_err:
        return 1
    if args.strict and n_warn:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
