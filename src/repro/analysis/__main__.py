"""CLI for the repo verification passes: ``python -m repro.analysis``.

Modes
-----
default
    The RA0xx/RA1xx allocation-and-hygiene lint over the ``repro``
    package (or explicit paths).
``--protocol``
    The RA2xx split-phase protocol checker over the parallel layers
    (``distsolver/``, ``parti/``), plus registry rot detection.  Add
    ``--sweep [mesh ...]`` to also model check real box-mesh schedules
    (RA3xx) at ``--ranks`` rank counts under ``--semantics``, add
    ``--selftest`` to run the seeded-mutation corpus, and ``--mutate``
    to print each seeded mutation's verdict (debugging aid).

Exit codes
----------
0   clean
1   findings (errors, or warnings under ``--strict``)
2   parse/internal errors (RA000 syntax failures, crashes) — a broken
    *run*, distinct from a failing *check*, so CI can tell "the gate
    said no" from "the gate did not run".
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from .lint import LintFinding, lint_paths

#: Lint-layer codes that mean the tool could not run, not that the
#: target failed the check.
_INTERNAL_CODES = frozenset({"RA000"})

_PKG_ROOT = Path(__file__).resolve().parents[1]

#: Mesh sizes for the schedule sweep (box_mesh n for "boxN").
_SWEEP_MESHES: dict[str, int] = {"box8": 8, "box12": 12, "box27": 27}


def _print_summary(findings: Sequence[LintFinding]) -> tuple[int, int]:
    """Print per-rule counts; returns (n_errors, n_warnings)."""
    by_code = Counter(f.code for f in findings)
    if by_code:
        per_rule = ", ".join(f"{code}: {n}"
                             for code, n in sorted(by_code.items()))
        print(f"per-rule: {per_rule}")
    n_err = sum(1 for f in findings if f.severity == "error")
    n_warn = len(findings) - n_err
    print(f"repro.analysis: {n_err} error(s), {n_warn} warning(s)")
    return n_err, n_warn


def _exit_code(findings: Sequence[LintFinding], strict: bool) -> int:
    if any(f.code in _INTERNAL_CODES for f in findings):
        return 2
    n_err, n_warn = _print_summary(findings)
    if n_err:
        return 1
    if strict and n_warn:
        return 1
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    paths = args.paths or [_PKG_ROOT]
    findings = lint_paths(paths)
    for finding in findings:
        print(f"{finding} [{finding.severity}]")
    return _exit_code(findings, args.strict)


def _sweep_schedule(mesh_name: str, n_ranks: int):
    from ..mesh.edges import build_edge_structure
    from ..mesh.generators.box import box_mesh
    from ..parti.schedule import build_gather_schedule
    from ..parti.translation import TranslationTable
    from ..partition.coordinate import recursive_coordinate_bisection

    n = _SWEEP_MESHES[mesh_name]
    mesh = box_mesh(n, n, n, name=mesh_name)
    struct = build_edge_structure(mesh)
    assignment = recursive_coordinate_bisection(mesh.vertices, n_ranks)
    table = TranslationTable(assignment, n_parts=n_ranks)
    edge_owner = table.owner_of(struct.edges[:, 0])
    required = [struct.edges[edge_owner == r].ravel()
                for r in range(n_ranks)]
    return build_gather_schedule(required, table,
                                 name=f"{mesh_name}-p{n_ranks}")


def _run_sweep(args: argparse.Namespace) -> int:
    from .protocol import expected_exchange_count, verify_schedule

    meshes = args.sweep or list(_SWEEP_MESHES)
    unknown = [m for m in meshes if m not in _SWEEP_MESHES]
    if unknown:
        print(f"unknown sweep mesh(es): {unknown} "
              f"(known: {sorted(_SWEEP_MESHES)})", file=sys.stderr)
        return 2
    failed = 0
    for mesh_name in meshes:
        for n_ranks in args.ranks:
            schedule = _sweep_schedule(mesh_name, n_ranks)
            result = verify_schedule(
                schedule, semantics=tuple(args.semantics),
                expected_ops=expected_exchange_count("overlap"))
            verdict = "ok" if result.ok else "FAIL"
            print(f"sweep {mesh_name} @ {n_ranks} ranks "
                  f"({'/'.join(args.semantics)}): {result.n_ops} "
                  f"exchanges/cycle, {verdict}")
            for finding in result.findings:
                print(f"  {finding}")
                failed += 1
    return 1 if failed else 0


def _run_mutations() -> int:
    from .protocol import MODEL_MUTATIONS, cycle_exchange_ops, verify_schedule
    from .protocol.fixtures import fake_ring_schedule

    schedule = fake_ring_schedule()
    ops = cycle_exchange_ops("overlap")
    bad = 0
    for name, (code, mutator) in MODEL_MUTATIONS.items():
        result = verify_schedule(schedule, **mutator(schedule, ops))
        found = sorted({f.code for f in result.findings})
        caught = code in found
        bad += 0 if caught else 1
        print(f"mutation {name}: expected {code}, "
              f"got {found or ['nothing']} "
              f"{'(caught)' if caught else '(MISSED)'}")
    return 1 if bad else 0


def _run_protocol(args: argparse.Namespace) -> int:
    from .protocol import check_protocol_paths
    from .protocol.fixtures import run_selftest

    if args.selftest:
        failures = run_selftest(verbose=True)
        for failure in failures:
            print(f"selftest FAIL: {failure}")
        print(f"protocol selftest: "
              f"{'ok' if not failures else f'{len(failures)} failure(s)'}")
        return 1 if failures else 0
    if args.mutate:
        return _run_mutations()

    paths = args.paths or [_PKG_ROOT / "distsolver", _PKG_ROOT / "parti"]
    findings = check_protocol_paths(paths, check_rot=not args.paths)
    for finding in findings:
        print(f"{finding} [{finding.severity}]")
    code = _exit_code(findings, args.strict)
    if args.sweep is not None:
        sweep_code = _run_sweep(args)
        code = max(code, sweep_code)
    return code


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static verification passes: "
                    "allocation/hygiene lint (RA0xx/RA1xx), split-phase "
                    "protocol checking (RA2xx), and schedule model "
                    "checking (RA3xx).")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to check (default: the repro package, "
             "or its parallel layers under --protocol)")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not just errors")
    parser.add_argument(
        "--protocol", action="store_true",
        help="run the RA2xx split-phase protocol checker instead of "
             "the lint pass")
    parser.add_argument(
        "--sweep", nargs="*", metavar="MESH", default=None,
        help="with --protocol: also model check box-mesh schedules "
             f"(RA3xx); choices: {sorted(_SWEEP_MESHES)}, default all")
    parser.add_argument(
        "--ranks", nargs="*", type=int, default=[2, 4, 8, 16],
        metavar="N", help="rank counts for --sweep (default: 2 4 8 16)")
    parser.add_argument(
        "--semantics", nargs="*", default=["pipe", "shm"],
        choices=["pipe", "shm"],
        help="capacity semantics for --sweep (default: both)")
    parser.add_argument(
        "--selftest", action="store_true",
        help="with --protocol: run the seeded-mutation self-test corpus")
    parser.add_argument(
        "--mutate", action="store_true",
        help="with --protocol: print each model mutation's verdict")
    args = parser.parse_args(argv)

    try:
        if args.protocol:
            return _run_protocol(args)
        if args.selftest or args.mutate or args.sweep is not None:
            parser.error("--sweep/--selftest/--mutate require --protocol")
        return _run_lint(args)
    except Exception as exc:                     # noqa - CLI boundary
        print(f"repro.analysis: internal error: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
