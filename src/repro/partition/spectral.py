"""Recursive spectral bisection (Pothen, Simon & Liou — the paper's ref 10).

"Partitioning is done sequentially using a recursive spectral approach.
This method is known to deliver good load balancing and to minimize
inter-partition surface area" (Section 4.1).  Each bisection step splits
the (sub)graph at the weighted median of its **Fiedler vector** — the
eigenvector of the second-smallest eigenvalue of the graph Laplacian.

The Fiedler vector is computed with our own Lanczos iteration (full
reorthogonalisation, constant-vector deflation) on the spectrally shifted
operator ``B = c I - L`` whose *largest* non-trivial eigenpair is the
Fiedler pair — far better conditioned than seeking the smallest eigenpair
directly.  ``scipy.sparse.linalg.eigsh`` is available as a fallback for
pathological graphs.

The paper also observes "the expense of the partitioning operation has
been found to be comparable to the cost of a sequential flow solution" —
our benchmark harness measures the same comparison on our meshes
(``benchmarks/bench_partition.py``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..mesh.adjacency import vertex_graph

__all__ = ["recursive_spectral_bisection", "fiedler_vector", "lanczos_extremal"]


def lanczos_extremal(matvec, n: int, rng: np.random.Generator,
                     deflate: np.ndarray | None = None,
                     max_iter: int = 200, tol: float = 1e-7) -> np.ndarray:
    """Ritz vector of the largest eigenvalue of a symmetric operator.

    Plain Lanczos with full reorthogonalisation (the mesh graphs here are
    small enough that the O(n k) orthogonalisation cost is irrelevant next
    to robustness).  ``deflate`` is an optional orthonormal vector kept out
    of the Krylov space (the constant vector, for Laplacians).
    """
    q = rng.standard_normal(n)
    if deflate is not None:
        q -= (deflate @ q) * deflate
    q /= np.linalg.norm(q)
    basis = [q]
    alphas: list[float] = []
    betas: list[float] = []
    prev_ritz = None
    for it in range(max_iter):
        v = matvec(basis[-1])
        alpha = basis[-1] @ v
        alphas.append(alpha)
        v = v - alpha * basis[-1]
        if len(basis) > 1:
            v -= betas[-1] * basis[-2]
        # Full reorthogonalisation (and deflation).
        for b in basis:
            v -= (b @ v) * b
        if deflate is not None:
            v -= (deflate @ v) * deflate
        beta = np.linalg.norm(v)
        tri = sp.diags([betas, alphas, betas], offsets=[-1, 0, 1]).toarray() \
            if betas else np.array([[alphas[0]]])
        evals, evecs = np.linalg.eigh(tri)
        ritz_val = evals[-1]
        if prev_ritz is not None and abs(ritz_val - prev_ritz) <= tol * max(1.0, abs(ritz_val)):
            break
        prev_ritz = ritz_val
        if beta < 1e-12:
            break
        betas.append(beta)
        basis.append(v / beta)
    coeffs = evecs[:, -1]
    vec = np.zeros(n)
    for c, b in zip(coeffs, basis):
        vec += c * b
    norm = np.linalg.norm(vec)
    return vec / (norm if norm > 0 else 1.0)


def fiedler_vector(adj: sp.csr_matrix, rng: np.random.Generator,
                   tol: float = 1e-7) -> np.ndarray:
    """Fiedler vector of the graph with adjacency ``adj`` (0/1, symmetric)."""
    n = adj.shape[0]
    degree = np.asarray(adj.sum(axis=1)).ravel()
    shift = 2.0 * degree.max() + 1.0 if n else 1.0
    ones = np.full(n, 1.0 / np.sqrt(n))

    def matvec(x):
        # B x = (shift I - L) x = shift x - deg * x + A x
        return shift * x - degree * x + adj @ x

    return lanczos_extremal(matvec, n, rng, deflate=ones, tol=tol)


def recursive_spectral_bisection(edges: np.ndarray, n_vertices: int,
                                 n_parts: int, seed: int = 1234) -> np.ndarray:
    """Partition vertices into ``n_parts`` parts by recursive bisection.

    Arbitrary ``n_parts`` is supported by splitting the part budget as
    evenly as possible at each level (``ceil``/``floor``); the classic
    power-of-two case reduces to median splits.  Returns the per-vertex
    part assignment.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    adj_full = vertex_graph(edges, n_vertices)
    assignment = np.zeros(n_vertices, dtype=np.int32)
    rng = np.random.default_rng(seed)

    # Work list of (vertex ids, first part id, part count).
    stack = [(np.arange(n_vertices), 0, n_parts)]
    while stack:
        verts, part0, parts = stack.pop()
        if parts == 1 or verts.size == 0:
            assignment[verts] = part0
            continue
        parts_left = (parts + 1) // 2
        target_left = int(round(verts.size * parts_left / parts))
        target_left = min(max(target_left, 1), verts.size - 1)

        sub = adj_full[verts][:, verts].tocsr()
        fied = fiedler_vector(sub, rng)
        order = np.argsort(fied, kind="stable")
        left = verts[order[:target_left]]
        right = verts[order[target_left:]]
        stack.append((left, part0, parts_left))
        stack.append((right, part0 + parts_left, parts - parts_left))
    return assignment
