"""Recursive coordinate bisection: the geometric baseline partitioner.

Splits the vertex set at the median coordinate along the longest extent of
its bounding box, recursively.  Cheap (no eigenproblem) and perfectly
balanced, but blind to connectivity — it typically cuts more edges than
spectral bisection, which is exactly the trade-off the ablation benchmark
measures (cut edges feed straight into the Delta communication model).
"""

from __future__ import annotations

import numpy as np

__all__ = ["recursive_coordinate_bisection"]


def recursive_coordinate_bisection(coords: np.ndarray, n_parts: int) -> np.ndarray:
    """Partition points into ``n_parts`` parts of near-equal size."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    n = coords.shape[0]
    assignment = np.zeros(n, dtype=np.int32)
    stack = [(np.arange(n), 0, n_parts)]
    while stack:
        verts, part0, parts = stack.pop()
        if parts == 1 or verts.size == 0:
            assignment[verts] = part0
            continue
        parts_left = (parts + 1) // 2
        target_left = int(round(verts.size * parts_left / parts))
        target_left = min(max(target_left, 1), verts.size - 1)
        pts = coords[verts]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        order = np.argsort(pts[:, axis], kind="stable")
        stack.append((verts[order[:target_left]], part0, parts_left))
        stack.append((verts[order[target_left:]], part0 + parts_left, parts - parts_left))
    return assignment
