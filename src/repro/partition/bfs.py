"""Greedy BFS (graph-growing) partitioner: the cheapest baseline.

Grows one partition at a time by breadth-first search from a peripheral
seed until the size quota is met, then reseeds from the unassigned
frontier.  O(V + E), no geometry, no eigenproblem — but partition shapes
degrade as parts fill in, producing the worst cuts of the three methods
(the paper's motivation for paying for spectral bisection).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..mesh.adjacency import vertex_neighbors_csr

__all__ = ["greedy_bfs_partition"]


def _peripheral_vertex(indptr, indices, start: int, candidates: np.ndarray) -> int:
    """Approximate peripheral vertex: farthest point of one BFS sweep."""
    mask = np.zeros(indptr.shape[0] - 1, dtype=bool)
    mask[candidates] = True
    if not mask[start]:
        start = int(candidates[0])
    seen = {start}
    queue = deque([start])
    last = start
    while queue:
        v = queue.popleft()
        last = v
        for nb in indices[indptr[v]:indptr[v + 1]]:
            if mask[nb] and nb not in seen:
                seen.add(int(nb))
                queue.append(int(nb))
    return last


def greedy_bfs_partition(edges: np.ndarray, n_vertices: int,
                         n_parts: int) -> np.ndarray:
    """Partition by repeated BFS growth; parts are filled to equal quota."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    indptr, indices = vertex_neighbors_csr(edges, n_vertices)
    assignment = np.full(n_vertices, -1, dtype=np.int32)
    quotas = np.full(n_parts, n_vertices // n_parts, dtype=np.int64)
    quotas[: n_vertices % n_parts] += 1

    unassigned = n_vertices
    for part in range(n_parts):
        if unassigned == 0:
            break
        candidates = np.flatnonzero(assignment < 0)
        seed = _peripheral_vertex(indptr, indices, int(candidates[0]), candidates)
        quota = int(quotas[part])
        queue = deque([seed])
        assignment[seed] = part
        taken = 1
        while queue and taken < quota:
            v = queue.popleft()
            for nb in indices[indptr[v]:indptr[v + 1]]:
                if assignment[nb] < 0:
                    assignment[nb] = part
                    taken += 1
                    queue.append(int(nb))
                    if taken >= quota:
                        break
        # Disconnected leftovers: grab arbitrary unassigned vertices so the
        # quota is met even when the frontier dries up.
        if taken < quota:
            extra = np.flatnonzero(assignment < 0)[: quota - taken]
            assignment[extra] = part
            taken += extra.size
        unassigned -= taken
    assignment[assignment < 0] = n_parts - 1
    return assignment
