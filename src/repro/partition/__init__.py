"""Mesh partitioners for the distributed-memory implementation."""

from .bfs import greedy_bfs_partition
from .coordinate import recursive_coordinate_bisection
from .metrics import PartitionMetrics, cut_edges, partition_metrics
from .spectral import fiedler_vector, lanczos_extremal, recursive_spectral_bisection

__all__ = [
    "greedy_bfs_partition", "recursive_coordinate_bisection",
    "PartitionMetrics", "cut_edges", "partition_metrics",
    "fiedler_vector", "lanczos_extremal", "recursive_spectral_bisection",
]

from .refine import refine_partition, refinement_gain

__all__ += ["refine_partition", "refinement_gain"]
