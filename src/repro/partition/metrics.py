"""Partition quality metrics.

"The partitioning strategy must ensure load balancing and minimize
communication by creating partitions of approximately equal size, and by
minimizing the partition surface-to-volume ratios" (Section 2.4).  These
metrics quantify both, and the cut statistics feed the Touchstone Delta
communication model directly: every cut edge is one off-processor vertex
reference the PARTI inspector must schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PartitionMetrics", "partition_metrics", "cut_edges"]


def cut_edges(edges: np.ndarray, assignment: np.ndarray) -> np.ndarray:
    """Boolean mask of edges whose endpoints live in different parts."""
    return assignment[edges[:, 0]] != assignment[edges[:, 1]]


@dataclass
class PartitionMetrics:
    """Summary of a vertex partition against its mesh edge graph."""

    n_parts: int
    part_sizes: np.ndarray          # vertices per part
    imbalance: float                # max/mean part size
    n_cut_edges: int                # edges crossing part boundaries
    cut_fraction: float             # cut edges / total edges
    boundary_vertices: np.ndarray   # per part: vertices with a cut edge
    surface_to_volume: np.ndarray   # per part: boundary / size
    max_neighbors: int              # max number of adjacent parts
    mean_neighbors: float

    def report(self) -> str:
        return "\n".join([
            f"parts {self.n_parts}, sizes [{self.part_sizes.min()}, "
            f"{self.part_sizes.max()}], imbalance {self.imbalance:.3f}",
            f"cut edges {self.n_cut_edges} ({100 * self.cut_fraction:.2f}% of edges)",
            f"surface/volume mean {self.surface_to_volume.mean():.3f} "
            f"max {self.surface_to_volume.max():.3f}",
            f"part neighbours mean {self.mean_neighbors:.1f} max {self.max_neighbors}",
        ])


def partition_metrics(edges: np.ndarray, assignment: np.ndarray,
                      n_parts: int | None = None) -> PartitionMetrics:
    """Compute :class:`PartitionMetrics` for a vertex assignment."""
    assignment = np.asarray(assignment)
    if n_parts is None:
        n_parts = int(assignment.max()) + 1
    part_sizes = np.bincount(assignment, minlength=n_parts)

    cut = cut_edges(edges, assignment)
    n_cut = int(cut.sum())

    # Boundary vertices: any endpoint of a cut edge.
    boundary = np.zeros(assignment.shape[0], dtype=bool)
    boundary[edges[cut].ravel()] = True
    boundary_per_part = np.bincount(assignment[boundary], minlength=n_parts)

    with np.errstate(divide="ignore", invalid="ignore"):
        s2v = np.where(part_sizes > 0, boundary_per_part / np.maximum(part_sizes, 1), 0.0)

    # Communication graph: pairs of parts joined by at least one cut edge.
    pi = assignment[edges[cut, 0]]
    pj = assignment[edges[cut, 1]]
    pairs = np.unique(np.stack([np.minimum(pi, pj), np.maximum(pi, pj)], axis=1), axis=0) \
        if n_cut else np.zeros((0, 2), dtype=np.int64)
    neighbor_count = np.bincount(pairs.ravel(), minlength=n_parts) if len(pairs) \
        else np.zeros(n_parts, dtype=np.int64)

    return PartitionMetrics(
        n_parts=n_parts,
        part_sizes=part_sizes,
        imbalance=float(part_sizes.max() / max(part_sizes.mean(), 1e-300)),
        n_cut_edges=n_cut,
        cut_fraction=n_cut / max(len(edges), 1),
        boundary_vertices=boundary_per_part,
        surface_to_volume=s2v,
        max_neighbors=int(neighbor_count.max()) if n_parts else 0,
        mean_neighbors=float(neighbor_count.mean()) if n_parts else 0.0,
    )
