"""Pairwise boundary refinement of partitions (KL/FM-style).

The paper's conclusions call for better partitioners: "the partitioning
strategy employed ..., although effective, is excessively costly.  More
research is required in this area in order to develop more efficient and
parallel partitioners."  This module implements the classic answer: take
any cheap initial partition (coordinate bisection, BFS growing) and
improve its cut with a Fiduccia–Mattheyses-style greedy refinement pass
over the partition boundary, under a strict balance constraint.

The pass is local (touches only boundary vertices), so it is exactly the
kind of computation that parallelises over partitions — the direction the
paper points at.  The ablation benchmark measures cut improvement and the
resulting PARTI traffic reduction.
"""

from __future__ import annotations

import numpy as np

from ..mesh.adjacency import vertex_neighbors_csr
from .metrics import cut_edges

__all__ = ["refine_partition", "refinement_gain"]


def refinement_gain(edges: np.ndarray, assignment: np.ndarray) -> int:
    """Cut-edge count of an assignment (lower is better)."""
    return int(cut_edges(edges, assignment).sum())


def refine_partition(edges: np.ndarray, assignment: np.ndarray,
                     n_parts: int | None = None, max_passes: int = 4,
                     imbalance_tol: float = 0.05) -> np.ndarray:
    """Greedy boundary refinement; returns an improved copy.

    Each pass visits the current boundary vertices in order of decreasing
    move gain (cut edges saved by moving the vertex to its most-connected
    other part) and applies every move that

    * strictly reduces the cut, and
    * keeps every part within ``(1 + imbalance_tol)`` of the mean size.

    Passes repeat until no move applies or ``max_passes`` is reached.
    This is the simplified single-move variant of Fiduccia–Mattheyses
    (no hill-climbing), which preserves monotone improvement — adequate
    for polishing RCB/BFS seeds and cheap enough to run per partition.
    """
    assignment = np.asarray(assignment).copy()
    n_vertices = assignment.shape[0]
    if n_parts is None:
        n_parts = int(assignment.max()) + 1
    indptr, indices = vertex_neighbors_csr(edges, n_vertices)
    sizes = np.bincount(assignment, minlength=n_parts).astype(np.int64)
    max_size = int((1.0 + imbalance_tol) * n_vertices / n_parts) + 1
    min_size = max(1, int((1.0 - imbalance_tol) * n_vertices / n_parts))

    for _ in range(max_passes):
        cut_mask = cut_edges(edges, assignment)
        boundary = np.unique(edges[cut_mask].ravel())
        if boundary.size == 0:
            break

        moved_any = False
        # Compute gains for all boundary vertices, then apply greedily in
        # gain order, revalidating each move against the current state.
        gains = []
        for v in boundary.tolist():
            nb = indices[indptr[v]:indptr[v + 1]]
            parts, counts = np.unique(assignment[nb], return_counts=True)
            home = assignment[v]
            home_links = int(counts[parts == home][0]) if home in parts else 0
            for part, count in zip(parts.tolist(), counts.tolist()):
                if part != home and count > home_links:
                    gains.append((count - home_links, v, part))
        gains.sort(reverse=True)

        for gain, v, target in gains:
            home = assignment[v]
            if home == target:
                continue
            if sizes[target] >= max_size or sizes[home] <= min_size:
                continue
            # Revalidate the gain against the possibly updated assignment.
            nb = indices[indptr[v]:indptr[v + 1]]
            links_target = int(np.count_nonzero(assignment[nb] == target))
            links_home = int(np.count_nonzero(assignment[nb] == home))
            if links_target <= links_home:
                continue
            assignment[v] = target
            sizes[home] -= 1
            sizes[target] += 1
            moved_any = True

        if not moved_any:
            break
    return assignment
