"""Span tracer with a preallocated ring buffer, and its no-op twin.

Design constraints (ISSUE 2 / the paper's Tables 1-2 accounting):

* **Zero cost when disabled.**  Every instrumented call site does
  ``with self.tracer.span("name"):`` — with the default
  :class:`NullTracer` this is one attribute lookup, one method call
  returning a shared singleton, and an empty ``with`` block.  The
  benchmark gate in ``benchmarks/bench_residual.py`` verifies the
  projected per-step overhead stays under 2%.
* **No allocation on the hot path when enabled.**  Spans are recorded
  into a structured NumPy ring buffer preallocated at construction;
  span handles are pooled per thread and per nesting depth, so steady-
  state tracing allocates nothing (first use of a new depth or thread
  grows the pool once).
* **Thread-safe.**  The colored-threaded executor emits spans from
  worker threads.  Each thread keeps its own nesting stack (spans are
  strictly nested *per thread*); only the ring-buffer slot reservation
  takes a lock.

Spans carry ``(name, tid, depth, t0, t1)``; parent/child structure is
not stored but recovered from interval containment per thread, which is
exactly what ``chrome://tracing`` does with complete ("X") events.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .counters import CounterStore, GaugeStore

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "SPAN_DTYPE"]

#: Ring-buffer record layout: interned name id, dense thread id, nesting
#: depth, start/end times (seconds relative to the tracer's origin).
SPAN_DTYPE = np.dtype([("name", np.int32), ("tid", np.int32),
                       ("depth", np.int16), ("t0", np.float64),
                       ("t1", np.float64)])

_perf_counter = time.perf_counter


class _NullSpan:
    """Shared do-nothing context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    Instrumented code holds a reference to a tracer and calls
    ``tracer.span(...)`` / ``tracer.count(...)`` unconditionally; with
    this class those calls cost one attribute lookup plus an empty
    method.  ``enabled`` lets call sites with *dynamic* span names or
    non-trivial metric computation skip the work entirely::

        if tracer.enabled:
            tracer.count("comm." + phase + ".bytes", payload.nbytes)
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counters(self) -> dict[str, float]:
        return {}

    def gauges(self) -> dict[str, dict[str, float]]:
        return {}


#: Process-wide shared instance; identity-comparable and stateless.
NULL_TRACER = NullTracer()


class _SpanHandle:
    """Reusable per-(thread, depth) span context manager.

    One handle exists per nesting depth per thread; because spans are
    strictly nested within a thread, re-entering a depth only happens
    after the previous span at that depth has exited, so reuse is safe
    and the hot path never allocates.
    """

    __slots__ = ("_tracer", "_state", "name_id", "t0")

    def __init__(self, tracer: "Tracer", state: "_ThreadState"):
        self._tracer = tracer
        self._state = state
        self.name_id = 0
        self.t0 = 0.0

    def __enter__(self) -> "_SpanHandle":
        self.t0 = _perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._finish_span(self, _perf_counter())
        return False


class _ThreadState:
    """Per-thread nesting stack and handle pool."""

    __slots__ = ("tid", "depth", "pool")

    def __init__(self, tid: int):
        self.tid = tid
        self.depth = 0
        self.pool: list[_SpanHandle] = []


class _TracerLocal(threading.local):
    """Typed ``threading.local``: each thread sees its own ``state``."""

    state: _ThreadState | None = None


@dataclass
class TracePayload:
    """Picklable snapshot of one tracer — the unit merged across ranks.

    ``pid`` and ``label`` identify the timeline (e.g. one mp_solver rank)
    in merged exports; ``t_origin`` documents the local clock origin
    (timelines from different processes share no clock, so exporters
    keep them on separate pid rows rather than aligning them).
    """

    names: list[str] = field(default_factory=list)
    records: np.ndarray = field(default_factory=lambda: np.empty(0, SPAN_DTYPE))
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, dict[str, float]] = field(default_factory=dict)
    pid: int = 0
    label: str = ""
    t_origin: float = 0.0
    n_dropped: int = 0


class Tracer:
    """Nested-span tracer recording into a preallocated ring buffer.

    Parameters
    ----------
    capacity : ring-buffer length in spans.  When more spans complete
        than fit, the oldest records are overwritten (``n_dropped``
        reports how many) — tracing a long run degrades to a sliding
        window instead of growing without bound.
    """

    enabled = True

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._records = np.zeros(self.capacity, dtype=SPAN_DTYPE)
        self._n = 0                       # spans completed (monotonic)
        self._lock = threading.Lock()
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        self._local = _TracerLocal()
        self._n_threads = 0
        self.t_origin = _perf_counter()
        self._counters = CounterStore()
        self._gauges = GaugeStore()
        #: Payloads of other processes' tracers (e.g. mp_solver ranks),
        #: attached by the driver so exporters can merge the timelines.
        self.remote_payloads: list[TracePayload] = []

    # -- span recording -------------------------------------------------
    def _intern(self, name: str) -> int:
        nid = self._name_ids.get(name)
        if nid is None:
            with self._lock:
                nid = self._name_ids.get(name)
                if nid is None:
                    nid = len(self._names)
                    self._names.append(name)
                    self._name_ids[name] = nid
        return nid

    def _thread_state(self) -> _ThreadState:
        state = self._local.state
        if state is None:
            with self._lock:
                tid = self._n_threads
                self._n_threads += 1
            state = _ThreadState(tid)
            self._local.state = state
        return state

    def span(self, name: str) -> _SpanHandle:
        """Context manager timing one named span (strictly nested per thread)."""
        state = self._thread_state()
        depth = state.depth
        if depth == len(state.pool):
            state.pool.append(_SpanHandle(self, state))
        handle = state.pool[depth]
        handle.name_id = self._intern(name)
        state.depth = depth + 1
        return handle

    def _finish_span(self, handle: _SpanHandle, t1: float) -> None:
        state = handle._state
        state.depth -= 1
        with self._lock:
            slot = self._n % self.capacity
            self._n += 1
        rec = self._records[slot]
        rec["name"] = handle.name_id
        rec["tid"] = state.tid
        rec["depth"] = state.depth
        rec["t0"] = handle.t0 - self.t_origin
        rec["t1"] = t1 - self.t_origin

    # -- metrics --------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        self._counters.add(name, value)

    def gauge(self, name: str, value: float) -> None:
        self._gauges.observe(name, value)

    def counters(self) -> dict[str, float]:
        return self._counters.as_dict()

    def gauges(self) -> dict[str, dict[str, float]]:
        return self._gauges.as_dict()

    # -- introspection / export ----------------------------------------
    @property
    def n_spans(self) -> int:
        """Spans currently held in the ring (≤ capacity)."""
        return min(self._n, self.capacity)

    @property
    def n_recorded(self) -> int:
        """Total spans ever completed (monotonic, ignores wraparound)."""
        return self._n

    @property
    def n_dropped(self) -> int:
        """Spans overwritten by ring wraparound."""
        return max(0, self._n - self.capacity)

    def names(self) -> list[str]:
        return list(self._names)

    def records(self) -> np.ndarray:
        """Copy of the live records, oldest first (completion order)."""
        n = self._n
        if n <= self.capacity:
            return self._records[:n].copy()
        cut = n % self.capacity
        return np.concatenate([self._records[cut:], self._records[:cut]])

    def to_payload(self, pid: int = 0, label: str = "") -> TracePayload:
        """Picklable snapshot for cross-process merging (mp_solver ranks)."""
        return TracePayload(names=self.names(), records=self.records(),
                            counters=self.counters(), gauges=self.gauges(),
                            pid=pid, label=label, t_origin=self.t_origin,
                            n_dropped=self.n_dropped)

    def wall_time(self) -> float:
        """Span of the recorded timeline: ``max(t1) - min(t0)`` (seconds)."""
        recs = self.records()
        if recs.size == 0:
            return 0.0
        return float(recs["t1"].max() - recs["t0"].min())

    def reset(self) -> None:
        """Drop all spans and metrics (buffer stays allocated)."""
        with self._lock:
            self._n = 0
        self._counters.clear()
        self._gauges.clear()
        self.remote_payloads.clear()
        self.t_origin = _perf_counter()


def _as_payload(obj: Any) -> TracePayload:
    if isinstance(obj, TracePayload):
        return obj
    if isinstance(obj, Tracer):
        return obj.to_payload()
    raise TypeError(f"expected Tracer or TracePayload, got {type(obj)}")


def traced(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Method decorator: run the body inside ``self.tracer.span(name)``.

    For instance methods on objects holding a ``tracer`` attribute; with
    the :class:`NullTracer` the added cost is one wrapper call plus the
    null span — well inside the ≤2% overhead budget the benchmark gate
    enforces.
    """
    import functools

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            with self.tracer.span(name):
                return fn(self, *args, **kwargs)
        return wrapper

    return decorate
