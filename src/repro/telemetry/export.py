"""Exporters: JSON-lines dump, Chrome-trace converter, summary tables.

Three consumers of one :class:`~repro.telemetry.tracer.TracePayload`
stream (a tracer plus any per-rank payloads merged at the driver):

* :func:`write_jsonl` — one self-describing JSON object per line
  (spans, counters, gauges); the archival format CI uploads.
* :func:`write_chrome_trace` — the Trace Event Format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev: complete ("X")
  events with microsecond timestamps, one ``pid`` row per process
  timeline (driver = 0, mp ranks = 1..N), one ``tid`` row per thread.
* :func:`format_summary` — the per-phase accounting table the harness
  prints: per span name, call count, inclusive (total) and exclusive
  (self) time, and share of wall-clock — the shape of the paper's
  Tables 1-2 compute/communication breakdowns.

Self time is recovered from interval containment per (pid, tid): spans
are strictly nested within a thread, so sorting by start time and
keeping a stack of open intervals attributes each child's inclusive
time to its parent's children-total.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .tracer import TracePayload, Tracer, _as_payload

__all__ = ["all_payloads", "write_jsonl", "chrome_trace_events",
           "write_chrome_trace", "aggregate", "format_summary",
           "format_counters"]


def all_payloads(source: Any) -> list[TracePayload]:
    """Normalise a Tracer / payload / list thereof into payload list.

    A :class:`Tracer` contributes its own timeline plus any
    ``remote_payloads`` attached by a distributed driver.
    """
    if isinstance(source, Tracer):
        own = source.to_payload()
        used = {p.pid for p in source.remote_payloads}
        if own.pid in used:  # keep pids unique in merged exports
            own.pid = max(used) + 1
        return [own] + list(source.remote_payloads)
    if isinstance(source, TracePayload):
        return [source]
    return [_as_payload(p) for p in source]


# ---------------------------------------------------------------------------
# JSON-lines
# ---------------------------------------------------------------------------

def write_jsonl(source: Any, path: str | Path) -> int:
    """Write spans + metrics as JSON-lines; returns the line count.

    Line types: ``meta`` (one per payload), ``span`` (t0/t1 seconds
    relative to the payload's clock origin), ``counter``, ``gauge``.
    """
    payloads = all_payloads(source)
    n_lines = 0
    with open(path, "w") as fh:
        for p in payloads:
            rows = [{"type": "meta", "pid": p.pid, "label": p.label,
                     "n_spans": int(p.records.size),
                     "n_dropped": int(p.n_dropped)}]
            names = p.names
            for rec in p.records:
                rows.append({"type": "span", "pid": p.pid,
                             "tid": int(rec["tid"]),
                             "name": names[int(rec["name"])],
                             "depth": int(rec["depth"]),
                             "t0": float(rec["t0"]), "t1": float(rec["t1"])})
            for name, value in sorted(p.counters.items()):
                rows.append({"type": "counter", "pid": p.pid, "name": name,
                             "value": value})
            for name, stats in sorted(p.gauges.items()):
                rows.append({"type": "gauge", "pid": p.pid, "name": name,
                             **stats})
            for row in rows:
                fh.write(json.dumps(row) + "\n")
            n_lines += len(rows)
    return n_lines


# ---------------------------------------------------------------------------
# Chrome trace (about://tracing, Perfetto)
# ---------------------------------------------------------------------------

def chrome_trace_events(source: Any) -> list[dict]:
    """Trace Event Format events (complete "X" events, ts/dur in µs)."""
    events: list[dict] = []
    for p in all_payloads(source):
        if p.label:
            events.append({"name": "process_name", "ph": "M", "pid": p.pid,
                           "tid": 0, "args": {"name": p.label}})
        names = p.names
        # One labeled row per thread: spans from the colored-threaded
        # executor's workers land on distinct tids, and the metadata
        # keeps the rows identifiable after Chrome re-sorts them.
        for tid in np.unique(p.records["tid"]) if p.records.size else ():
            events.append({"name": "thread_name", "ph": "M", "pid": p.pid,
                           "tid": int(tid),
                           "args": {"name": f"thread {int(tid)}"}})
        for rec in p.records:
            events.append({
                "name": names[int(rec["name"])],
                "ph": "X",
                "pid": p.pid,
                "tid": int(rec["tid"]),
                "ts": float(rec["t0"]) * 1e6,
                "dur": float(rec["t1"] - rec["t0"]) * 1e6,
            })
        counters = p.counters
        if counters:
            # One metadata-style counter dump at the end of the timeline.
            t_end = float(p.records["t1"].max()) * 1e6 if p.records.size else 0.0
            events.append({"name": "counters", "ph": "C", "pid": p.pid,
                           "ts": t_end, "args": {k: float(v) for k, v
                                                 in sorted(counters.items())}})
    # Chrome sorts by ts; emitting sorted keeps diffs stable for tests.
    # Keys: per process, per thread row, by start time — and on exact
    # start-time ties the longer (enclosing) span must precede its
    # children, or nested same-start spans render mis-parented.
    events.sort(key=lambda e: (e.get("pid", 0), e.get("tid", 0),
                               e.get("ts", 0.0), -e.get("dur", 0.0)))
    return events


def write_chrome_trace(source: Any, path: str | Path) -> int:
    """Write a ``chrome://tracing``-loadable JSON file; returns #events."""
    events = chrome_trace_events(source)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)


# ---------------------------------------------------------------------------
# Per-phase summary
# ---------------------------------------------------------------------------

def _self_times(payload: TracePayload) -> dict[str, list[float]]:
    """Per span name: [count, inclusive seconds, exclusive seconds]."""
    out: dict[str, list[float]] = {}
    recs = payload.records
    names = payload.names
    if recs.size == 0:
        return out
    for tid in np.unique(recs["tid"]):
        spans = recs[recs["tid"] == tid]
        # Records arrive in *completion* order (children before their
        # parents), so a stable sort on t0 alone would put a child ahead
        # of a parent that started the same instant and invert the
        # containment attribution.  Longest-first on t0 ties restores
        # parent-before-child.  (lexsort: last key is primary.)
        order = np.lexsort((spans["t0"] - spans["t1"], spans["t0"]))
        spans = spans[order]
        # Stack of open intervals: (t1, children_seconds_accumulator idx)
        child_time = np.zeros(spans.size)
        stack: list[int] = []
        for i in range(spans.size):
            t0 = spans["t0"][i]
            while stack and t0 >= spans["t1"][stack[-1]]:
                stack.pop()
            dur = float(spans["t1"][i] - spans["t0"][i])
            if stack:
                child_time[stack[-1]] += dur
            stack.append(i)
            name = names[int(spans["name"][i])]
            row = out.setdefault(name, [0, 0.0, 0.0])
            row[0] += 1
            row[1] += dur
        for i in range(spans.size):
            name = names[int(spans["name"][i])]
            out[name][2] += float(spans["t1"][i] - spans["t0"][i]) - child_time[i]
    return out


def aggregate(source: Any) -> dict[str, dict[str, float]]:
    """Merge per-phase stats across payloads.

    Returns ``{name: {count, total_s, self_s}}``; ``total_s`` is
    inclusive time (contains children), ``self_s`` exclusive.
    """
    merged: dict[str, list[float]] = {}
    for p in all_payloads(source):
        for name, (count, total, self_s) in _self_times(p).items():
            row = merged.setdefault(name, [0, 0.0, 0.0])
            row[0] += count
            row[1] += total
            row[2] += self_s
    return {name: {"count": int(c), "total_s": t, "self_s": s}
            for name, (c, t, s) in merged.items()}


def format_summary(source: Any, wall_s: float | None = None,
                   title: str = "telemetry phase summary") -> str:
    """The per-phase accounting table (sorted by exclusive time).

    ``wall_s`` defaults to the merged timeline extent; the ``self``
    column sums to the traced wall-clock on a single-threaded timeline
    (the acceptance criterion checks the total lands within 5%).
    """
    payloads = all_payloads(source)
    stats = aggregate(payloads)
    if wall_s is None:
        lo, hi = float("inf"), float("-inf")
        for p in payloads:
            if p.records.size:
                lo = min(lo, float(p.records["t0"].min()))
                hi = max(hi, float(p.records["t1"].max()))
        wall_s = max(0.0, hi - lo) if hi > lo else 0.0
    lines = [title + ":",
             f"{'phase':>32s} {'calls':>8s} {'total ms':>10s} "
             f"{'self ms':>10s} {'self %':>7s}"]
    total_self = 0.0
    for name, row in sorted(stats.items(), key=lambda kv: -kv[1]["self_s"]):
        share = 100.0 * row["self_s"] / wall_s if wall_s > 0 else 0.0
        lines.append(f"{name:>32s} {row['count']:8d} "
                     f"{row['total_s'] * 1e3:10.2f} "
                     f"{row['self_s'] * 1e3:10.2f} {share:6.1f}%")
        total_self += row["self_s"]
    lines.append(f"{'total (self)':>32s} {'':8s} {'':10s} "
                 f"{total_self * 1e3:10.2f} "
                 f"{100.0 * total_self / wall_s if wall_s > 0 else 0.0:6.1f}%")
    lines.append(f"{'wall-clock':>32s} {'':8s} {'':10s} {wall_s * 1e3:10.2f}")
    return "\n".join(lines)


def format_counters(source: Any, title: str = "telemetry counters") -> str:
    """Counters and gauges, merged across payloads, as a table."""
    totals: dict[str, float] = {}
    gauge_rows: dict[str, dict[str, float]] = {}
    for p in all_payloads(source):
        for name, value in p.counters.items():
            totals[name] = totals.get(name, 0.0) + value
        for name, stats in p.gauges.items():
            gauge_rows.setdefault(name, stats)
    lines = [title + ":"]
    for name, value in sorted(totals.items()):
        lines.append(f"{name:>40s} {value:16,.0f}")
    for name, stats in sorted(gauge_rows.items()):
        lines.append(f"{name:>40s} last={stats['last']:.3f} "
                     f"mean={stats['mean']:.3f} max={stats['max']:.3f}")
    return "\n".join(lines)
