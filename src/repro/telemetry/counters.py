"""Typed telemetry counters and gauges.

Two metric kinds, mirroring what the paper's tables actually report:

* **Counters** are monotonically accumulating totals — edges processed,
  bytes gathered/scattered per PARTI phase, messages sent, incremental-
  schedule dedup hits.  They answer "how much work/traffic happened".
* **Gauges** are sampled values with distribution summaries (last, min,
  max, mean over observations) — colour-group imbalance, thread-pool
  occupancy, ghost fractions.  They answer "how balanced was it".

Both stores are thread-safe (worker threads of the colored-threaded
executor observe gauges concurrently) and allocation-light: one dict
entry per metric name, floats thereafter.
"""

from __future__ import annotations

import threading

__all__ = ["CounterStore", "GaugeStats", "GaugeStore"]


class CounterStore:
    """Thread-safe map of monotonically accumulating named totals."""

    __slots__ = ("_values", "_lock")

    def __init__(self):
        self._values: dict[str, float] = {}
        self._lock = threading.Lock()

    def add(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0.0) + value

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return dict(self._values)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values


class GaugeStats:
    """Running summary of one sampled quantity (no sample storage)."""

    __slots__ = ("last", "min", "max", "total", "count")

    def __init__(self):
        self.last = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"last": self.last, "min": self.min, "max": self.max,
                "mean": self.mean, "count": self.count}


class GaugeStore:
    """Thread-safe map of named :class:`GaugeStats`."""

    __slots__ = ("_gauges", "_lock")

    def __init__(self):
        self._gauges: dict[str, GaugeStats] = {}
        self._lock = threading.Lock()

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = GaugeStats()
                self._gauges[name] = g
            g.observe(value)

    def get(self, name: str) -> GaugeStats | None:
        return self._gauges.get(name)

    def as_dict(self) -> dict[str, dict[str, float]]:
        with self._lock:
            return {name: g.as_dict() for name, g in self._gauges.items()}

    def clear(self) -> None:
        with self._lock:
            self._gauges.clear()

    def __len__(self) -> int:
        return len(self._gauges)

    def __contains__(self, name: str) -> bool:
        return name in self._gauges
