"""Zero-overhead telemetry: span tracing, phase timers, comm counters.

The measurement layer behind the reproduction's performance accounting
(the paper's Tables 1-2 break every run into per-phase compute and
communication time; this subsystem produces the same breakdown for the
live code).  Three pieces:

* :class:`Tracer` — nested spans (cycle → RK stage → kernel) recorded
  into a preallocated ring buffer, plus typed counters and gauges.
* :class:`NullTracer` / :data:`NULL_TRACER` — the default; instrumented
  code costs one attribute lookup when tracing is off.
* exporters — JSON-lines, ``chrome://tracing``, and the per-phase
  summary table (:mod:`repro.telemetry.export`).

Plumbing: components capture a tracer at construction, defaulting to
the process-global one::

    from repro.telemetry import Tracer, use_tracer
    from repro.telemetry.export import write_chrome_trace, format_summary

    tracer = Tracer()
    with use_tracer(tracer):
        solver = EulerSolver(mesh, w_inf)     # captures the tracer
        solver.run(n_cycles=50)
    write_chrome_trace(tracer, "trace.json")
    print(format_summary(tracer))

See ``docs/observability.md`` for the full tour.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .counters import CounterStore, GaugeStats, GaugeStore
from .tracer import NULL_TRACER, NullTracer, TracePayload, Tracer, traced
from . import export

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "TracePayload",
           "CounterStore", "GaugeStats", "GaugeStore", "export", "traced",
           "get_tracer", "set_tracer", "use_tracer",
           "count_event", "global_counters", "merge_global_counters",
           "reset_global_counters"]

_GLOBAL_TRACER: Tracer | NullTracer = NULL_TRACER

#: Always-on process-global event counters.  Unlike tracer counters —
#: which exist only while a :class:`Tracer` is installed — these record
#: *operational* events (fault injections, rank failures, guard
#: detections, recovery actions) whether or not tracing is enabled, so a
#: supervisor can inspect them after the fact.  One dict add per event;
#: nothing on the per-edge hot path uses them.
_EVENT_COUNTERS = CounterStore()


def count_event(name: str, value: float = 1.0) -> None:
    """Record an operational event: always into the process-global
    counter store, and additionally into the ambient tracer when one is
    enabled (so events land next to spans in exports)."""
    _EVENT_COUNTERS.add(name, value)
    tracer = _GLOBAL_TRACER
    if tracer.enabled:
        tracer.count(name, value)


def global_counters() -> dict[str, float]:
    """Snapshot of the always-on event counters (``{name: total}``)."""
    return _EVENT_COUNTERS.as_dict()


def merge_global_counters(delta: dict[str, float]) -> None:
    """Fold another process's event-counter *delta* into this process.

    Used by the mp distributed driver: each rank worker snapshots the
    (fork-inherited) counters at entry and reports only what it added,
    so the parent's merged totals reflect every rank exactly once.
    Deltas go into the global store only — not the ambient tracer —
    because a traced rank already carries its counters in its
    :class:`TracePayload` and would otherwise be double-counted in
    merged exports.
    """
    for name, value in delta.items():
        _EVENT_COUNTERS.add(name, value)


def reset_global_counters() -> None:
    """Clear the always-on event counters (tests and long-lived services)."""
    _EVENT_COUNTERS.clear()


def get_tracer() -> Tracer | NullTracer:
    """The process-global tracer (the :data:`NULL_TRACER` by default).

    Instrumented components look this up **at construction** and keep
    the reference — swapping the global tracer affects objects built
    afterwards, not existing ones (which may hold one explicitly).
    """
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (or the null tracer for ``None``) globally."""
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer if tracer is not None else NULL_TRACER
    return _GLOBAL_TRACER


@contextmanager
def use_tracer(tracer: Tracer | NullTracer | None,
               ) -> Iterator[Tracer | NullTracer]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = _GLOBAL_TRACER
    set_tracer(tracer)
    try:
        yield _GLOBAL_TRACER
    finally:
        set_tracer(previous)
