"""Zero-overhead telemetry: span tracing, phase timers, comm counters.

The measurement layer behind the reproduction's performance accounting
(the paper's Tables 1-2 break every run into per-phase compute and
communication time; this subsystem produces the same breakdown for the
live code).  Three pieces:

* :class:`Tracer` — nested spans (cycle → RK stage → kernel) recorded
  into a preallocated ring buffer, plus typed counters and gauges.
* :class:`NullTracer` / :data:`NULL_TRACER` — the default; instrumented
  code costs one attribute lookup when tracing is off.
* exporters — JSON-lines, ``chrome://tracing``, and the per-phase
  summary table (:mod:`repro.telemetry.export`).

Plumbing: components capture a tracer at construction, defaulting to
the process-global one::

    from repro.telemetry import Tracer, use_tracer
    from repro.telemetry.export import write_chrome_trace, format_summary

    tracer = Tracer()
    with use_tracer(tracer):
        solver = EulerSolver(mesh, w_inf)     # captures the tracer
        solver.run(n_cycles=50)
    write_chrome_trace(tracer, "trace.json")
    print(format_summary(tracer))

See ``docs/observability.md`` for the full tour.
"""

from __future__ import annotations

from contextlib import contextmanager

from .counters import CounterStore, GaugeStats, GaugeStore
from .tracer import NULL_TRACER, NullTracer, TracePayload, Tracer, traced
from . import export

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "TracePayload",
           "CounterStore", "GaugeStats", "GaugeStore", "export", "traced",
           "get_tracer", "set_tracer", "use_tracer"]

_GLOBAL_TRACER = NULL_TRACER


def get_tracer():
    """The process-global tracer (the :data:`NULL_TRACER` by default).

    Instrumented components look this up **at construction** and keep
    the reference — swapping the global tracer affects objects built
    afterwards, not existing ones (which may hold one explicitly).
    """
    return _GLOBAL_TRACER


def set_tracer(tracer):
    """Install ``tracer`` (or the null tracer for ``None``) globally."""
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer if tracer is not None else NULL_TRACER
    return _GLOBAL_TRACER


@contextmanager
def use_tracer(tracer):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = _GLOBAL_TRACER
    set_tracer(tracer)
    try:
        yield _GLOBAL_TRACER
    finally:
        set_tracer(previous)
