"""Full multigrid (FMG) startup: nested iteration over the grid sequence.

A standard EUL3D-family improvement over the impulsive freestream start
used in the paper's timings: converge the flow partially on the coarsest
grid first (cheap), interpolate it up one level, run a few cycles there,
and repeat until the finest grid starts from an already-good approximation
rather than from uniform freestream.  The fine-grid transient — which is
what limits the single-grid runs and produces the residual hump in our
Figure 2 curves — largely disappears.

Because the hierarchy's grids are unrelated, the upward interpolation is
the same 4-address/4-weight prolongation operator the FAS cycle uses.
"""

from __future__ import annotations

import numpy as np

from .cycle import mg_cycle
from .sequence import MultigridHierarchy

__all__ = ["fmg_start", "run_fmg"]


def fmg_start(hierarchy: MultigridHierarchy, cycles_per_level: int = 10,
              gamma: int = 2) -> np.ndarray:
    """Nested-iteration initial solution for the finest grid.

    Starting from freestream on the *coarsest* grid, runs
    ``cycles_per_level`` multigrid cycles of the sub-hierarchy at each
    level and prolongs the result upward.  Returns a fine-grid state ready
    for the main cycling.
    """
    levels = hierarchy.levels
    n = len(levels)
    # Solve coarsest -> finest.
    w = levels[-1].solver.freestream_solution()
    for li in range(n - 1, -1, -1):
        if li < n - 1:
            # Prolong the next-coarser solution onto this level.
            w = levels[li].from_coarse.apply(w)
        for _ in range(cycles_per_level if li > 0 else 0):
            # Cycle the sub-hierarchy rooted at this level.
            w = _sub_cycle(hierarchy, li, w, gamma)
    return w


def _sub_cycle(hierarchy: MultigridHierarchy, level: int, w: np.ndarray,
               gamma: int) -> np.ndarray:
    """One FAS cycle treating ``level`` as the finest grid."""
    return mg_cycle(hierarchy, w, gamma=gamma, level=level)


def run_fmg(hierarchy: MultigridHierarchy, n_cycles: int = 100,
            gamma: int = 2, cycles_per_level: int = 10,
            callback=None) -> tuple[np.ndarray, list]:
    """FMG start followed by ``n_cycles`` fine-grid multigrid cycles.

    Returns the final state and the fine-grid residual history (measured
    from the first fine-grid cycle, i.e. after the nested start).
    """
    solver = hierarchy.fine.solver
    w = fmg_start(hierarchy, cycles_per_level=cycles_per_level, gamma=gamma)
    history = []
    for cycle in range(n_cycles):
        history.append(solver.density_residual_norm(w))
        w = mg_cycle(hierarchy, w, gamma=gamma)
        if callback is not None:
            callback(cycle, w, history[-1])
    history.append(solver.density_residual_norm(w))
    return w, history
