"""Multigrid hierarchy: solvers on each mesh plus inter-grid operators.

Levels are ordered **fine to coarse** (level 0 is the finest), matching the
paper's description of the V-cycle: "a time-step is first performed on the
finest grid of the sequence.  The flow variables and residuals are then
transferred to the next coarser grid ...".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.adjacency import tet_face_adjacency
from ..mesh.tetra import TetMesh
from ..solver.config import SolverConfig
from ..solver.euler import EulerSolver
from .transfer import TransferOperator, build_transfer

__all__ = ["GridLevel", "MultigridHierarchy"]


@dataclass
class GridLevel:
    """One mesh of the multigrid sequence with its solver and transfers.

    ``to_coarse_vars`` interpolates flow variables to the next coarser
    level; ``from_coarse`` prolongs coarse corrections to this level;
    the conservative residual restriction is ``from_coarse.transpose_apply``
    (the transpose of prolongation).  The coarsest level has neither.
    """

    mesh: TetMesh
    solver: EulerSolver
    to_coarse_vars: TransferOperator | None = None
    from_coarse: TransferOperator | None = None


class MultigridHierarchy:
    """Builds and owns the grid sequence of the FAS multigrid scheme.

    Parameters
    ----------
    meshes : list of :class:`TetMesh`, ordered fine to coarse.  The grids
        may be completely unrelated (different generators/resolutions);
        only approximate geometric overlap is assumed.
    w_inf : freestream conserved state shared by all levels.
    config : solver configuration; coarse levels reuse it unchanged.
    flops : optional FlopCounter shared by all level solvers.
    """

    def __init__(self, meshes: list[TetMesh], w_inf: np.ndarray,
                 config: SolverConfig | None = None, flops=None):
        if len(meshes) < 1:
            raise ValueError("need at least one mesh")
        for a, b in zip(meshes, meshes[1:]):
            if b.n_vertices >= a.n_vertices:
                raise ValueError(
                    "meshes must be ordered fine to coarse "
                    f"({a.n_vertices} then {b.n_vertices} vertices)")
        config = config or SolverConfig()
        self.levels: list[GridLevel] = [
            GridLevel(mesh=m, solver=EulerSolver(m, w_inf, config, flops=flops))
            for m in meshes
        ]
        # Transfer operators between consecutive levels.  The paper
        # precomputes these in a graph-traversal preprocessing pass whose
        # cost is "roughly equivalent to one or two flow solution cycles".
        for fine, coarse in zip(self.levels, self.levels[1:]):
            adj_fine = tet_face_adjacency(fine.mesh.tets)
            adj_coarse = tet_face_adjacency(coarse.mesh.tets)
            fine.to_coarse_vars = build_transfer(coarse.mesh.vertices,
                                                 fine.mesh, adj_fine)
            fine.from_coarse = build_transfer(fine.mesh.vertices,
                                              coarse.mesh, adj_coarse)

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def fine(self) -> GridLevel:
        return self.levels[0]

    def freestream_solution(self) -> np.ndarray:
        return self.fine.solver.freestream_solution()

    def level_sizes(self) -> list[tuple[int, int]]:
        """(vertices, edges) per level, fine to coarse."""
        return [(lv.solver.n_vertices, lv.solver.n_edges) for lv in self.levels]
