"""Inter-grid transfer operators for unrelated tetrahedral meshes.

EUL3D's multigrid uses "a sequence of completely unrelated coarse and fine
grids" (Section 2.3).  Data moves between them through, for each vertex of
the receiving mesh, **four interpolation addresses and four weights**: the
vertices of the containing tetrahedron in the donor mesh and the
barycentric coordinates inside it.  These are static and computed once in
a preprocessing phase "using an efficient graph traversal search
algorithm" — the classic *walking* search implemented here:

1. seed every query point at a nearby donor tet (k-d tree on centroids);
2. repeatedly evaluate barycentric coordinates and step across the face
   with the most negative coordinate (the face "facing" the point);
3. points that walk out of the donor mesh (possible near curved
   boundaries of non-nested grids) fall back to a k-nearest-centroid
   scan and finally to clipped barycentric weights on the best tet found,
   so the operator is total.

The whole search is vectorised over the active query set; the walk is the
only iterative part and converges in a handful of steps on coherent
meshes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.spatial import cKDTree

from ..mesh.adjacency import tet_face_adjacency
from ..mesh.tetra import TetMesh

__all__ = ["TransferOperator", "build_transfer", "locate_in_mesh"]


@dataclass
class TransferOperator:
    """Sparse interpolation from a donor mesh onto ``n_target`` points.

    ``addresses[(k, 0..3)]`` are donor vertex ids, ``weights`` the matching
    barycentric weights (rows sum to 1).  ``apply`` interpolates donor
    vertex fields to the targets; ``transpose_apply`` scatters target
    fields back to donor vertices (the conservative residual restriction).
    """

    addresses: np.ndarray       # (n_target, 4) int
    weights: np.ndarray         # (n_target, 4) float
    n_donor: int
    #: number of points that needed the clipped-weight fallback (diagnostic)
    n_fallback: int = 0
    #: lazily built CSR ``P^T`` for :meth:`transpose_apply` (cache only,
    #: excluded from equality/repr)
    _pt: object = field(default=None, repr=False, compare=False)

    @property
    def n_target(self) -> int:
        return self.addresses.shape[0]

    def apply(self, donor_values: np.ndarray) -> np.ndarray:
        """Interpolate ``(n_donor, ...)`` donor values to the targets."""
        vals = donor_values[self.addresses]            # (n_target, 4, ...)
        if vals.ndim == 2:
            return np.einsum("tk,tk->t", self.weights, vals)
        return np.einsum("tk,tk...->t...", self.weights, vals)

    def _transpose_matrix(self) -> sp.csr_matrix:
        """``P^T`` as a CSR matrix ``(n_donor, n_target)``, built once.

        CSR construction sums duplicate (donor, target) entries, so the
        product equals the historical per-address ``np.add.at`` scatter
        up to summation order.
        """
        if self._pt is None:
            cols = np.repeat(np.arange(self.n_target), 4)
            self._pt = sp.csr_matrix(
                (self.weights.ravel(), (self.addresses.ravel(), cols)),
                shape=(self.n_donor, self.n_target))
        return self._pt

    def transpose_apply(self, target_values: np.ndarray) -> np.ndarray:
        """Scatter ``(n_target, ...)`` values to donor vertices (P^T v)."""
        pt = self._transpose_matrix()
        if target_values.ndim == 1:
            res = pt @ target_values
        else:
            n_vecs = int(np.prod(target_values.shape[1:], dtype=np.int64))
            flat = target_values.reshape(target_values.shape[0], n_vecs)
            res = (pt @ flat).reshape((self.n_donor,)
                                      + target_values.shape[1:])
        return res.astype(target_values.dtype, copy=False)


def _barycentric(points: np.ndarray, tet_vertices: np.ndarray) -> np.ndarray:
    """Barycentric coordinates of ``points[i]`` in ``tet_vertices[i]``.

    ``tet_vertices`` has shape ``(n, 4, 3)``; returns ``(n, 4)``.
    """
    a = tet_vertices[:, 0]
    mats = np.stack([tet_vertices[:, 1] - a,
                     tet_vertices[:, 2] - a,
                     tet_vertices[:, 3] - a], axis=2)      # columns
    rhs = points - a
    lam_bcd = np.linalg.solve(mats, rhs[..., None])[..., 0]
    lam_a = 1.0 - lam_bcd.sum(axis=1)
    return np.concatenate([lam_a[:, None], lam_bcd], axis=1)


def locate_in_mesh(points: np.ndarray, donor: TetMesh,
                   adjacency: np.ndarray | None = None,
                   tol: float = 1e-9, max_steps: int = 200,
                   knn_fallback: int = 32) -> tuple[np.ndarray, np.ndarray, int]:
    """Containing tet and barycentric weights for each query point.

    Returns ``(tet_ids, bary_weights, n_fallback)``.  Points outside the
    donor mesh receive the best (max-min-barycentric) tet with weights
    clipped to [0, 1] and renormalised — constant fields are still
    reproduced exactly, which is the property the FAS scheme needs.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if adjacency is None:
        adjacency = tet_face_adjacency(donor.tets)
    centroids = donor.tet_centroids()
    tree = cKDTree(centroids)
    current = tree.query(points)[1].astype(np.int64)

    tet_ids = np.full(n, -1, dtype=np.int64)
    bary = np.zeros((n, 4))
    active = np.arange(n)
    pts_active = points
    # Best-so-far for the fallback path.
    best_tet = current.copy()
    best_score = np.full(n, -np.inf)

    for _ in range(max_steps):
        lam = _barycentric(pts_active, donor.vertices[donor.tets[current]])
        lmin = lam.min(axis=1)
        improved = lmin > best_score[active]
        best_score[active[improved]] = lmin[improved]
        best_tet[active[improved]] = current[improved]

        inside = lmin >= -tol
        done_idx = active[inside]
        tet_ids[done_idx] = current[inside]
        bary[done_idx] = lam[inside]

        keep = ~inside
        if not np.any(keep):
            break
        active = active[keep]
        pts_active = pts_active[keep]
        lam = lam[keep]
        current = current[keep]
        exit_face = lam.argmin(axis=1)
        nxt = adjacency[current, exit_face]
        walked_out = nxt < 0
        if np.any(walked_out):
            # Restart walked-out points from their next-nearest centroid;
            # if they keep exiting they will land in the knn fallback below.
            nxt[walked_out] = tree.query(pts_active[walked_out], k=2)[1][:, 1]
        current = nxt

    # --- fallback: brute scan of k nearest centroids, then clipping -------
    missing = np.flatnonzero(tet_ids < 0)
    n_fallback = 0
    if missing.size:
        k = min(knn_fallback, donor.n_tets)
        cand = tree.query(points[missing], k=k)[1].reshape(len(missing), -1)
        for row, pid in enumerate(missing):
            tets_try = cand[row]
            lam = _barycentric(np.repeat(points[pid][None], len(tets_try), axis=0),
                               donor.vertices[donor.tets[tets_try]])
            lmin = lam.min(axis=1)
            best = lmin.argmax()
            if lmin[best] >= -tol:
                tet_ids[pid] = tets_try[best]
                bary[pid] = lam[best]
            else:
                # Point is outside the donor mesh: clip and renormalise on
                # the best candidate (or the best tet seen during the walk).
                if best_score[pid] > lmin[best]:
                    tet_choice = best_tet[pid]
                    lam_choice = _barycentric(
                        points[pid][None],
                        donor.vertices[donor.tets[[tet_choice]]])[0]
                else:
                    tet_choice = tets_try[best]
                    lam_choice = lam[best]
                clipped = np.clip(lam_choice, 0.0, None)
                tet_ids[pid] = tet_choice
                bary[pid] = clipped / clipped.sum()
                n_fallback += 1
    return tet_ids, bary, n_fallback


def build_transfer(target_points: np.ndarray, donor: TetMesh,
                   adjacency: np.ndarray | None = None) -> TransferOperator:
    """Four addresses + four weights per target point (paper Section 2.3)."""
    tet_ids, bary, n_fallback = locate_in_mesh(target_points, donor, adjacency)
    return TransferOperator(addresses=donor.tets[tet_ids],
                            weights=bary,
                            n_donor=donor.n_vertices,
                            n_fallback=n_fallback)
