"""Unstructured multigrid (FAS) over completely unrelated grids."""

from .cycle import cycle_structure, cycle_work_units, mg_cycle, run_multigrid
from .sequence import GridLevel, MultigridHierarchy
from .transfer import TransferOperator, build_transfer, locate_in_mesh

__all__ = [
    "cycle_structure", "cycle_work_units", "mg_cycle", "run_multigrid",
    "GridLevel", "MultigridHierarchy", "TransferOperator", "build_transfer",
    "locate_in_mesh",
]

from .fmg import fmg_start, run_fmg

__all__ += ["fmg_start", "run_fmg"]
