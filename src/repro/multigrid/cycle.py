"""FAS multigrid cycles: the V and W strategies of Figure 1.

One cycle on level ``l`` (equations (2)-(3) of the paper):

1. take a five-stage time step on level ``l`` (with its forcing function);
2. transfer the updated flow variables (interpolation) and the full
   residuals (transpose-of-prolongation, conservative) to level ``l+1``;
3. form the coarse forcing function ``P = R' - R(w')`` so the coarse grid
   is driven purely by the restricted fine-grid residual;
4. recurse: once for a V-cycle, twice for a W-cycle (``gamma = 2``), which
   "weights the coarse grids more heavily";
5. prolong the coarse-grid correction ``w_c - w'`` back and add it.

``cycle_structure`` replays the same recursion symbolically to emit the
E/I event sequence drawn in Figure 1.
"""

from __future__ import annotations

import numpy as np

from .sequence import MultigridHierarchy

__all__ = ["mg_cycle", "run_multigrid", "cycle_structure", "cycle_work_units"]

#: Pre-interned span names for the usual hierarchy depths, so the hot
#: recursion does not build an f-string per visit.
_LEVEL_SPAN_NAMES = tuple(f"mg.level{i}" for i in range(8))


def _level_span_name(level: int) -> str:
    if level < len(_LEVEL_SPAN_NAMES):
        return _LEVEL_SPAN_NAMES[level]
    return f"mg.level{level}"


def mg_cycle(hierarchy: MultigridHierarchy, w: np.ndarray, gamma: int = 1,
             level: int = 0, forcing: np.ndarray | None = None) -> np.ndarray:
    """One multigrid cycle starting at ``level``; returns the updated state.

    ``gamma`` is the number of coarse-grid visits per level: 1 = V-cycle,
    2 = W-cycle.
    """
    levels = hierarchy.levels
    lv = levels[level]
    tracer = lv.solver.tracer
    with tracer.span(_level_span_name(level)):
        w_new = lv.solver.step(w, forcing=forcing)

        if level + 1 < len(levels):
            # Full residual on this level, including this level's forcing:
            # this is the quantity whose annihilation the coarse grid must
            # drive.
            with tracer.span("mg.restrict"):
                resid = lv.solver.residual(w_new)
                if forcing is not None:
                    resid = resid + forcing
                w_coarse0 = lv.to_coarse_vars.apply(w_new)
                r_coarse = lv.from_coarse.transpose_apply(resid)
                forcing_coarse = (r_coarse
                                  - levels[level + 1].solver.residual(w_coarse0))

            w_coarse = w_coarse0
            visits = gamma if level + 2 < len(levels) else 1
            for _ in range(max(1, visits)):
                w_coarse = mg_cycle(hierarchy, w_coarse, gamma=gamma,
                                    level=level + 1, forcing=forcing_coarse)

            with tracer.span("mg.prolong"):
                correction = lv.from_coarse.apply(w_coarse - w_coarse0)
                w_new = w_new + correction
    return w_new


def run_multigrid(hierarchy: MultigridHierarchy, w: np.ndarray | None = None,
                  n_cycles: int = 100, gamma: int = 1, callback=None,
                  checkpoint_store=None,
                  resume_from=None) -> tuple[np.ndarray, list[float]]:
    """Run ``n_cycles`` V- (gamma=1) or W- (gamma=2) cycles.

    Returns the final fine-grid state and the fine-grid density residual
    history (the curves of Figure 2).

    The monitored norm is taken from the fine-grid solver's stage-0
    residual captured inside :meth:`EulerSolver.step
    <repro.solver.EulerSolver.step>` (the first thing ``mg_cycle`` runs,
    with no forcing on the fine grid), which equals the pre-cycle
    ``density_residual_norm(w)`` in the same operator order — so
    monitoring adds no extra residual evaluations per cycle.

    Resilience mirrors :meth:`EulerSolver.run`: the fine-grid norm is
    health-checked each cycle, recovery backs off **every** level's
    solver (the coarse-grid smoothers must respect the reduced CFL too)
    and rewinds to the last fine-grid checkpoint; ``resume_from``
    restarts a run bit-identically — the cycle is Markovian in the
    fine-grid ``(w, cycle, config)``, coarse states being derived afresh
    every visit.
    """
    solver = hierarchy.fine.solver
    cfg = solver.config
    start_cycle = 0
    if resume_from is not None:
        from ..resilience import verify_checkpoint
        verify_checkpoint(resume_from, cfg)
        w = resume_from.w.copy()
        start_cycle = resume_from.cycle
    elif w is None:
        w = hierarchy.freestream_solution()

    guard = None
    if cfg.divergence_guard:
        from ..resilience import StepGuard
        guard = StepGuard([lv.solver for lv in hierarchy.levels], w,
                          start_cycle=start_cycle, store=checkpoint_store)

    history = []
    tracer = solver.tracer
    cycle = start_cycle
    while cycle < n_cycles:
        with tracer.span("mg.cycle"):
            w_new = mg_cycle(hierarchy, w, gamma=gamma)
        resnorm = solver.last_step_residual_norm
        if guard is not None:
            verdict = guard.check(resnorm)
            if verdict != "ok":
                w, cycle = guard.recover(cycle, verdict, resnorm)
                del history[cycle - start_cycle:]
                continue
            guard.note_cycle_start(cycle, w)
        w = w_new
        history.append(resnorm)
        if callback is not None:
            callback(cycle, w, resnorm)
        cycle += 1
    history.append(solver.density_residual_norm(w))
    return w, history


def cycle_structure(n_levels: int, gamma: int = 1) -> list[tuple[str, int]]:
    """Symbolic event sequence of one cycle: ('E', level) time steps and
    ('I', level) interpolations back to ``level`` — Figure 1's diagram."""
    events: list[tuple[str, int]] = []

    def recurse(level: int):
        events.append(("E", level))
        if level + 1 < n_levels:
            visits = gamma if level + 2 < n_levels else 1
            for _ in range(max(1, visits)):
                recurse(level + 1)
            events.append(("I", level))

    recurse(0)
    return events


def cycle_work_units(hierarchy: MultigridHierarchy, gamma: int = 1) -> float:
    """Cycle cost in units of one fine-grid time step, from edge counts.

    Edge count is the work metric because every solver kernel is an edge
    loop.  This reproduces the paper's sequential observations that a
    W-cycle costs ~1.9x and a V-cycle ~1.75x a single-grid cycle (their
    exact ratios depend on their grid coarsening ratios; ours are measured
    from the actual hierarchy).
    """
    fine_edges = hierarchy.levels[0].solver.n_edges
    visits = [0] * hierarchy.n_levels
    for kind, level in cycle_structure(hierarchy.n_levels, gamma):
        if kind == "E":
            visits[level] += 1
    work = sum(v * hierarchy.levels[i].solver.n_edges
               for i, v in enumerate(visits))
    return work / fine_edges
