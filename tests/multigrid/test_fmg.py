"""Tests for the full-multigrid (nested iteration) startup."""

import numpy as np
import pytest

from repro.mesh import bump_channel
from repro.multigrid import MultigridHierarchy, fmg_start, run_fmg, run_multigrid
from repro.state import is_physical


@pytest.fixture(scope="module")
def hierarchy(winf):
    meshes = [bump_channel(24, 2, 8), bump_channel(12, 2, 4),
              bump_channel(6, 2, 2)]
    return MultigridHierarchy(meshes, winf)


class TestFmgStart:
    def test_produces_fine_grid_state(self, hierarchy):
        w = fmg_start(hierarchy, cycles_per_level=3)
        assert w.shape == (hierarchy.fine.solver.n_vertices, 5)
        assert is_physical(w)

    def test_better_than_freestream(self, hierarchy):
        solver = hierarchy.fine.solver
        w_fmg = fmg_start(hierarchy, cycles_per_level=8)
        r_fmg = solver.density_residual_norm(w_fmg)
        r_cold = solver.density_residual_norm(solver.freestream_solution())
        assert r_fmg < r_cold

    def test_single_level_hierarchy(self, winf):
        h = MultigridHierarchy([bump_channel(8, 2, 4)], winf)
        w = fmg_start(h)
        np.testing.assert_allclose(w, h.freestream_solution())


class TestRunFmg:
    def test_history_and_state(self, hierarchy):
        w, history = run_fmg(hierarchy, n_cycles=5, gamma=1,
                             cycles_per_level=3)
        assert len(history) == 6
        assert is_physical(w)

    def test_not_worse_than_cold_start(self, hierarchy):
        n = 25
        _, fmg_hist = run_fmg(hierarchy, n_cycles=n, gamma=2,
                              cycles_per_level=8)
        _, cold_hist = run_multigrid(hierarchy, n_cycles=n, gamma=2)
        # The FMG run starts from a partially converged state; after the
        # same number of fine-grid cycles it must not lag the cold start
        # by more than noise.
        assert fmg_hist[-1] < 3.0 * cold_hist[-1]
        assert fmg_hist[0] < cold_hist[0]

    def test_callback(self, hierarchy):
        seen = []
        run_fmg(hierarchy, n_cycles=3, cycles_per_level=2,
                callback=lambda c, w, r: seen.append(c))
        assert seen == [0, 1, 2]
