"""Tests for the walking search and transfer operators."""

import numpy as np
import pytest

from repro.mesh import box_mesh, bump_channel, tet_face_adjacency
from repro.multigrid import TransferOperator, build_transfer, locate_in_mesh


class TestLocate:
    def test_vertices_locate_on_themselves(self, box):
        tet_ids, bary, n_fb = locate_in_mesh(box.vertices, box)
        assert np.all(tet_ids >= 0)
        # Each vertex is inside (on the corner of) its containing tet:
        # exactly one barycentric weight is ~1.
        assert np.allclose(bary.max(axis=1), 1.0, atol=1e-9)
        assert n_fb == 0

    def test_centroids_found(self, box):
        cents = box.tet_centroids()
        tet_ids, bary, _ = locate_in_mesh(cents, box)
        # The centroid of tet t must locate in t itself.
        np.testing.assert_array_equal(tet_ids, np.arange(box.n_tets))
        np.testing.assert_allclose(bary, 0.25, atol=1e-12)

    def test_random_interior_points(self, box, rng):
        pts = rng.uniform(0.05, 0.95, (200, 3))
        tet_ids, bary, _ = locate_in_mesh(pts, box)
        assert np.all(tet_ids >= 0)
        assert np.all(bary > -1e-9)
        np.testing.assert_allclose(bary.sum(axis=1), 1.0, atol=1e-12)

    def test_outside_points_clamped(self, box):
        pts = np.array([[2.0, 0.5, 0.5], [-1.0, 0.5, 0.5]])
        tet_ids, bary, n_fb = locate_in_mesh(pts, box)
        assert np.all(tet_ids >= 0)
        assert n_fb == 2
        np.testing.assert_allclose(bary.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(bary >= 0)

    def test_adjacency_reuse(self, box, rng):
        adj = tet_face_adjacency(box.tets)
        pts = rng.uniform(0.1, 0.9, (50, 3))
        t1, b1, _ = locate_in_mesh(pts, box, adjacency=adj)
        t2, b2, _ = locate_in_mesh(pts, box)
        np.testing.assert_array_equal(t1, t2)


class TestTransferOperator:
    @pytest.fixture(scope="class")
    def pair(self):
        fine = bump_channel(12, 2, 4)
        coarse = bump_channel(6, 2, 2)
        return fine, coarse

    def test_constant_reproduced(self, pair):
        fine, coarse = pair
        op = build_transfer(fine.vertices, coarse)
        vals = np.full(coarse.n_vertices, 3.7)
        np.testing.assert_allclose(op.apply(vals), 3.7, rtol=1e-12)

    def test_linear_reproduced_in_overlap(self, pair):
        fine, coarse = pair
        op = build_transfer(fine.vertices, coarse)
        lin = coarse.vertices @ np.array([1.0, 2.0, -3.0]) + 0.5
        target = fine.vertices @ np.array([1.0, 2.0, -3.0]) + 0.5
        interp = op.apply(lin)
        # Exact wherever the fine vertex lies inside the coarse mesh
        # (clipped fallback points excluded).
        inside = op.weights.min(axis=1) > -1e-12
        exact = np.abs(interp - target) < 1e-9
        assert np.count_nonzero(exact) > 0.9 * fine.n_vertices

    def test_multicomponent_apply(self, pair, rng):
        fine, coarse = pair
        op = build_transfer(fine.vertices, coarse)
        vals = rng.standard_normal((coarse.n_vertices, 5))
        out = op.apply(vals)
        assert out.shape == (fine.n_vertices, 5)

    def test_transpose_conserves_total(self, pair, rng):
        # P^T preserves the sum: weights per row sum to 1, so
        # sum(P^T v) = sum(v).
        fine, coarse = pair
        op = build_transfer(fine.vertices, coarse)
        v = rng.standard_normal(fine.n_vertices)
        assert op.transpose_apply(v).sum() == pytest.approx(v.sum())

    def test_transpose_adjoint_identity(self, pair, rng):
        # <P u, v>_fine == <u, P^T v>_coarse for all u, v.
        fine, coarse = pair
        op = build_transfer(fine.vertices, coarse)
        u = rng.standard_normal(coarse.n_vertices)
        v = rng.standard_normal(fine.n_vertices)
        lhs = np.dot(op.apply(u), v)
        rhs = np.dot(u, op.transpose_apply(v))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_transpose_multicomponent(self, pair, rng):
        fine, coarse = pair
        op = build_transfer(fine.vertices, coarse)
        v = rng.standard_normal((fine.n_vertices, 5))
        out = op.transpose_apply(v)
        assert out.shape == (coarse.n_vertices, 5)
        np.testing.assert_allclose(out.sum(axis=0), v.sum(axis=0),
                                   rtol=1e-10)

    def test_weights_rows_sum_to_one(self, pair):
        fine, coarse = pair
        op = build_transfer(fine.vertices, coarse)
        np.testing.assert_allclose(op.weights.sum(axis=1), 1.0, atol=1e-9)
