"""Tests for implicit residual averaging."""

import numpy as np
import pytest

from repro.scatter import EdgeScatter
from repro.solver import smooth_residual


@pytest.fixture(scope="module")
def sm_setup(bump_struct):
    return bump_struct, EdgeScatter(bump_struct.edges, bump_struct.n_vertices)


class TestSmoothResidual:
    def test_constant_residual_fixed_point(self, sm_setup):
        struct, scatter = sm_setup
        r = np.ones((struct.n_vertices, 5))
        out = smooth_residual(r, struct.edges, scatter, eps=0.5, sweeps=2)
        np.testing.assert_allclose(out, r, rtol=1e-12)

    def test_reduces_high_frequency(self, sm_setup, rng):
        struct, scatter = sm_setup
        r = rng.choice([-1.0, 1.0], (struct.n_vertices, 5))
        out = smooth_residual(r, struct.edges, scatter, eps=0.5, sweeps=2)
        assert np.abs(out).mean() < np.abs(r).mean()

    def test_preserves_smooth_component_better(self, sm_setup, rng):
        struct, scatter = sm_setup
        smooth = np.ones((struct.n_vertices, 5))
        rough = rng.choice([-1.0, 1.0], (struct.n_vertices, 5))
        out_s = smooth_residual(smooth, struct.edges, scatter, 0.5, 2)
        out_r = smooth_residual(rough, struct.edges, scatter, 0.5, 2)
        damp_s = np.linalg.norm(out_s) / np.linalg.norm(smooth)
        damp_r = np.linalg.norm(out_r) / np.linalg.norm(rough)
        assert damp_s > damp_r

    def test_zero_sweeps_identity(self, sm_setup, rng):
        struct, scatter = sm_setup
        r = rng.standard_normal((struct.n_vertices, 5))
        out = smooth_residual(r, struct.edges, scatter, eps=0.5, sweeps=0)
        assert out is r

    def test_zero_eps_identity(self, sm_setup, rng):
        struct, scatter = sm_setup
        r = rng.standard_normal((struct.n_vertices, 5))
        out = smooth_residual(r, struct.edges, scatter, eps=0.0, sweeps=2)
        assert out is r

    def test_input_unmodified(self, sm_setup, rng):
        struct, scatter = sm_setup
        r = rng.standard_normal((struct.n_vertices, 5))
        r_copy = r.copy()
        smooth_residual(r, struct.edges, scatter, eps=0.5, sweeps=3)
        np.testing.assert_array_equal(r, r_copy)

    def test_more_sweeps_approach_implicit_solution(self, sm_setup, rng):
        # The Jacobi iteration converges to (I - eps*Lap)^{-1} r; the
        # defect of the implicit equation must shrink with sweep count.
        struct, scatter = sm_setup
        r = rng.standard_normal((struct.n_vertices, 5))
        eps = 0.5

        def implicit_defect(rbar):
            lap = scatter.neighbor_sum(rbar) - scatter.degree[:, None] * rbar
            return np.linalg.norm(rbar - eps * lap - r)

        d2 = implicit_defect(smooth_residual(r, struct.edges, scatter, eps, 2))
        d8 = implicit_defect(smooth_residual(r, struct.edges, scatter, eps, 8))
        assert d8 < d2
