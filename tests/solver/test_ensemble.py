"""Ensemble driver API + shared solver-asset cache."""

import numpy as np
import pytest

from repro.solver import (EulerSolver, FlowState, SolverConfig,
                          build_solver_assets, clear_asset_cache,
                          get_solver_assets, mesh_fingerprint, solve_ensemble)
from repro.solver.assets import asset_config_key
from repro.state import freestream_state

FUSED = SolverConfig(executor="fused")


@pytest.fixture(scope="module")
def solver(bump_struct, winf):
    return EulerSolver(bump_struct, winf, FUSED)


class TestFlowState:
    def test_freestream_row(self):
        f = FlowState(0.768, 1.116)
        assert np.array_equal(f.freestream(), freestream_state(0.768, 1.116))

    def test_grid_is_mach_major(self):
        g = FlowState.grid((0.5, 0.7), (0.0, 1.0), cfl=2.5)
        assert [(f.mach, f.alpha_deg) for f in g] == \
            [(0.5, 0.0), (0.5, 1.0), (0.7, 0.0), (0.7, 1.0)]
        assert all(f.cfl == 2.5 for f in g)

    def test_resolved_cfl(self):
        cfg = SolverConfig()
        assert FlowState(0.5).resolved_cfl(cfg) == cfg.cfl
        assert FlowState(0.5, cfl=1.25).resolved_cfl(cfg) == 1.25

    def test_hashable(self):
        assert len({FlowState(0.5), FlowState(0.5), FlowState(0.6)}) == 2


class TestScenarioSpecs:
    def test_array_spec(self, solver):
        rows = np.stack([freestream_state(m, 0.0) for m in (0.5, 0.6)])
        res = solver.solve_ensemble(rows, n_cycles=1)
        assert res.n_scenarios == 2

    def test_row_sequence_spec(self, solver, winf):
        res = solver.solve_ensemble([winf, FlowState(0.5)], n_cycles=1)
        assert res.n_scenarios == 2

    def test_empty_rejected(self, solver):
        with pytest.raises(ValueError, match="at least one"):
            solver.solve_ensemble([], n_cycles=1)

    def test_bad_row_rejected(self, solver):
        with pytest.raises(TypeError, match="scenario 0"):
            solver.solve_ensemble([np.zeros(3)], n_cycles=1)
        with pytest.raises(ValueError, match="must be"):
            solver.solve_ensemble(np.zeros((2, 3)), n_cycles=1)

    def test_w0_shapes(self, solver, winf):
        nv = solver.n_vertices
        flows = [FlowState(0.5), FlowState(0.6)]
        shared = np.broadcast_to(winf, (nv, 5)).copy()
        r1 = solver.solve_ensemble(flows, w0=shared, n_cycles=1)
        per = np.stack([shared, shared])
        r2 = solver.solve_ensemble(flows, w0=per, n_cycles=1)
        assert np.array_equal(r1.states, r2.states)
        with pytest.raises(ValueError, match="w0 must be"):
            solver.solve_ensemble(flows, w0=np.zeros((3, 5)), n_cycles=1)


class TestResultContract:
    def test_histories_and_norms(self, solver):
        flows = [FlowState(0.5), FlowState(0.65), FlowState(0.8)]
        res = solver.solve_ensemble(flows, n_cycles=3, block_size=4)
        assert res.n_scenarios == 3
        for h in res.histories:
            assert len(h) == 4          # 3 entering norms + trailing
        assert res.final_norms.shape == (3,)
        assert np.all(np.isfinite(res.final_norms))
        assert res.wall_s > 0.0 and res.scenarios_per_s > 0.0
        assert res.cycles.tolist() == [3, 3, 3]

    def test_zero_cycles(self, solver, winf):
        res = solver.solve_ensemble([FlowState(0.5), FlowState(0.6)],
                                    n_cycles=0)
        assert res.cycles.tolist() == [0, 0]
        for s, h in enumerate(res.histories):
            assert len(h) == 1          # trailing norm only

    def test_callback_sees_live_scenarios(self, solver):
        seen = []
        flows = [FlowState(m) for m in (0.5, 0.6, 0.7)]
        solver.solve_ensemble(flows, n_cycles=2, block_size=4,
                              callback=lambda c, ids, ns: seen.append(
                                  (c, ids.tolist(), ns.shape[0])))
        assert (0, [0, 1, 2], 3) in seen
        assert (1, [0, 1, 2], 3) in seen

    def test_module_function_matches_method(self, solver):
        flows = [FlowState(0.5), FlowState(0.7)]
        a = solver.solve_ensemble(flows, n_cycles=2)
        b = solve_ensemble(solver, flows, n_cycles=2)
        assert np.array_equal(a.states, b.states)


class TestBlockPlacement:
    """A scenario's bits must not depend on its block placement."""

    def test_width1_remainder_matches_other_blockings(self, bump_struct,
                                                      winf):
        # executor="serial" is not the fused family, so the width-1
        # sequential shortcut would change the remainder scenario's
        # bits; the driver must keep it on the batched pipeline.
        srl = EulerSolver(bump_struct, winf, SolverConfig(executor="serial"))
        flows = [FlowState(0.5 + 0.02 * i) for i in range(9)]
        a = srl.solve_ensemble(flows, n_cycles=2, block_size=8)
        b = srl.solve_ensemble(flows, n_cycles=2, block_size=3)
        c = srl.solve_ensemble(flows, n_cycles=2, block_size=9)
        assert np.array_equal(a.states, b.states)
        assert np.array_equal(a.states, c.states)

    def test_fused_width1_shortcut_still_bitwise(self, solver):
        # The fused family's shortcut is bit-identical, so blockings
        # must agree there too (8 -> width-1 remainder via shortcut).
        flows = [FlowState(0.5 + 0.02 * i) for i in range(9)]
        a = solver.solve_ensemble(flows, n_cycles=2, block_size=8)
        b = solver.solve_ensemble(flows, n_cycles=2, block_size=9)
        assert np.array_equal(a.states, b.states)


class TestAssetCache:
    def test_fingerprint_distinguishes_meshes(self, bump_struct, box_struct):
        assert mesh_fingerprint(bump_struct) == mesh_fingerprint(bump_struct)
        assert mesh_fingerprint(bump_struct) != mesh_fingerprint(box_struct)

    def test_cache_hit(self, bump_struct):
        clear_asset_cache()
        a = get_solver_assets(bump_struct, FUSED)
        b = get_solver_assets(bump_struct, FUSED)
        assert a is b
        c = get_solver_assets(bump_struct, SolverConfig(executor="serial"))
        assert c is not a

    def test_assets_reuse_is_bitwise(self, bump_struct, winf):
        assets = build_solver_assets(bump_struct, FUSED)
        fresh = EulerSolver(bump_struct, winf, FUSED)
        shared = EulerSolver(None, winf, FUSED, assets=assets)
        w = fresh.freestream_solution()
        assert np.array_equal(fresh.step(w), shared.step(w))

    def test_config_key_mismatch_rejected(self, bump_struct, winf):
        assets = build_solver_assets(bump_struct, FUSED)
        with pytest.raises(ValueError, match="config"):
            EulerSolver(None, winf, SolverConfig(executor="serial"),
                        assets=assets)
        assert asset_config_key(FUSED) != \
            asset_config_key(SolverConfig(executor="serial"))
