"""Tests for the assembled single-grid Euler solver."""

import numpy as np
import pytest

from repro.constants import RK_ALPHAS
from repro.mesh import box_mesh
from repro.perfmodel import FlopCounter
from repro.solver import EulerSolver, SolverConfig
from repro.state import is_physical


class TestConstruction:
    def test_from_mesh(self, bump, winf):
        s = EulerSolver(bump, winf)
        assert s.n_vertices == bump.n_vertices

    def test_from_struct(self, bump_struct, winf):
        s = EulerSolver(bump_struct, winf)
        assert s.n_vertices == bump_struct.n_vertices

    def test_rejects_other_types(self, winf):
        with pytest.raises(TypeError):
            EulerSolver("not a mesh", winf)

    def test_rejects_bad_freestream(self, bump_struct):
        with pytest.raises(ValueError, match="shape"):
            EulerSolver(bump_struct, np.ones(4))

    def test_rk_coefficients_match_paper(self):
        assert RK_ALPHAS == (0.25, 1 / 6, 0.375, 0.5, 1.0)


class TestFreestreamPreservation:
    """The fundamental consistency test on every mesh family."""

    @pytest.mark.parametrize("fixture", ["box_struct"])
    def test_residual_zero(self, fixture, request, winf):
        struct = request.getfixturevalue(fixture)
        s = EulerSolver(struct, winf)
        r = s.residual(s.freestream_solution())
        assert np.abs(r).max() < 1e-11

    def test_step_preserves_freestream(self, box_struct, winf):
        s = EulerSolver(box_struct, winf)
        w = s.freestream_solution()
        w5 = w
        for _ in range(5):
            w5 = s.step(w5)
        assert np.abs(w5 - w).max() < 1e-12

    def test_many_mach_numbers(self, box_struct):
        from repro.state import freestream_state
        for mach in (0.1, 0.5, 0.85, 1.5):
            winf = freestream_state(mach, 2.0)
            s = EulerSolver(box_struct, winf)
            r = s.residual(s.freestream_solution())
            assert np.abs(r).max() < 1e-11, f"M={mach}"


class TestStep:
    def test_step_returns_new_array(self, bump_solver):
        w = bump_solver.freestream_solution()
        w1 = bump_solver.step(w)
        assert w1 is not w

    def test_step_changes_solution_near_bump(self, bump_solver):
        w = bump_solver.freestream_solution()
        w1 = bump_solver.step(w)
        assert np.abs(w1 - w).max() > 1e-6

    def test_step_stays_physical(self, bump_solver):
        w = bump_solver.freestream_solution()
        for _ in range(10):
            w = bump_solver.step(w)
        assert is_physical(w)

    def test_forcing_shifts_update(self, bump_solver, rng):
        w = bump_solver.freestream_solution()
        forcing = 1e-6 * rng.standard_normal((bump_solver.n_vertices, 5))
        w_plain = bump_solver.step(w)
        w_forced = bump_solver.step(w, forcing=forcing)
        assert np.abs(w_forced - w_plain).max() > 0

    def test_zero_forcing_matches_plain(self, bump_solver):
        w = bump_solver.freestream_solution()
        w_plain = bump_solver.step(w)
        w_forced = bump_solver.step(w, forcing=np.zeros_like(w))
        np.testing.assert_allclose(w_forced, w_plain, atol=1e-15)


class TestConvergence:
    def test_residual_drops(self, converged_bump):
        _, _, history = converged_bump
        assert history[-1] < 0.15 * history[0]

    def test_history_length(self, converged_bump):
        _, _, history = converged_bump
        assert len(history) == 301

    def test_supersonic_pocket_forms(self, converged_bump):
        from repro.state import mach_number
        _, w, _ = converged_bump
        # At M = 0.768 over the 4% bump the flow accelerates well past
        # freestream (the fast fixture mesh is too coarse to always break
        # M = 1, but must clearly overspeed).
        assert mach_number(w).max() > 0.85

    def test_run_callback_invoked(self, bump_struct, winf):
        s = EulerSolver(bump_struct, winf)
        seen = []
        s.run(n_cycles=3, callback=lambda c, w, r: seen.append(c))
        assert seen == [0, 1, 2]


class TestFlopCounting:
    def test_counts_accumulate(self, bump_struct, winf):
        counter = FlopCounter()
        s = EulerSolver(bump_struct, winf, flops=counter)
        s.step(s.freestream_solution())
        assert counter.total > 0
        assert set(counter.phases) >= {"convective", "dissipation",
                                       "timestep", "update"}

    def test_convective_dominates_with_five_stages(self, bump_struct, winf):
        counter = FlopCounter()
        s = EulerSolver(bump_struct, winf, flops=counter)
        s.step(s.freestream_solution())
        snap = counter.snapshot()
        assert snap["convective"] > snap["timestep"]

    def test_per_step_counts_deterministic(self, bump_struct, winf):
        c1, c2 = FlopCounter(), FlopCounter()
        s1 = EulerSolver(bump_struct, winf, flops=c1)
        s2 = EulerSolver(bump_struct, winf, flops=c2)
        s1.step(s1.freestream_solution())
        s2.step(s2.freestream_solution())
        assert c1.total == c2.total


class TestConfigVariants:
    def test_without_smoothing_runs(self, bump_struct, winf):
        s = EulerSolver(bump_struct, winf, SolverConfig().without_smoothing())
        w = s.freestream_solution()
        for _ in range(5):
            w = s.step(w)
        assert is_physical(w)

    def test_without_smoothing_lowers_cfl(self):
        cfg = SolverConfig(cfl=4.0).without_smoothing()
        assert cfg.cfl <= 2.0 and not cfg.residual_smoothing
