"""Tests for the blended Laplacian/biharmonic dissipation operator."""

import numpy as np
import pytest

from repro.scatter import EdgeScatter
from repro.solver import dissipation_operator, pressure_switch, undivided_laplacian
from repro.solver.dissipation import edge_spectral_radius
from repro.state import conserved_from_primitive


@pytest.fixture(scope="module")
def setup(bump_struct):
    scatter = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
    return bump_struct, scatter


class TestUndividedLaplacian:
    def test_constant_field_zero(self, setup, winf):
        struct, scatter = setup
        w = np.tile(winf, (struct.n_vertices, 1))
        lap = undivided_laplacian(w, struct.edges, scatter)
        np.testing.assert_allclose(lap, 0.0, atol=1e-12)

    def test_sign_convention(self):
        # Path graph 0-1-2 with values (0, 1, 0): L_1 = (0-1)+(0-1) = -2.
        edges = np.array([[0, 1], [1, 2]])
        scatter = EdgeScatter(edges, 3)
        w = np.array([[0.0], [1.0], [0.0]])
        lap = undivided_laplacian(w, edges, scatter)
        np.testing.assert_allclose(lap[:, 0], [1.0, -2.0, 1.0])

    def test_linear_field_interior_nonzero_allowed(self, setup):
        # The *undivided* Laplacian of a linear field is generally nonzero
        # on an irregular graph; only its magnitude should be edge-scale.
        struct, scatter = setup
        w = np.arange(struct.n_vertices, dtype=float)[:, None]
        lap = undivided_laplacian(w, struct.edges, scatter)
        assert np.all(np.isfinite(lap))


class TestPressureSwitch:
    def test_uniform_pressure_zero(self, setup, winf):
        struct, scatter = setup
        w = np.tile(winf, (struct.n_vertices, 1))
        nu = pressure_switch(w, struct.edges, scatter)
        np.testing.assert_allclose(nu, 0.0, atol=1e-12)

    def test_bounded_by_one(self, setup, rng, winf):
        struct, scatter = setup
        w = np.tile(winf, (struct.n_vertices, 1))
        w[:, 4] *= rng.uniform(0.5, 2.0, struct.n_vertices)
        nu = pressure_switch(w, struct.edges, scatter)
        assert np.all(nu >= 0) and np.all(nu <= 1.0 + 1e-12)

    def test_detects_jump(self, setup, winf):
        struct, scatter = setup
        w = np.tile(winf, (struct.n_vertices, 1))
        # Pressure jump at one vertex: the switch lights up there.
        w[100, 4] *= 3.0
        nu = pressure_switch(w, struct.edges, scatter)
        assert nu[100] > 0.1
        assert nu[100] == nu.max()


class TestSpectralRadius:
    def test_positive(self, setup, winf):
        struct, scatter = setup
        w = np.tile(winf, (struct.n_vertices, 1))
        lam = edge_spectral_radius(w, struct.edges, struct.eta)
        assert np.all(lam > 0)

    def test_rest_state_acoustic_only(self, box_struct):
        w = np.tile(conserved_from_primitive(1.0, 0, 0, 0, 1.0 / 1.4),
                    (box_struct.n_vertices, 1))
        lam = edge_spectral_radius(w, box_struct.edges, box_struct.eta)
        # c = 1 at this normalisation: lam = |eta|.
        np.testing.assert_allclose(lam,
                                   np.linalg.norm(box_struct.eta, axis=1),
                                   rtol=1e-12)

    def test_scales_with_mach(self, box_struct):
        w_lo = np.tile(conserved_from_primitive(1.0, 0.1, 0, 0, 1 / 1.4),
                       (box_struct.n_vertices, 1))
        w_hi = np.tile(conserved_from_primitive(1.0, 0.9, 0, 0, 1 / 1.4),
                       (box_struct.n_vertices, 1))
        lam_lo = edge_spectral_radius(w_lo, box_struct.edges, box_struct.eta)
        lam_hi = edge_spectral_radius(w_hi, box_struct.edges, box_struct.eta)
        assert lam_hi.sum() > lam_lo.sum()


class TestDissipationOperator:
    def test_constant_field_zero(self, setup, winf):
        struct, scatter = setup
        w = np.tile(winf, (struct.n_vertices, 1))
        d = dissipation_operator(w, struct.edges, struct.eta, scatter,
                                 k2=0.5, k4=1 / 32)
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_conservation(self, setup, rng, winf):
        # D is built from antisymmetric edge fluxes: global sum is zero.
        struct, scatter = setup
        w = np.tile(winf, (struct.n_vertices, 1))
        w *= rng.uniform(0.9, 1.1, (struct.n_vertices, 1))
        d = dissipation_operator(w, struct.edges, struct.eta, scatter,
                                 k2=0.5, k4=1 / 32)
        np.testing.assert_allclose(d.sum(axis=0), 0.0, atol=1e-9)

    def test_k4_zero_kills_smooth_dissipation(self, setup, rng, winf):
        # With k4 = 0 and smooth flow (switch ~ 0), D nearly vanishes.
        struct, scatter = setup
        w = np.tile(winf, (struct.n_vertices, 1))
        w += 1e-8 * rng.standard_normal(w.shape)
        d = dissipation_operator(w, struct.edges, struct.eta, scatter,
                                 k2=0.5, k4=0.0)
        assert np.abs(d).max() < 1e-10

    def test_dissipation_damps_oscillation(self, box_struct, winf):
        # A +/- checkerboard perturbation of density must be damped:
        # the dissipative update -(-D) pushes each vertex toward its
        # neighbours' mean.  Verify sign: perturbation and D are aligned
        # so dw/dt = +D/V reduces it... our residual is R = Q - D and
        # dw = -alpha dt R / V, so the -(-D) = +D term must oppose the
        # perturbation's growth; check correlation < 0 after one operator
        # application of (Q - D) on the perturbed state.
        scatter = EdgeScatter(box_struct.edges, box_struct.n_vertices)
        w = np.tile(winf, (box_struct.n_vertices, 1))
        rng = np.random.default_rng(3)
        pert = rng.choice([-1e-3, 1e-3], box_struct.n_vertices)
        w[:, 0] += pert
        d = dissipation_operator(w, box_struct.edges, box_struct.eta,
                                 scatter, k2=0.5, k4=1 / 32)
        # update contribution from dissipation: +d; it must correlate
        # positively... dw = -alpha*dt*(Q - D) => dissipation part is
        # +alpha*dt*D; for damping, D must anti-correlate with pert.
        corr = float(np.dot(d[:, 0], pert))
        assert corr < 0.0
