"""Tests for wall and characteristic farfield boundary conditions."""

import numpy as np
import pytest

from repro.constants import GAMMA
from repro.solver import (build_boundary_data, boundary_fluxes,
                          characteristic_state)
from repro.state import (conserved_from_primitive, freestream_state,
                         mach_number, pressure, primitive_from_conserved,
                         velocity)


class TestBoundaryData:
    def test_box_all_farfield(self, box_struct):
        bdata = build_boundary_data(box_struct)
        assert bdata.wall_vertices.size == 0
        assert bdata.far_vertices.size > 0

    def test_bump_has_wall_and_far(self, bump_struct):
        bdata = build_boundary_data(bump_struct)
        assert bdata.wall_vertices.size > 0
        assert bdata.far_vertices.size > 0

    def test_far_unit_normals(self, box_struct):
        bdata = build_boundary_data(box_struct)
        np.testing.assert_allclose(np.linalg.norm(bdata.far_unit, axis=1),
                                   1.0, rtol=1e-12)

    def test_symmetry_counts_as_wall(self, bump_struct):
        # Side-plane (symmetry) vertices enforce tangency like walls.
        from repro.mesh import PATCH_SYMMETRY
        bdata = build_boundary_data(bump_struct)
        sym = bump_struct.patch_vertices(PATCH_SYMMETRY)
        assert np.isin(sym, bdata.wall_vertices).all()


class TestCharacteristicState:
    def test_freestream_fixed_point(self, winf):
        # Interior state == freestream  =>  boundary state == freestream.
        normals = np.array([[1.0, 0, 0], [0, 1, 0], [-1, 0, 0],
                            [0.6, 0.8, 0.0]])
        w_int = np.tile(winf, (4, 1))
        w_b = characteristic_state(w_int, normals, winf)
        np.testing.assert_allclose(w_b, w_int, rtol=1e-12, atol=1e-13)

    def test_subsonic_outflow_keeps_interior_entropy(self, winf):
        # Make interior slightly hotter; outflow boundary should advect
        # the interior entropy, not freestream's.
        rho, u, v, w, p = primitive_from_conserved(winf[None])
        w_int = conserved_from_primitive(rho * 0.95, u, v, w, p)
        normal = velocity(w_int) / np.linalg.norm(velocity(w_int))
        w_b = characteristic_state(w_int, normal, winf)
        s_int = pressure(w_int) / w_int[:, 0] ** GAMMA
        s_b = pressure(w_b) / w_b[:, 0] ** GAMMA
        np.testing.assert_allclose(s_b, s_int, rtol=1e-10)

    def test_subsonic_inflow_takes_freestream_entropy(self, winf):
        rho, u, v, w, p = primitive_from_conserved(winf[None])
        w_int = conserved_from_primitive(rho * 0.95, u, v, w, p)
        # Inflow: outward normal opposed to the velocity.
        normal = -velocity(w_int) / np.linalg.norm(velocity(w_int))
        w_b = characteristic_state(w_int, normal, winf)
        s_far = pressure(winf[None]) / winf[0] ** GAMMA
        s_b = pressure(w_b) / w_b[:, 0] ** GAMMA
        np.testing.assert_allclose(s_b, s_far, rtol=1e-10)

    def test_supersonic_outflow_passes_interior(self):
        w_inf = freestream_state(2.0)
        w_int = freestream_state(2.1)[None]
        normal = np.array([[1.0, 0, 0]])
        w_b = characteristic_state(w_int, normal, w_inf)
        np.testing.assert_allclose(w_b, w_int, rtol=1e-12, atol=1e-13)

    def test_supersonic_inflow_passes_freestream(self):
        w_inf = freestream_state(2.0)
        w_int = freestream_state(2.1)[None]
        normal = np.array([[-1.0, 0, 0]])     # flow entering the domain
        w_b = characteristic_state(w_int, normal, w_inf)
        np.testing.assert_allclose(w_b, np.tile(w_inf, (1, 1)), rtol=1e-12)

    def test_result_physical(self, rng, winf):
        w_int = np.tile(winf, (50, 1))
        w_int[:, 0] *= rng.uniform(0.8, 1.2, 50)
        w_int[:, 4] *= rng.uniform(0.9, 1.1, 50)
        normals = rng.standard_normal((50, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        w_b = characteristic_state(w_int, normals, winf)
        assert np.all(w_b[:, 0] > 0)
        assert np.all(pressure(w_b) > 0)


class TestBoundaryFluxes:
    def test_wall_contributes_momentum_only(self, bump_struct, winf):
        bdata = build_boundary_data(bump_struct)
        w = np.tile(winf, (bump_struct.n_vertices, 1))
        out = np.zeros((bump_struct.n_vertices, 5))
        # isolate the wall by zeroing farfield vertices afterwards
        boundary_fluxes(w, bdata, winf, out=out)
        wall_only = np.setdiff1d(bdata.wall_vertices, bdata.far_vertices)
        assert np.abs(out[wall_only, 0]).max() < 1e-14    # no mass flux
        assert np.abs(out[wall_only, 4]).max() < 1e-14    # no energy flux
        assert np.abs(out[wall_only, 1:4]).max() > 0      # pressure acts

    def test_allocates_when_out_missing(self, box_struct, winf):
        bdata = build_boundary_data(box_struct)
        w = np.tile(winf, (box_struct.n_vertices, 1))
        out = boundary_fluxes(w, bdata, winf)
        assert out.shape == (box_struct.n_vertices, 5)
