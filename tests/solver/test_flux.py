"""Tests for the convective operator Q(w)."""

import numpy as np
import pytest

from repro.scatter import EdgeScatter
from repro.solver import boundary_fluxes, build_boundary_data, convective_operator
from repro.solver.flux import edge_flux
from repro.state import conserved_from_primitive, freestream_state


class TestEdgeFlux:
    def test_constant_state_flux_projection(self, box_struct, winf):
        w = np.tile(winf, (box_struct.n_vertices, 1))
        phi = edge_flux(w, box_struct.edges, box_struct.eta)
        # mass flux through each dual face: rho u . eta
        u = winf[1:4] / winf[0]
        expect = box_struct.eta @ (winf[0] * u)
        np.testing.assert_allclose(phi[:, 0], expect, atol=1e-14)

    def test_shape(self, box_struct, winf):
        w = np.tile(winf, (box_struct.n_vertices, 1))
        phi = edge_flux(w, box_struct.edges, box_struct.eta)
        assert phi.shape == (box_struct.n_edges, 5)


class TestConvectiveOperator:
    def test_freestream_interior_plus_boundary_zero(self, box_struct, winf):
        w = np.tile(winf, (box_struct.n_vertices, 1))
        scatter = EdgeScatter(box_struct.edges, box_struct.n_vertices)
        q = convective_operator(w, box_struct.edges, box_struct.eta, scatter)
        bdata = build_boundary_data(box_struct)
        boundary_fluxes(w, bdata, winf, out=q)
        assert np.abs(q).max() < 1e-12

    def test_global_conservation_interior(self, box_struct, rng, winf):
        # Interior edge fluxes telescope: sum over vertices is exactly zero
        # regardless of the state.
        w = np.tile(winf, (box_struct.n_vertices, 1))
        w *= rng.uniform(0.9, 1.1, (box_struct.n_vertices, 1))
        scatter = EdgeScatter(box_struct.edges, box_struct.n_vertices)
        q = convective_operator(w, box_struct.edges, box_struct.eta, scatter)
        np.testing.assert_allclose(q.sum(axis=0), 0.0, atol=1e-10)

    def test_linear_exactness_of_divergence(self, box, box_struct, rng):
        # The Galerkin-equivalence property: for a linear flux field
        # g(x) = A x + b, the edge residual of every *interior* control
        # volume equals the exact integral  trace(A) * V_i  to machine
        # precision.  This pins down the dual-face geometry far more
        # tightly than freestream preservation alone.
        a_mat = rng.standard_normal((3, 3))
        b_vec = rng.standard_normal(3)
        g = box.vertices @ a_mat.T + b_vec
        phi = 0.5 * np.einsum("ed,ed->e",
                              g[box_struct.edges[:, 0]]
                              + g[box_struct.edges[:, 1]], box_struct.eta)
        r = np.zeros(box.n_vertices)
        np.add.at(r, box_struct.edges[:, 0], phi)
        np.subtract.at(r, box_struct.edges[:, 1], phi)
        interior = np.linalg.norm(box_struct.total_bnormal(), axis=1) == 0
        expect = np.trace(a_mat) * box_struct.dual_volumes[interior]
        np.testing.assert_allclose(r[interior], expect, atol=1e-13)


class TestAngleOfAttackFlux:
    def test_alpha_rotates_residual_pattern(self, bump_struct):
        # Different flow angles produce different residual fields on a
        # non-symmetric mesh — a smoke test that alpha is actually wired
        # through the freestream state.
        from repro.scatter import EdgeScatter
        w0 = freestream_state(0.5, 0.0)
        w1 = freestream_state(0.5, 5.0)
        scatter = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
        bdata = build_boundary_data(bump_struct)
        q0 = convective_operator(np.tile(w0, (bump_struct.n_vertices, 1)),
                                 bump_struct.edges, bump_struct.eta, scatter)
        boundary_fluxes(np.tile(w0, (bump_struct.n_vertices, 1)), bdata, w0,
                        out=q0)
        q1 = convective_operator(np.tile(w1, (bump_struct.n_vertices, 1)),
                                 bump_struct.edges, bump_struct.eta, scatter)
        boundary_fluxes(np.tile(w1, (bump_struct.n_vertices, 1)), bdata, w1,
                        out=q1)
        # wall tangency violated differently by the two angles
        assert np.abs(q0 - q1).max() > 1e-6
