"""Tests for convergence monitoring and flow diagnostics."""

import numpy as np
import pytest

from repro.solver import (ConvergenceHistory, extract_isoline,
                          integrated_forces, mach_field,
                          surface_pressure_coefficient)
from repro.state import pressure


class TestConvergenceHistory:
    def test_orders_reduced(self):
        h = ConvergenceHistory()
        for r in (1.0, 0.1, 0.01, 1e-3):
            h.append(r)
        assert h.orders_reduced == pytest.approx(3.0)

    def test_cycles_to_reduction(self):
        h = ConvergenceHistory(residuals=[1.0, 0.5, 0.09, 0.01])
        assert h.cycles_to_reduction(1.0) == 2

    def test_cycles_to_reduction_unreached(self):
        h = ConvergenceHistory(residuals=[1.0, 0.9])
        assert h.cycles_to_reduction(3.0) is None

    def test_asymptotic_rate_geometric(self):
        h = ConvergenceHistory(residuals=[0.5 ** k for k in range(30)])
        assert h.asymptotic_rate(tail=10) == pytest.approx(0.5)

    def test_empty_history_safe(self):
        h = ConvergenceHistory()
        assert h.orders_reduced == 0.0
        assert h.cycles_to_reduction(1.0) is None
        assert h.asymptotic_rate() == 1.0
        t, r = h.to_arrays()
        assert t.size == 0 and r.size == 0

    def test_append_records_wall_clock(self):
        h = ConvergenceHistory()
        h.append(1.0)
        h.append(0.5)
        assert len(h.timestamps) == 2
        assert 0.0 <= h.timestamps[0] <= h.timestamps[1]

    def test_explicit_timestamp_override(self):
        h = ConvergenceHistory()
        h.append(1.0, timestamp=2.5)
        assert h.timestamps == [2.5]

    def test_to_arrays(self):
        h = ConvergenceHistory()
        for k in range(4):
            h.append(10.0 ** -k, timestamp=float(k))
        t, r = h.to_arrays()
        np.testing.assert_array_equal(t, [0.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(r, [1.0, 0.1, 0.01, 0.001])


class TestMachField:
    def test_freestream_uniform(self, winf, box_struct):
        w = np.tile(winf, (box_struct.n_vertices, 1))
        np.testing.assert_allclose(mach_field(w), 0.768, rtol=1e-12)

    def test_converged_bump_range(self, converged_bump):
        _, w, _ = converged_bump
        m = mach_field(w)
        assert m.min() > 0.3 and m.max() < 2.0


class TestSurfaceQuantities:
    def test_cp_zero_at_freestream_pressure(self, converged_bump, winf):
        solver, w, _ = converged_bump
        verts, cp = surface_pressure_coefficient(w, solver.bdata, winf)
        assert verts.size == cp.size
        # Transonic bump: strong suction on the crest, compression at the
        # foot — Cp must change sign along the wall.
        assert cp.min() < 0 < cp.max()

    def test_forces_nonzero_on_converged_flow(self, converged_bump):
        solver, w, _ = converged_bump
        force = integrated_forces(w, solver.bdata)
        assert force.shape == (3,)
        assert np.linalg.norm(force) > 0

    def test_freestream_force_is_pressure_closure(self, bump_solver, winf):
        # Uniform pressure on a non-closed wall patch: force = p * total
        # wall normal.
        w = bump_solver.freestream_solution()
        force = integrated_forces(w, bump_solver.bdata)
        p_inf = float(pressure(winf[None])[0])
        expect = p_inf * bump_solver.bdata.wall_normals.sum(axis=0)
        np.testing.assert_allclose(force, expect, rtol=1e-12, atol=1e-14)


class TestIsolines:
    def test_crossings_found(self, converged_bump):
        solver, w, _ = converged_bump
        m = mach_field(w)
        level = 0.5 * (m.min() + m.max())
        pts = extract_isoline(np.asarray(solver.mesh.vertices)
                              if solver.mesh is not None else None,
                              solver.edges, m, level) \
            if solver.mesh is not None else None
        # bump fixture was built from a struct; reconstruct coordinates
        # is unavailable -> use any 3-column dummy positions
        if pts is None:
            verts = np.zeros((solver.n_vertices, 3))
            pts = extract_isoline(verts, solver.edges, m, level)
        assert pts.shape[1] == 3
        assert len(pts) > 0

    def test_no_crossings_for_out_of_range_level(self, converged_bump):
        solver, w, _ = converged_bump
        m = mach_field(w)
        verts = np.zeros((solver.n_vertices, 3))
        pts = extract_isoline(verts, solver.edges, m, m.max() + 1.0)
        assert pts.shape == (0, 3)

    def test_interpolation_on_edges(self):
        verts = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        edges = np.array([[0, 1]])
        field = np.array([0.0, 1.0])
        pts = extract_isoline(verts, edges, field, 0.25)
        np.testing.assert_allclose(pts, [[0.25, 0, 0]])
