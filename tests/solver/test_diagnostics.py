"""Tests for entropy-error and aerodynamic-coefficient diagnostics."""

import numpy as np
import pytest

from repro.solver import (aero_coefficients, entropy_error_norm,
                          entropy_field)
from repro.state import freestream_state


class TestEntropy:
    def test_freestream_entropy_error_zero(self, bump_solver, winf):
        w = bump_solver.freestream_solution()
        assert entropy_error_norm(w, winf) == pytest.approx(0.0, abs=1e-14)

    def test_entropy_field_uniform_at_freestream(self, winf, box_struct):
        w = np.tile(winf, (box_struct.n_vertices, 1))
        s = entropy_field(w)
        np.testing.assert_allclose(s, s[0], rtol=1e-13)

    def test_converged_flow_small_entropy_error(self, converged_bump, winf):
        _, w, _ = converged_bump
        err = entropy_error_norm(w, winf)
        # Transonic flow on a coarse mesh: a few percent spurious entropy
        # is expected; an order-one error would flag a broken scheme.
        assert err < 0.2

    def test_shock_exclusion_reduces_error(self, converged_bump, winf):
        _, w, _ = converged_bump
        full = entropy_error_norm(w, winf)
        smooth_only = entropy_error_norm(w, winf, exclude_shocked=True)
        assert smooth_only <= full

    def test_perturbed_state_detected(self, bump_solver, winf, rng):
        w = bump_solver.freestream_solution()
        w[:, 4] *= rng.uniform(1.0, 1.1, bump_solver.n_vertices)
        assert entropy_error_norm(w, winf) > 0.01


class TestAeroCoefficients:
    def test_freestream_zero_coefficients(self, bump_solver, winf):
        # At exact freestream the p - p_inf loads vanish identically.
        w = bump_solver.freestream_solution()
        coeffs = aero_coefficients(w, bump_solver.bdata, winf,
                                   reference_area=1.0, alpha_deg=1.116)
        assert coeffs.cl == pytest.approx(0.0, abs=1e-10)
        assert coeffs.cd == pytest.approx(0.0, abs=1e-10)

    def test_converged_flow_nonzero(self, converged_bump, winf):
        solver, w, _ = converged_bump
        coeffs = aero_coefficients(w, solver.bdata, winf,
                                   reference_area=1.0, alpha_deg=1.116)
        assert abs(coeffs.cl) + abs(coeffs.cd) > 1e-4

    def test_reference_area_scaling(self, converged_bump, winf):
        solver, w, _ = converged_bump
        c1 = aero_coefficients(w, solver.bdata, winf, 1.0)
        c2 = aero_coefficients(w, solver.bdata, winf, 2.0)
        assert c1.cl == pytest.approx(2.0 * c2.cl, rel=1e-12)

    def test_report_renders(self, converged_bump, winf):
        solver, w, _ = converged_bump
        text = aero_coefficients(w, solver.bdata, winf, 1.0).report()
        assert "CL" in text and "CD" in text
