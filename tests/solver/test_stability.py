"""Stability envelope tests — including the choking regression.

An 8% bump chokes the channel at M = 0.768 (1-D choking area ratio is
0.950) and admits no steady solution; the mesh generator default was
reduced to 4% after this bit us.  These tests pin the physics down.
"""

import numpy as np
import pytest

from repro.mesh import bump_channel
from repro.solver import EulerSolver, SolverConfig
from repro.state import is_physical


class TestStability:
    def test_default_bump_stable_200_cycles(self, winf):
        mesh = bump_channel(24, 2, 8)
        s = EulerSolver(mesh, winf)
        w = s.freestream_solution()
        for _ in range(200):
            w = s.step(w)
        assert is_physical(w)

    def test_unsmoothed_low_cfl_stable(self, winf):
        mesh = bump_channel(24, 2, 8)
        s = EulerSolver(mesh, winf, SolverConfig().without_smoothing())
        w = s.freestream_solution()
        for _ in range(100):
            w = s.step(w)
        assert is_physical(w)

    def test_default_bump_below_choking_ratio(self):
        mesh = bump_channel(12, 2, 4)
        # Throat area ratio (1 - bump_height/height) above the M = 0.768
        # 1-D choking limit A*/A = 0.950.
        z = mesh.vertices[:, 2]
        x = mesh.vertices[:, 0]
        crest = z[np.isclose(x, 1.5)].min()
        assert (1.0 - crest) > 0.950

    def test_excessive_cfl_diverges(self, winf):
        # The five-stage scheme has a finite stability bound: CFL 40
        # without smoothing must blow up within a few hundred steps.  This
        # guards against silently over-damping the scheme into
        # unconditional (and inaccurate) stability.
        mesh = bump_channel(12, 2, 4)
        cfg = SolverConfig(cfl=40.0, residual_smoothing=False)
        s = EulerSolver(mesh, winf, cfg)
        w = s.freestream_solution()
        blew = False
        for _ in range(300):
            w = s.step(w)
            if not np.all(np.isfinite(w)) or not is_physical(w):
                blew = True
                break
        assert blew

    def test_rest_gas_stays_at_rest(self):
        from repro.state import freestream_state
        mesh = bump_channel(12, 2, 4)
        winf0 = freestream_state(0.0)
        s = EulerSolver(mesh, winf0)
        w = s.freestream_solution()
        for _ in range(20):
            w = s.step(w)
        np.testing.assert_allclose(w, s.freestream_solution(), atol=1e-10)


class TestBoundaryFrozenSmoothing:
    """Regression tests for the boundary-exclusion in residual averaging.

    Smoothing across boundary vertices destabilises the impulsive-start
    transient on wall-clustered meshes (slow blow-up around cycle 60-160,
    at any CFL).  Freezing boundary residuals restores CFL 4 stability.
    """

    def test_boundary_mask_covers_all_boundary(self, bump_solver):
        import numpy as np
        bnormal = bump_solver.struct.total_bnormal()
        on_boundary = np.linalg.norm(bnormal, axis=1) > 0
        np.testing.assert_array_equal(bump_solver.boundary_mask, on_boundary)

    def test_freeze_mask_passthrough(self, bump_solver, rng):
        import numpy as np
        from repro.solver import smooth_residual
        r = rng.standard_normal((bump_solver.n_vertices, 5))
        mask = bump_solver.boundary_mask
        out = smooth_residual(r, bump_solver.edges, bump_solver.scatter,
                              0.6, 2, freeze_mask=mask)
        np.testing.assert_array_equal(out[mask], r[mask])
        assert np.any(out[~mask] != r[~mask])

    def test_interior_unchanged_by_freeze_on_interior_free_graph(self, rng):
        # With an all-False mask the result equals the unmasked smoother.
        import numpy as np
        from repro.scatter import EdgeScatter
        from repro.solver import smooth_residual
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        scatter = EdgeScatter(edges, 4)
        r = rng.standard_normal((4, 5))
        a = smooth_residual(r, edges, scatter, 0.5, 2)
        b = smooth_residual(r, edges, scatter, 0.5, 2,
                            freeze_mask=np.zeros(4, dtype=bool))
        np.testing.assert_allclose(a, b)
