"""Solution accuracy checks via spurious entropy.

For smooth subsonic flow the exact Euler solution carries freestream
entropy everywhere; any deviation is numerical error.  A clean
order-of-accuracy slope needs geometrically similar meshes and Richardson
extrapolation (out of scope); what we pin down instead:

* the absolute error level is small (1e-4-ish relative on coarse meshes);
* it does not grow under refinement;
* it concentrates at the wall (the lumped boundary closure is the
  lowest-order ingredient), not in the interior scheme.

Measured reference points (M = 0.5, 2% bump, W-cycles to ~1e-9 residual):
interior RMS 5.6e-5 / 6.7e-5 / 2.5e-5 and wall RMS 1.4e-4 / 2.1e-4 /
1.4e-4 at nx = 12 / 24 / 48.
"""

import numpy as np
import pytest

from repro.mesh import bump_channel
from repro.multigrid import MultigridHierarchy, run_multigrid
from repro.solver import entropy_field
from repro.state import freestream_state


@pytest.fixture(scope="module")
def smooth_cases():
    winf = freestream_state(0.5, 0.0)
    out = {}
    for nx, cycles in ((12, 200), (24, 300)):
        meshes = [bump_channel(nx, 2, nx // 3, bump_height=0.02),
                  bump_channel(nx // 2, 2, nx // 6, bump_height=0.02)]
        hierarchy = MultigridHierarchy(meshes, winf)
        w, hist = run_multigrid(hierarchy, n_cycles=cycles, gamma=2)
        out[nx] = (hierarchy.fine.mesh, w, hist[-1], winf)
    return out


def _split_errors(mesh, w, winf):
    s = entropy_field(w)
    s_inf = float(entropy_field(winf[None])[0])
    rel = np.abs(s / s_inf - 1.0)
    wall_zone = mesh.vertices[:, 2] < 0.15
    return (float(np.sqrt(np.mean(rel[~wall_zone] ** 2))),
            float(np.sqrt(np.mean(rel[wall_zone] ** 2))))


class TestEntropyAccuracy:
    def test_deep_convergence_achieved(self, smooth_cases):
        for nx, (_, _, resid, _) in smooth_cases.items():
            assert resid < 1e-7, f"nx={nx} residual {resid}"

    def test_error_level_small(self, smooth_cases):
        for nx, (mesh, w, _, winf) in smooth_cases.items():
            interior, wall = _split_errors(mesh, w, winf)
            assert interior < 3e-4, f"nx={nx}"
            assert wall < 1e-3, f"nx={nx}"

    def test_error_does_not_grow_under_refinement(self, smooth_cases):
        e12 = _split_errors(*[smooth_cases[12][k] for k in (0, 1)],
                            smooth_cases[12][3])
        e24 = _split_errors(*[smooth_cases[24][k] for k in (0, 1)],
                            smooth_cases[24][3])
        assert e24[0] < 3.0 * e12[0]

    def test_error_concentrates_at_wall(self, smooth_cases):
        for nx, (mesh, w, _, winf) in smooth_cases.items():
            interior, wall = _split_errors(mesh, w, winf)
            assert wall > interior, f"nx={nx}"
