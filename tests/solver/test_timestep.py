"""Tests for local time stepping."""

import numpy as np
import pytest

from repro.scatter import EdgeScatter
from repro.solver import build_boundary_data, local_timestep


@pytest.fixture(scope="module")
def dt_setup(bump_struct):
    scatter = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
    bdata = build_boundary_data(bump_struct)
    return bump_struct, scatter, bdata


class TestLocalTimestep:
    def test_positive_everywhere(self, dt_setup, winf):
        struct, scatter, bdata = dt_setup
        w = np.tile(winf, (struct.n_vertices, 1))
        dt = local_timestep(w, struct.edges, struct.eta, scatter,
                            struct.dual_volumes, bdata, cfl=1.0)
        assert np.all(dt > 0)

    def test_linear_in_cfl(self, dt_setup, winf):
        struct, scatter, bdata = dt_setup
        w = np.tile(winf, (struct.n_vertices, 1))
        dt1 = local_timestep(w, struct.edges, struct.eta, scatter,
                             struct.dual_volumes, bdata, cfl=1.0)
        dt4 = local_timestep(w, struct.edges, struct.eta, scatter,
                             struct.dual_volumes, bdata, cfl=4.0)
        np.testing.assert_allclose(dt4, 4.0 * dt1, rtol=1e-12)

    def test_smaller_cells_smaller_steps(self, dt_setup, winf):
        # The bump channel clusters cells near the wall: wall-adjacent
        # vertices must receive smaller dt than the largest cells.
        struct, scatter, bdata = dt_setup
        w = np.tile(winf, (struct.n_vertices, 1))
        dt = local_timestep(w, struct.edges, struct.eta, scatter,
                            struct.dual_volumes, bdata, cfl=1.0)
        assert dt.min() < 0.5 * dt.max()

    def test_faster_flow_smaller_steps(self, dt_setup):
        from repro.state import freestream_state
        struct, scatter, bdata = dt_setup
        w_slow = np.tile(freestream_state(0.3), (struct.n_vertices, 1))
        w_fast = np.tile(freestream_state(1.5), (struct.n_vertices, 1))
        dt_slow = local_timestep(w_slow, struct.edges, struct.eta, scatter,
                                 struct.dual_volumes, bdata, cfl=1.0)
        dt_fast = local_timestep(w_fast, struct.edges, struct.eta, scatter,
                                 struct.dual_volumes, bdata, cfl=1.0)
        assert np.all(dt_fast < dt_slow)

    def test_locally_varying(self, dt_setup, winf):
        # "locally varying time steps" — the whole point: the field is not
        # constant on a graded mesh.
        struct, scatter, bdata = dt_setup
        w = np.tile(winf, (struct.n_vertices, 1))
        dt = local_timestep(w, struct.edges, struct.eta, scatter,
                            struct.dual_volumes, bdata, cfl=1.0)
        assert np.std(dt) / np.mean(dt) > 0.1
