"""Fault injection against the real-process distributed solver.

Pins the acceptance criteria of the resilience layer: a killed rank is
named within seconds (not after ``n_ranks x timeout``), transiently
dropped messages are recovered by the bounded send retry with a
bit-identical result, exchange timeouts carry rank/op coordinates, and
the driver leaks neither stash entries nor file descriptors.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.distsolver import run_distributed_mp
from repro.distsolver.mp_solver import _PipeTransport
from repro.resilience import (CollectionTimeoutError, ExchangeTimeoutError,
                              FaultInjector, FaultSpec, KILLED_EXIT_CODE,
                              RankFailedError)
from repro.solver import SolverConfig


class TestKillRank:
    def test_killed_rank_is_named_within_seconds(self, dmesh3, w0_global,
                                                 winf):
        injector = FaultInjector([FaultSpec(kind="kill_rank", rank=1, op=6)])
        t0 = time.monotonic()
        with pytest.raises(RankFailedError) as excinfo:
            run_distributed_mp(dmesh3, w0_global, winf, SolverConfig(),
                               n_cycles=3, injector=injector)
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0, f"detection took {elapsed:.1f} s"
        err = excinfo.value
        assert err.rank == 1
        assert err.exitcode == KILLED_EXIT_CODE
        assert "rank 1" in str(err)
        # The shared progress array pins where the rank got to: it was
        # killed entering op 6, so the last completed op is 5.
        assert err.last_op == 5

    def test_kill_at_first_op_reports_no_progress(self, dmesh3, w0_global,
                                                  winf):
        injector = FaultInjector([FaultSpec(kind="kill_rank", rank=0, op=0)])
        with pytest.raises(RankFailedError) as excinfo:
            run_distributed_mp(dmesh3, w0_global, winf, SolverConfig(),
                               n_cycles=1, injector=injector)
        assert excinfo.value.rank == 0
        assert excinfo.value.last_op == -1


class TestDropAndRetry:
    def test_transient_drop_recovers_bit_identically(self, dmesh3, w0_global,
                                                     winf):
        cfg = SolverConfig()
        w_clean = run_distributed_mp(dmesh3, w0_global, winf, cfg, n_cycles=2)
        injector = FaultInjector([FaultSpec(kind="drop", rank=0, op=2,
                                            count=2)])
        w_faulty = run_distributed_mp(dmesh3, w0_global, winf, cfg,
                                      n_cycles=2, injector=injector,
                                      max_send_retries=3)
        assert np.array_equal(w_faulty, w_clean)

    def test_exhausted_retries_surface_as_rank_failure(self, dmesh3,
                                                       w0_global, winf):
        # Drop every attempt of rank 0's op-2 sends: the sender's bounded
        # retry gives up and the driver names rank 0 promptly.
        injector = FaultInjector([FaultSpec(kind="drop", rank=0, op=2,
                                            count=10_000)])
        t0 = time.monotonic()
        with pytest.raises(RankFailedError) as excinfo:
            run_distributed_mp(dmesh3, w0_global, winf, SolverConfig(),
                               n_cycles=2, injector=injector,
                               max_send_retries=2, op_timeout=5.0)
        assert time.monotonic() - t0 < 10.0
        assert excinfo.value.rank == 0
        assert "ExchangeTimeoutError" in excinfo.value.reason

    def test_delay_fault_still_converges(self, dmesh3, w0_global, winf):
        cfg = SolverConfig()
        w_clean = run_distributed_mp(dmesh3, w0_global, winf, cfg, n_cycles=1)
        injector = FaultInjector([FaultSpec(kind="delay", rank=1, op=3,
                                            delay_s=0.2, count=2)])
        w_delayed = run_distributed_mp(dmesh3, w0_global, winf, cfg,
                                       n_cycles=1, injector=injector)
        assert np.array_equal(w_delayed, w_clean)


class TestTransportInternals:
    def _make_transport(self, **kwargs):
        recv_end, send_end = mp.Pipe(duplex=False)
        transport = _PipeTransport(0, recv_end, {}, {}, {}, **kwargs)
        return transport, send_end

    def test_stash_entries_are_deleted_when_drained(self):
        from collections import deque
        transport, send_end = self._make_transport()
        # Two ops arrive out of order; matching both must leave the
        # stash empty (the old code kept one empty list per early op).
        send_end.send((1, 1, "early"))
        send_end.send((1, 0, "wanted"))
        assert transport._recv_op(0) == (1, "wanted")
        assert transport._stash == {1: deque([(1, "early")])}
        assert transport._recv_op(1) == (1, "early")
        assert transport._stash == {}

    def test_recv_timeout_names_rank_and_op(self):
        transport, _send_end = self._make_transport(op_timeout=0.1)
        t0 = time.monotonic()
        with pytest.raises(ExchangeTimeoutError) as excinfo:
            transport._recv_op(7)
        assert time.monotonic() - t0 < 2.0
        assert excinfo.value.rank == 0
        assert excinfo.value.op == 7
        assert "op 7" in str(excinfo.value)


class TestDriverHygiene:
    def test_deadline_is_for_whole_collection(self):
        """A silent (alive but stuck) worker trips the single deadline.

        The old driver waited ``timeout`` per rank; two stuck ranks would
        have doubled the wait.  With the deadline semantics the total
        wait stays near one ``timeout`` regardless of rank count.
        """
        import queue as _queue

        from repro.resilience import collect_results

        class _NeverQueue:
            def get(self, timeout=None):
                time.sleep(timeout or 0.01)
                raise _queue.Empty

        class _AliveProc:
            exitcode = None

            def is_alive(self):
                return True

        workers = [_AliveProc() for _ in range(4)]
        t0 = time.monotonic()
        with pytest.raises(CollectionTimeoutError) as excinfo:
            collect_results(_NeverQueue(), workers, 4, timeout=0.3,
                            poll_interval=0.02)
        elapsed = time.monotonic() - t0
        assert elapsed < 1.5, f"deadline not global: waited {elapsed:.1f} s"
        assert len(excinfo.value.pending) == 4

    def test_repeated_runs_leak_no_file_descriptors(self, dmesh3, w0_global,
                                                    winf):
        cfg = SolverConfig()

        def n_fds():
            return len(os.listdir("/proc/self/fd"))

        # Warm-up creates any lazily-allocated plumbing (semaphores &c).
        run_distributed_mp(dmesh3, w0_global, winf, cfg, n_cycles=1)
        before = n_fds()
        for _ in range(3):
            run_distributed_mp(dmesh3, w0_global, winf, cfg, n_cycles=1)
        assert n_fds() <= before + 2, \
            "pipe/queue endpoints leaked across run_distributed_mp calls"
