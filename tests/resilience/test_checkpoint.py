"""Checkpoint/restart: bit-identical resume across every stepping loop.

The stepping loops are Markovian in ``(w, cycle, config)``; these tests
pin that property for the sequential solver, the multigrid driver, the
simulated distributed driver, and the real-process backend, plus the
exact on-disk round-trip and the config-hash guard.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.distsolver import DistributedEulerSolver, run_distributed_mp
from repro.multigrid import MultigridHierarchy, run_multigrid
from repro.partition import recursive_spectral_bisection
from repro.resilience import (Checkpoint, CheckpointMismatchError,
                              CheckpointStore, solver_config_hash,
                              verify_checkpoint)
from repro.solver import EulerSolver, SolverConfig


class TestCheckpointStore:
    def test_ring_keeps_latest(self):
        store = CheckpointStore(keep=2)
        cfg = SolverConfig()
        for cycle in range(4):
            store.save(Checkpoint.of(cycle, np.full((3, 5), cycle), cfg))
        assert len(store) == 2
        assert store.latest.cycle == 3

    def test_disk_round_trip_is_exact(self, tmp_path, rng):
        store = CheckpointStore(directory=tmp_path)
        cfg = SolverConfig()
        w = rng.normal(size=(17, 5))        # full float64 entropy
        saved = store.save(Checkpoint.of(12, w, cfg, meta={"label": "x"}))
        loaded = store.load_cycle(12)
        assert loaded.cycle == 12
        assert np.array_equal(loaded.w, saved.w)     # bit-exact
        assert loaded.config_hash == saved.config_hash
        assert loaded.meta == {"label": "x"}

    def test_load_latest_from_disk(self, tmp_path):
        cfg = SolverConfig()
        store = CheckpointStore(directory=tmp_path)
        for cycle in (2, 5, 9):
            store.save(Checkpoint.of(cycle, np.zeros((2, 5)), cfg))
        # A fresh store (fresh process) finds the newest file.
        reopened = CheckpointStore(directory=tmp_path)
        assert reopened.load_latest().cycle == 9

    def test_config_hash_guard(self):
        cfg_a = SolverConfig()
        cfg_b = replace(cfg_a, cfl=cfg_a.cfl * 0.9)
        assert solver_config_hash(cfg_a) != solver_config_hash(cfg_b)
        ckpt = Checkpoint.of(0, np.zeros((2, 5)), cfg_a)
        verify_checkpoint(ckpt, cfg_a)
        with pytest.raises(CheckpointMismatchError):
            verify_checkpoint(ckpt, cfg_b)


class TestSequentialResume:
    def test_run_resumes_bit_identically(self, bump_struct, winf):
        full_w, full_h = EulerSolver(bump_struct, winf,
                                     SolverConfig()).run(n_cycles=8)

        first = EulerSolver(bump_struct, winf, SolverConfig())
        w4, _ = first.run(n_cycles=4)
        ckpt = Checkpoint.of(4, w4, first.config)

        resumed = EulerSolver(bump_struct, winf, SolverConfig())
        res_w, res_h = resumed.run(n_cycles=8, resume_from=ckpt)
        assert np.array_equal(res_w, full_w)
        assert res_h == full_h[4:]

    def test_periodic_store_snapshots(self, bump_struct, winf):
        cfg = replace(SolverConfig(), checkpoint_interval=2)
        store = CheckpointStore(keep=10)
        solver = EulerSolver(bump_struct, winf, cfg)
        solver.run(n_cycles=6, checkpoint_store=store)
        cycles = [c.cycle for c in store._ring]
        assert cycles == [0, 2, 4]

    def test_resume_rejects_other_config(self, bump_struct, winf):
        solver = EulerSolver(bump_struct, winf, SolverConfig())
        w, _ = solver.run(n_cycles=2)
        ckpt = Checkpoint.of(2, w, replace(SolverConfig(), cfl=1.0))
        with pytest.raises(CheckpointMismatchError):
            EulerSolver(bump_struct, winf,
                        SolverConfig()).run(n_cycles=4, resume_from=ckpt)


class TestMultigridResume:
    @pytest.fixture(scope="class")
    def hierarchy_factory(self, winf):
        from repro.mesh import bump_channel

        def make():
            meshes = [bump_channel(12, 2, 4), bump_channel(6, 2, 2)]
            return MultigridHierarchy(meshes, winf, config=SolverConfig())
        return make

    def test_run_multigrid_resumes_bit_identically(self, hierarchy_factory):
        full_w, full_h = run_multigrid(hierarchy_factory(), n_cycles=6,
                                       gamma=2)

        first = hierarchy_factory()
        w3, _ = run_multigrid(first, n_cycles=3, gamma=2)
        ckpt = Checkpoint.of(3, w3, first.fine.solver.config)

        res_w, res_h = run_multigrid(hierarchy_factory(), n_cycles=6,
                                     gamma=2, resume_from=ckpt)
        assert np.array_equal(res_w, full_w)
        assert res_h == full_h[3:]


class TestDistributedResume:
    def test_simulated_driver_resumes_bit_identically(self, bump_struct,
                                                      winf):
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 3)
        cfg = replace(SolverConfig(), checkpoint_interval=2)

        ref = DistributedEulerSolver(bump_struct, winf, asg, cfg)
        full_w, full_h = ref.run(n_cycles=5)

        store = CheckpointStore(keep=10)
        mid = DistributedEulerSolver(bump_struct, winf, asg, cfg)
        mid.run(n_cycles=5, checkpoint_store=store)
        ckpt = next(c for c in store._ring if c.cycle == 2)

        resumed = DistributedEulerSolver(bump_struct, winf, asg, cfg)
        res_w, res_h = resumed.run(n_cycles=5, resume_from=ckpt)
        assert np.array_equal(resumed.collect(res_w), ref.collect(full_w))
        assert res_h == full_h[2:]

    def test_mp_driver_segments_and_resumes_bit_identically(self, dmesh3,
                                                            w0_global, winf):
        cfg = SolverConfig()
        w_clean = run_distributed_mp(dmesh3, w0_global, winf, cfg, n_cycles=4)

        cfg_ck = replace(cfg, checkpoint_interval=2)
        store = CheckpointStore(keep=10)
        w_seg = run_distributed_mp(dmesh3, w0_global, winf, cfg_ck,
                                   n_cycles=4, checkpoint_store=store)
        assert np.array_equal(w_seg, w_clean)
        assert [c.cycle for c in store._ring] == [2, 4]

        ckpt = next(c for c in store._ring if c.cycle == 2)
        w_res = run_distributed_mp(dmesh3, w0_global, winf, cfg_ck,
                                   n_cycles=4, resume_from=ckpt)
        assert np.array_equal(w_res, w_clean)

    def test_mp_driver_nan_guard_at_segment_boundary(self, dmesh3,
                                                     w0_global, winf):
        from repro.resilience import DivergenceError, FaultInjector, FaultSpec
        cfg = replace(SolverConfig(), checkpoint_interval=1)
        injector = FaultInjector([FaultSpec(kind="corrupt", rank=0, op=0,
                                            dst=1)], seed=11)
        with pytest.raises(DivergenceError) as excinfo:
            run_distributed_mp(dmesh3, w0_global, winf, cfg, n_cycles=3,
                               injector=injector)
        assert excinfo.value.cycle == 1      # caught at the first boundary
